//! Database statistics behind one switch: **exact** frequency histograms
//! or **seeded sub-linear samples** of them.
//!
//! Every planner in this workspace — the HyperCube skew detector, the
//! residual plans of `mpc-skew`, the heavy/light split of
//! `mpc-core::wco` — consumes the same two statistics: per-column value
//! frequencies and per-relation cardinalities. [`DbStatistics::collect`]
//! computes them once, under a [`StatsMode`] chosen by the caller:
//!
//! * [`StatsMode::Exact`] scans every tuple once per relation (the
//!   behaviour all planners had before the adaptive runtime); counts are
//!   true and the confidence slack ([`RelationStats::slack_for`]) is zero.
//! * [`StatsMode::Sampled`] draws a seeded uniform sample of `budget`
//!   tuples per relation **without replacement** (a partial Fisher–Yates
//!   over the index space, `O(budget)` time and memory) and scales the
//!   in-sample counts by `n / budget`. Planning cost becomes sub-linear
//!   in `n`; estimates carry the confidence slack of
//!   [`RelationStats::slack_for`].
//!
//! Sampling can only degrade plan *quality*, never *correctness*: a
//! heavy value the sample misses is treated as light by **every**
//! consumer of the same statistics, so routing stays self-consistent and
//! the computed output is unchanged (the property walls in `mpc-skew`
//! and `tests/` pin this).
//!
//! [`DbStatistics::scanned_tuples`] reports how many tuples the
//! collection actually visited — the deterministic cost metric the
//! `exp_adaptive_runtime` experiment uses to demonstrate sub-linear
//! planning (wall clocks are reported too, but the gate is on scans).

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_storage::{Database, Relation, Tuple, Value};

/// How planners obtain their statistics: one full scan, or a seeded
/// sub-linear sample.
///
/// The default is [`StatsMode::Exact`]; switch to [`StatsMode::Sampled`]
/// when the scan itself is the bottleneck (long-running services planning
/// against large, already-loaded inputs).
///
/// ```
/// use mpc_data::stats::{DbStatistics, StatsMode};
///
/// let q = mpc_cq::families::chain(2);
/// let db = mpc_data::skew::zipf_database(&q, 4000, 4000, 1.2, 7);
///
/// // Exact statistics visit every tuple of every relation…
/// let exact = DbStatistics::collect(&db, StatsMode::Exact);
/// assert_eq!(exact.scanned_tuples(), 8000);
///
/// // …a sampled collection visits only `budget` tuples per relation,
/// // and still finds the head of the Zipf distribution.
/// let sampled = DbStatistics::collect(&db, StatsMode::Sampled { budget: 400, seed: 1 });
/// assert_eq!(sampled.scanned_tuples(), 800);
/// let s1 = sampled.relation("S1").unwrap();
/// assert!(s1.estimate(0, 1) > s1.total() as f64 / 100.0, "the top key is visible");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StatsMode {
    /// Full scans: counts are exact, collection cost is `O(Σ n_R)`.
    #[default]
    Exact,
    /// Seeded uniform samples: `budget` tuples per relation, collection
    /// cost `O(budget · #relations)`, estimates within the slack of
    /// [`RelationStats::slack_for`] with high probability.
    Sampled {
        /// Tuples drawn per relation (capped at the relation size).
        budget: usize,
        /// Seed of the per-relation sampling RNG (decorrelated per
        /// relation by hashing the relation name into the seed).
        seed: u64,
    },
}

impl StatsMode {
    /// True for [`StatsMode::Sampled`].
    pub fn is_sampled(&self) -> bool {
        matches!(self, StatsMode::Sampled { .. })
    }
}

/// The collected statistics of one relation: per-column frequency counts
/// (exact, or raw in-sample counts plus the scale factor) and, in sampled
/// mode, the drawn tuples themselves (so pattern-level statistics can be
/// estimated from the same sample without touching the relation again).
#[derive(Debug, Clone)]
pub struct RelationStats {
    total: usize,
    /// Raw per-column counts: exact when `sample` is `None`, in-sample
    /// otherwise.
    columns: Vec<BTreeMap<Value, u64>>,
    /// The sampled tuples (`None` = exact statistics).
    sample: Option<Vec<Tuple>>,
    scanned: usize,
}

impl RelationStats {
    /// Exact statistics: one full scan building every column histogram.
    pub fn exact(rel: &Relation) -> Self {
        let columns = crate::skew::frequency_histograms(rel)
            .into_iter()
            .map(|h| h.into_iter().map(|(v, c)| (v, c as u64)).collect())
            .collect();
        RelationStats { total: rel.len(), columns, sample: None, scanned: rel.len() }
    }

    /// Sampled statistics: `budget` tuples drawn uniformly without
    /// replacement (partial Fisher–Yates over the index space, so the
    /// cost is `O(budget)` regardless of `rel.len()`).
    pub fn sampled(rel: &Relation, budget: usize, seed: u64) -> Self {
        let m = budget.min(rel.len());
        if m == rel.len() {
            // A budget at or above the relation size is a full scan.
            return RelationStats { sample: Some(rel.tuples().to_vec()), ..Self::exact(rel) };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut swapped: HashMap<usize, usize> = HashMap::new();
        let mut sample = Vec::with_capacity(m);
        for i in 0..m {
            let j = rng.gen_range(i..rel.len());
            let vi = *swapped.get(&i).unwrap_or(&i);
            let vj = *swapped.get(&j).unwrap_or(&j);
            swapped.insert(j, vi);
            sample.push(rel.tuples()[vj].clone());
        }
        let mut columns: Vec<BTreeMap<Value, u64>> = vec![BTreeMap::new(); rel.arity()];
        for t in &sample {
            for (idx, value) in t.values().iter().enumerate() {
                *columns[idx].entry(*value).or_insert(0) += 1;
            }
        }
        RelationStats { total: rel.len(), columns, sample: Some(sample), scanned: m }
    }

    /// True cardinality of the relation (always exact — `len()` is O(1)).
    pub fn total(&self) -> usize {
        self.total
    }

    /// True when these statistics come from a sample.
    pub fn is_sampled(&self) -> bool {
        self.sample.is_some()
    }

    /// Tuples visited to build these statistics.
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// The factor raw in-sample counts are scaled by (`1.0` for exact).
    pub fn scale(&self) -> f64 {
        match &self.sample {
            Some(s) if !s.is_empty() => self.total as f64 / s.len() as f64,
            _ => 1.0,
        }
    }

    /// Estimated frequency of `value` in column `col`: the exact count,
    /// or the scaled in-sample count.
    pub fn estimate(&self, col: usize, value: Value) -> f64 {
        self.columns.get(col).and_then(|h| h.get(&value)).copied().unwrap_or(0) as f64
            * self.scale()
    }

    /// Iterate the values observed in column `col` with their estimated
    /// frequencies. In sampled mode only in-sample values appear —
    /// exactly the property that makes a missed hitter *consistently*
    /// light everywhere.
    pub fn column_estimates(&self, col: usize) -> impl Iterator<Item = (Value, f64)> + '_ {
        let scale = self.scale();
        self.columns
            .get(col)
            .into_iter()
            .flat_map(move |h| h.iter().map(move |(v, c)| (*v, *c as f64 * scale)))
    }

    /// The sampled tuples with their per-tuple weight (`None` = exact
    /// statistics; iterate the relation itself with weight 1).
    pub fn sample(&self) -> Option<(&[Tuple], f64)> {
        self.sample.as_ref().map(|s| (s.as_slice(), self.scale()))
    }

    /// High-probability additive slack of an estimate around `estimated`:
    /// `3·σ` of the binomial estimator, `3·√(estimated · n / m)` (zero
    /// for exact statistics). An exact frequency `f` and its estimate
    /// differ by more than `slack_for(max(f, estimate))` only with
    /// probability `< 10⁻²` per value; the detector agreement tests in
    /// `mpc-skew` assert exactly this envelope.
    pub fn slack_for(&self, estimated: f64) -> f64 {
        match &self.sample {
            Some(s) if !s.is_empty() && s.len() < self.total => {
                3.0 * (estimated.max(self.scale()) * self.scale()).sqrt()
            }
            _ => 0.0,
        }
    }
}

/// Statistics for a whole database under one [`StatsMode`]: the single
/// artefact planners share so analysis, skew detection and WCO planning
/// cost **one** scan (or one sample) between them.
#[derive(Debug, Clone)]
pub struct DbStatistics {
    mode: StatsMode,
    relations: BTreeMap<String, RelationStats>,
}

impl DbStatistics {
    /// Collect statistics for every relation of `db`.
    pub fn collect(db: &Database, mode: StatsMode) -> Self {
        let relations = db
            .relations()
            .map(|rel| {
                let stats = match mode {
                    StatsMode::Exact => RelationStats::exact(rel),
                    StatsMode::Sampled { budget, seed } => {
                        RelationStats::sampled(rel, budget, seed ^ fnv1a(rel.name()))
                    }
                };
                (rel.name().to_string(), stats)
            })
            .collect();
        DbStatistics { mode, relations }
    }

    /// The mode these statistics were collected under.
    pub fn mode(&self) -> StatsMode {
        self.mode
    }

    /// True when collected under [`StatsMode::Sampled`].
    pub fn is_sampled(&self) -> bool {
        self.mode.is_sampled()
    }

    /// The statistics of one relation.
    pub fn relation(&self, name: &str) -> Option<&RelationStats> {
        self.relations.get(name)
    }

    /// Total tuples visited across all relations — the deterministic
    /// planning-cost metric (`Σ n_R` exact, `Σ min(budget, n_R)` sampled).
    pub fn scanned_tuples(&self) -> usize {
        self.relations.values().map(RelationStats::scanned).sum()
    }
}

/// FNV-1a over a name, used to decorrelate per-relation sampling seeds.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn zipf_db(n: u64, seed: u64) -> Database {
        crate::skew::zipf_database(&families::chain(2), n, n as usize, 1.2, seed)
    }

    #[test]
    fn exact_statistics_match_histograms() {
        let db = zipf_db(2000, 3);
        let stats = DbStatistics::collect(&db, StatsMode::Exact);
        assert!(!stats.is_sampled());
        for rel in db.relations() {
            let rs = stats.relation(rel.name()).unwrap();
            assert_eq!(rs.total(), rel.len());
            assert_eq!(rs.scale(), 1.0);
            assert_eq!(rs.slack_for(100.0), 0.0);
            let hist = crate::skew::frequency_histograms(rel);
            for (col, h) in hist.iter().enumerate() {
                for (v, c) in h {
                    assert_eq!(rs.estimate(col, *v), *c as f64);
                }
            }
        }
        assert_eq!(stats.scanned_tuples(), db.relations().map(Relation::len).sum::<usize>());
    }

    #[test]
    fn sampling_is_sublinear_and_deterministic() {
        let db = zipf_db(4000, 9);
        let mode = StatsMode::Sampled { budget: 300, seed: 11 };
        let a = DbStatistics::collect(&db, mode);
        let b = DbStatistics::collect(&db, mode);
        assert_eq!(a.scanned_tuples(), 600);
        for rel in db.relations() {
            let ra = a.relation(rel.name()).unwrap();
            let rb = b.relation(rel.name()).unwrap();
            assert!(ra.is_sampled());
            assert_eq!(ra.sample().unwrap().0, rb.sample().unwrap().0, "same seed, same sample");
            // The sample has no duplicate indices: its tuples are distinct.
            let (tuples, scale) = ra.sample().unwrap();
            let set: std::collections::BTreeSet<&Tuple> = tuples.iter().collect();
            assert_eq!(set.len(), tuples.len(), "sampling is without replacement");
            assert!((scale - rel.len() as f64 / tuples.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_estimates_are_close_for_heavy_values() {
        let db = zipf_db(6000, 5);
        let exact = DbStatistics::collect(&db, StatsMode::Exact);
        let sampled = DbStatistics::collect(&db, StatsMode::Sampled { budget: 1200, seed: 2 });
        for rel in db.relations() {
            let e = exact.relation(rel.name()).unwrap();
            let s = sampled.relation(rel.name()).unwrap();
            // The head of the Zipf distribution is estimated within slack.
            for value in 1..=3u64 {
                let truth = e.estimate(0, value);
                let est = s.estimate(0, value);
                assert!(
                    (truth - est).abs() <= s.slack_for(truth.max(est)),
                    "{}: value {value} true {truth} est {est} slack {}",
                    rel.name(),
                    s.slack_for(truth.max(est))
                );
            }
        }
    }

    #[test]
    fn oversized_budget_degenerates_to_exact_counts() {
        let db = zipf_db(500, 1);
        let stats = DbStatistics::collect(&db, StatsMode::Sampled { budget: 100_000, seed: 4 });
        for rel in db.relations() {
            let rs = stats.relation(rel.name()).unwrap();
            assert!(rs.is_sampled(), "mode is still sampled…");
            assert_eq!(rs.scale(), 1.0, "…but the scale is 1: the sample is the relation");
            assert_eq!(rs.slack_for(10.0), 0.0);
        }
    }
}
