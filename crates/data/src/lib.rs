//! Data generators for the MPC experiments.
//!
//! Three input families are used throughout the paper and its reproduction:
//!
//! * [`matching`] — *matching databases* (Section 2.5): every relation of
//!   arity `a` is an `a`-dimensional matching over `[n]`, i.e. it has
//!   exactly `n` tuples and every column is a permutation of `1..=n`.
//!   These are the skew-free inputs over which the one-round bound
//!   `ε ≥ 1 − 1/τ*` is tight.
//! * [`skew`] — Zipf-skewed and heavy-hitter relations, used by the skew
//!   ablation (the paper defers skew handling to Koutris–Suciu 2011 but
//!   notes the HC guarantees need skew-free inputs).
//! * [`graphs`] — graph inputs for the connected-components application
//!   (Theorem 4.10): layered path graphs whose components correspond to
//!   `L_k` answers, plus sparse/dense random graphs for the contrast with
//!   the dense-graph `O(1)`-round algorithms.
//! * [`planted`] — databases with an **exactly controlled output
//!   cardinality** (`|q(I)| = m` by construction), used by the
//!   output-sensitive sweep of the journal version (arXiv:1602.06236).
//! * [`stats`] — the statistics layer every planner consumes:
//!   [`DbStatistics`] collects per-column frequency histograms either
//!   **exactly** (one full scan) or from a **seeded sub-linear sample**,
//!   behind the [`StatsMode`] switch of the adaptive runtime.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphs;
pub mod matching;
pub mod planted;
pub mod skew;
pub mod stats;

pub use graphs::LayeredGraph;
pub use matching::{matching_database, matching_relation};
pub use planted::{output_controlled_database, PlantedJoin};
pub use stats::{DbStatistics, RelationStats, StatsMode};
