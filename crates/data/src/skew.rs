//! Skewed data generators.
//!
//! The HyperCube load guarantees of Proposition 3.2 are stated for matching
//! databases — skew-free inputs in which every attribute is a key. Real
//! data has heavy hitters; the skew ablation (experiment E7 in DESIGN.md)
//! compares per-server loads on these skewed inputs against matchings.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use mpc_cq::Query;
use mpc_storage::{Database, Relation, Tuple};

/// Sample `count` binary tuples whose *first* attribute follows a Zipf
/// distribution with exponent `theta` over `[n]` and whose second attribute
/// is uniform over `[n]`. `theta = 0` is uniform; larger values concentrate
/// mass on small keys.
pub fn zipf_relation(name: &str, n: u64, count: usize, theta: f64, rng: &mut StdRng) -> Relation {
    assert!(n >= 1);
    // Precompute the Zipf CDF.
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut rel = Relation::empty(name, 2);
    let mut inserted = 0usize;
    let mut attempts = 0usize;
    // Rejection on duplicates: cap attempts so adversarial parameters
    // (count close to n²) still terminate.
    while inserted < count && attempts < count * 20 {
        attempts += 1;
        let u: f64 = rng.gen();
        let x = match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in CDF")) {
            Ok(i) => i as u64 + 1,
            Err(i) => (i as u64 + 1).min(n),
        };
        let y = rng.gen_range(1..=n);
        if rel.insert(Tuple(vec![x, y])).expect("arity 2 by construction") {
            inserted += 1;
        }
    }
    rel
}

/// A binary relation with a single heavy hitter: a fraction `heavy_frac` of
/// the `count` tuples share the same first-attribute value `1`; the rest is
/// a matching-like diagonal. This is the canonical worst case for hash
/// partitioning on the first attribute.
pub fn heavy_hitter_relation(
    name: &str,
    n: u64,
    count: usize,
    heavy_frac: f64,
    rng: &mut StdRng,
) -> Relation {
    assert!((0.0..=1.0).contains(&heavy_frac));
    let heavy = ((count as f64) * heavy_frac).round() as usize;
    let mut rel = Relation::empty(name, 2);
    let mut y = 0u64;
    while (rel.len()) < heavy && y < n {
        y += 1;
        rel.insert(Tuple(vec![1, y])).expect("arity 2 by construction");
    }
    while rel.len() < count {
        let x = rng.gen_range(1..=n);
        let y = rng.gen_range(1..=n);
        rel.insert(Tuple(vec![x, y])).expect("arity 2 by construction");
    }
    rel
}

/// A database for a binary-relation query in which every relation is
/// Zipf-skewed with the given exponent. Non-binary atoms are rejected.
///
/// # Panics
///
/// Panics if the query contains a non-binary atom (the skew generators are
/// only defined for binary relations).
pub fn zipf_database(
    q: &Query,
    n: u64,
    tuples_per_relation: usize,
    theta: f64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(n);
    for atom in q.atoms() {
        assert_eq!(atom.arity(), 2, "zipf_database only supports binary atoms");
        db.insert_relation(zipf_relation(&atom.name, n, tuples_per_relation, theta, &mut rng));
    }
    db
}

/// A database for a binary-relation query in which every relation is a
/// [`heavy_hitter_relation`] with the given heavy fraction: the canonical
/// adversarial input for hash partitioning. Non-binary atoms are rejected.
///
/// # Panics
///
/// Panics if the query contains a non-binary atom (the skew generators are
/// only defined for binary relations).
pub fn heavy_hitter_database(
    q: &Query,
    n: u64,
    tuples_per_relation: usize,
    heavy_frac: f64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(n);
    for atom in q.atoms() {
        assert_eq!(atom.arity(), 2, "heavy_hitter_database only supports binary atoms");
        db.insert_relation(heavy_hitter_relation(
            &atom.name,
            n,
            tuples_per_relation,
            heavy_frac,
            &mut rng,
        ));
    }
    db
}

/// A binary relation with **exactly controlled skew**: `heavy_keys`
/// distinct first-attribute values each occur in exactly `degree` tuples;
/// the remainder of the `count` tuples is a light filler whose
/// first-attribute values are drawn above the heavy range (so no light
/// tuple accidentally raises a heavy key's degree). Unlike
/// [`heavy_hitter_relation`] (whose planted degree is silently capped at
/// `n`), this generator panics when the request is unsatisfiable — the
/// property suite uses it to place degrees exactly on either side of the
/// WCO heavy threshold `deg · share > |R|`.
///
/// Heavy keys are `1..=heavy_keys`; their partner values enumerate
/// `1..=degree`. Light tuples draw both attributes uniformly from
/// `heavy_keys+1..=n`.
///
/// # Panics
///
/// Panics when `degree > n`, when `heavy_keys · degree > count`, or when
/// the light filler has no room (`n ≤ heavy_keys` with light tuples
/// required, or more light tuples than the remaining domain square).
pub fn degree_planted_relation(
    name: &str,
    n: u64,
    count: usize,
    heavy_keys: u64,
    degree: usize,
    rng: &mut StdRng,
) -> Relation {
    assert!(degree as u64 <= n, "degree {degree} exceeds the domain size {n}");
    let heavy_total =
        (heavy_keys as usize).checked_mul(degree).expect("heavy tuple count fits in usize");
    assert!(
        heavy_total <= count,
        "{heavy_keys} keys of degree {degree} need {heavy_total} tuples, only {count} requested"
    );
    let light = count - heavy_total;
    if light > 0 {
        let light_domain = n.saturating_sub(heavy_keys);
        assert!(
            (light as u64) <= light_domain.saturating_mul(light_domain),
            "cannot fit {light} distinct light tuples above the heavy range"
        );
    }
    let mut rel = Relation::empty(name, 2);
    for x in 1..=heavy_keys {
        for y in 1..=degree as u64 {
            rel.insert(Tuple(vec![x, y])).expect("arity 2 by construction");
        }
    }
    while rel.len() < count {
        let x = rng.gen_range(heavy_keys + 1..=n);
        let y = rng.gen_range(heavy_keys + 1..=n);
        rel.insert(Tuple(vec![x, y])).expect("arity 2 by construction");
    }
    rel
}

/// A database for a binary-relation query in which every relation is a
/// [`degree_planted_relation`] with the same parameters — the shared heavy
/// keys `1..=heavy_keys` join across relations, closing cyclic queries
/// through the heavy side deterministically. Non-binary atoms are
/// rejected.
///
/// # Panics
///
/// Panics if the query contains a non-binary atom, or when the per-relation
/// construction is unsatisfiable (see [`degree_planted_relation`]).
pub fn degree_planted_database(
    q: &Query,
    n: u64,
    tuples_per_relation: usize,
    heavy_keys: u64,
    degree: usize,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(n);
    for atom in q.atoms() {
        assert_eq!(atom.arity(), 2, "degree_planted_database only supports binary atoms");
        db.insert_relation(degree_planted_relation(
            &atom.name,
            n,
            tuples_per_relation,
            heavy_keys,
            degree,
            &mut rng,
        ));
    }
    db
}

/// Exact frequency histogram of one column: for each value occurring at
/// position `idx`, the number of tuples carrying it. This is the statistic
/// the heavy-hitter detector thresholds against.
///
/// # Panics
///
/// Panics if `idx` is out of range for the relation's arity (and the
/// relation is non-empty).
pub fn frequency_histogram(rel: &Relation, idx: usize) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for t in rel.iter() {
        *counts.entry(t.values()[idx]).or_insert(0usize) += 1;
    }
    counts
}

/// Exact frequency histograms of **every** column of a relation, built in
/// a single scan. The heavy-hitter detector (and any other per-column
/// statistics consumer) uses this instead of re-scanning the relation once
/// per column with [`frequency_histogram`] — one shared cardinality pass
/// for `mpc-data` and `mpc-skew`.
pub fn frequency_histograms(rel: &Relation) -> Vec<BTreeMap<u64, usize>> {
    let mut columns: Vec<BTreeMap<u64, usize>> = vec![BTreeMap::new(); rel.arity()];
    for t in rel.iter() {
        for (idx, value) in t.values().iter().enumerate() {
            *columns[idx].entry(*value).or_insert(0usize) += 1;
        }
    }
    columns
}

/// Measure the *skew* of one column of a relation: the ratio between the
/// most frequent value's count and the mean count over the values that
/// actually **occur** in that column (not over the whole domain `[n]`), so
/// a relation whose column support is tiny but uniform still reports 1.
/// A matching has skew exactly 1 in every column; the empty relation
/// reports 1 by convention.
///
/// # Panics
///
/// Panics if `idx` is out of range for the relation's arity (and the
/// relation is non-empty).
pub fn attribute_skew(rel: &Relation, idx: usize) -> f64 {
    if rel.is_empty() {
        return 1.0;
    }
    let counts = frequency_histogram(rel, idx);
    let max = *counts.values().max().expect("non-empty") as f64;
    let avg = rel.len() as f64 / counts.len() as f64;
    max / avg
}

/// [`attribute_skew`] of the first column — kept as a thin wrapper because
/// the generators in this module skew the first attribute.
pub fn first_attribute_skew(rel: &Relation) -> f64 {
    attribute_skew(rel, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let rel = zipf_relation("S", 1000, 2000, 0.0, &mut rng);
        assert!(rel.len() >= 1900, "rejection sampling should find enough tuples");
        assert!(first_attribute_skew(&rel) < 4.0);
    }

    #[test]
    fn zipf_large_theta_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let uniform = zipf_relation("U", 1000, 2000, 0.0, &mut rng);
        let skewed = zipf_relation("Z", 1000, 2000, 1.5, &mut rng);
        assert!(
            first_attribute_skew(&skewed) > 2.0 * first_attribute_skew(&uniform),
            "zipf(1.5) should be much more skewed than uniform"
        );
    }

    #[test]
    fn heavy_hitter_concentration() {
        let mut rng = StdRng::seed_from_u64(9);
        let rel = heavy_hitter_relation("H", 10_000, 1000, 0.5, &mut rng);
        assert_eq!(rel.len(), 1000);
        let ones = rel.iter().filter(|t| t.values()[0] == 1).count();
        assert!(ones >= 450, "about half the tuples share the heavy key, got {ones}");
        assert!(first_attribute_skew(&rel) > 50.0);
    }

    #[test]
    fn zipf_database_is_deterministic() {
        let q = families::cycle(3);
        let a = zipf_database(&q, 500, 800, 1.0, 7);
        let b = zipf_database(&q, 500, 800, 1.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.num_relations(), 3);
    }

    #[test]
    fn matching_has_unit_skew() {
        let mut rng = StdRng::seed_from_u64(5);
        let rel = crate::matching::matching_relation("S", 2, 100, &mut rng);
        assert!((first_attribute_skew(&rel) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_skew_is_one() {
        let rel = Relation::empty("E", 2);
        assert_eq!(first_attribute_skew(&rel), 1.0);
        assert_eq!(attribute_skew(&rel, 1), 1.0);
    }

    #[test]
    fn frequency_histogram_counts_exactly() {
        let rel = Relation::from_tuples("R", 2, vec![[1u64, 7], [1, 8], [2, 7]]).unwrap();
        let col0 = frequency_histogram(&rel, 0);
        assert_eq!(col0.get(&1), Some(&2));
        assert_eq!(col0.get(&2), Some(&1));
        let col1 = frequency_histogram(&rel, 1);
        assert_eq!(col1.get(&7), Some(&2));
        assert_eq!(col1.len(), 2);
    }

    #[test]
    fn one_pass_histograms_agree_with_per_column() {
        let mut rng = StdRng::seed_from_u64(17);
        let rel = zipf_relation("Z", 500, 900, 1.1, &mut rng);
        let all = frequency_histograms(&rel);
        assert_eq!(all.len(), 2);
        for (idx, histogram) in all.iter().enumerate() {
            assert_eq!(*histogram, frequency_histogram(&rel, idx), "column {idx}");
        }
        assert!(frequency_histograms(&Relation::empty("E", 3)).iter().all(BTreeMap::is_empty));
    }

    #[test]
    fn attribute_skew_covers_any_column() {
        let mut rng = StdRng::seed_from_u64(9);
        let rel = heavy_hitter_relation("H", 10_000, 1000, 0.5, &mut rng);
        // The first column carries the heavy hitter; the second is (near-)
        // uniform, so its skew is far smaller.
        assert!(attribute_skew(&rel, 0) > 10.0 * attribute_skew(&rel, 1));
        assert_eq!(attribute_skew(&rel, 0), first_attribute_skew(&rel));
    }

    #[test]
    fn degree_planted_relation_has_exact_degrees() {
        let mut rng = StdRng::seed_from_u64(21);
        let rel = degree_planted_relation("D", 5000, 2000, 3, 400, &mut rng);
        assert_eq!(rel.len(), 2000);
        let hist = frequency_histogram(&rel, 0);
        for key in 1..=3u64 {
            assert_eq!(hist.get(&key), Some(&400), "heavy key {key} has exact degree");
        }
        // Light values never collide with the heavy range.
        for (value, count) in &hist {
            if *value > 3 {
                assert!(*count < 400, "light value {value} stayed light ({count})");
            }
        }
    }

    #[test]
    fn degree_planted_database_closes_cyclic_answers() {
        // The shared heavy keys join across relations, so a triangle over
        // the planted database has at least the all-heavy answers.
        let q = families::triangle();
        let db = degree_planted_database(&q, 4000, 1500, 2, 300, 31);
        let out = mpc_storage::join::evaluate(&q, &db).unwrap();
        assert!(!out.is_empty(), "heavy keys close triangles");
        let a = degree_planted_database(&q, 4000, 1500, 2, 300, 31);
        assert_eq!(db, a, "deterministic per seed");
    }

    #[test]
    #[should_panic(expected = "only 100 requested")]
    fn degree_planted_rejects_overfull_requests() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = degree_planted_relation("D", 1000, 100, 10, 50, &mut rng);
    }

    #[test]
    fn heavy_hitter_database_is_deterministic_and_skewed() {
        let q = families::chain(2);
        let a = heavy_hitter_database(&q, 2000, 1500, 0.4, 11);
        let b = heavy_hitter_database(&q, 2000, 1500, 0.4, 11);
        assert_eq!(a, b);
        assert_eq!(a.num_relations(), 2);
        for rel in a.relations() {
            assert!(first_attribute_skew(rel) > 10.0, "every relation carries a heavy hitter");
        }
    }
}
