//! Graph inputs for the connected-components application (Theorem 4.10).
//!
//! The lower-bound construction of Theorem 4.10 partitions the `n` vertices
//! into `k + 1` layers `P1, …, P_{k+1}` of equal size and places a perfect
//! matching (permutation) between each pair of adjacent layers. Each
//! connected component is then a path visiting every layer once, and the
//! components of the graph are in bijection with the answers of the chain
//! query `L_k` over the layer-to-layer permutations.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use mpc_cq::{families, Query};
use mpc_storage::{Database, Relation, Tuple};

/// The layered path graph family of Theorem 4.10.
#[derive(Debug, Clone)]
pub struct LayeredGraph {
    /// Number of edge layers `k` (so there are `k + 1` vertex layers).
    pub num_edge_layers: usize,
    /// Vertices per layer.
    pub layer_size: u64,
    /// Edges as (global vertex id, global vertex id) with ids in
    /// `1 ..= (k+1) · layer_size`; layer `i` holds ids
    /// `(i−1)·layer_size + 1 ..= i·layer_size`.
    pub edges: Vec<(u64, u64)>,
    /// The permutations between adjacent layers, in *local* coordinates
    /// `1..=layer_size` (entry `j` of `permutations[i]` is the local target
    /// in layer `i+2` of local vertex `j+1` in layer `i+1`).
    pub permutations: Vec<Vec<u64>>,
}

impl LayeredGraph {
    /// Generate a layered path graph with `num_edge_layers` layers of edges
    /// (i.e. `num_edge_layers + 1` layers of vertices), each layer holding
    /// `layer_size` vertices, with independent uniformly random matchings
    /// between adjacent layers.
    pub fn generate(num_edge_layers: usize, layer_size: u64, seed: u64) -> Self {
        assert!(num_edge_layers >= 1);
        assert!(layer_size >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut permutations = Vec::with_capacity(num_edge_layers);
        let mut edges = Vec::new();
        for layer in 0..num_edge_layers {
            let mut perm: Vec<u64> = (1..=layer_size).collect();
            perm.shuffle(&mut rng);
            for (src_local, &dst_local) in perm.iter().enumerate() {
                let src = layer as u64 * layer_size + (src_local as u64 + 1);
                let dst = (layer as u64 + 1) * layer_size + dst_local;
                edges.push((src, dst));
            }
            permutations.push(perm);
        }
        LayeredGraph { num_edge_layers, layer_size, edges, permutations }
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> u64 {
        (self.num_edge_layers as u64 + 1) * self.layer_size
    }

    /// Total number of edges (`< num_vertices`, the graph is sparse).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of connected components (one path per first-layer vertex).
    pub fn num_components(&self) -> u64 {
        self.layer_size
    }

    /// The undirected edge relation `E(x, y)` with both orientations, as
    /// used by the connected-components programs.
    pub fn edge_relation(&self, name: &str) -> Relation {
        let mut rel = Relation::empty(name, 2);
        for &(u, v) in &self.edges {
            rel.insert(Tuple(vec![u, v])).expect("arity 2 by construction");
            rel.insert(Tuple(vec![v, u])).expect("arity 2 by construction");
        }
        rel
    }

    /// The chain query `L_k` and database whose answers are exactly the
    /// connected components of this graph: relation `Sj` holds the edges
    /// between vertex layers `j` and `j+1` (in global vertex ids).
    pub fn to_chain_database(&self) -> (Query, Database) {
        let q = families::chain(self.num_edge_layers);
        let mut db = Database::new(self.num_vertices());
        for (layer, perm) in self.permutations.iter().enumerate() {
            let mut rel = Relation::empty(format!("S{}", layer + 1), 2);
            for (src_local, &dst_local) in perm.iter().enumerate() {
                let src = layer as u64 * self.layer_size + (src_local as u64 + 1);
                let dst = (layer as u64 + 1) * self.layer_size + dst_local;
                rel.insert(Tuple(vec![src, dst])).expect("arity 2 by construction");
            }
            db.insert_relation(rel);
        }
        (q, db)
    }

    /// Ground-truth component labels: each vertex is mapped to the smallest
    /// vertex id of its component.
    pub fn ground_truth_labels(&self) -> BTreeMap<u64, u64> {
        // Follow each path from its first-layer vertex.
        let mut labels = BTreeMap::new();
        for start_local in 1..=self.layer_size {
            let label = start_local; // first-layer ids are 1..=layer_size, the smallest on the path
            let mut current_local = start_local;
            labels.insert(current_local, label);
            for (layer, perm) in self.permutations.iter().enumerate() {
                let next_local = perm[(current_local - 1) as usize];
                let next_global = (layer as u64 + 1) * self.layer_size + next_local;
                labels.insert(next_global, label);
                current_local = next_local;
            }
        }
        labels
    }
}

/// A random sparse undirected graph with `num_vertices` vertices and
/// (up to) `num_edges` distinct edges, returned as an `E(x,y)` relation
/// containing both orientations.
pub fn random_sparse_graph(num_vertices: u64, num_edges: usize, seed: u64, name: &str) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::empty(name, 2);
    let mut inserted = 0usize;
    let mut attempts = 0usize;
    while inserted < num_edges && attempts < num_edges * 20 {
        attempts += 1;
        let u = rng.gen_range(1..=num_vertices);
        let v = rng.gen_range(1..=num_vertices);
        if u == v {
            continue;
        }
        if rel.insert(Tuple(vec![u, v])).expect("arity 2") {
            rel.insert(Tuple(vec![v, u])).expect("arity 2");
            inserted += 1;
        }
    }
    rel
}

/// A dense random graph: every vertex gets `avg_degree` random neighbours
/// (with both edge orientations stored). Used for the contrast experiment:
/// dense graphs admit O(1)-round connected components (Karloff et al.,
/// discussed in Section 1 of the paper).
pub fn dense_graph(num_vertices: u64, avg_degree: usize, seed: u64, name: &str) -> Relation {
    random_sparse_graph(num_vertices, (num_vertices as usize) * avg_degree / 2, seed, name)
}

/// Sequential union-find connected components of an edge relation; returns
/// the number of components among vertices `1..=num_vertices` and the label
/// (smallest member) of each vertex. The reference answer for the MPC
/// programs.
pub fn sequential_components(edges: &Relation, num_vertices: u64) -> (u64, BTreeMap<u64, u64>) {
    let mut parent: Vec<u64> = (0..=num_vertices).collect();
    fn find(parent: &mut [u64], mut x: u64) -> u64 {
        while parent[x as usize] != x {
            let up = parent[parent[x as usize] as usize];
            parent[x as usize] = up;
            x = up;
        }
        x
    }
    for t in edges.iter() {
        let (u, v) = (t.values()[0], t.values()[1]);
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
        }
    }
    let mut labels = BTreeMap::new();
    let mut roots = std::collections::BTreeSet::new();
    for v in 1..=num_vertices {
        let r = find(&mut parent, v);
        labels.insert(v, r);
        roots.insert(r);
    }
    (roots.len() as u64, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_storage::join::evaluate;

    #[test]
    fn layered_graph_shape() {
        let g = LayeredGraph::generate(4, 10, 3);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 40);
        assert_eq!(g.num_components(), 10);
        let edges = g.edge_relation("E");
        assert_eq!(edges.len(), 80); // both orientations
    }

    #[test]
    fn layered_graph_components_match_chain_answers() {
        let g = LayeredGraph::generate(3, 8, 5);
        let (q, db) = g.to_chain_database();
        let answers = evaluate(&q, &db).unwrap();
        // One Lk answer per component.
        assert_eq!(answers.len() as u64, g.num_components());
    }

    #[test]
    fn ground_truth_labels_cover_all_vertices() {
        let g = LayeredGraph::generate(3, 6, 1);
        let labels = g.ground_truth_labels();
        assert_eq!(labels.len() as u64, g.num_vertices());
        // Labels are first-layer ids.
        assert!(labels.values().all(|&l| (1..=6).contains(&l)));
        // Exactly 6 distinct labels.
        let distinct: std::collections::BTreeSet<_> = labels.values().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn ground_truth_agrees_with_sequential_union_find() {
        let g = LayeredGraph::generate(5, 7, 9);
        let edges = g.edge_relation("E");
        let (count, labels) = sequential_components(&edges, g.num_vertices());
        assert_eq!(count, g.num_components());
        let gt = g.ground_truth_labels();
        // Same partition: two vertices share a UF label iff they share a GT label.
        for (v, l) in &gt {
            for (w, m) in &gt {
                assert_eq!(l == m, labels[v] == labels[w]);
            }
        }
    }

    #[test]
    fn sparse_graph_generation() {
        let rel = random_sparse_graph(100, 150, 2, "E");
        assert!(rel.len() <= 300);
        assert!(rel.len() >= 280, "should find most of the requested edges");
        // No self loops.
        assert!(rel.iter().all(|t| t.values()[0] != t.values()[1]));
    }

    #[test]
    fn dense_graph_has_requested_density() {
        let rel = dense_graph(200, 10, 4, "E");
        // ~200·10/2 distinct edges, stored in both directions.
        assert!(rel.len() > 1500);
    }

    #[test]
    fn sequential_components_on_simple_graph() {
        // Two triangles and an isolated vertex.
        let rel =
            Relation::from_tuples("E", 2, vec![[1u64, 2], [2, 3], [3, 1], [4, 5], [5, 6], [6, 4]])
                .unwrap();
        let (count, labels) = sequential_components(&rel, 7);
        assert_eq!(count, 3);
        assert_eq!(labels[&1], labels[&3]);
        assert_eq!(labels[&4], labels[&6]);
        assert_ne!(labels[&1], labels[&4]);
        assert_eq!(labels[&7], 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LayeredGraph::generate(4, 16, 10);
        let b = LayeredGraph::generate(4, 16, 10);
        assert_eq!(a.edges, b.edges);
    }
}
