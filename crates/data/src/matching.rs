//! Matching databases (Section 2.5 of the paper).
//!
//! A relation of arity `a` is an *`a`-dimensional matching* over `[n]` when
//! it has exactly `n` tuples and each of its columns contains every value
//! `1, …, n` exactly once (every attribute is a key). A *matching database*
//! instantiates every relation of a query with an independent uniformly
//! random matching. These inputs have no skew, and the paper's one-round
//! bound is tight over them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use mpc_cq::Query;
use mpc_storage::{Database, Relation, Tuple};

/// Generate a uniformly random `arity`-dimensional matching over `[n]`.
///
/// The first column is the identity `1..=n`; the remaining columns are
/// independent uniformly random permutations, matching the paper's
/// distribution up to relabelling of tuples (the *set* of tuples is what
/// matters and its distribution is exactly uniform over `a`-dimensional
/// matchings).
pub fn matching_relation(name: &str, arity: usize, n: u64, rng: &mut StdRng) -> Relation {
    assert!(arity >= 1, "relations must have arity >= 1");
    let mut columns: Vec<Vec<u64>> = Vec::with_capacity(arity);
    columns.push((1..=n).collect());
    for _ in 1..arity {
        let mut perm: Vec<u64> = (1..=n).collect();
        perm.shuffle(rng);
        columns.push(perm);
    }
    let mut rel = Relation::empty(name, arity);
    for i in 0..n as usize {
        let tuple: Vec<u64> = columns.iter().map(|c| c[i]).collect();
        rel.insert(Tuple(tuple)).expect("arity is consistent by construction");
    }
    rel
}

/// The identity matching `{(1,…,1), (2,…,2), …, (n,…,n)}` of the given
/// arity (the `id_M` instance used in the retraction argument of
/// Lemma 4.12).
pub fn identity_matching(name: &str, arity: usize, n: u64) -> Relation {
    let mut rel = Relation::empty(name, arity);
    for v in 1..=n {
        rel.insert(Tuple(vec![v; arity])).expect("arity is consistent by construction");
    }
    rel
}

/// Generate a uniformly random matching database for the query: one
/// independent matching per atom, with the arity of that atom.
pub fn matching_database(q: &Query, n: u64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(n);
    for atom in q.atoms() {
        db.insert_relation(matching_relation(&atom.name, atom.arity(), n, &mut rng));
    }
    db
}

/// Generate a matching database in which every relation is the identity
/// matching. Useful as a worst case for skew-oblivious hashing (all
/// relations identical) and for deterministic tests.
pub fn identity_database(q: &Query, n: u64) -> Database {
    let mut db = Database::new(n);
    for atom in q.atoms() {
        db.insert_relation(identity_matching(&atom.name, atom.arity(), n));
    }
    db
}

/// Check whether a relation is an `arity`-dimensional matching over `[n]`:
/// exactly `n` tuples and every column a permutation of `1..=n`.
pub fn is_matching(rel: &Relation, n: u64) -> bool {
    if rel.len() as u64 != n {
        return false;
    }
    for col in 0..rel.arity() {
        let mut seen = vec![false; n as usize];
        for t in rel.iter() {
            let v = t.values()[col];
            if v < 1 || v > n || seen[(v - 1) as usize] {
                return false;
            }
            seen[(v - 1) as usize] = true;
        }
        if seen.iter().any(|s| !s) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_storage::join::evaluate;

    #[test]
    fn matchings_have_permutation_columns() {
        let mut rng = StdRng::seed_from_u64(7);
        for arity in 1..=4 {
            let rel = matching_relation("S", arity, 50, &mut rng);
            assert_eq!(rel.len(), 50);
            assert!(is_matching(&rel, 50), "arity {arity}");
        }
    }

    #[test]
    fn identity_matching_shape() {
        let rel = identity_matching("S", 3, 5);
        assert_eq!(rel.len(), 5);
        assert!(rel.contains(&Tuple::from([3, 3, 3])));
        assert!(is_matching(&rel, 5));
    }

    #[test]
    fn matching_database_covers_all_atoms() {
        let q = families::cycle(4);
        let db = matching_database(&q, 100, 1);
        assert_eq!(db.num_relations(), 4);
        for atom in q.atoms() {
            assert!(is_matching(db.relation(&atom.name).unwrap(), 100), "{}", atom.name);
        }
        assert!(db.validate_for(&q).is_ok());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let q = families::chain(3);
        let a = matching_database(&q, 64, 42);
        let b = matching_database(&q, 64, 42);
        let c = matching_database(&q, 64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn chain_answers_on_matchings_have_size_n() {
        // Lemma 3.4 / Table 1: Lk over matchings has exactly n answers
        // (composition of permutations is a permutation).
        for k in 1..=4 {
            let q = families::chain(k);
            let db = matching_database(&q, 40, 11 + k as u64);
            let out = evaluate(&q, &db).unwrap();
            assert_eq!(out.len(), 40, "L{k}");
        }
    }

    #[test]
    fn star_answers_on_matchings_have_size_n() {
        let q = families::star(3);
        let db = matching_database(&q, 30, 5);
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 30);
    }

    #[test]
    fn identity_database_answers() {
        // On the identity database every query has exactly the diagonal
        // answers: n of them for connected full queries.
        let q = families::cycle(3);
        let db = identity_database(&q, 12);
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 12);
        assert!(out.contains(&Tuple::from([7, 7, 7])));
    }

    #[test]
    fn non_matchings_are_rejected_by_checker() {
        let rel = Relation::from_tuples("S", 2, vec![[1u64, 1], [2, 1]]).unwrap();
        assert!(!is_matching(&rel, 2));
        let small = Relation::from_tuples("S", 2, vec![[1u64, 1]]).unwrap();
        assert!(!is_matching(&small, 2));
    }
}
