//! Databases with an **exactly controlled output cardinality** — the
//! inputs of the output-sensitive sweep (journal version,
//! arXiv:1602.06236).
//!
//! Over matching databases the answer count is a random variable with
//! expectation `n^{1+χ}` (Lemma 3.4) — useless when an experiment must
//! sweep the output size `m` independently of the input size `n`. The
//! planted construction pins it exactly:
//!
//! * **Diagonal answers.** Every relation contains the `m` diagonal tuples
//!   `(t, …, t)` for `t = 1, …, m`. Any atom evaluated on diagonal tuples
//!   forces its variables equal, so a connected query's planted answers
//!   are exactly the `m` all-equal assignments.
//! * **Join-free padding.** Each relation is padded to exactly `n` tuples
//!   with globally fresh values (every padding value occurs exactly once
//!   in the whole database). A padding tuple can therefore never agree
//!   with any tuple of another relation on a shared variable, and in a
//!   connected query with at least two atoms every atom shares a variable
//!   with the rest — so padding contributes **zero** answers.
//!
//! The result: `|q(I)| = m` exactly, every relation has exactly `n`
//! tuples, and every column is duplicate-free (skew-free, so the
//! HyperCube load guarantees apply unchanged). The seed shifts all values
//! by a random offset so different seeds exercise different hash routes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_cq::Query;
use mpc_storage::{Database, Relation, Tuple};

/// A generated database together with the output cardinality it
/// guarantees — the "exact cardinality" handle the output-sensitive
/// sweep needs (no trial evaluation required).
#[derive(Debug, Clone)]
pub struct PlantedJoin {
    /// The generated database (`n` tuples per relation).
    pub db: Database,
    /// The exact answer count `|q(db)| = m`, by construction.
    pub output_size: u64,
}

/// Generate a database for `q` with exactly `n` tuples per relation and
/// exactly `m` query answers (`m ≤ n`).
///
/// ```
/// use mpc_data::planted::output_controlled_database;
///
/// let q = mpc_cq::families::triangle();
/// let planted = output_controlled_database(&q, 500, 37, 1);
/// let out = mpc_storage::join::evaluate(&q, &planted.db).unwrap();
/// assert_eq!(out.len() as u64, planted.output_size);
/// assert_eq!(planted.output_size, 37);
/// ```
///
/// # Panics
///
/// Panics when `m > n`, when the query is disconnected (padding could
/// then join), or when a single-atom query is asked for `m < n` (every
/// tuple of a single-atom query is an answer, so only `m = n` is
/// realisable).
pub fn output_controlled_database(q: &Query, n: u64, m: u64, seed: u64) -> PlantedJoin {
    assert!(m <= n, "cannot plant more answers than tuples per relation (m = {m}, n = {n})");
    assert!(q.is_connected(), "output_controlled_database requires a connected query");
    assert!(q.num_atoms() >= 2 || m == n, "single-atom queries answer every tuple: m must equal n");

    let mut rng = StdRng::seed_from_u64(seed);
    let offset: u64 = rng.gen_range(0..1u64 << 32);
    // Fresh values start above the diagonal block and never repeat.
    let mut next_fresh: u64 = m + 1;

    let mut relations = Vec::with_capacity(q.num_atoms());
    for atom in q.atoms() {
        let mut rel = Relation::empty(&atom.name, atom.arity());
        for t in 1..=m {
            rel.insert(Tuple(vec![t + offset; atom.arity()]))
                .expect("arity is consistent by construction");
        }
        while (rel.len() as u64) < n {
            let values: Vec<u64> = (0..atom.arity())
                .map(|_| {
                    let v = next_fresh + offset;
                    next_fresh += 1;
                    v
                })
                .collect();
            rel.insert(Tuple(values)).expect("fresh values never collide");
        }
        relations.push(rel);
    }

    let mut db = Database::new(offset + next_fresh);
    for rel in relations {
        db.insert_relation(rel);
    }
    PlantedJoin { db, output_size: m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_storage::join::evaluate;

    use crate::skew::attribute_skew;

    #[test]
    fn output_size_is_exact_across_families() {
        for q in [
            families::triangle(),
            families::cycle(5),
            families::chain(3),
            families::chain(4),
            families::star(3),
            families::spoke(2),
            families::binomial(4, 2).unwrap(),
        ] {
            for m in [0u64, 1, 7, 50] {
                let planted = output_controlled_database(&q, 50, m, 11);
                let out = evaluate(&q, &planted.db).unwrap();
                assert_eq!(out.len() as u64, m, "{} with m = {m}", q.name());
                assert_eq!(planted.output_size, m);
                for atom in q.atoms() {
                    assert_eq!(planted.db.relation(&atom.name).unwrap().len(), 50);
                }
            }
        }
    }

    #[test]
    fn planted_inputs_are_skew_free() {
        let q = families::triangle();
        let planted = output_controlled_database(&q, 200, 60, 5);
        for rel in planted.db.relations() {
            for col in 0..rel.arity() {
                assert!((attribute_skew(rel, col) - 1.0).abs() < 1e-9, "column {col} has skew");
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let q = families::chain(3);
        let a = output_controlled_database(&q, 80, 10, 42);
        let b = output_controlled_database(&q, 80, 10, 42);
        let c = output_controlled_database(&q, 80, 10, 43);
        assert_eq!(a.db, b.db);
        assert_ne!(a.db, c.db);
    }

    #[test]
    fn single_atom_full_output_is_allowed() {
        let q = families::chain(1);
        let planted = output_controlled_database(&q, 40, 40, 3);
        assert_eq!(evaluate(&q, &planted.db).unwrap().len(), 40);
    }

    #[test]
    #[should_panic(expected = "single-atom")]
    fn single_atom_partial_output_is_rejected() {
        let _ = output_controlled_database(&families::chain(1), 40, 10, 3);
    }

    #[test]
    #[should_panic(expected = "more answers than tuples")]
    fn m_above_n_is_rejected() {
        let _ = output_controlled_database(&families::triangle(), 10, 11, 3);
    }
}
