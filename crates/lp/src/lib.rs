//! Exact linear programming for query hypergraphs.
//!
//! The MPC analysis of *Beame, Koutris & Suciu (PODS 2013)* is driven by the
//! **fractional covering number** `τ*(q)` of the query hypergraph: the
//! optimal value of the fractional vertex-cover LP (equivalently, by LP
//! duality, of the fractional edge-packing LP — Figure 1 of the paper).
//! The one-round space exponent is `ε*(q) = 1 − 1/τ*(q)` and the HyperCube
//! share exponents are read off an optimal vertex cover.
//!
//! Because these quantities are *exact rationals* (e.g. `τ*(C₃) = 3/2`,
//! share exponents `1/3`), this crate implements
//!
//! * [`Rational`]: exact rational arithmetic over `i128`,
//! * [`simplex`]: a small dense two-phase primal simplex solver with
//!   Bland's anti-cycling rule, kept as the slow, independent **oracle**,
//! * [`sparse`]: the production solver — a sparse revised simplex with an
//!   eta-factorised basis and steepest-edge/Bland pricing,
//! * [`families`]: certificate-checked **closed-form** optima for the
//!   recognised query families (cycles, chains, stars, `B_{k,m}`, spokes),
//! * [`cache`]: a process-wide memoising cache keyed by the query's
//!   canonical hypergraph signature,
//! * [`degree`]: the **degree-aware statistics LP** of BKS14 §5, which
//!   refines the share LP with per-relation cardinality and max-degree
//!   constraints (its cache keys include the statistics), and
//! * [`cover`]: builders and solvers for the vertex-cover, edge-packing and
//!   edge-cover LPs of a [`mpc_cq::Query`], plus duality/tightness checks.
//!
//! [`QueryLps::solve`] stacks those layers: closed form → cache hit →
//! sparse simplex (see its docs for the exact contract and how to bypass
//! the cache).
//!
//! # Example
//!
//! ```
//! use mpc_cq::families;
//! use mpc_lp::cover::QueryLps;
//! use mpc_lp::Rational;
//!
//! let c3 = families::cycle(3);
//! let lps = QueryLps::solve(&c3).unwrap();
//! assert_eq!(lps.covering_number(), Rational::new(3, 2));   // τ*(C3) = 3/2
//! assert_eq!(lps.vertex_cover().total(), lps.edge_packing().total()); // LP duality
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cover;
pub mod degree;
pub mod error;
pub mod families;
pub mod rational;
pub mod simplex;
pub mod sparse;

pub use cache::LpCache;
pub use cover::{QueryLps, SolverPath};
pub use degree::{solve_degree_lp, DegreeLpCache, DegreeShares, DegreeStatistics};
pub use error::LpError;
pub use rational::Rational;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, LpError>;
