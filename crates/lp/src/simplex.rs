//! A small dense two-phase primal simplex solver over exact rationals.
//!
//! This is the slow, independent **oracle** of the LP layer: a dense
//! tableau with exact [`Rational`] arithmetic and Bland's anti-cycling
//! rule, trivially auditable and used to validate the production sparse
//! revised simplex ([`crate::sparse`]) and the closed-form family solutions
//! ([`crate::families`]). All arithmetic is checked: adversarial inputs
//! that drive intermediate rationals past `i128` report
//! [`crate::LpError::Overflow`] instead of panicking.

use serde::{Deserialize, Serialize};

use crate::error::LpError;
use crate::rational::Rational;
use crate::Result;

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximise the cost vector.
    Maximize,
    /// Minimise the cost vector.
    Minimize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One linear constraint `coeffs · x  (≤ | ≥ | =)  rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraint {
    /// Coefficient of each structural variable.
    pub coeffs: Vec<Rational>,
    /// The comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: Rational,
}

/// A linear program over non-negative structural variables `x ≥ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearProgram {
    /// Optimisation direction.
    pub objective: Objective,
    /// Cost of each structural variable.
    pub costs: Vec<Rational>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution of a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Optimal objective value (in the original optimisation direction).
    pub objective_value: Rational,
    /// Optimal values of the structural variables.
    pub variables: Vec<Rational>,
}

impl LinearProgram {
    /// Create an LP with the given direction and costs and no constraints.
    pub fn new(objective: Objective, costs: Vec<Rational>) -> Self {
        LinearProgram { objective, costs, constraints: Vec::new() }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Add a constraint; returns `self` for chaining.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Malformed`] if the coefficient row width differs
    /// from the number of variables.
    pub fn constrain(
        mut self,
        coeffs: Vec<Rational>,
        op: ConstraintOp,
        rhs: Rational,
    ) -> Result<Self> {
        if coeffs.len() != self.costs.len() {
            return Err(LpError::Malformed(format!(
                "constraint has {} coefficients but the LP has {} variables",
                coeffs.len(),
                self.costs.len()
            )));
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
        Ok(self)
    }

    /// Solve the LP with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no feasible point exists,
    /// * [`LpError::Unbounded`] if the objective is unbounded,
    /// * [`LpError::Malformed`] if the LP has no variables.
    pub fn solve(&self) -> Result<LpSolution> {
        if self.costs.is_empty() {
            return Err(LpError::Malformed("LP has no variables".to_string()));
        }
        Tableau::build(self)?.solve(self)
    }
}

/// Internal simplex tableau.
struct Tableau {
    /// `rows[i]` = coefficients of every column for constraint `i`.
    rows: Vec<Vec<Rational>>,
    /// Right-hand sides (kept non-negative).
    rhs: Vec<Rational>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural variables.
    n_struct: usize,
    /// Total number of non-artificial columns (structural + slack/surplus).
    n_real: usize,
    /// Total number of columns including artificials.
    n_total: usize,
}

impl Tableau {
    /// Build the phase-1 tableau: slack/surplus columns plus one artificial
    /// variable per row (simple and uniformly correct for tiny LPs).
    fn build(lp: &LinearProgram) -> Result<Tableau> {
        let n_struct = lp.num_vars();
        let m = lp.constraints.len();
        let n_slack = lp
            .constraints
            .iter()
            .filter(|c| matches!(c.op, ConstraintOp::Le | ConstraintOp::Ge))
            .count();
        let n_real = n_struct + n_slack;
        let n_total = n_real + m;

        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);

        let mut slack_cursor = n_struct;
        for (i, c) in lp.constraints.iter().enumerate() {
            let mut row = vec![Rational::ZERO; n_total];
            for (j, coeff) in c.coeffs.iter().enumerate() {
                row[j] = *coeff;
            }
            let mut b = c.rhs;
            match c.op {
                ConstraintOp::Le => {
                    row[slack_cursor] = Rational::ONE;
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_cursor] = -Rational::ONE;
                    slack_cursor += 1;
                }
                ConstraintOp::Eq => {}
            }
            // Keep b ≥ 0 so the all-artificial basis is feasible.
            if b.is_negative() {
                for entry in row.iter_mut() {
                    *entry = -*entry;
                }
                b = -b;
            }
            // Artificial variable for this row.
            row[n_real + i] = Rational::ONE;
            rows.push(row);
            rhs.push(b);
            basis.push(n_real + i);
        }

        Ok(Tableau { rows, rhs, basis, n_struct, n_real, n_total })
    }

    fn solve(mut self, lp: &LinearProgram) -> Result<LpSolution> {
        // Phase 1: maximise −Σ artificials; feasible iff optimum is 0.
        let mut phase1_costs = vec![Rational::ZERO; self.n_total];
        for c in phase1_costs.iter_mut().skip(self.n_real) {
            *c = -Rational::ONE;
        }
        self.optimize(&phase1_costs, self.n_total)?;
        let phase1_value = self.objective_value(&phase1_costs)?;
        if !phase1_value.is_zero() {
            return Err(LpError::Infeasible);
        }
        self.evict_artificials()?;

        // Phase 2: optimise the real objective over non-artificial columns.
        let mut phase2_costs = vec![Rational::ZERO; self.n_total];
        let flip = matches!(lp.objective, Objective::Minimize);
        for (j, c) in lp.costs.iter().enumerate() {
            phase2_costs[j] = if flip { -*c } else { *c };
        }
        self.optimize(&phase2_costs, self.n_real)?;

        let mut variables = vec![Rational::ZERO; self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                variables[b] = self.rhs[i];
            }
        }
        let mut objective_value = Rational::ZERO;
        for (j, v) in variables.iter().enumerate() {
            objective_value = objective_value.checked_add(&lp.costs[j].checked_mul(v)?)?;
        }
        Ok(LpSolution { objective_value, variables })
    }

    /// Reduced cost of column `j` for the given cost vector.
    fn reduced_cost(&self, costs: &[Rational], j: usize) -> Result<Rational> {
        let mut z = Rational::ZERO;
        for (i, row) in self.rows.iter().enumerate() {
            let cb = costs[self.basis[i]];
            if !cb.is_zero() && !row[j].is_zero() {
                z = z.checked_add(&cb.checked_mul(&row[j])?)?;
            }
        }
        costs[j].checked_sub(&z)
    }

    fn objective_value(&self, costs: &[Rational]) -> Result<Rational> {
        let mut v = Rational::ZERO;
        for (i, &b) in self.basis.iter().enumerate() {
            if !costs[b].is_zero() {
                v = v.checked_add(&costs[b].checked_mul(&self.rhs[i])?)?;
            }
        }
        Ok(v)
    }

    /// Primal simplex iterations (maximisation) restricted to columns
    /// `0..allowed_cols`, with Bland's rule.
    fn optimize(&mut self, costs: &[Rational], allowed_cols: usize) -> Result<()> {
        // The number of bases is finite and Bland's rule prevents cycling,
        // but keep a generous safety bound against logic errors.
        let max_iters = 10_000 + 100 * (self.n_total + self.rows.len());
        for _ in 0..max_iters {
            // Entering column: smallest index with positive reduced cost.
            let mut entering = None;
            for j in 0..allowed_cols {
                if self.reduced_cost(costs, j)?.is_positive() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(entering) = entering else {
                return Ok(());
            };

            // Ratio test with Bland's tie-break (smallest basis index).
            let mut leaving: Option<(usize, Rational)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                if row[entering].is_positive() {
                    let ratio = self.rhs[i].checked_div(&row[entering])?;
                    let better = match &leaving {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leaving = Some((i, ratio));
                    }
                }
            }
            let Some((pivot_row, _)) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(pivot_row, entering)?;
        }
        Err(LpError::Malformed("simplex iteration limit exceeded".to_string()))
    }

    /// Pivot so that column `col` becomes basic in row `row`.
    fn pivot(&mut self, row: usize, col: usize) -> Result<()> {
        let pivot = self.rows[row][col];
        debug_assert!(!pivot.is_zero(), "pivot element must be non-zero");
        let inv = pivot.recip()?;
        for entry in self.rows[row].iter_mut() {
            *entry = entry.checked_mul(&inv)?;
        }
        self.rhs[row] = self.rhs[row].checked_mul(&inv)?;

        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor.is_zero() {
                continue;
            }
            for j in 0..self.n_total {
                if !self.rows[row][j].is_zero() {
                    let delta = factor.checked_mul(&self.rows[row][j])?;
                    self.rows[i][j] = self.rows[i][j].checked_sub(&delta)?;
                }
            }
            self.rhs[i] = self.rhs[i].checked_sub(&factor.checked_mul(&self.rhs[row])?)?;
        }
        self.basis[row] = col;
        Ok(())
    }

    /// After phase 1, pivot any artificial variable out of the basis, or
    /// drop its (redundant) row when that is impossible.
    fn evict_artificials(&mut self) -> Result<()> {
        let mut i = 0;
        while i < self.rows.len() {
            if self.basis[i] >= self.n_real {
                debug_assert!(self.rhs[i].is_zero(), "artificial basic at non-zero level");
                let replacement = (0..self.n_real).find(|&j| !self.rows[i][j].is_zero());
                match replacement {
                    Some(col) => {
                        self.pivot(i, col)?;
                        i += 1;
                    }
                    None => {
                        // Redundant row: remove it entirely.
                        self.rows.remove(i);
                        self.rhs.remove(i);
                        self.basis.remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn maximize_simple_le() {
        // max x + y  s.t. x ≤ 3, y ≤ 4, x + y ≤ 5  → 5.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(3, 1))
            .unwrap()
            .constrain(vec![r(0, 1), r(1, 1)], ConstraintOp::Le, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Le, r(5, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(5, 1));
        assert_eq!(sol.variables[0] + sol.variables[1], r(5, 1));
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // min x + y  s.t. x + 2y ≥ 4, 3x + y ≥ 6 → optimum 14/5 at (8/5, 6/5).
        let lp = LinearProgram::new(Objective::Minimize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(2, 1)], ConstraintOp::Ge, r(4, 1))
            .unwrap()
            .constrain(vec![r(3, 1), r(1, 1)], ConstraintOp::Ge, r(6, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(14, 5));
        assert_eq!(sol.variables, vec![r(8, 5), r(6, 5)]);
    }

    #[test]
    fn equality_constraints() {
        // max 2x + 3y  s.t. x + y = 4, x ≤ 3 → x=0..? optimum y=4, x=0 → 12.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(2, 1), r(3, 1)])
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Eq, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(3, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(12, 1));
        assert_eq!(sol.variables, vec![r(0, 1), r(4, 1)]);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap()
            .constrain(vec![r(1, 1)], ConstraintOp::Ge, r(2, 1))
            .unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x ≥ 1.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(1, 1)], ConstraintOp::Ge, r(1, 1))
            .unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // max x  s.t. −x ≤ −2  (i.e. x ≥ 2), x ≤ 5 → 5.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(-1, 1)], ConstraintOp::Le, r(-2, 1))
            .unwrap()
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(5, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(5, 1));
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // The C3 vertex-cover LP directly: min v1+v2+v3 with pairwise sums ≥ 1.
        let lp = LinearProgram::new(Objective::Minimize, vec![r(1, 1), r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(1, 1), r(0, 1)], ConstraintOp::Ge, r(1, 1))
            .unwrap()
            .constrain(vec![r(0, 1), r(1, 1), r(1, 1)], ConstraintOp::Ge, r(1, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(0, 1), r(1, 1)], ConstraintOp::Ge, r(1, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(3, 2));
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Redundant equalities exercise artificial eviction / row dropping.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Eq, r(2, 1))
            .unwrap()
            .constrain(vec![r(2, 1), r(2, 1)], ConstraintOp::Eq, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(2, 1))
            .unwrap();
        let sol = lp.solve().unwrap();
        assert_eq!(sol.objective_value, r(2, 1));
    }

    #[test]
    fn mismatched_constraint_width_rejected() {
        let err = LinearProgram::new(Objective::Maximize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap_err();
        assert!(matches!(err, LpError::Malformed(_)));
    }

    #[test]
    fn empty_lp_rejected() {
        let lp = LinearProgram::new(Objective::Maximize, vec![]);
        assert!(matches!(lp.solve().unwrap_err(), LpError::Malformed(_)));
    }

    #[test]
    fn adversarial_pivots_overflow_gracefully() {
        // Coefficients with huge pairwise-coprime denominators: the first
        // eliminations multiply the denominators together, exceeding i128.
        // The solver must report LpError::Overflow — not panic — for both
        // the dense tableau and the sparse revised simplex.
        let p: Vec<i128> = vec![
            1_000_000_000_000_000_000_000_000_000_057,
            1_000_000_000_000_000_000_000_000_000_061,
            1_000_000_000_000_000_000_000_000_000_063,
            1_000_000_000_000_000_000_000_000_000_069,
            1_000_000_000_000_000_000_000_000_000_073,
            1_000_000_000_000_000_000_000_000_000_077,
        ];
        let mut lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1); 3]);
        for i in 0..2 {
            lp = lp
                .constrain(
                    vec![r(1, p[3 * i]), r(1, p[3 * i + 1]), r(1, p[3 * i + 2])],
                    ConstraintOp::Le,
                    r(1, 1),
                )
                .unwrap();
        }
        let dense = lp.solve();
        assert!(
            matches!(dense, Err(LpError::Overflow(_))),
            "dense solver must surface overflow, got {dense:?}"
        );
        let sparse = lp.solve_sparse();
        assert!(
            matches!(sparse, Err(LpError::Overflow(_))),
            "sparse solver must surface overflow, got {sparse:?}"
        );
    }

    #[test]
    fn zero_objective_feasibility_check() {
        // Any feasible LP with zero costs solves to 0.
        let lp = LinearProgram::new(Objective::Maximize, vec![Rational::ZERO])
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(10, 1))
            .unwrap();
        assert_eq!(lp.solve().unwrap().objective_value, Rational::ZERO);
    }
}
