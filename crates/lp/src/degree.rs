//! The **degree-aware statistics LP** of Beame–Koutris–Suciu 2014, §5
//! (arXiv:1401.1872): share exponents that minimise the per-server load
//! given *statistics* — per-atom cardinalities **and per-(atom, variable)
//! maximum degrees** — rather than cardinalities alone.
//!
//! # The LP
//!
//! Fix a base `b` (the server count of the grid being planned) and write
//! every statistic as a `log_b` exponent: `ν_j = log_b |R_j|` and
//! `δ_{j,x} = log_b maxdeg_{j,x}` (the largest number of `R_j`-tuples
//! agreeing on one value of `x`). With shares `p_x = b^{e_x}`, atom `j`
//! sends `|R_j| / ∏_{x ∈ vars_j} p_x` tuples to a server **if hashing
//! balances** — but the tuples sharing one value of `x` cannot be split
//! along the `x` dimension, so `maxdeg_{j,x} / ∏_{y ∈ vars_j∖x} p_y` is a
//! floor no hash can beat. The statistics LP minimises the worst exponent:
//!
//! ```text
//! minimise t   subject to   Σ_x e_x ≤ 1,   e_x ≥ 0, and per atom j:
//!     ν_j     − Σ_{x ∈ vars_j}    e_x ≤ t          (cardinality)
//!     δ_{j,x} − Σ_{y ∈ vars_j∖x}  e_y ≤ t  ∀x      (degree)
//! ```
//!
//! Skew-free statistics (`δ_{j,x} ≤ ν_j − 1`, i.e. every degree is at
//! most `|R_j| / b`) make every degree constraint slack at any feasible
//! point, and the LP collapses to the classic share LP whose optimum is
//! the fractional-vertex-cover scaling `e_x = v_x / τ*` (see
//! [`solve_degree_lp`] for the duality argument). That is the **closed
//! form** tier; everything else is either a **cache hit** — the cache is
//! keyed on the canonical hypergraph signature *plus the canonically
//! transported statistics vectors*, so isomorphic residual plans across
//! rebuilds and sibling queries share one solve — or an exact **sparse
//! simplex** solve: the same three-tier ladder as [`crate::QueryLps`].
//!
//! Statistics are *rationalised* logs (see [`rational_log`]): the
//! rounding moves the optimum by at most the grid width, which affects
//! plan **quality** only — correctness of routing never depends on the
//! statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mpc_cq::signature::{atoms_to_canonical, vars_from_canonical, vars_to_canonical};
use mpc_cq::signature::{CanonicalForm, QuerySignature};
use mpc_cq::Query;

use crate::cover::SolverPath;
use crate::error::LpError;
use crate::rational::Rational;
use crate::simplex::{ConstraintOp, LinearProgram, Objective};
use crate::QueryLps;
use crate::Result;

/// Default capacity (distinct keys) of [`DegreeLpCache::global`].
const GLOBAL_CAPACITY: usize = 4096;

/// The statistics of one query instance, as `log_b` exponents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeStatistics {
    /// `cardinality[j] = ν_j`, one per atom.
    pub cardinality: Vec<Rational>,
    /// `degree[j][x] = δ_{j,x}`, one full-width row per atom (entries of
    /// variables not occurring in the atom are ignored; `0` means the
    /// column is key-like — at most `b⁰ = 1` tuple per value… per the
    /// rationalised grid).
    pub degree: Vec<Vec<Rational>>,
}

impl DegreeStatistics {
    /// Statistics with the given cardinality exponents and all-zero
    /// (key-like) degrees.
    pub fn cardinalities_only(q: &Query, cardinality: Vec<Rational>) -> Self {
        DegreeStatistics {
            cardinality,
            degree: vec![vec![Rational::ZERO; q.num_vars()]; q.num_atoms()],
        }
    }

    fn validate(&self, q: &Query) -> Result<()> {
        if self.cardinality.len() != q.num_atoms() || self.degree.len() != q.num_atoms() {
            return Err(LpError::Malformed(format!(
                "statistics cover {} atoms but {} has {}",
                self.cardinality.len(),
                q.name(),
                q.num_atoms()
            )));
        }
        if self.degree.iter().any(|row| row.len() != q.num_vars()) {
            return Err(LpError::Malformed(format!(
                "degree rows must be full-width ({} variables)",
                q.num_vars()
            )));
        }
        Ok(())
    }
}

/// An optimal solution of the statistics LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeShares {
    /// Share exponents `e_x`, one per variable; `Σ e_x ≤ 1`.
    pub exponents: Vec<Rational>,
    /// The optimal load exponent `t` (clamped at 0: loads below one tuple
    /// are not meaningful).
    pub load_exponent: Rational,
    /// Which solver tier answered.
    pub path: SolverPath,
}

/// `log_base(value)` rounded to the nearest multiple of
/// `1 / denominator`, clamped at 0. The rationalisation keeps the LP data
/// (and therefore the cache keys) exact and small; a denominator of 12–24
/// places the optimum within one grid step of the real-valued optimum,
/// which affects plan quality only.
pub fn rational_log(value: u64, base: usize, denominator: i128) -> Rational {
    if value <= 1 || base <= 1 {
        return Rational::ZERO;
    }
    let raw = (value as f64).ln() / (base as f64).ln();
    let num = (raw * denominator as f64).round() as i128;
    Rational::new(num.max(0), denominator)
}

/// Solve the degree-aware statistics LP through the process-global cache.
///
/// # Example
///
/// A chain join `S1(x0,x1) ⋈ S2(x1,x2)` where `S2` is a thousand times
/// larger than `S1`: the LP spends the whole share budget on `S2`'s
/// variables — unlike the cardinality-blind cover split, which would
/// waste share on `x0`.
///
/// ```
/// use mpc_lp::degree::{solve_degree_lp, rational_log, DegreeStatistics};
/// use mpc_lp::Rational;
///
/// let q = mpc_cq::families::chain(2);
/// let stats = DegreeStatistics::cardinalities_only(
///     &q,
///     vec![rational_log(8, 8, 12), rational_log(8000, 8, 12)],
/// );
/// let sol = solve_degree_lp(&q, &stats).unwrap();
/// let x0 = q.var_id("x0").unwrap();
/// assert_eq!(sol.exponents[x0.0], Rational::ZERO, "nothing on S1's private variable");
/// assert_eq!(sol.load_exponent, Rational::new(10, 3), "t = ν₂ − 1 = 13/3 − 1");
/// ```
///
/// # Errors
///
/// Rejects empty queries and malformed statistics; propagates simplex
/// errors (never observed for realistic sizes).
pub fn solve_degree_lp(q: &Query, stats: &DegreeStatistics) -> Result<DegreeShares> {
    solve_degree_lp_with_cache(DegreeLpCache::global(), q, stats)
}

/// Like [`solve_degree_lp`] but against a caller-supplied cache.
pub fn solve_degree_lp_with_cache(
    cache: &DegreeLpCache,
    q: &Query,
    stats: &DegreeStatistics,
) -> Result<DegreeShares> {
    if q.num_atoms() == 0 {
        return Err(LpError::Malformed("degree LP needs at least one atom".to_string()));
    }
    stats.validate(q)?;

    // Tier 1 — closed form. Uniform cardinalities with dominated degrees
    // reduce to the classic share LP: for ANY e with Σe ≤ 1, the optimal
    // fractional edge packing u (Σu = τ*) gives
    //   Σ_j u_j · (Σ_{x ∈ vars_j} e_x) ≤ Σ_x e_x · Σ_{j ∋ x} u_j ≤ Σ_x e_x ≤ 1,
    // so min_j Σ_{x ∈ vars_j} e_x ≤ 1/τ* and t ≥ ν − 1/τ*; the cover
    // scaling e_x = v_x/τ* attains it. Dominated degrees (δ ≤ ν − 1)
    // keep every degree constraint below that optimum:
    //   δ_{j,x} − Σ_{y ≠ x} e_y ≤ ν − 1 ≤ ν − 1/τ*.
    let nu0 = stats.cardinality[0];
    let uniform = stats.cardinality.iter().all(|nu| *nu == nu0);
    let dominated =
        q.atoms().iter().zip(&stats.degree).all(|(atom, row)| {
            atom.distinct_vars().iter().all(|v| row[v.0] <= nu0 - Rational::ONE)
        });
    if uniform && dominated {
        let lps = QueryLps::solve(q)?;
        let tau = lps.covering_number();
        let exponents = lps
            .vertex_cover()
            .weights()
            .iter()
            .map(|v| v.checked_div(&tau))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let t = (nu0 - tau.recip()?).max(Rational::ZERO);
        debug_assert!(is_feasible(q, stats, &exponents, t), "closed form must be feasible");
        return Ok(DegreeShares { exponents, load_exponent: t, path: SolverPath::ClosedForm });
    }

    // Tier 2 — cache, keyed on (canonical signature, canonical statistics).
    let cf = q.canonical_form();
    let key = canonical_key(&cf, stats);
    if let Some((canon_exps, t)) = cache.lookup(&key) {
        let exponents = vars_from_canonical(&cf, &canon_exps);
        if is_feasible(q, stats, &exponents, t) {
            return Ok(DegreeShares { exponents, load_exponent: t, path: SolverPath::CacheHit });
        }
        // A transported solution failing feasibility would be a canonical-
        // labelling bug; fall through to the simplex rather than panic.
    }

    // Tier 3 — sparse simplex, in shifted ≤-form so the origin is
    // feasible: with C = max statistic and z = C − t, maximise z s.t.
    //   z − Σ_{x ∈ vars_j} e_x ≤ C − ν_j,
    //   z − Σ_{y ∈ vars_j∖x} e_y ≤ C − δ_{j,x}   (only rows with δ > 0:
    //     a zero δ is vacuous once t is clamped at 0),
    //   Σ e_x ≤ 1.
    let k = q.num_vars();
    let mut big_c = Rational::ZERO;
    for (j, atom) in q.atoms().iter().enumerate() {
        big_c = big_c.max(stats.cardinality[j]);
        for v in atom.distinct_vars() {
            big_c = big_c.max(stats.degree[j][v.0]);
        }
    }
    let mut obj = vec![Rational::ZERO; k + 1];
    obj[0] = Rational::ONE;
    let mut lp = LinearProgram::new(Objective::Maximize, obj);
    for (j, atom) in q.atoms().iter().enumerate() {
        let vars = atom.distinct_vars();
        let mut row = vec![Rational::ZERO; k + 1];
        row[0] = Rational::ONE;
        for v in &vars {
            row[v.0 + 1] = -Rational::ONE;
        }
        lp = lp.constrain(row, ConstraintOp::Le, big_c - stats.cardinality[j])?;
        for x in &vars {
            if !stats.degree[j][x.0].is_positive() {
                continue;
            }
            let mut row = vec![Rational::ZERO; k + 1];
            row[0] = Rational::ONE;
            for y in &vars {
                if y != x {
                    row[y.0 + 1] = -Rational::ONE;
                }
            }
            lp = lp.constrain(row, ConstraintOp::Le, big_c - stats.degree[j][x.0])?;
        }
    }
    let mut budget = vec![Rational::ONE; k + 1];
    budget[0] = Rational::ZERO;
    lp = lp.constrain(budget, ConstraintOp::Le, Rational::ONE)?;

    let sol = lp.solve_sparse()?;
    let exponents: Vec<Rational> = sol.variables[1..].to_vec();
    let t = (big_c - sol.variables[0]).max(Rational::ZERO);
    if !is_feasible(q, stats, &exponents, t) {
        return Err(LpError::Malformed(format!(
            "degree LP solution infeasible for {} (solver bug)",
            q.name()
        )));
    }
    cache.insert(key, vars_to_canonical(&cf, &exponents), t);
    Ok(DegreeShares { exponents, load_exponent: t, path: SolverPath::SparseSimplex })
}

/// Do `(exponents, t)` satisfy every constraint of the statistics LP?
pub fn is_feasible(
    q: &Query,
    stats: &DegreeStatistics,
    exponents: &[Rational],
    t: Rational,
) -> bool {
    if exponents.len() != q.num_vars() || exponents.iter().any(Rational::is_negative) {
        return false;
    }
    let total = exponents.iter().fold(Rational::ZERO, |acc, e| acc + *e);
    if total > Rational::ONE {
        return false;
    }
    q.atoms().iter().enumerate().all(|(j, atom)| {
        let vars = atom.distinct_vars();
        let sum = vars.iter().fold(Rational::ZERO, |acc, v| acc + exponents[v.0]);
        if stats.cardinality[j] - sum > t {
            return false;
        }
        vars.iter().all(|x| {
            if !stats.degree[j][x.0].is_positive() {
                return true;
            }
            let rest = sum - exponents[x.0];
            stats.degree[j][x.0] - rest <= t
        })
    })
}

type CacheKey = (QuerySignature, Vec<Rational>, Vec<Vec<Rational>>);

fn canonical_key(cf: &CanonicalForm, stats: &DegreeStatistics) -> CacheKey {
    let nu = atoms_to_canonical(cf, &stats.cardinality);
    let rows: Vec<Vec<Rational>> =
        stats.degree.iter().map(|row| vars_to_canonical(cf, row)).collect();
    let delta = atoms_to_canonical(cf, &rows);
    (cf.signature.clone(), nu, delta)
}

/// A bounded, thread-safe memo table for solved degree LPs, keyed on the
/// canonical hypergraph signature **plus the canonically transported
/// statistics** — two isomorphic residual plans share an entry only when
/// their (rationalised) statistics agree too.
pub struct DegreeLpCache {
    entries: Mutex<HashMap<CacheKey, (Vec<Rational>, Rational)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl DegreeLpCache {
    /// An empty cache holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        DegreeLpCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide cache used by [`solve_degree_lp`].
    pub fn global() -> &'static DegreeLpCache {
        static GLOBAL: OnceLock<DegreeLpCache> = OnceLock::new();
        GLOBAL.get_or_init(|| DegreeLpCache::new(GLOBAL_CAPACITY))
    }

    fn lookup(&self, key: &CacheKey) -> Option<(Vec<Rational>, Rational)> {
        let entries = self.entries.lock().expect("degree lp cache poisoned");
        match entries.get(key) {
            Some(hit) => {
                let out = hit.clone();
                drop(entries);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                drop(entries);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, canonical_exponents: Vec<Rational>, t: Rational) {
        let mut entries = self.entries.lock().expect("degree lp cache poisoned");
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            entries.clear();
        }
        entries.insert(key, (canonical_exponents, t));
    }

    /// Current counters.
    pub fn stats(&self) -> crate::cache::CacheStats {
        crate::cache::CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("degree lp cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn uniform_keylike_statistics_take_the_closed_form() {
        // Matching-style statistics: every atom has ν = 1, every degree 0.
        let q = families::cycle(3);
        let stats = DegreeStatistics::cardinalities_only(&q, vec![Rational::ONE; 3]);
        let sol = solve_degree_lp(&q, &stats).unwrap();
        assert_eq!(sol.path, SolverPath::ClosedForm);
        assert_eq!(sol.exponents, vec![r(1, 3); 3], "cover scaling v/τ*");
        assert_eq!(sol.load_exponent, r(1, 3), "t = 1 − 1/τ* = 1/3");
    }

    #[test]
    fn heavy_degree_shifts_the_shares() {
        // Triangle with a high max degree on x1 in S1: partitioning along
        // x1 cannot split those tuples, so the LP moves share off x1.
        let q = families::cycle(3);
        let x1 = q.var_id("x1").unwrap();
        let mut stats = DegreeStatistics::cardinalities_only(&q, vec![Rational::ONE; 3]);
        // S1 is the atom containing x1 in first position; give x1 degree
        // ν (one value carries the whole relation) in every atom it
        // touches, so e_{x1} earns nothing.
        for (j, atom) in q.atoms().iter().enumerate() {
            if atom.distinct_vars().contains(&x1) {
                stats.degree[j][x1.0] = Rational::ONE;
            }
        }
        let sol = solve_degree_lp(&q, &stats).unwrap();
        assert_eq!(sol.path, SolverPath::SparseSimplex);
        assert!(is_feasible(&q, &stats, &sol.exponents, sol.load_exponent));
        // With degree ν on x1, t ≥ ν − Σ_{y≠x1} e_y; the optimum stops
        // spending on x1 entirely.
        assert!(sol.exponents[x1.0].is_zero(), "no share on the degenerate dimension");
        // And the optimum is strictly worse than the skew-free 1/3.
        assert!(sol.load_exponent > r(1, 3));
    }

    #[test]
    fn cardinality_asymmetry_beats_the_cover_split() {
        // chain(2): S1 tiny (ν = 1/3), S2 at ν = 1. Spending the budget on
        // S2's variables drives the load all the way to zero (e.g.
        // e_{x1} = 1 covers both atoms), which no cover split achieves.
        let q = families::chain(2);
        let stats = DegreeStatistics::cardinalities_only(&q, vec![r(1, 3), Rational::ONE]);
        let sol = solve_degree_lp(&q, &stats).unwrap();
        assert!(is_feasible(&q, &stats, &sol.exponents, sol.load_exponent));
        assert_eq!(sol.load_exponent, Rational::ZERO, "statistics-aware optimum");
    }

    #[test]
    fn isomorphic_instances_with_equal_stats_hit_the_cache() {
        let cache = DegreeLpCache::new(16);
        let q = families::cycle(4);
        let mut stats = DegreeStatistics::cardinalities_only(&q, vec![Rational::ONE; 4]);
        stats.degree[0][q.var_id("x1").unwrap().0] = Rational::ONE; // force simplex
        let a = solve_degree_lp_with_cache(&cache, &q, &stats).unwrap();
        assert_eq!(a.path, SolverPath::SparseSimplex);
        let b = solve_degree_lp_with_cache(&cache, &q, &stats).unwrap();
        assert_eq!(b.path, SolverPath::CacheHit);
        assert_eq!(a.exponents, b.exponents);
        assert_eq!(cache.stats().hits, 1);
        // Different statistics, same hypergraph → NOT a hit.
        stats.degree[0][q.var_id("x1").unwrap().0] = r(1, 2);
        let c = solve_degree_lp_with_cache(&cache, &q, &stats).unwrap();
        assert_eq!(c.path, SolverPath::SparseSimplex, "stats are part of the key");
    }

    #[test]
    fn rational_log_rounds_to_the_grid() {
        assert_eq!(rational_log(8, 8, 12), Rational::ONE);
        assert_eq!(rational_log(1, 8, 12), Rational::ZERO);
        assert_eq!(rational_log(0, 8, 12), Rational::ZERO);
        assert_eq!(rational_log(64, 8, 12), r(2, 1));
        // √8 → 1/2 exactly on the 12-grid.
        assert_eq!(rational_log(3, 9, 12), r(1, 2));
        assert_eq!(rational_log(5, 1, 12), Rational::ZERO, "base 1 has no exponents");
    }

    #[test]
    fn degenerate_and_malformed_inputs_are_rejected() {
        let q = families::chain(2);
        let short = DegreeStatistics { cardinality: vec![Rational::ONE], degree: vec![] };
        assert!(solve_degree_lp(&q, &short).is_err());
        let ragged = DegreeStatistics {
            cardinality: vec![Rational::ONE; 2],
            degree: vec![vec![Rational::ZERO; 1]; 2],
        };
        assert!(solve_degree_lp(&q, &ragged).is_err());
    }

    #[test]
    fn single_atom_queries_solve() {
        // One atom R(x,y), ν = 1: spread over both variables, t = 0.
        let q = mpc_cq::Query::new("one", vec![("R", vec!["x", "y"])]).unwrap();
        let stats = DegreeStatistics::cardinalities_only(&q, vec![Rational::ONE]);
        let sol = solve_degree_lp(&q, &stats).unwrap();
        assert_eq!(sol.load_exponent, Rational::ZERO, "ν − 1 = 0 with the whole budget");
    }
}
