//! A memoising cache for solved query LPs.
//!
//! The LP triple of a query depends only on its hypergraph *up to variable
//! and atom renaming*, so the cache is keyed by the **canonical hypergraph
//! signature** of [`mpc_cq::signature`] and stores the optimal weight
//! vectors in canonical coordinates. A lookup transports the cached
//! vectors back through the querying query's own canonical maps, so
//! isomorphic queries — repeated experiment sweeps, multi-round subplans,
//! the one-cover-LP-per-heavy-subset enumeration of the skew-resilient
//! planner — all share a single solve.
//!
//! The cache is bounded (when full, the next *new* signature flushes it —
//! the working sets of this workspace are far below the bound) and fully
//! thread-safe; [`LpCache::global`] is the process-wide instance used by
//! [`crate::QueryLps::solve`], and independent instances can be created
//! for isolation (tests, one-off sweeps).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mpc_cq::signature::{
    atoms_from_canonical, atoms_to_canonical, vars_from_canonical, vars_to_canonical,
    CanonicalForm, QuerySignature,
};

use crate::cover::{EdgeCover, EdgePacking, QueryLps, VertexCover};
use crate::rational::Rational;

/// Default capacity (distinct signatures) of [`LpCache::global`].
const GLOBAL_CAPACITY: usize = 4096;

/// A solved LP triple in canonical coordinates.
struct CachedEntry {
    cover: Vec<Rational>,
    packing: Vec<Rational>,
    edge_cover: Vec<Rational>,
}

/// Cache observability counters (monotonic since process start for the
/// global instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solver.
    pub misses: u64,
    /// Signatures currently stored.
    pub entries: usize,
}

/// A bounded, thread-safe memo table from canonical hypergraph signatures
/// to solved LP triples.
pub struct LpCache {
    entries: Mutex<HashMap<QuerySignature, CachedEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl LpCache {
    /// Create an empty cache holding at most `capacity` signatures.
    pub fn new(capacity: usize) -> Self {
        LpCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide cache used by [`QueryLps::solve`].
    pub fn global() -> &'static LpCache {
        static GLOBAL: OnceLock<LpCache> = OnceLock::new();
        GLOBAL.get_or_init(|| LpCache::new(GLOBAL_CAPACITY))
    }

    /// Look up the LP triple of the query whose canonical form is `cf`,
    /// transporting the canonical-space vectors back to the query's own
    /// variable/atom numbering. Updates the hit/miss counters.
    pub fn lookup(&self, cf: &CanonicalForm) -> Option<QueryLps> {
        let entries = self.entries.lock().expect("lp cache poisoned");
        let Some(entry) = entries.get(&cf.signature) else {
            drop(entries);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let cover = VertexCover::from_weights(vars_from_canonical(cf, &entry.cover)).ok()?;
        let packing = EdgePacking::from_weights(atoms_from_canonical(cf, &entry.packing)).ok()?;
        let edge_cover =
            EdgeCover::from_weights(atoms_from_canonical(cf, &entry.edge_cover)).ok()?;
        drop(entries);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(QueryLps::from_parts(cover, packing, edge_cover))
    }

    /// Store a solved triple under the query's canonical form.
    pub fn insert(&self, cf: &CanonicalForm, lps: &QueryLps) {
        let entry = CachedEntry {
            cover: vars_to_canonical(cf, lps.vertex_cover().weights()),
            packing: atoms_to_canonical(cf, lps.edge_packing().weights()),
            edge_cover: atoms_to_canonical(cf, lps.edge_cover().weights()),
        };
        let mut entries = self.entries.lock().expect("lp cache poisoned");
        if entries.len() >= self.capacity && !entries.contains_key(&cf.signature) {
            entries.clear();
        }
        entries.insert(cf.signature.clone(), entry);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("lp cache poisoned").len(),
        }
    }

    /// Drop every stored signature (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("lp cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::QueryLps;
    use mpc_cq::families;

    /// A triangle with a pendant path of `tail` extra edges — connected,
    /// not isomorphic to any recognised family, distinct per `tail`.
    fn tailed_triangle(tail: usize) -> mpc_cq::Query {
        let mut atoms = vec![
            ("S1".to_string(), vec!["a".to_string(), "b".to_string()]),
            ("S2".to_string(), vec!["b".to_string(), "c".to_string()]),
            ("S3".to_string(), vec!["c".to_string(), "a".to_string()]),
        ];
        for j in 0..tail {
            atoms.push((format!("P{j}"), vec![format!("t{j}"), format!("t{}", j + 1)]));
        }
        if tail > 0 {
            atoms.push(("B".to_string(), vec!["a".to_string(), "t0".to_string()]));
        }
        mpc_cq::Query::new(format!("TT{tail}"), atoms).unwrap()
    }

    #[test]
    fn cold_then_warm() {
        let cache = LpCache::new(16);
        let q = tailed_triangle(2);
        let (first, path1) = QueryLps::solve_with_cache(&cache, &q).unwrap();
        let (second, path2) = QueryLps::solve_with_cache(&cache, &q).unwrap();
        assert_eq!(path1, crate::SolverPath::SparseSimplex);
        assert_eq!(path2, crate::SolverPath::CacheHit);
        assert_eq!(first.covering_number(), second.covering_number());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn family_queries_bypass_the_cache() {
        // Closed forms are cheaper than cache hits, so recognised families
        // never touch the cache at all.
        let cache = LpCache::new(16);
        let (_, path) = QueryLps::solve_with_cache(&cache, &families::cycle(5)).unwrap();
        assert_eq!(path, crate::SolverPath::ClosedForm);
        let (_, path) = QueryLps::solve_with_cache(&cache, &families::cycle(5)).unwrap();
        assert_eq!(path, crate::SolverPath::ClosedForm);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn isomorphic_queries_share_an_entry() {
        let cache = LpCache::new(16);
        // The witness query is asymmetric enough for full canonicalisation,
        // and not a recognised family, so both solves exercise simplex+cache.
        let q = families::witness_query();
        let renamed = mpc_cq::Query::new(
            "W2",
            vec![
                ("T2", vec!["d"]),
                ("U3", vec!["c", "d"]),
                ("U2", vec!["b", "c"]),
                ("U1", vec!["a", "b"]),
                ("T1", vec!["a"]),
            ],
        )
        .unwrap();
        let (lps1, path1) = QueryLps::solve_with_cache(&cache, &q).unwrap();
        let (lps2, path2) = QueryLps::solve_with_cache(&cache, &renamed).unwrap();
        assert_eq!(path1, crate::SolverPath::SparseSimplex);
        assert_eq!(path2, crate::SolverPath::CacheHit, "renamed copy must hit");
        assert_eq!(lps1.covering_number(), lps2.covering_number());
        // The transported solutions must be feasible for *their* query.
        assert!(lps2.vertex_cover().is_valid_for(&renamed));
        assert!(lps2.edge_packing().is_valid_for(&renamed));
        assert!(lps2.edge_cover().is_valid_for(&renamed));
    }

    #[test]
    fn capacity_flush_keeps_working() {
        let cache = LpCache::new(2);
        for tail in 1..6usize {
            QueryLps::solve_with_cache(&cache, &tailed_triangle(tail)).unwrap();
        }
        assert!(cache.stats().entries <= 2);
        QueryLps::solve_with_cache(&cache, &tailed_triangle(5)).unwrap();
        assert!(cache.stats().hits >= 1, "the just-inserted entry must serve");
    }
}
