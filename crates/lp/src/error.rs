//! Error type for the LP layer.

use std::fmt;

/// Errors raised by rational arithmetic and the simplex solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A rational operation overflowed `i128`.
    Overflow(&'static str),
    /// Division by zero (or a rational with zero denominator).
    DivisionByZero,
    /// The LP is infeasible: no point satisfies all constraints.
    Infeasible,
    /// The LP is unbounded in the optimization direction.
    Unbounded,
    /// The LP was malformed (e.g. a constraint row of the wrong width).
    Malformed(String),
    /// A query-level LP construction failed (propagated from `mpc-cq`).
    Query(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Overflow(op) => write!(f, "rational overflow during {op}"),
            LpError::DivisionByZero => write!(f, "division by zero"),
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Malformed(msg) => write!(f, "malformed linear program: {msg}"),
            LpError::Query(msg) => write!(f, "query error: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

impl From<mpc_cq::CqError> for LpError {
    fn from(e: mpc_cq::CqError) -> Self {
        LpError::Query(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::Overflow("mul").to_string().contains("mul"));
    }
}
