//! Closed-form optimal LP solutions for the recognised query families.
//!
//! For the paper's running families the optimal fractional vertex cover,
//! edge packing and edge cover are known analytically (Table 1):
//!
//! | family | cover | packing | τ* | edge cover |
//! |--------|-------|---------|----|------------|
//! | `C_k`  | all ½ | all ½ | `k/2` | all ½ |
//! | `L_k`  | 1 on odd path positions | 1 on odd atoms | `⌈k/2⌉` | odd atoms (+ last if `k` even) |
//! | `T_k`  | 1 on the centre | 1 on one ray | `1` | 1 on every ray |
//! | `B_{k,m}` | all `1/m` | all `1/C(k−1,m−1)` | `k/m` | all `1/C(k−1,m−1)` |
//! | `SP_k` | 1 on each `x_i` | 1 on each `S_i` | `k` | each `S_i` + one `R` |
//!
//! [`closed_form`] recognises the family via
//! [`mpc_cq::families::recognize`] and then **certifies** the analytic
//! solution at runtime before returning it: the cover and packing must be
//! feasible with equal totals (weak duality then proves both optimal), and
//! the edge cover must be feasible with a feasible dual vertex-weighting of
//! the same total. Certification is `O(nnz)` — far cheaper than a simplex
//! solve — and means a recognition bug can only ever cost performance
//! (falling back to the simplex path), never correctness.

use mpc_cq::families::{recognize, RecognizedFamily};
use mpc_cq::Query;

use crate::cover::{EdgeCover, EdgePacking, QueryLps, VertexCover};
use crate::rational::Rational;

/// The binomial coefficient `C(k, m)` as `i128` (parameters are
/// pre-validated by the recogniser, which caps the atom count).
fn choose(k: usize, m: usize) -> i128 {
    let m = m.min(k - m);
    let mut c: i128 = 1;
    for i in 0..m {
        c = c * (k - i) as i128 / (i as i128 + 1);
    }
    c
}

/// The analytic weight vectors of a recognised family:
/// `(cover, packing, edge_cover, edge_cover_dual_certificate)`.
#[allow(clippy::type_complexity)]
fn analytic_weights(
    q: &Query,
    family: &RecognizedFamily,
) -> (Vec<Rational>, Vec<Rational>, Vec<Rational>, Vec<Rational>) {
    let k_vars = q.num_vars();
    let l_atoms = q.num_atoms();
    let mut cover = vec![Rational::ZERO; k_vars];
    let mut packing = vec![Rational::ZERO; l_atoms];
    let mut edge_cover = vec![Rational::ZERO; l_atoms];
    let mut certificate = vec![Rational::ZERO; k_vars];
    match family {
        RecognizedFamily::Chain { k, var_order, atom_order } => {
            for (pos, v) in var_order.iter().enumerate() {
                if pos % 2 == 1 {
                    cover[v.0] = Rational::ONE;
                } else {
                    certificate[v.0] = Rational::ONE;
                }
            }
            for (idx, a) in atom_order.iter().enumerate() {
                if (idx + 1) % 2 == 1 {
                    packing[a.0] = Rational::ONE;
                    edge_cover[a.0] = Rational::ONE;
                }
            }
            if k % 2 == 0 {
                edge_cover[atom_order[k - 1].0] = Rational::ONE;
            }
        }
        RecognizedFamily::Cycle { .. } => {
            let half = Rational::new(1, 2);
            cover = vec![half; k_vars];
            packing = vec![half; l_atoms];
            edge_cover = vec![half; l_atoms];
            certificate = vec![half; k_vars];
        }
        RecognizedFamily::Star { center, .. } => {
            cover[center.0] = Rational::ONE;
            packing[0] = Rational::ONE;
            edge_cover = vec![Rational::ONE; l_atoms];
            for v in q.var_ids() {
                if v != *center {
                    certificate[v.0] = Rational::ONE;
                }
            }
        }
        RecognizedFamily::Binomial { k, m } => {
            let inv_m = Rational::new(1, *m as i128);
            let per_var = Rational::new(1, choose(k - 1, m - 1));
            cover = vec![inv_m; k_vars];
            packing = vec![per_var; l_atoms];
            edge_cover = vec![per_var; l_atoms];
            certificate = vec![inv_m; k_vars];
        }
        RecognizedFamily::Spoke { center, arms, .. } => {
            certificate[center.0] = Rational::ONE;
            for (r, s, x, y) in arms {
                cover[x.0] = Rational::ONE;
                packing[s.0] = Rational::ONE;
                edge_cover[s.0] = Rational::ONE;
                certificate[y.0] = Rational::ONE;
                let _ = r;
            }
            edge_cover[arms[0].0 .0] = Rational::ONE;
        }
    }
    (cover, packing, edge_cover, certificate)
}

/// Is `y` a feasible dual of the edge-cover LP (non-negative vertex
/// weights with per-atom sums at most 1) of total exactly `target`?
fn vertex_weighting_certifies(q: &Query, y: &[Rational], target: Rational) -> bool {
    if y.len() != q.num_vars() || y.iter().any(Rational::is_negative) {
        return false;
    }
    let feasible = q.atom_ids().all(|a| {
        let vars = q.vars_of_atom(a).expect("atom id from the query itself");
        let sum = vars.iter().fold(Rational::ZERO, |acc, v| acc + y[v.0]);
        sum <= Rational::ONE
    });
    feasible && Rational::sum(y.iter()).map(|t| t == target).unwrap_or(false)
}

/// The certified closed-form LP triple of a recognised family, or `None`
/// when the query matches no family (or — never observed, and guarded by a
/// debug assertion — a certificate fails, in which case the caller falls
/// back to simplex).
pub fn closed_form(q: &Query) -> Option<(String, QueryLps)> {
    let family = recognize(q)?;
    let (cover_w, packing_w, edge_cover_w, certificate) = analytic_weights(q, &family);
    let cover = VertexCover::from_weights(cover_w).ok()?;
    let packing = EdgePacking::from_weights(packing_w).ok()?;
    let edge_cover = EdgeCover::from_weights(edge_cover_w).ok()?;
    let primal_dual_ok =
        cover.is_valid_for(q) && packing.is_valid_for(q) && cover.total() == packing.total();
    let edge_cover_ok = edge_cover.is_valid_for(q)
        && vertex_weighting_certifies(q, &certificate, edge_cover.total());
    if !(primal_dual_ok && edge_cover_ok) {
        debug_assert!(
            false,
            "closed-form certificate failed for {} recognised as {}",
            q.name(),
            family.display_name()
        );
        return None;
    }
    Some((family.display_name(), QueryLps::from_parts(cover, packing, edge_cover)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn closed_forms_match_table_1() {
        let cases: Vec<(mpc_cq::Query, Rational)> = vec![
            (families::cycle(3), r(3, 2)),
            (families::cycle(4), r(2, 1)),
            (families::cycle(9), r(9, 2)),
            (families::chain(3), r(2, 1)),
            (families::chain(8), r(4, 1)),
            (families::star(5), r(1, 1)),
            (families::binomial(5, 2).unwrap(), r(5, 2)),
            (families::binomial(6, 3).unwrap(), r(2, 1)),
            (families::spoke(4), r(4, 1)),
        ];
        for (q, tau) in cases {
            let (name, lps) = closed_form(&q).unwrap_or_else(|| panic!("{} closed form", q.name()));
            assert_eq!(lps.covering_number(), tau, "{name}");
            assert_eq!(lps.vertex_cover().total(), lps.edge_packing().total(), "{name}");
            assert!(lps.vertex_cover().is_valid_for(&q), "{name}");
            assert!(lps.edge_packing().is_valid_for(&q), "{name}");
            assert!(lps.edge_cover().is_valid_for(&q), "{name}");
        }
    }

    #[test]
    fn closed_form_edge_covers_are_optimal() {
        // Cross-check the edge-cover values against the dense oracle.
        for q in [
            families::cycle(5),
            families::chain(4),
            families::chain(5),
            families::star(3),
            families::binomial(4, 2).unwrap(),
            families::spoke(3),
        ] {
            let (_, closed) = closed_form(&q).unwrap();
            let oracle = crate::cover::solve_edge_cover(&q).unwrap();
            assert_eq!(closed.edge_cover().total(), oracle.total(), "{}", q.name());
        }
    }

    #[test]
    fn unrecognised_queries_have_no_closed_form() {
        assert!(closed_form(&families::witness_query()).is_none());
    }

    #[test]
    fn renamed_families_still_get_closed_forms() {
        let q = mpc_cq::Query::new(
            "Zig",
            vec![("A", vec!["p", "q"]), ("B", vec!["q", "r"]), ("C", vec!["r", "p"])],
        )
        .unwrap();
        let (name, lps) = closed_form(&q).unwrap();
        assert_eq!(name, "C3");
        assert_eq!(lps.covering_number(), r(3, 2));
    }
}
