//! Exact rational arithmetic over `i128`.
//!
//! The fractional covering numbers, vertex covers and share exponents of
//! the paper are small rationals (denominators bounded by the query size),
//! so `i128` arithmetic with eager normalisation never overflows in
//! practice; all operations are nevertheless checked and report
//! [`LpError::Overflow`] instead of wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::LpError;
use crate::Result;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rational {
    /// The rational 0.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalising sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`. Use [`Rational::checked_new`] for a fallible
    /// variant.
    pub fn new(num: i128, den: i128) -> Rational {
        Self::checked_new(num, den).expect("denominator must be non-zero")
    }

    /// Construct `num / den`, returning an error when `den == 0`.
    pub fn checked_new(num: i128, den: i128) -> Result<Rational> {
        if den == 0 {
            return Err(LpError::DivisionByZero);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num, den);
        if g == 0 {
            return Ok(Rational::ZERO);
        }
        Ok(Rational { num: num / g, den: den / g })
    }

    /// The integer `n` as a rational.
    pub fn from_int(n: i64) -> Rational {
        Rational { num: n as i128, den: 1 }
    }

    /// Numerator (after normalisation; carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Convert to `f64` (used only for reporting and plotting; all decisions
    /// are made on exact values).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DivisionByZero`] if the value is zero.
    pub fn recip(&self) -> Result<Rational> {
        Rational::checked_new(self.den, self.num)
    }

    /// Checked addition, normalising via the GCD of the denominators
    /// *before* multiplying: `a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g))`
    /// with `g = gcd(b, d)`. This keeps the intermediates minimal — the
    /// difference between finishing and overflowing on long simplex pivot
    /// sequences.
    pub fn checked_add(&self, other: &Rational) -> Result<Rational> {
        let g = gcd(self.den, other.den).max(1);
        let (rb, rd) = (self.den / g, other.den / g);
        let num = self
            .num
            .checked_mul(rd)
            .and_then(|a| other.num.checked_mul(rb).and_then(|b| a.checked_add(b)))
            .ok_or(LpError::Overflow("add"))?;
        let den = self.den.checked_mul(rd).ok_or(LpError::Overflow("add"))?;
        Rational::checked_new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Rational) -> Result<Rational> {
        self.checked_add(&(-*other))
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, other: &Rational) -> Result<Rational> {
        // Cross-reduce first to keep the intermediate products small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(other.num / g2).ok_or(LpError::Overflow("mul"))?;
        let den = (self.den / g2).checked_mul(other.den / g1).ok_or(LpError::Overflow("mul"))?;
        Rational::checked_new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Rational) -> Result<Rational> {
        self.checked_mul(&other.recip()?)
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Ceiling of the rational as an integer.
    pub fn ceil(&self) -> i128 {
        if self.num >= 0 {
            (self.num + self.den - 1) / self.den
        } else {
            self.num / self.den
        }
    }

    /// Floor of the rational as an integer.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Sum an iterator of rationals.
    ///
    /// # Errors
    ///
    /// Propagates overflow errors.
    pub fn sum<'a, I: IntoIterator<Item = &'a Rational>>(iter: I) -> Result<Rational> {
        let mut acc = Rational::ZERO;
        for r in iter {
            acc = acc.checked_add(r)?;
        }
        Ok(acc)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact overflow-free comparison of `a/b` and `c/d` (`b, d > 0`) by
/// Euclidean descent on the continued-fraction expansions: equal integer
/// parts reduce the problem to comparing the reciprocals of the remainders,
/// whose denominators strictly shrink.
fn cmp_fractions(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    let (q1, r1) = (a.div_euclid(b), a.rem_euclid(b));
    let (q2, r2) = (c.div_euclid(d), c.rem_euclid(d));
    match q1.cmp(&q2) {
        Ordering::Equal => match (r1 == 0, r2 == 0) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            // r1/b vs r2/d  ==  d/r2 vs b/r1 (taking reciprocals of values
            // in (0,1) flips the order twice).
            (false, false) => cmp_fractions(d, r2, b, r1),
        },
        unequal => unequal,
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a·d ? c·b  (b, d > 0) — with an exact
        // Euclidean-descent fallback when the cross products would
        // overflow i128 (long simplex runs produce large entries; a
        // wrapped comparison would corrupt pivoting silently).
        match (self.num.checked_mul(other.den), other.num.checked_mul(self.den)) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => cmp_fractions(self.num, self.den, other.num, other.den),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

// The panicking operators are provided for ergonomic use inside the solver,
// where magnitudes are tiny; the checked methods are used at API boundaries.
impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(&rhs).expect("rational subtraction overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs).expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(&rhs).expect("rational division error")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(7, 1).denom(), 1);
    }

    #[test]
    fn zero_denominator_is_error() {
        assert_eq!(Rational::checked_new(1, 0), Err(LpError::DivisionByZero));
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn comparisons() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(3, 2) > Rational::ONE);
        assert_eq!(Rational::new(2, 6).cmp(&Rational::new(1, 3)), Ordering::Equal);
        assert_eq!(Rational::new(1, 2).min(Rational::new(2, 3)), Rational::new(1, 2));
        assert_eq!(Rational::new(1, 2).max(Rational::new(2, 3)), Rational::new(2, 3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(4, 2).ceil(), 2);
        assert_eq!(Rational::new(4, 2).floor(), 2);
    }

    #[test]
    fn reciprocal() {
        assert_eq!(Rational::new(3, 4).recip().unwrap(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip().unwrap(), Rational::new(-4, 3));
        assert!(Rational::ZERO.recip().is_err());
    }

    #[test]
    fn predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::new(1, 7).is_positive());
        assert!(Rational::new(-1, 7).is_negative());
        assert!(Rational::from_int(5).is_integer());
        assert!(!Rational::new(5, 2).is_integer());
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::from_int(-4).to_string(), "-4");
        assert_eq!(Rational::ZERO.to_string(), "0");
    }

    #[test]
    fn to_f64() {
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summation() {
        let xs = [Rational::new(1, 2), Rational::new(1, 3), Rational::new(1, 6)];
        assert_eq!(Rational::sum(xs.iter()).unwrap(), Rational::ONE);
        let empty: Vec<Rational> = vec![];
        assert_eq!(Rational::sum(empty.iter()).unwrap(), Rational::ZERO);
    }

    #[test]
    fn overflow_detected() {
        let big = Rational::new(i128::MAX / 2, 1);
        assert!(big.checked_mul(&Rational::from_int(4)).is_err());
        let max = Rational::new(i128::MAX, 1);
        assert!(max.checked_add(&max).is_err());
    }

    #[test]
    fn gcd_normalised_add_avoids_needless_overflow() {
        // Denominators share a huge factor: the naive b·d denominator
        // product overflows, but gcd-first addition stays exact.
        let big = 1_i128 << 100;
        let a = Rational::new(1, big);
        let b = Rational::new(1, big * 2);
        assert_eq!(a.checked_add(&b).unwrap(), Rational::new(3, big * 2));
    }

    #[test]
    fn comparison_survives_cross_product_overflow() {
        // Both cross products exceed i128, forcing the Euclidean fallback.
        let big = (1_i128 << 90) + 1;
        let a = Rational::new(big, big - 2);
        let b = Rational::new(big + 2, big);
        assert!(a > b, "1 + 2/(big-2) > 1 + 2/big");
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        let neg_a = -a;
        let neg_b = -b;
        assert!(neg_a < neg_b);
    }

    #[test]
    fn assign_operators() {
        let mut x = Rational::new(1, 4);
        x += Rational::new(1, 4);
        assert_eq!(x, Rational::new(1, 2));
        x -= Rational::new(1, 2);
        assert!(x.is_zero());
    }
}
