//! The fractional vertex-cover, edge-packing and edge-cover LPs of a query
//! hypergraph (Figure 1 of the paper).
//!
//! * **Vertex cover** (primal): assign `vᵢ ≥ 0` to every variable so that
//!   every atom is covered, `Σ_{i: xᵢ ∈ vars(Sⱼ)} vᵢ ≥ 1`; minimise `Σ vᵢ`.
//! * **Edge packing** (dual): assign `uⱼ ≥ 0` to every atom so that every
//!   variable is not over-packed, `Σ_{j: xᵢ ∈ vars(Sⱼ)} uⱼ ≤ 1`; maximise
//!   `Σ uⱼ`.
//!
//! The two optima coincide: this common value is the **fractional covering
//! number `τ*(q)`**, which determines the one-round space exponent
//! `ε*(q) = 1 − 1/τ*(q)` (Theorem 1.1). The *edge cover* LP (`≥ 1`
//! constraints on variables, minimise) is different from the packing; it is
//! used for AGM-style output-size bounds and coincides with the packing only
//! when both are tight (Section 2.3).

use std::fmt;

use serde::{Deserialize, Serialize};

use mpc_cq::{AtomId, Query, VarId};

use crate::cache::LpCache;
use crate::error::LpError;
use crate::rational::Rational;
use crate::simplex::{ConstraintOp, LinearProgram, Objective};
use crate::Result;

/// An (optimal) fractional vertex cover: one weight per variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCover {
    weights: Vec<Rational>,
    total: Rational,
}

impl VertexCover {
    /// Construct from per-variable weights (validated lazily via
    /// [`VertexCover::is_valid_for`]).
    pub fn from_weights(weights: Vec<Rational>) -> Result<Self> {
        let total = Rational::sum(weights.iter())?;
        Ok(VertexCover { weights, total })
    }

    /// The weight `vᵢ` of a variable.
    pub fn weight(&self, v: VarId) -> Rational {
        self.weights.get(v.0).copied().unwrap_or(Rational::ZERO)
    }

    /// All weights, indexed by [`VarId`].
    pub fn weights(&self) -> &[Rational] {
        &self.weights
    }

    /// The cover value `Σᵢ vᵢ`.
    pub fn total(&self) -> Rational {
        self.total
    }

    /// True if these weights satisfy every covering constraint of `q`
    /// (and are non-negative).
    pub fn is_valid_for(&self, q: &Query) -> bool {
        if self.weights.len() != q.num_vars() {
            return false;
        }
        if self.weights.iter().any(Rational::is_negative) {
            return false;
        }
        q.atom_ids().all(|a| {
            let vars = q.vars_of_atom(a).expect("atom id from the query itself");
            let sum = vars.iter().fold(Rational::ZERO, |acc, v| acc + self.weight(*v));
            sum >= Rational::ONE
        })
    }

    /// True if every covering constraint holds with equality (a *tight*
    /// cover in the sense of Section 2.3).
    pub fn is_tight_for(&self, q: &Query) -> bool {
        self.weights.len() == q.num_vars()
            && q.atom_ids().all(|a| {
                let vars = q.vars_of_atom(a).expect("atom id from the query itself");
                let sum = vars.iter().fold(Rational::ZERO, |acc, v| acc + self.weight(*v));
                sum == Rational::ONE
            })
    }
}

/// An (optimal) fractional edge packing: one weight per atom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgePacking {
    weights: Vec<Rational>,
    total: Rational,
}

impl EdgePacking {
    /// Construct from per-atom weights.
    pub fn from_weights(weights: Vec<Rational>) -> Result<Self> {
        let total = Rational::sum(weights.iter())?;
        Ok(EdgePacking { weights, total })
    }

    /// The weight `uⱼ` of an atom.
    pub fn weight(&self, a: AtomId) -> Rational {
        self.weights.get(a.0).copied().unwrap_or(Rational::ZERO)
    }

    /// All weights, indexed by [`AtomId`].
    pub fn weights(&self) -> &[Rational] {
        &self.weights
    }

    /// The packing value `Σⱼ uⱼ`.
    pub fn total(&self) -> Rational {
        self.total
    }

    /// True if these weights satisfy every packing constraint of `q`.
    pub fn is_valid_for(&self, q: &Query) -> bool {
        if self.weights.len() != q.num_atoms() {
            return false;
        }
        if self.weights.iter().any(Rational::is_negative) {
            return false;
        }
        q.var_ids().all(|v| {
            let sum = q.atoms_of_var(v).iter().fold(Rational::ZERO, |acc, a| acc + self.weight(*a));
            sum <= Rational::ONE
        })
    }

    /// True if every packing constraint holds with equality.
    pub fn is_tight_for(&self, q: &Query) -> bool {
        self.weights.len() == q.num_atoms()
            && q.var_ids().all(|v| {
                let sum =
                    q.atoms_of_var(v).iter().fold(Rational::ZERO, |acc, a| acc + self.weight(*a));
                sum == Rational::ONE
            })
    }

    /// The slack `u'ᵢ = 1 − Σ_{j: xᵢ ∈ vars(Sⱼ)} uⱼ` of each variable; these
    /// are the weights given to the unary `Tᵢ` atoms of the *extended query*
    /// in the proof of Lemma 3.9.
    pub fn variable_slacks(&self, q: &Query) -> Vec<Rational> {
        q.var_ids()
            .map(|v| {
                let sum =
                    q.atoms_of_var(v).iter().fold(Rational::ZERO, |acc, a| acc + self.weight(*a));
                Rational::ONE - sum
            })
            .collect()
    }
}

/// An (optimal) fractional edge cover: one weight per atom, with `≥ 1`
/// constraints per variable. Used for AGM-style answer-size bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCover {
    weights: Vec<Rational>,
    total: Rational,
}

impl EdgeCover {
    /// Construct from per-atom weights.
    pub fn from_weights(weights: Vec<Rational>) -> Result<Self> {
        let total = Rational::sum(weights.iter())?;
        Ok(EdgeCover { weights, total })
    }

    /// The weight of an atom.
    pub fn weight(&self, a: AtomId) -> Rational {
        self.weights.get(a.0).copied().unwrap_or(Rational::ZERO)
    }

    /// All weights, indexed by [`AtomId`].
    pub fn weights(&self) -> &[Rational] {
        &self.weights
    }

    /// The cover value `Σⱼ uⱼ`.
    pub fn total(&self) -> Rational {
        self.total
    }

    /// True if every variable is covered: `Σ_{j: xᵢ ∈ vars(Sⱼ)} uⱼ ≥ 1`.
    pub fn is_valid_for(&self, q: &Query) -> bool {
        if self.weights.len() != q.num_atoms() {
            return false;
        }
        if self.weights.iter().any(Rational::is_negative) {
            return false;
        }
        q.var_ids().all(|v| {
            let sum = q.atoms_of_var(v).iter().fold(Rational::ZERO, |acc, a| acc + self.weight(*a));
            sum >= Rational::ONE
        })
    }
}

/// The solved LP triple of a query: optimal vertex cover, edge packing and
/// edge cover, all exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLps {
    vertex_cover: VertexCover,
    edge_packing: EdgePacking,
    edge_cover: EdgeCover,
}

/// Which of the three solver layers produced a [`QueryLps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverPath {
    /// The triple was transported from the memoising cache (an isomorphic
    /// query was solved earlier).
    CacheHit,
    /// The query was recognised as a known family and the certified
    /// analytic optimum was returned.
    ClosedForm,
    /// The sparse revised simplex solved the LPs.
    SparseSimplex,
}

impl fmt::Display for SolverPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverPath::CacheHit => write!(f, "cache-hit"),
            SolverPath::ClosedForm => write!(f, "closed-form"),
            SolverPath::SparseSimplex => write!(f, "simplex"),
        }
    }
}

impl QueryLps {
    /// Solve all three LPs for the query, fastest applicable path first:
    ///
    /// 1. **closed form** — queries recognised (up to variable/atom
    ///    renaming) as a cycle `C_k`, chain `L_k`, star `T_k`, binomial
    ///    `B_{k,m}` or spoke `SP_k` get the certificate-checked analytic
    ///    optimum from [`crate::families::closed_form`]. This runs first
    ///    because recognition + certification is `O(nnz)` — cheaper than
    ///    even a cache hit, whose canonical labelling is what pays for
    ///    isomorphism-invariance (and is most expensive exactly on these
    ///    highly symmetric families);
    /// 2. **cache** — the process-wide [`LpCache::global`] is consulted
    ///    under the query's *canonical hypergraph signature*
    ///    ([`mpc_cq::Query::canonical_signature`]): the number of variables
    ///    plus the canonically-labelled distinct-variable sets of the
    ///    atoms, so any query isomorphic (modulo renaming) to a previously
    ///    solved one is answered by transporting the cached weight vectors
    ///    through the canonical maps;
    /// 3. **sparse simplex** — everything else is solved exactly by the
    ///    sparse revised simplex ([`QueryLps::solve_sparse`]) and the
    ///    result is inserted into the cache before returning.
    ///
    /// To **bypass the cache** (e.g. for benchmarking or when memory must
    /// not grow), call [`QueryLps::solve_uncached`]; to use a private
    /// cache, call [`QueryLps::solve_with_cache`]; the dense-tableau
    /// oracle is kept as [`QueryLps::solve_dense`].
    ///
    /// # Errors
    ///
    /// Propagates simplex errors; the cover and packing LPs of a non-empty
    /// query are always feasible and bounded, so errors indicate arithmetic
    /// overflow ([`LpError::Overflow`], never observed for realistic query
    /// sizes).
    pub fn solve(q: &Query) -> Result<QueryLps> {
        Self::solve_traced(q).map(|(lps, _)| lps)
    }

    /// Like [`QueryLps::solve`], additionally reporting which layer
    /// answered.
    pub fn solve_traced(q: &Query) -> Result<(QueryLps, SolverPath)> {
        Self::solve_with_cache(LpCache::global(), q)
    }

    /// Like [`QueryLps::solve_traced`] but against a caller-supplied cache
    /// instead of the global one.
    pub fn solve_with_cache(cache: &LpCache, q: &Query) -> Result<(QueryLps, SolverPath)> {
        if let Some(lps) = Self::try_closed_form(q)? {
            return Ok((lps, SolverPath::ClosedForm));
        }
        let cf = q.canonical_form();
        if let Some(lps) = cache.lookup(&cf) {
            return Ok((lps, SolverPath::CacheHit));
        }
        let lps = Self::solve_sparse(q)?;
        cache.insert(&cf, &lps);
        Ok((lps, SolverPath::SparseSimplex))
    }

    /// Solve without touching any cache: closed form when the family is
    /// recognised, sparse simplex otherwise.
    pub fn solve_uncached(q: &Query) -> Result<(QueryLps, SolverPath)> {
        if let Some(lps) = Self::try_closed_form(q)? {
            return Ok((lps, SolverPath::ClosedForm));
        }
        Ok((Self::solve_sparse(q)?, SolverPath::SparseSimplex))
    }

    /// The closed-form layer, with the debug-build cross-check against the
    /// simplex oracle (release builds rely on the — always sufficient —
    /// feasibility+duality certificates instead).
    fn try_closed_form(q: &Query) -> Result<Option<QueryLps>> {
        let Some((_family, lps)) = crate::families::closed_form(q) else {
            return Ok(None);
        };
        debug_assert_eq!(
            lps.covering_number(),
            Self::solve_sparse(q)?.covering_number(),
            "closed form disagrees with simplex for {_family}"
        );
        Ok(Some(lps))
    }

    /// Solve with the sparse revised simplex alone.
    ///
    /// Exactly two LP solves suffice for the whole triple: the duals of
    /// the edge-packing LP (a `≤`-form LP that needs no phase 1) are an
    /// optimal vertex cover, and the duals of the *fractional vertex
    /// weighting* LP (`max Σy` with per-atom sums `≤ 1`) are an optimal
    /// edge cover. Both extracted solutions are verified for feasibility
    /// and strong duality before returning.
    ///
    /// # Errors
    ///
    /// Propagates simplex errors, and reports [`LpError::Malformed`] if an
    /// extracted dual fails verification (a solver bug, not a property of
    /// the query).
    pub fn solve_sparse(q: &Query) -> Result<QueryLps> {
        // Edge packing: max Σu, per-variable sums ≤ 1; duals = cover.
        let l = q.num_atoms();
        let mut packing_lp = LinearProgram::new(Objective::Maximize, vec![Rational::ONE; l]);
        for v in q.var_ids() {
            let mut row = vec![Rational::ZERO; l];
            for a in q.atoms_of_var(v) {
                row[a.0] = Rational::ONE;
            }
            packing_lp = packing_lp.constrain(row, ConstraintOp::Le, Rational::ONE)?;
        }
        let packing_sol = packing_lp.solve_sparse()?;
        let edge_packing = EdgePacking::from_weights(packing_sol.variables)?;
        let vertex_cover = VertexCover::from_weights(packing_sol.duals)?;

        // Vertex weighting: max Σy, per-atom sums ≤ 1; duals = edge cover.
        let k = q.num_vars();
        let mut weighting_lp = LinearProgram::new(Objective::Maximize, vec![Rational::ONE; k]);
        for a in q.atom_ids() {
            let mut row = vec![Rational::ZERO; k];
            for v in q.vars_of_atom(a)? {
                row[v.0] = Rational::ONE;
            }
            weighting_lp = weighting_lp.constrain(row, ConstraintOp::Le, Rational::ONE)?;
        }
        let weighting_sol = weighting_lp.solve_sparse()?;
        let edge_cover = EdgeCover::from_weights(weighting_sol.duals)?;

        let lps = QueryLps { vertex_cover, edge_packing, edge_cover };
        if !lps.vertex_cover.is_valid_for(q) || lps.vertex_cover.total() != lps.edge_packing.total()
        {
            return Err(LpError::Malformed(format!(
                "extracted cover dual invalid for {}: cover {} vs packing {}",
                q.name(),
                lps.vertex_cover.total(),
                lps.edge_packing.total()
            )));
        }
        if !lps.edge_cover.is_valid_for(q)
            || lps.edge_cover.total() != weighting_sol.objective_value
        {
            return Err(LpError::Malformed(format!(
                "extracted edge-cover dual invalid for {}",
                q.name()
            )));
        }
        Ok(lps)
    }

    /// Solve all three LPs with the dense two-phase tableau solver — the
    /// slow reference oracle the sparse path and the closed forms are
    /// validated against in tests and experiment smoke runs.
    ///
    /// # Errors
    ///
    /// As for [`QueryLps::solve`].
    pub fn solve_dense(q: &Query) -> Result<QueryLps> {
        let vertex_cover = solve_vertex_cover(q)?;
        let edge_packing = solve_edge_packing(q)?;
        let edge_cover = solve_edge_cover(q)?;
        if vertex_cover.total() != edge_packing.total() {
            // LP duality guarantees equality; a mismatch is a solver bug.
            return Err(LpError::Malformed(format!(
                "duality violated for {}: cover {} vs packing {}",
                q.name(),
                vertex_cover.total(),
                edge_packing.total()
            )));
        }
        Ok(QueryLps { vertex_cover, edge_packing, edge_cover })
    }

    /// Assemble a triple from already-validated parts (closed forms and
    /// cache transport).
    pub(crate) fn from_parts(
        vertex_cover: VertexCover,
        edge_packing: EdgePacking,
        edge_cover: EdgeCover,
    ) -> QueryLps {
        QueryLps { vertex_cover, edge_packing, edge_cover }
    }

    /// The fractional covering number `τ*(q)`.
    pub fn covering_number(&self) -> Rational {
        self.vertex_cover.total()
    }

    /// The optimal fractional vertex cover.
    pub fn vertex_cover(&self) -> &VertexCover {
        &self.vertex_cover
    }

    /// The optimal fractional edge packing.
    pub fn edge_packing(&self) -> &EdgePacking {
        &self.edge_packing
    }

    /// The optimal fractional edge cover.
    pub fn edge_cover(&self) -> &EdgeCover {
        &self.edge_cover
    }
}

/// Solve the fractional vertex-cover LP of `q` with the dense oracle.
pub fn solve_vertex_cover(q: &Query) -> Result<VertexCover> {
    let k = q.num_vars();
    let mut lp = LinearProgram::new(Objective::Minimize, vec![Rational::ONE; k]);
    for a in q.atom_ids() {
        let mut row = vec![Rational::ZERO; k];
        for v in q.vars_of_atom(a)? {
            row[v.0] = Rational::ONE;
        }
        lp = lp.constrain(row, ConstraintOp::Ge, Rational::ONE)?;
    }
    let sol = lp.solve()?;
    Ok(VertexCover { weights: sol.variables, total: sol.objective_value })
}

/// Solve the fractional edge-packing LP of `q` with the dense oracle.
pub fn solve_edge_packing(q: &Query) -> Result<EdgePacking> {
    let l = q.num_atoms();
    let mut lp = LinearProgram::new(Objective::Maximize, vec![Rational::ONE; l]);
    for v in q.var_ids() {
        let mut row = vec![Rational::ZERO; l];
        for a in q.atoms_of_var(v) {
            row[a.0] = Rational::ONE;
        }
        lp = lp.constrain(row, ConstraintOp::Le, Rational::ONE)?;
    }
    let sol = lp.solve()?;
    Ok(EdgePacking { weights: sol.variables, total: sol.objective_value })
}

/// Solve the fractional edge-cover LP of `q` with the dense oracle.
pub fn solve_edge_cover(q: &Query) -> Result<EdgeCover> {
    let l = q.num_atoms();
    let mut lp = LinearProgram::new(Objective::Minimize, vec![Rational::ONE; l]);
    for v in q.var_ids() {
        let mut row = vec![Rational::ZERO; l];
        for a in q.atoms_of_var(v) {
            row[a.0] = Rational::ONE;
        }
        lp = lp.constrain(row, ConstraintOp::Ge, Rational::ONE)?;
    }
    let sol = lp.solve()?;
    Ok(EdgeCover { weights: sol.variables, total: sol.objective_value })
}

/// The fractional covering number `τ*(q)` (shortcut for
/// `QueryLps::solve(q)?.covering_number()`, so it shares the closed-form
/// and cache fast paths).
pub fn tau_star(q: &Query) -> Result<Rational> {
    Ok(QueryLps::solve(q)?.covering_number())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn tau_star_of_running_examples() {
        // Table 1 of the paper.
        assert_eq!(tau_star(&families::cycle(3)).unwrap(), r(3, 2));
        assert_eq!(tau_star(&families::cycle(4)).unwrap(), r(2, 1));
        assert_eq!(tau_star(&families::cycle(5)).unwrap(), r(5, 2));
        assert_eq!(tau_star(&families::cycle(6)).unwrap(), r(3, 1));
        for k in 1..=5 {
            assert_eq!(tau_star(&families::star(k)).unwrap(), r(1, 1), "T{k}");
        }
        for k in 1..=7usize {
            assert_eq!(tau_star(&families::chain(k)).unwrap(), r(k.div_ceil(2) as i128, 1), "L{k}");
        }
        // B(k,m): τ* = k/m.
        assert_eq!(tau_star(&families::binomial(4, 2).unwrap()).unwrap(), r(2, 1));
        assert_eq!(tau_star(&families::binomial(3, 2).unwrap()).unwrap(), r(3, 2));
        assert_eq!(tau_star(&families::binomial(5, 3).unwrap()).unwrap(), r(5, 3));
        // SPk: τ* = k.
        for k in 1..=4 {
            assert_eq!(tau_star(&families::spoke(k)).unwrap(), r(k as i128, 1), "SP{k}");
        }
    }

    #[test]
    fn duality_cover_equals_packing() {
        for q in [
            families::cycle(3),
            families::cycle(5),
            families::chain(4),
            families::star(3),
            families::binomial(4, 2).unwrap(),
            families::spoke(2),
            families::witness_query(),
        ] {
            let lps = QueryLps::solve(&q).unwrap();
            assert_eq!(
                lps.vertex_cover().total(),
                lps.edge_packing().total(),
                "duality for {}",
                q.name()
            );
            assert!(lps.vertex_cover().is_valid_for(&q), "cover valid for {}", q.name());
            assert!(lps.edge_packing().is_valid_for(&q), "packing valid for {}", q.name());
            assert!(lps.edge_cover().is_valid_for(&q), "edge cover valid for {}", q.name());
        }
    }

    #[test]
    fn example_2_2_l3_cover_and_packing() {
        // Example 2.2: τ*(L3) = 2; the optimal packing (1,0,1) is tight.
        let l3 = families::chain(3);
        let lps = QueryLps::solve(&l3).unwrap();
        assert_eq!(lps.covering_number(), r(2, 1));
        // The canonical optimal packing (1,0,1) is valid and tight.
        let packing = EdgePacking::from_weights(vec![r(1, 1), r(0, 1), r(1, 1)]).unwrap();
        assert!(packing.is_valid_for(&l3));
        assert!(packing.is_tight_for(&l3));
        assert_eq!(packing.total(), lps.covering_number());
        // The canonical optimal cover (0,1,1,0) is valid but NOT tight.
        let cover = VertexCover::from_weights(vec![r(0, 1), r(1, 1), r(1, 1), r(0, 1)]).unwrap();
        assert!(cover.is_valid_for(&l3));
        assert!(!cover.is_tight_for(&l3));
    }

    #[test]
    fn triangle_cover_is_half_each_and_tight() {
        let c3 = families::cycle(3);
        let cover = VertexCover::from_weights(vec![r(1, 2); 3]).unwrap();
        assert!(cover.is_valid_for(&c3));
        assert!(cover.is_tight_for(&c3));
        assert_eq!(cover.total(), r(3, 2));
        let lps = QueryLps::solve(&c3).unwrap();
        assert_eq!(lps.covering_number(), r(3, 2));
        // Packing slack for the extended query: all zero when tight.
        let packing = EdgePacking::from_weights(vec![r(1, 2); 3]).unwrap();
        assert!(packing.is_tight_for(&c3));
        assert!(packing.variable_slacks(&c3).iter().all(Rational::is_zero));
    }

    #[test]
    fn star_cover_puts_weight_on_center() {
        let t3 = families::star(3);
        let lps = QueryLps::solve(&t3).unwrap();
        assert_eq!(lps.covering_number(), Rational::ONE);
        let cover = lps.vertex_cover();
        assert!(cover.is_valid_for(&t3));
        // The returned optimal cover must put full weight on the center z.
        let z = t3.var_id("z").unwrap();
        assert_eq!(cover.weight(z), Rational::ONE);
    }

    #[test]
    fn edge_cover_differs_from_packing_for_chains() {
        // For L3, the optimal edge cover has value 2 (S1 and S3), equal to
        // the packing here; for T3 (star), edge cover = 3 but packing = 1.
        let t3 = families::star(3);
        let lps = QueryLps::solve(&t3).unwrap();
        assert_eq!(lps.edge_cover().total(), r(3, 1));
        assert_eq!(lps.edge_packing().total(), r(1, 1));
    }

    #[test]
    fn variable_slacks_complement_packing() {
        let l3 = families::chain(3);
        let lps = QueryLps::solve(&l3).unwrap();
        let slacks = lps.edge_packing().variable_slacks(&l3);
        // Every slack is in [0, 1].
        assert!(slacks.iter().all(|s| !s.is_negative() && *s <= Rational::ONE));
        // Lemma 3.9(b): Σ_j a_j u_j + Σ_i u'_i = k.
        let mut total = Rational::ZERO;
        for a in l3.atom_ids() {
            let arity = r(l3.atom(a).unwrap().arity() as i128, 1);
            total += arity * lps.edge_packing().weight(a);
        }
        for s in &slacks {
            total += *s;
        }
        assert_eq!(total, r(l3.num_vars() as i128, 1));
    }

    #[test]
    fn invalid_covers_are_rejected() {
        let c3 = families::cycle(3);
        let too_small = VertexCover::from_weights(vec![r(1, 4); 3]).unwrap();
        assert!(!too_small.is_valid_for(&c3));
        let wrong_len = VertexCover::from_weights(vec![r(1, 1); 2]).unwrap();
        assert!(!wrong_len.is_valid_for(&c3));
        let negative = VertexCover::from_weights(vec![r(3, 2), r(-1, 2), r(1, 2)]).unwrap();
        assert!(!negative.is_valid_for(&c3));
        let over_packed = EdgePacking::from_weights(vec![r(1, 1); 3]).unwrap();
        assert!(!over_packed.is_valid_for(&c3));
    }

    #[test]
    fn witness_query_tau_star() {
        // q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z): τ* = 2 is noted
        // in the footnote of Section 3.2 (before removing unary atoms... the
        // footnote query has τ* = 2; with the extra unary atoms here the
        // packing can use R, S2 and T: τ* = 3).
        let q = families::witness_query();
        let tau = tau_star(&q).unwrap();
        assert_eq!(tau, r(3, 1));
        // Dropping the unary atoms leaves L3 with τ* = 2, the value used in
        // Prop 3.12's analysis of the subquery q' = S1,S2,S3.
        let s1 = q.atom_by_name("S1").unwrap().0;
        let s2 = q.atom_by_name("S2").unwrap().0;
        let s3 = q.atom_by_name("S3").unwrap().0;
        let sub = q.induced_subquery(&[s1, s2, s3]).unwrap();
        assert_eq!(tau_star(&sub).unwrap(), r(2, 1));
    }

    #[test]
    fn corollary_3_10_tau_one_iff_shared_variable() {
        // τ*(q) = 1 iff some variable occurs in all atoms.
        let cases = [
            (families::star(4), true),
            (families::chain(2), true),
            (families::chain(3), false),
            (families::cycle(3), false),
            (families::spoke(2), false),
            (families::binomial(3, 2).unwrap(), false),
        ];
        for (q, expect_one) in cases {
            let tau = tau_star(&q).unwrap();
            assert_eq!(tau == Rational::ONE, expect_one, "{}", q.name());
            assert_eq!(q.has_variable_in_all_atoms(), expect_one, "{}", q.name());
        }
    }
}
