//! A sparse **revised simplex** solver over exact rationals.
//!
//! The cover/packing LPs of a query hypergraph are extremely sparse: the
//! constraint matrix has one nonzero per variable-in-atom incidence. The
//! dense tableau of [`crate::simplex`] spends `O(rows·cols)` per pivot
//! regardless; this module keeps the constraint matrix in **column-major
//! sparse form** and maintains the basis inverse as a **product of eta
//! matrices** (the classic product-form-of-the-inverse factorization), so
//! one simplex iteration costs `O(nnz + m·|etas|)`:
//!
//! * `FTRAN` (`x = B⁻¹ a`) applies the eta file forwards,
//! * `BTRAN` (`yᵀ = c_Bᵀ B⁻¹`) applies it backwards,
//! * a pivot appends one eta vector; the file is rebuilt from scratch
//!   (`refactorize`) when it grows past a threshold, which also keeps the
//!   rational entries short.
//!
//! Pricing is a small-candidate **steepest-edge** rule — the few columns
//! with the largest exact reduced cost are FTRAN-ed and scored by
//! `rc² / (1 + ‖B⁻¹a‖²)` — with a fallback to **Bland's rule** after a run
//! of degenerate pivots, which restores the textbook termination guarantee
//! (cycling is only possible among degenerate pivots, and under Bland's
//! rule no cycle exists).
//!
//! All arithmetic is checked: a long pivot sequence that would overflow
//! `i128` reports [`LpError::Overflow`] instead of panicking.

use crate::error::LpError;
use crate::rational::Rational;
use crate::simplex::{ConstraintOp, LinearProgram, LpSolution, Objective};
use crate::Result;

/// Consecutive degenerate pivots tolerated before switching to Bland's
/// rule (left again after the next progress-making pivot).
const DEGENERATE_STREAK_LIMIT: usize = 12;

/// Number of top-reduced-cost candidates scored by the steepest-edge rule.
/// Each candidate costs one FTRAN; three is the measured sweet spot on the
/// cover/packing suite (fewer loses the edge-norm signal on spoke-like
/// LPs, more pays FTRANs without reducing pivots).
const PRICING_CANDIDATES: usize = 3;

/// An optimal solution of a [`LinearProgram`] solved by the sparse revised
/// simplex, including the dual values needed to read a vertex cover off an
/// edge-packing solve (and vice versa).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseSolution {
    /// Optimal objective value (in the original optimisation direction).
    pub objective_value: Rational,
    /// Optimal values of the structural variables.
    pub variables: Vec<Rational>,
    /// Dual value of each constraint, normalised so that for a `Maximize`
    /// LP with `≤` rows the duals are the usual non-negative multipliers
    /// with `Σᵢ dualsᵢ·bᵢ = objective_value` (rows that were sign-flipped
    /// during presolve, and `Minimize` objectives, have the sign folded
    /// back in).
    pub duals: Vec<Rational>,
}

impl LinearProgram {
    /// Solve with the sparse revised simplex (same contract as
    /// [`LinearProgram::solve`], plus dual values).
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] / [`LpError::Unbounded`] as for the dense
    ///   solver,
    /// * [`LpError::Overflow`] if exact arithmetic exceeds `i128`,
    /// * [`LpError::Malformed`] for an LP without variables.
    pub fn solve_sparse(&self) -> Result<SparseSolution> {
        if self.costs.is_empty() {
            return Err(LpError::Malformed("LP has no variables".to_string()));
        }
        Solver::build(self)?.run(self)
    }

    /// Solve with the sparse revised simplex, discarding the duals.
    ///
    /// # Errors
    ///
    /// As for [`LinearProgram::solve_sparse`].
    pub fn solve_sparse_primal(&self) -> Result<LpSolution> {
        let s = self.solve_sparse()?;
        Ok(LpSolution { objective_value: s.objective_value, variables: s.variables })
    }
}

/// One eta matrix: identity except for column `row`, recording the
/// FTRAN-ed entering column `d = B⁻¹ a` of a pivot at `row`.
struct Eta {
    row: usize,
    pivot: Rational,
    /// Off-pivot nonzeros of `d` (row index ≠ `row`).
    others: Vec<(usize, Rational)>,
}

struct Solver {
    m: usize,
    n_struct: usize,
    /// Structural + slack/surplus columns (artificials start here).
    n_real: usize,
    n_total: usize,
    /// Column-major sparse constraint matrix (all columns incl. slacks and
    /// artificials).
    cols: Vec<Vec<(usize, Rational)>>,
    /// Sign-normalised right-hand sides (`≥ 0`).
    rhs: Vec<Rational>,
    /// Which original rows were multiplied by −1 during presolve.
    negated: Vec<bool>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Current values of the basic variables (row-aligned, `≥ 0`).
    x_b: Vec<Rational>,
    etas: Vec<Eta>,
    bland: bool,
    degenerate_streak: usize,
}

impl Solver {
    fn build(lp: &LinearProgram) -> Result<Solver> {
        let m = lp.constraints.len();
        let n_struct = lp.num_vars();
        let n_slack = lp
            .constraints
            .iter()
            .filter(|c| matches!(c.op, ConstraintOp::Le | ConstraintOp::Ge))
            .count();
        let n_real = n_struct + n_slack;

        let mut cols: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); n_real];
        let mut rhs = Vec::with_capacity(m);
        let mut negated = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut artificial_rows: Vec<usize> = Vec::new();

        let mut slack_cursor = n_struct;
        for (i, c) in lp.constraints.iter().enumerate() {
            let flip = c.rhs.is_negative();
            negated.push(flip);
            let sign = |r: Rational| if flip { -r } else { r };
            for (j, coeff) in c.coeffs.iter().enumerate() {
                if !coeff.is_zero() {
                    cols[j].push((i, sign(*coeff)));
                }
            }
            rhs.push(sign(c.rhs));
            let slack_sign = match c.op {
                ConstraintOp::Le => Some(sign(Rational::ONE)),
                ConstraintOp::Ge => Some(sign(-Rational::ONE)),
                ConstraintOp::Eq => None,
            };
            match slack_sign {
                Some(s) => {
                    cols[slack_cursor].push((i, s));
                    if s == Rational::ONE {
                        // The slack starts basic: no artificial needed.
                        basis.push(slack_cursor);
                    } else {
                        basis.push(usize::MAX); // placeholder, artificial below
                        artificial_rows.push(i);
                    }
                    slack_cursor += 1;
                }
                None => {
                    basis.push(usize::MAX);
                    artificial_rows.push(i);
                }
            }
        }

        // One artificial unit column per row that lacks a basic slack.
        let n_total = n_real + artificial_rows.len();
        for (k, &row) in artificial_rows.iter().enumerate() {
            cols.push(vec![(row, Rational::ONE)]);
            basis[row] = n_real + k;
        }

        let mut in_basis = vec![false; n_total];
        for &b in &basis {
            in_basis[b] = true;
        }
        let x_b = rhs.clone();

        Ok(Solver {
            m,
            n_struct,
            n_real,
            n_total,
            cols,
            rhs,
            negated,
            basis,
            in_basis,
            x_b,
            etas: Vec::new(),
            bland: false,
            degenerate_streak: 0,
        })
    }

    /// `x ← Eₖ…E₁ x` (apply the eta file forwards).
    fn apply_etas(&self, x: &mut [Rational]) -> Result<()> {
        for eta in &self.etas {
            let xr = x[eta.row];
            if xr.is_zero() {
                continue;
            }
            let t = xr.checked_div(&eta.pivot)?;
            for (i, v) in &eta.others {
                if !x[*i].is_zero() || !t.is_zero() {
                    x[*i] = x[*i].checked_sub(&v.checked_mul(&t)?)?;
                }
            }
            x[eta.row] = t;
        }
        Ok(())
    }

    /// `B⁻¹ a` for a sparse column, as a dense vector.
    fn ftran_col(&self, col: usize) -> Result<Vec<Rational>> {
        let mut x = vec![Rational::ZERO; self.m];
        for (i, v) in &self.cols[col] {
            x[*i] = *v;
        }
        self.apply_etas(&mut x)?;
        Ok(x)
    }

    /// `yᵀ = c_Bᵀ B⁻¹` (apply the eta file backwards).
    fn btran(&self, costs: &[Rational]) -> Result<Vec<Rational>> {
        let mut y: Vec<Rational> =
            self.basis.iter().map(|&b| costs.get(b).copied().unwrap_or(Rational::ZERO)).collect();
        for eta in self.etas.iter().rev() {
            let mut num = y[eta.row];
            for (i, v) in &eta.others {
                if !y[*i].is_zero() {
                    num = num.checked_sub(&y[*i].checked_mul(v)?)?;
                }
            }
            y[eta.row] = num.checked_div(&eta.pivot)?;
        }
        Ok(y)
    }

    /// Reduced cost of a column against the BTRAN-ed multipliers.
    fn reduced_cost(&self, y: &[Rational], costs: &[Rational], j: usize) -> Result<Rational> {
        let mut z = Rational::ZERO;
        for (i, v) in &self.cols[j] {
            if !y[*i].is_zero() {
                z = z.checked_add(&y[*i].checked_mul(v)?)?;
            }
        }
        costs[j].checked_sub(&z)
    }

    /// Append the eta of a pivot of column `col` (with FTRAN-ed image `d`)
    /// at `row`, updating the basic values with step `t`.
    fn pivot(&mut self, row: usize, col: usize, d: Vec<Rational>, t: Rational) -> Result<()> {
        let mut others = Vec::new();
        let mut pivot_value = Rational::ZERO;
        for (i, v) in d.into_iter().enumerate() {
            if v.is_zero() {
                continue;
            }
            if i == row {
                pivot_value = v;
            } else {
                others.push((i, v));
                if !t.is_zero() {
                    self.x_b[i] = self.x_b[i].checked_sub(&v.checked_mul(&t)?)?;
                }
            }
        }
        debug_assert!(!pivot_value.is_zero(), "pivot element must be non-zero");
        self.x_b[row] = t;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        self.etas.push(Eta { row, pivot: pivot_value, others });
        if self.etas.len() > 3 * self.m + 32 {
            self.refactorize()?;
        }
        Ok(())
    }

    /// Rebuild the eta file from the current basis: pivot every basic
    /// column back in, preferring its own row. This both bounds the file
    /// length and resets rational entry growth.
    fn refactorize(&mut self) -> Result<()> {
        let old_basis = self.basis.clone();
        self.etas.clear();
        let mut placed = vec![false; self.m];
        let mut new_basis = vec![usize::MAX; self.m];
        for (home, &col) in old_basis.iter().enumerate() {
            let d = self.ftran_col(col)?;
            let row = if !placed[home] && !d[home].is_zero() {
                home
            } else {
                (0..self.m)
                    .find(|&r| !placed[r] && !d[r].is_zero())
                    .ok_or_else(|| LpError::Malformed("singular basis".to_string()))?
            };
            let pivot = d[row];
            let mut others = Vec::new();
            for (i, v) in d.into_iter().enumerate() {
                if i != row && !v.is_zero() {
                    others.push((i, v));
                }
            }
            self.etas.push(Eta { row, pivot, others });
            placed[row] = true;
            new_basis[row] = col;
        }
        self.basis = new_basis;
        self.in_basis = vec![false; self.n_total];
        for &b in &self.basis {
            self.in_basis[b] = true;
        }
        let mut x = self.rhs.clone();
        self.apply_etas(&mut x)?;
        self.x_b = x;
        Ok(())
    }

    /// Primal simplex iterations (maximisation) over columns
    /// `0..allowed_cols`.
    fn optimize(&mut self, costs: &[Rational], allowed_cols: usize) -> Result<()> {
        let max_iters = 20_000 + 200 * (self.n_total + self.m);
        for _ in 0..max_iters {
            let y = self.btran(costs)?;
            // Price: gather improving columns.
            let mut candidates: Vec<(usize, Rational)> = Vec::new();
            for j in 0..allowed_cols {
                if self.in_basis[j] {
                    continue;
                }
                let rc = self.reduced_cost(&y, costs, j)?;
                if rc.is_positive() {
                    if self.bland {
                        candidates.push((j, rc));
                        break; // smallest index suffices under Bland
                    }
                    candidates.push((j, rc));
                }
            }
            if candidates.is_empty() {
                return Ok(());
            }

            let (entering, d) = if self.bland {
                let j = candidates[0].0;
                (j, self.ftran_col(j)?)
            } else {
                // Steepest-edge over the best few candidates by reduced
                // cost; the choice only affects iteration count, so the
                // scoring may safely use f64.
                candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                candidates.truncate(PRICING_CANDIDATES);
                let mut best: Option<(usize, Vec<Rational>, f64)> = None;
                for (j, rc) in &candidates {
                    let d = self.ftran_col(*j)?;
                    let norm: f64 = d.iter().map(|v| v.to_f64() * v.to_f64()).sum();
                    let rcf = rc.to_f64();
                    let score = rcf * rcf / (1.0 + norm);
                    let score = if score.is_finite() { score } else { 0.0 };
                    if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                        best = Some((*j, d, score));
                    }
                }
                let (j, d, _) = best.expect("candidates is non-empty");
                (j, d)
            };

            // Ratio test. Rows whose basic variable is an artificial pinned
            // at zero are always eligible (with step 0) whenever the
            // entering column meets them: this drives artificials out and
            // keeps them at zero in phase 2.
            let mut leaving: Option<(usize, Rational)> = None;
            for (i, &di) in d.iter().enumerate().take(self.m) {
                let eligible = di.is_positive()
                    || (self.basis[i] >= self.n_real && self.x_b[i].is_zero() && !di.is_zero());
                if !eligible {
                    continue;
                }
                let ratio =
                    if di.is_positive() { self.x_b[i].checked_div(&di)? } else { Rational::ZERO };
                let better = match &leaving {
                    None => true,
                    Some((li, lr)) => {
                        ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
            let Some((row, t)) = leaving else {
                return Err(LpError::Unbounded);
            };

            if t.is_zero() {
                self.degenerate_streak += 1;
                if self.degenerate_streak > DEGENERATE_STREAK_LIMIT {
                    self.bland = true;
                }
            } else {
                self.degenerate_streak = 0;
                self.bland = false;
            }
            let col = entering;
            self.pivot(row, col, d, t)?;
        }
        Err(LpError::Malformed("sparse simplex iteration limit exceeded".to_string()))
    }

    fn run(mut self, lp: &LinearProgram) -> Result<SparseSolution> {
        // Phase 1 (only when some row needed an artificial): maximise
        // −Σ artificials.
        if self.n_total > self.n_real {
            let mut phase1 = vec![Rational::ZERO; self.n_total];
            for c in phase1.iter_mut().skip(self.n_real) {
                *c = -Rational::ONE;
            }
            self.optimize(&phase1, self.n_real)?;
            for i in 0..self.m {
                if self.basis[i] >= self.n_real && !self.x_b[i].is_zero() {
                    return Err(LpError::Infeasible);
                }
            }
            self.evict_artificials()?;
            self.bland = false;
            self.degenerate_streak = 0;
        }

        // Phase 2.
        let flip = matches!(lp.objective, Objective::Minimize);
        let mut phase2 = vec![Rational::ZERO; self.n_total];
        for (j, c) in lp.costs.iter().enumerate() {
            phase2[j] = if flip { -*c } else { *c };
        }
        self.optimize(&phase2, self.n_real)?;

        let mut variables = vec![Rational::ZERO; self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                variables[b] = self.x_b[i];
            }
        }
        let mut objective_value = Rational::ZERO;
        for (j, v) in variables.iter().enumerate() {
            if !v.is_zero() {
                objective_value = objective_value.checked_add(&lp.costs[j].checked_mul(v)?)?;
            }
        }

        // Duals: y = c_B B⁻¹ in the internal (maximisation, sign-normalised
        // rows) form, folded back to the original row/objective signs.
        let y = self.btran(&phase2)?;
        let mut duals = Vec::with_capacity(self.m);
        for (i, yi) in y.into_iter().enumerate() {
            let mut v = yi;
            if self.negated[i] {
                v = -v;
            }
            if flip {
                v = -v;
            }
            duals.push(v);
        }

        Ok(SparseSolution { objective_value, variables, duals })
    }

    /// After phase 1, pivot artificials out of the basis where a real
    /// replacement column exists; redundant rows keep their (zero-valued)
    /// artificial, which the ratio test then pins at zero.
    fn evict_artificials(&mut self) -> Result<()> {
        for row in 0..self.m {
            if self.basis[row] < self.n_real {
                continue;
            }
            debug_assert!(self.x_b[row].is_zero(), "artificial basic at non-zero level");
            for j in 0..self.n_real {
                if self.in_basis[j] {
                    continue;
                }
                let d = self.ftran_col(j)?;
                if !d[row].is_zero() {
                    self.pivot(row, j, d, Rational::ZERO)?;
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{ConstraintOp, LinearProgram, Objective};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn matches_dense_on_textbook_lps() {
        // Same cases as the dense solver's unit tests.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(3, 1))
            .unwrap()
            .constrain(vec![r(0, 1), r(1, 1)], ConstraintOp::Le, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Le, r(5, 1))
            .unwrap();
        let sparse = lp.solve_sparse().unwrap();
        let dense = lp.solve().unwrap();
        assert_eq!(sparse.objective_value, dense.objective_value);

        let lp = LinearProgram::new(Objective::Minimize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(2, 1)], ConstraintOp::Ge, r(4, 1))
            .unwrap()
            .constrain(vec![r(3, 1), r(1, 1)], ConstraintOp::Ge, r(6, 1))
            .unwrap();
        let sol = lp.solve_sparse().unwrap();
        assert_eq!(sol.objective_value, r(14, 5));
        assert_eq!(sol.variables, vec![r(8, 5), r(6, 5)]);
    }

    #[test]
    fn equality_and_redundant_rows() {
        let lp = LinearProgram::new(Objective::Maximize, vec![r(2, 1), r(3, 1)])
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Eq, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(3, 1))
            .unwrap();
        assert_eq!(lp.solve_sparse().unwrap().objective_value, r(12, 1));

        // Redundant equality: the artificial stays pinned at zero.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1), r(1, 1)])
            .constrain(vec![r(1, 1), r(1, 1)], ConstraintOp::Eq, r(2, 1))
            .unwrap()
            .constrain(vec![r(2, 1), r(2, 1)], ConstraintOp::Eq, r(4, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(0, 1)], ConstraintOp::Le, r(2, 1))
            .unwrap();
        assert_eq!(lp.solve_sparse().unwrap().objective_value, r(2, 1));
    }

    #[test]
    fn infeasible_and_unbounded() {
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap()
            .constrain(vec![r(1, 1)], ConstraintOp::Ge, r(2, 1))
            .unwrap();
        assert_eq!(lp.solve_sparse().unwrap_err(), LpError::Infeasible);

        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(1, 1)], ConstraintOp::Ge, r(1, 1))
            .unwrap();
        assert_eq!(lp.solve_sparse().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1)])
            .constrain(vec![r(-1, 1)], ConstraintOp::Le, r(-2, 1))
            .unwrap()
            .constrain(vec![r(1, 1)], ConstraintOp::Le, r(5, 1))
            .unwrap();
        assert_eq!(lp.solve_sparse().unwrap().objective_value, r(5, 1));
    }

    #[test]
    fn duals_certify_packing_optimum() {
        // C3 edge-packing LP: max u1+u2+u3 with pairwise sums ≤ 1. The
        // duals are an optimal vertex cover: (1/2, 1/2, 1/2), total 3/2.
        let lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1); 3])
            .constrain(vec![r(1, 1), r(0, 1), r(1, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap()
            .constrain(vec![r(1, 1), r(1, 1), r(0, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap()
            .constrain(vec![r(0, 1), r(1, 1), r(1, 1)], ConstraintOp::Le, r(1, 1))
            .unwrap();
        let sol = lp.solve_sparse().unwrap();
        assert_eq!(sol.objective_value, r(3, 2));
        let dual_total = sol.duals.iter().fold(Rational::ZERO, |acc, d| acc + *d);
        assert_eq!(dual_total, r(3, 2));
        assert!(sol.duals.iter().all(|d| !d.is_negative()));
    }

    #[test]
    fn many_pivots_trigger_refactorization() {
        // A staircase LP large enough to overflow the eta-file threshold.
        let n = 24usize;
        let mut lp = LinearProgram::new(Objective::Maximize, vec![r(1, 1); n]);
        for i in 0..n {
            let mut row = vec![r(0, 1); n];
            row[i] = r(1, 1);
            if i + 1 < n {
                row[i + 1] = r(1, 2);
            }
            lp = lp.constrain(row, ConstraintOp::Le, r(1, 1)).unwrap();
        }
        let sparse = lp.solve_sparse().unwrap();
        let dense = lp.solve().unwrap();
        assert_eq!(sparse.objective_value, dense.objective_value);
    }

    #[test]
    fn empty_lp_rejected() {
        let lp = LinearProgram::new(Objective::Maximize, vec![]);
        assert!(matches!(lp.solve_sparse().unwrap_err(), LpError::Malformed(_)));
    }
}
