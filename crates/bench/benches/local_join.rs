//! Criterion bench: the per-server local join engine (sequential ground
//! truth and the inner loop of every simulated server).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_cq::families;
use mpc_data::matching_database;
use mpc_storage::join::evaluate;

fn bench_local_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_join");
    group.sample_size(20);
    for (name, q) in [
        ("L2", families::chain(2)),
        ("L4", families::chain(4)),
        ("C3", families::cycle(3)),
        ("T3", families::star(3)),
    ] {
        let db = matching_database(&q, 20_000, 3);
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| evaluate(q, &db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_join);
criterion_main!(benches);
