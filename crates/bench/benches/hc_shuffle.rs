//! Criterion bench: HyperCube shuffle + local join throughput for the
//! triangle query (experiment E1's engine), across server counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_core::hypercube::HyperCube;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_sim::MpcConfig;

fn bench_hc_triangle(c: &mut Criterion) {
    let q = families::triangle();
    let n = 5_000;
    let db = matching_database(&q, n, 42);
    let eps = space_exponent(&q).unwrap().to_f64();

    let mut group = c.benchmark_group("hypercube_c3");
    group.sample_size(10);
    for p in [8usize, 64, 216] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let cfg = MpcConfig::new(p, eps);
            b.iter(|| HyperCube::run(&q, &db, &cfg).unwrap());
        });
    }
    group.finish();
}

fn bench_hc_chain(c: &mut Criterion) {
    let n = 5_000;
    let mut group = c.benchmark_group("hypercube_chain");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let q = families::chain(k);
        let db = matching_database(&q, n, 7);
        let eps = space_exponent(&q).unwrap().to_f64();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let cfg = MpcConfig::new(64, eps);
            b.iter(|| HyperCube::run(&q, &db, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hc_triangle, bench_hc_chain);
criterion_main!(benches);
