//! Criterion bench: skew-resilient routing (detection, residual planning,
//! shuffle and local join) versus vanilla HyperCube on identical skewed
//! inputs, across Zipf exponents and server counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_core::hypercube::HyperCube;
use mpc_cq::families;
use mpc_data::skew::zipf_database;
use mpc_sim::MpcConfig;
use mpc_skew::{HeavyHitterPolicy, SkewResilientProgram};

fn bench_skew_resilient_vs_vanilla(c: &mut Criterion) {
    let q = families::chain(2);
    let n = 5_000;
    let db = zipf_database(&q, n, n as usize, 1.2, 5);
    let cfg = MpcConfig::new(32, 0.0);

    let mut group = c.benchmark_group("skew_chain_zipf12");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("vanilla_hc"), |b| {
        b.iter(|| HyperCube::run(&q, &db, &cfg).unwrap());
    });
    group.bench_function(BenchmarkId::from_parameter("skew_resilient"), |b| {
        b.iter(|| mpc_skew::SkewResilient::run(&q, &db, &cfg).unwrap());
    });
    group.finish();
}

fn bench_planning_only(c: &mut Criterion) {
    // Detection + residual planning in isolation: the per-query overhead a
    // caller pays before any tuple moves.
    let q = families::chain(2);
    let n = 5_000;
    let db = zipf_database(&q, n, n as usize, 1.2, 5);
    let policy = HeavyHitterPolicy::default();

    let mut group = c.benchmark_group("skew_planning");
    group.sample_size(10);
    for p in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| SkewResilientProgram::new(&q, &db, p, &policy, 42).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skew_resilient_vs_vanilla, bench_planning_only);
criterion_main!(benches);
