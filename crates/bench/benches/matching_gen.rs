//! Criterion bench: matching-database generation (the input generator of
//! every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_cq::families;
use mpc_data::matching_database;

fn bench_matching_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_database");
    group.sample_size(20);
    for n in [1_000u64, 10_000, 100_000] {
        let q = families::cycle(3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| matching_database(&q, n, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching_gen);
criterion_main!(benches);
