//! Criterion bench: the event-driven backend against the synchronous
//! reference, across queue capacities and straggler injection.
//!
//! Three groups carry the async-backend perf story across PRs:
//!
//! * `sync_vs_async` — the same HyperCube shuffle on [`Cluster::run`]
//!   versus [`Cluster::run_async`]: what the per-link queues, the
//!   threaded tasks and the schedule replay cost on top of the reference
//!   loop;
//! * `queue_capacity` — the async backend under shrinking per-link
//!   windows (more backpressure, more drain-retry cycles);
//! * `schedule_replay` — the virtual-clock simulation alone
//!   ([`mpc_sim::schedule::simulate`]) on synthetic traffic, the pure
//!   discrete-event-loop cost.
//!
//! With `MPC_BENCH_JSON=<dir>` (or `--json <path>`) the bench also writes
//! machine-readable rows — `{name, mean_ns, iterations}` — to
//! `BENCH_async.json`:
//!
//! ```text
//! MPC_BENCH_JSON=target/bench-json cargo bench -p mpc-bench --bench async_backend
//! ```

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use serde::Serialize;

use mpc_bench::{json_output_path, maybe_write_json};
use mpc_core::hypercube::HyperCubeProgram;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_sim::schedule::{simulate, CostModel, MsgRecord};
use mpc_sim::{AsyncConfig, Cluster, MpcConfig, StragglerSpec};
use mpc_storage::Database;

fn setup(n: u64) -> (HyperCubeProgram, Database, Cluster) {
    let q = families::triangle();
    let db = matching_database(&q, n, 13);
    let program = HyperCubeProgram::new(&q, 27, 42).unwrap();
    let cluster = Cluster::new(MpcConfig::new(27, 1.0 / 3.0)).unwrap();
    (program, db, cluster)
}

fn bench_sync_vs_async(c: &mut Criterion) {
    let (program, db, cluster) = setup(2_000);
    let mut group = c.benchmark_group("sync_vs_async");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("synchronous"), |b| {
        b.iter(|| cluster.run(&program, &db).unwrap());
    });
    group.bench_function(BenchmarkId::from_parameter("event_driven"), |b| {
        b.iter(|| cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap());
    });
    group.bench_function(BenchmarkId::from_parameter("event_driven_straggler"), |b| {
        let cfg = AsyncConfig::new().with_straggler(StragglerSpec::new(7, 2, 8));
        b.iter(|| cluster.run_async(&program, &db, &cfg).unwrap());
    });
    group.finish();
}

fn bench_queue_capacity(c: &mut Criterion) {
    let (program, db, cluster) = setup(1_000);
    let mut group = c.benchmark_group("queue_capacity");
    group.sample_size(10);
    for capacity in [1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(capacity), &capacity, |b, &cap| {
            let cfg = AsyncConfig::new().with_queue_capacity(cap);
            b.iter(|| cluster.run_async(&program, &db, &cfg).unwrap());
        });
    }
    group.finish();
}

/// Synthetic all-to-all traffic: every worker sends `m` packets to every
/// other worker per round.
fn all_to_all(p: usize, rounds: usize, m: usize) -> Vec<MsgRecord> {
    let mut traffic = Vec::new();
    for round in 1..=rounds {
        for from in 0..p {
            let mut seq = 0u64;
            for to in 0..p {
                for _ in 0..m {
                    traffic.push(MsgRecord { round, from, to, seq, bytes: 24, tuples: 1 });
                    seq += 1;
                }
            }
        }
    }
    // Round 1 must come from input servers in the schedule model's
    // protocol; reuse worker ids shifted past p for it.
    for msg in traffic.iter_mut().filter(|m| m.round == 1) {
        msg.from += p;
    }
    traffic
}

fn bench_schedule_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_replay");
    group.sample_size(10);
    for (p, rounds, m) in [(16usize, 2usize, 8usize), (32, 3, 8)] {
        let traffic = all_to_all(p, rounds, m);
        let slowdown = vec![1u64; p];
        let id = format!("p{p}_r{rounds}_{}msgs", traffic.len());
        group.bench_with_input(BenchmarkId::from_parameter(id), &traffic, |b, traffic| {
            b.iter(|| simulate(p, rounds, traffic, &CostModel::default(), &slowdown, 16));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sync_vs_async, bench_queue_capacity, bench_schedule_replay);

/// One machine-readable measurement for `BENCH_async.json`.
#[derive(Serialize)]
struct BenchRow {
    name: String,
    mean_ns: u128,
    iterations: u32,
}

/// Mean wall-clock nanoseconds of `f` (one warm-up + `iters` samples).
fn time_ns<F: FnMut()>(mut f: F, iters: u32) -> u128 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() / iters as u128
}

/// Measure the headline cases once more, deterministically, and write the
/// JSON artefact. Skipped unless a JSON sink was requested.
fn write_bench_json() {
    if json_output_path("BENCH_async").is_none() {
        return;
    }
    let iters = 10u32;
    let (program, db, cluster) = setup(2_000);
    let mut rows = vec![
        BenchRow {
            name: "synchronous/C3_hc".to_string(),
            mean_ns: time_ns(|| drop(cluster.run(&program, &db).unwrap()), iters),
            iterations: iters,
        },
        BenchRow {
            name: "event_driven/C3_hc".to_string(),
            mean_ns: time_ns(
                || drop(cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap()),
                iters,
            ),
            iterations: iters,
        },
    ];
    for capacity in [1usize, 64] {
        let cfg = AsyncConfig::new().with_queue_capacity(capacity);
        rows.push(BenchRow {
            name: format!("event_driven_cap{capacity}/C3_hc"),
            mean_ns: time_ns(|| drop(cluster.run_async(&program, &db, &cfg).unwrap()), iters),
            iterations: iters,
        });
    }
    let traffic = all_to_all(16, 2, 8);
    rows.push(BenchRow {
        name: format!("schedule_replay/{}msgs", traffic.len()),
        mean_ns: time_ns(
            || drop(simulate(16, 2, &traffic, &CostModel::default(), &[1u64; 16], 16)),
            iters,
        ),
        iterations: iters,
    });
    maybe_write_json("BENCH_async", &rows);
}

fn main() {
    benches();
    write_bench_json();
}
