//! Criterion bench: multi-round plan construction and execution for chain
//! queries (the engine of experiments E3/E4 and Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_core::multiround::executor::MultiRound;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::Rational;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_construction");
    for k in [8usize, 16, 32] {
        let q = families::chain(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| MultiRoundPlan::build(&q, Rational::ZERO).unwrap());
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_execution");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let q = families::chain(k);
        let db = matching_database(&q, 2_000, 5);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| MultiRound::run(&q, &db, 16, Rational::ZERO, 7).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_execution);
criterion_main!(benches);
