//! Criterion bench: label-propagation connected components on layered
//! path graphs (the engine of experiment E5 / Theorem 4.10), small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_data::graphs::LayeredGraph;
use mpc_graph::cc::run_cc;

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_propagation_cc");
    group.sample_size(10);
    for layers in [2usize, 4, 8] {
        let g = LayeredGraph::generate(layers, 200, 3);
        let edges = g.edge_relation("E");
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, &layers| {
            b.iter(|| run_cc(&edges, g.num_vertices(), 16, 0.0, layers + 1, 1).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cc);
criterion_main!(benches);
