//! Criterion bench: exact rational simplex on the cover/packing LPs of the
//! running query families (the engine behind Figure 1 / Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mpc_cq::families;
use mpc_lp::QueryLps;

fn bench_query_lps(c: &mut Criterion) {
    let queries = vec![
        ("C3", families::cycle(3)),
        ("C8", families::cycle(8)),
        ("L16", families::chain(16)),
        ("T8", families::star(8)),
        ("B5_2", families::binomial(5, 2).unwrap()),
        ("SP5", families::spoke(5)),
    ];
    let mut group = c.benchmark_group("query_lps");
    for (name, q) in queries {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| QueryLps::solve(q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_lps);
criterion_main!(benches);
