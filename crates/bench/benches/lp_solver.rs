//! Criterion bench: the layered LP solver behind Figure 1 / Table 1.
//!
//! Three groups track the perf story of the LP layer across PRs:
//!
//! * `query_lps` — the production fast path ([`QueryLps::solve`]:
//!   closed form → cache → sparse simplex) on the figure-1 suite plus the
//!   `--k` sweep sizes;
//! * `sparse_vs_dense` — the raw sparse revised simplex against the dense
//!   tableau oracle on the same queries (no cache, no closed forms);
//! * `cache_cold_vs_warm` — the full layered solve against a cold private
//!   cache vs a pre-warmed one, on **non-family** queries (recognised
//!   families short-circuit to the closed form and never touch the cache,
//!   so family queries would measure the wrong layer).
//!
//! With `MPC_BENCH_JSON=<dir>` (or `--json <path>`) the bench also writes
//! machine-readable rows — `{name, mean_ns, iterations}` — to
//! `BENCH_lp.json` via [`mpc_bench::maybe_write_json`], so the trajectory
//! is diffable between PRs:
//!
//! ```text
//! MPC_BENCH_JSON=target/bench-json cargo bench -p mpc-bench --bench lp_solver
//! ```

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use serde::Serialize;

use mpc_bench::{json_output_path, maybe_write_json};
use mpc_cq::{families, Query};
use mpc_lp::{LpCache, QueryLps};

/// The benched queries: the figure-1 suite plus the sweep sizes the
/// `table1`/`figure1_lps` binaries now reach.
fn suite() -> Vec<(&'static str, Query)> {
    vec![
        ("C3", families::cycle(3)),
        ("C8", families::cycle(8)),
        ("C18", families::cycle(18)),
        ("L16", families::chain(16)),
        ("L24", families::chain(24)),
        ("T8", families::star(8)),
        ("B5_2", families::binomial(5, 2).unwrap()),
        ("B8_2", families::binomial(8, 2).unwrap()),
        ("B12_2", families::binomial(12, 2).unwrap()),
        ("SP5", families::spoke(5)),
        ("SP9", families::spoke(9)),
        ("W", families::witness_query()),
    ]
}

fn bench_query_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_lps");
    for (name, q) in suite() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| QueryLps::solve(q).unwrap());
        });
    }
    group.finish();
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    for (name, q) in suite() {
        group.bench_with_input(BenchmarkId::new("sparse", name), &q, |b, q| {
            b.iter(|| QueryLps::solve_sparse(q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &q, |b, q| {
            b.iter(|| QueryLps::solve_dense(q).unwrap());
        });
    }
    group.finish();
}

/// Non-family queries for the cache group: a triangle with a pendant path
/// of `tail` edges (never recognised, so the layered solve reaches the
/// cache), plus the witness query.
fn tailed_triangle(tail: usize) -> Query {
    let mut atoms = vec![
        ("S1".to_string(), vec!["a".to_string(), "b".to_string()]),
        ("S2".to_string(), vec!["b".to_string(), "c".to_string()]),
        ("S3".to_string(), vec!["c".to_string(), "a".to_string()]),
        ("B".to_string(), vec!["a".to_string(), "t0".to_string()]),
    ];
    for j in 0..tail {
        atoms.push((format!("P{j}"), vec![format!("t{j}"), format!("t{}", j + 1)]));
    }
    Query::new(format!("TT{tail}"), atoms).expect("valid tailed triangle")
}

/// The queries the cache groups run over.
fn cache_suite() -> Vec<(String, Query)> {
    let mut qs = vec![("W".to_string(), families::witness_query())];
    for tail in [2usize, 8, 16] {
        qs.push((format!("TT{tail}"), tailed_triangle(tail)));
    }
    qs
}

fn bench_cache_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_cold_vs_warm");
    for (name, q) in cache_suite() {
        group.bench_with_input(BenchmarkId::new("cold", &name), &q, |b, q| {
            b.iter(|| {
                let cache = LpCache::new(8);
                QueryLps::solve_with_cache(&cache, q).unwrap()
            });
        });
        let warm = LpCache::new(8);
        QueryLps::solve_with_cache(&warm, &q).unwrap();
        group.bench_with_input(BenchmarkId::new("warm", &name), &q, |b, q| {
            b.iter(|| QueryLps::solve_with_cache(&warm, q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_lps, bench_sparse_vs_dense, bench_cache_cold_vs_warm);

/// One machine-readable measurement for `BENCH_lp.json`.
#[derive(Serialize)]
struct BenchRow {
    name: String,
    mean_ns: u128,
    iterations: u32,
}

/// Mean wall-clock nanoseconds of `f` (one warm-up + `iters` samples).
fn time_ns<F: FnMut()>(mut f: F, iters: u32) -> u128 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() / iters as u128
}

/// Measure every case once more, deterministically, and write the JSON
/// artefact. Skipped entirely unless a JSON sink was requested, so plain
/// `cargo test` runs stay fast.
fn write_bench_json() {
    if json_output_path("BENCH_lp").is_none() {
        return;
    }
    let iters = 15u32;
    let mut rows: Vec<BenchRow> = Vec::new();
    for (name, q) in suite() {
        rows.push(BenchRow {
            name: format!("sparse/{name}"),
            mean_ns: time_ns(|| drop(QueryLps::solve_sparse(&q).unwrap()), iters),
            iterations: iters,
        });
        rows.push(BenchRow {
            name: format!("dense/{name}"),
            mean_ns: time_ns(|| drop(QueryLps::solve_dense(&q).unwrap()), iters),
            iterations: iters,
        });
        rows.push(BenchRow {
            name: format!("fastpath/{name}"),
            mean_ns: time_ns(|| drop(QueryLps::solve(&q).unwrap()), iters),
            iterations: iters,
        });
    }
    for (name, q) in cache_suite() {
        rows.push(BenchRow {
            name: format!("cache_cold/{name}"),
            mean_ns: time_ns(
                || {
                    let cache = LpCache::new(8);
                    drop(QueryLps::solve_with_cache(&cache, &q).unwrap());
                },
                iters,
            ),
            iterations: iters,
        });
        let warm = LpCache::new(8);
        QueryLps::solve_with_cache(&warm, &q).unwrap();
        rows.push(BenchRow {
            name: format!("cache_warm/{name}"),
            mean_ns: time_ns(|| drop(QueryLps::solve_with_cache(&warm, &q).unwrap()), iters),
            iterations: iters,
        });
    }
    maybe_write_json("BENCH_lp", &rows);
}

fn main() {
    benches();
    write_bench_json();
}
