//! Experiment **E10** (journal version, arXiv:1602.06236): the
//! **output-sensitive load bounds**. The 2017 journal version of the paper
//! refines the input-size-only bounds of PODS 2013 with the output
//! cardinality `m`: any correct one-round run must receive at least
//! `(m/p)^{1/ρ*}` tuples on some server (the AGM emission bound, an
//! instance-level theorem), while HyperCube stays within its
//! rounding-aware upper bound `Σⱼ n·replⱼ/cells`. This experiment sweeps
//! `m` on planted databases whose output cardinality is exact by
//! construction and **exits non-zero** if any simulated load ever beats
//! the proven lower bound or exceeds the upper bound by more than the
//! rounding slack — which is how CI uses it.
//!
//! A second table runs the journal's refined multi-round analysis:
//! per-round load predictions of `MultiRoundPlan::predict_loads` against
//! the simulated per-round maxima on matching chains, gated to agree
//! within the same slack.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs (CI uses 0.1),
//! `--slack <f64>` sets the hash-imbalance slack factor (default 2.0),
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: two markdown tables; rows of the first = (query, m) sweep
//! points with bounds and the simulated load, rows of the second =
//! (chain, round) with predicted vs simulated tuples.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_output_sensitive
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::analysis::QueryAnalysis;
use mpc_core::hypercube::HyperCube;
use mpc_core::multiround::executor::MultiRound;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_core::shares::ShareAllocation;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_data::output_controlled_database;
use mpc_lp::Rational;
use mpc_sim::MpcConfig;

#[derive(Serialize)]
struct SweepRow {
    query: String,
    p: usize,
    n: u64,
    m: u64,
    lower_tuples: f64,
    matching_lower_tuples: f64,
    rounded_upper_tuples: f64,
    simulated_max_tuples: u64,
    max_emitted_per_server: usize,
    output_exact: bool,
    in_bracket: bool,
}

#[derive(Serialize)]
struct RoundRow {
    query: String,
    round: usize,
    predicted_tuples: f64,
    simulated_max_tuples: u64,
    ratio: f64,
    ok: bool,
}

fn main() {
    let n = scaled(4000, 240);
    let slack = mpc_bench::arg_f64("--slack", 2.0, |v| v >= 1.0);
    let mut failures: Vec<String> = Vec::new();

    // ---- One-round sweep: output-sensitive bounds vs simulated loads ----
    let cases = [
        (families::triangle(), 27usize),
        (families::cycle(4), 16),
        (families::chain(3), 16),
        (families::star(3), 16),
    ];
    let mut table = TextTable::new([
        "query",
        "p",
        "m",
        "lower (m/p)^(1/ρ*)",
        "matching lower",
        "upper Σ n·repl/cells",
        "simulated max tuples",
        "max emitted/server",
        "verdict",
    ]);
    let mut sweep_rows = Vec::new();
    for (q, p) in cases {
        let analysis = QueryAnalysis::analyze(&q).expect("LP solvable");
        let eps = analysis.space_exponent.to_f64();
        let m_sweep: Vec<u64> = {
            let mut ms: Vec<u64> =
                [0.0, 0.01, 0.1, 0.5, 1.0].iter().map(|f| (n as f64 * f) as u64).collect();
            ms.dedup();
            ms
        };
        for (i, &m) in m_sweep.iter().enumerate() {
            let planted = output_controlled_database(&q, n, m, 42 + i as u64);
            let bounds = analysis.output_bounds(n, m, p).expect("bounds computable");
            let run = HyperCube::run(&q, &planted.db, &MpcConfig::new(p, eps))
                .expect("HyperCube run succeeds");
            let verdict = bounds
                .bracket(&q, &run.allocation, run.result.max_load_tuples(), slack)
                .expect("bracket computable");
            let max_emitted = run.result.per_server_output.iter().copied().max().unwrap_or(0);
            let output_exact = run.result.output.len() as u64 == planted.output_size;

            if !output_exact {
                failures.push(format!(
                    "{} m={m}: simulated output {} ≠ planted cardinality {}",
                    q.name(),
                    run.result.output.len(),
                    planted.output_size
                ));
            }
            if !verdict.lower_ok {
                failures.push(format!(
                    "{} m={m}: simulated load {} beats the proven lower bound {:.2}",
                    q.name(),
                    verdict.simulated_max_tuples,
                    verdict.lower_tuples
                ));
            }
            if !verdict.upper_ok {
                failures.push(format!(
                    "{} m={m}: simulated load {} exceeds upper {:.2} × slack {slack}",
                    q.name(),
                    verdict.simulated_max_tuples,
                    verdict.rounded_upper_tuples
                ));
            }
            if (max_emitted as f64) + 1e-9 < bounds.output_lower_per_server {
                failures.push(format!(
                    "{} m={m}: max emitted/server {max_emitted} below m/p = {:.2}",
                    q.name(),
                    bounds.output_lower_per_server
                ));
            }

            let row = SweepRow {
                query: q.name().to_string(),
                p,
                n,
                m,
                lower_tuples: bounds.lower_tuples,
                matching_lower_tuples: bounds.matching_lower_tuples,
                rounded_upper_tuples: verdict.rounded_upper_tuples,
                simulated_max_tuples: verdict.simulated_max_tuples,
                max_emitted_per_server: max_emitted,
                output_exact,
                in_bracket: verdict.ok(),
            };
            table.row([
                row.query.clone(),
                p.to_string(),
                m.to_string(),
                format!("{:.1}", row.lower_tuples),
                format!("{:.1}", row.matching_lower_tuples),
                format!("{:.1}", row.rounded_upper_tuples),
                row.simulated_max_tuples.to_string(),
                row.max_emitted_per_server.to_string(),
                if row.in_bracket && row.output_exact {
                    "ok".to_string()
                } else {
                    "FAIL".to_string()
                },
            ]);
            sweep_rows.push(row);
        }
    }
    table.print(&format!(
        "E10 — output-sensitive bounds, planted databases (n = {n}, slack = {slack})"
    ));
    println!(
        "\nExpected shape (journal Thm 4.x): the emission lower bound grows like m^(1/ρ*) and \
         meets the matching-expectation bound n^(1-e/τ*)·(m/p)^(1/τ*) at full output; the \
         simulated HyperCube load is flat in m and sits inside [lower, upper·slack] everywhere."
    );

    // ---- Multi-round: predicted vs simulated per-round loads ------------
    let mut round_table = TextTable::new([
        "query",
        "round",
        "predicted tuples/server",
        "simulated max tuples",
        "ratio",
        "verdict",
    ]);
    let mut round_rows = Vec::new();
    for k in [4usize, 8] {
        let q = families::chain(k);
        let p = 8usize;
        let db = matching_database(&q, n, 7 + k as u64);
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).expect("plan builds");
        let profile = plan.predict_loads(p, n).expect("profile computable");
        let outcome = MultiRound::run_plan(&plan, &db, p, 3).expect("plan runs");
        let truth = mpc_storage::join::evaluate(&q, &db).expect("sequential join");
        if !outcome.result.output.same_tuples(&truth) {
            failures.push(format!("L{k}: multi-round output diverges from sequential join"));
        }
        for cmp in profile.compare(&outcome.result).expect("round counts match") {
            let ok = cmp.ratio <= slack && cmp.ratio >= 1.0 / slack;
            if !ok {
                failures.push(format!(
                    "L{k} round {}: simulated {} vs predicted {:.1} (ratio {:.2}) outside slack",
                    cmp.round, cmp.simulated_max_tuples, cmp.predicted_tuples, cmp.ratio
                ));
            }
            round_table.row([
                format!("L{k}"),
                cmp.round.to_string(),
                format!("{:.1}", cmp.predicted_tuples),
                cmp.simulated_max_tuples.to_string(),
                format!("{:.2}", cmp.ratio),
                if ok { "ok".to_string() } else { "FAIL".to_string() },
            ]);
            round_rows.push(RoundRow {
                query: format!("L{k}"),
                round: cmp.round,
                predicted_tuples: cmp.predicted_tuples,
                simulated_max_tuples: cmp.simulated_max_tuples,
                ratio: cmp.ratio,
                ok,
            });
        }
        // Sanity: the share-allocation layer agrees the plan is feasible.
        let _ = ShareAllocation::optimal(&q, p).expect("allocation solvable");
    }
    round_table.print(&format!(
        "E10b — refined multi-round analysis: predicted vs simulated per-round loads \
         (matching databases, n = {n}, p = 8)"
    ));

    #[derive(Serialize)]
    struct Artefact {
        sweep: Vec<SweepRow>,
        rounds: Vec<RoundRow>,
    }
    maybe_write_json("exp_output_sensitive", &Artefact { sweep: sweep_rows, rounds: round_rows });

    if !failures.is_empty() {
        eprintln!("\nBOUND VIOLATIONS ({}):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("\nAll sweep points sit inside the proven bracket; multi-round predictions agree.");
}
