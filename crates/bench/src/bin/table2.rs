//! Regenerates **Table 2** of the paper: the tradeoff between the space
//! exponent and the number of communication rounds for `C_k`, `L_k`, `T_k`
//! and `SP_k` — the one-round space exponent, the rounds needed at ε = 0,
//! and the rounds/space tradeoff `r ≈ log k / log(2/(1−ε))`, with the
//! planner's depth, the round lower bound and a simulated execution check
//! for each entry.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the simulated inputs;
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = query family instances,
//! columns = ε*, round counts at ε ∈ {0, 1/2, 2/3} (lower bound and
//! planner depth) and a simulated-vs-sequential check.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin table2
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::analysis::QueryAnalysis;
use mpc_core::multiround::executor::MultiRound;
use mpc_core::multiround::lower_bound::round_lower_bound;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_cq::{families, Query};
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    query: String,
    space_exponent: String,
    rounds_at_eps0_lower: usize,
    rounds_at_eps0_plan: usize,
    rounds_at_eps_half_plan: usize,
    rounds_at_eps_two_thirds_plan: usize,
    simulated_correct: bool,
}

fn rounds_at(q: &Query, eps: Rational) -> usize {
    MultiRoundPlan::build(q, eps).expect("planning succeeds").num_rounds()
}

fn main() {
    let n = scaled(400, 50);
    let p = 16;
    let queries = vec![
        families::cycle(4),
        families::cycle(6),
        families::cycle(8),
        families::chain(4),
        families::chain(8),
        families::chain(16),
        families::star(4),
        families::spoke(2),
        families::spoke(3),
        families::spoke(4),
    ];

    let mut table = TextTable::new([
        "query",
        "space exponent ε*",
        "rounds @ ε=0 (lower)",
        "rounds @ ε=0 (plan)",
        "rounds @ ε=1/2",
        "rounds @ ε=2/3",
        "simulated == sequential",
    ]);
    let mut rows = Vec::new();
    for q in &queries {
        let analysis = QueryAnalysis::analyze(q).expect("analysis succeeds");
        let lower0 = round_lower_bound(q, Rational::ZERO).expect("bound computable");
        let plan0 = rounds_at(q, Rational::ZERO);
        let plan_half = rounds_at(q, Rational::new(1, 2));
        let plan_two_thirds = rounds_at(q, Rational::new(2, 3));

        // Execute the ε = 0 plan and check exactness.
        let db = matching_database(q, n, 7);
        let outcome = MultiRound::run(q, &db, p, Rational::ZERO, 3).expect("execution succeeds");
        let truth = evaluate(q, &db).expect("sequential evaluation succeeds");
        let correct = outcome.result.output.same_tuples(&truth);

        table.row([
            q.name().to_string(),
            analysis.space_exponent.to_string(),
            lower0.to_string(),
            plan0.to_string(),
            plan_half.to_string(),
            plan_two_thirds.to_string(),
            correct.to_string(),
        ]);
        rows.push(Row {
            query: q.name().to_string(),
            space_exponent: analysis.space_exponent.to_string(),
            rounds_at_eps0_lower: lower0,
            rounds_at_eps0_plan: plan0,
            rounds_at_eps_half_plan: plan_half,
            rounds_at_eps_two_thirds_plan: plan_two_thirds,
            simulated_correct: correct,
        });
    }
    table.print(&format!(
        "Table 2 (paper §4) — rounds/space tradeoff, simulated at p = {p}, n = {n}"
    ));
    println!(
        "\nPaper reference: Ck and Lk need ⌈log k⌉ rounds at ε = 0 and \
         ~log k / log(2/(1−ε)) in general; Tk needs 1 round; SPk needs 2 rounds at ε = 0 \
         despite a one-round space exponent of 1 − 1/k."
    );
    maybe_write_json("table2", &rows);
}
