//! Regenerates **Figure 1 / Example 2.2** of the paper: the fractional
//! vertex-cover LP and its dual edge-packing LP, solved exactly for the
//! worked examples `L_3` and `C_3` (plus a few more), reporting the
//! optimal solutions, their common optimal value `τ*`, tightness, and the
//! **solver path** that produced each row (`closed-form` / `cache-hit` /
//! `simplex`).
//!
//! The `--k <n>` sweep (default 15, ≥3× the original sizes) appends
//! `C_k`, `L_{3k/5}`, `T_{3k/5}`, `B_{min(4k/5,12),2}` and `SP_{3k/5}`.
//! Every row is cross-checked by [`mpc_bench::verify_lp_solver_agreement`]
//! — dense oracle, sparse revised simplex and closed form must agree
//! exactly, and the binary exits non-zero otherwise (a CI smoke step).
//!
//! CLI flags: `--k <n>` sweeps larger family instances; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = queries, columns = the
//! optimal vertex cover and edge packing, their common value τ*,
//! duality/tightness checks and the solver path that produced the row.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin figure1_lps [-- --k 20]
//! ```

use serde::Serialize;

use mpc_bench::{arg_usize, fmt_weights, maybe_write_json, verify_lp_solver_agreement, TextTable};
use mpc_cq::families;
use mpc_lp::{QueryLps, Rational};

#[derive(Serialize)]
struct Row {
    query: String,
    vertex_cover: Vec<String>,
    cover_value: String,
    edge_packing: Vec<String>,
    packing_value: String,
    duality_holds: bool,
    packing_tight: bool,
    solver_path: String,
}

fn main() {
    let k = arg_usize("--k", 15).max(5);
    let mut queries = vec![
        families::chain(3),
        families::cycle(3),
        families::cycle(5),
        families::star(3),
        families::binomial(4, 2).expect("valid parameters"),
        families::spoke(3),
        families::witness_query(),
    ];
    // Sweep rows: ≥3× the sizes above.
    queries.extend([
        families::cycle(k),
        families::chain(3 * k / 5),
        families::star(3 * k / 5),
        families::binomial((4 * k / 5).min(12), 2).expect("valid parameters"),
        families::spoke(3 * k / 5),
    ]);

    let mut table = TextTable::new([
        "query",
        "optimal vertex cover v",
        "Σv",
        "optimal edge packing u",
        "Σu",
        "duality Σv = Σu",
        "packing tight",
        "solver path",
    ]);
    let mut rows = Vec::new();
    for q in &queries {
        if let Err(msg) = verify_lp_solver_agreement(q) {
            eprintln!("solver-path disagreement: {msg}");
            std::process::exit(1);
        }
        let (lps, path) =
            QueryLps::solve_traced(q).expect("the cover/packing LPs are always feasible");
        let cover: Vec<String> =
            lps.vertex_cover().weights().iter().map(Rational::to_string).collect();
        let packing: Vec<String> =
            lps.edge_packing().weights().iter().map(Rational::to_string).collect();
        let duality = lps.vertex_cover().total() == lps.edge_packing().total();
        let tight = lps.edge_packing().is_tight_for(q);
        table.row([
            if q.num_vars() > 8 { q.name().to_string() } else { q.to_string() },
            fmt_weights(&cover),
            lps.vertex_cover().total().to_string(),
            fmt_weights(&packing),
            lps.edge_packing().total().to_string(),
            duality.to_string(),
            tight.to_string(),
            path.to_string(),
        ]);
        rows.push(Row {
            query: q.name().to_string(),
            vertex_cover: cover,
            cover_value: lps.vertex_cover().total().to_string(),
            edge_packing: packing,
            packing_value: lps.edge_packing().total().to_string(),
            duality_holds: duality,
            packing_tight: tight,
            solver_path: path.to_string(),
        });
    }
    table.print(&format!(
        "Figure 1 / Example 2.2 — vertex-cover and edge-packing LPs, solved exactly \
         (sweep to k = {k})"
    ));
    println!(
        "\nPaper reference (Example 2.2): L3 has optimal cover (0,1,1,0) with value 2 and \
         optimal packing (1,0,1), which is tight; C3 has the all-1/2 cover with τ* = 3/2. \
         All three solver paths (dense, sparse, closed form) were verified to agree exactly \
         on every row."
    );
    maybe_write_json("figure1_lps", &rows);
}
