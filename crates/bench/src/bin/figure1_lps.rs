//! Regenerates **Figure 1 / Example 2.2** of the paper: the fractional
//! vertex-cover LP and its dual edge-packing LP, solved exactly for the
//! worked examples `L_3` and `C_3` (plus a few more), reporting the
//! optimal solutions, their common optimal value `τ*`, and tightness.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin figure1_lps
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, TextTable};
use mpc_cq::families;
use mpc_lp::{QueryLps, Rational};

#[derive(Serialize)]
struct Row {
    query: String,
    vertex_cover: Vec<String>,
    cover_value: String,
    edge_packing: Vec<String>,
    packing_value: String,
    duality_holds: bool,
    packing_tight: bool,
}

fn main() {
    let queries = vec![
        families::chain(3),
        families::cycle(3),
        families::cycle(5),
        families::star(3),
        families::binomial(4, 2).expect("valid parameters"),
        families::spoke(3),
        families::witness_query(),
    ];

    let mut table = TextTable::new([
        "query",
        "optimal vertex cover v",
        "Σv",
        "optimal edge packing u",
        "Σu",
        "duality Σv = Σu",
        "packing tight",
    ]);
    let mut rows = Vec::new();
    for q in &queries {
        let lps = QueryLps::solve(q).expect("the cover/packing LPs are always feasible");
        let cover: Vec<String> =
            lps.vertex_cover().weights().iter().map(Rational::to_string).collect();
        let packing: Vec<String> =
            lps.edge_packing().weights().iter().map(Rational::to_string).collect();
        let duality = lps.vertex_cover().total() == lps.edge_packing().total();
        let tight = lps.edge_packing().is_tight_for(q);
        table.row([
            q.to_string(),
            format!("({})", cover.join(", ")),
            lps.vertex_cover().total().to_string(),
            format!("({})", packing.join(", ")),
            lps.edge_packing().total().to_string(),
            duality.to_string(),
            tight.to_string(),
        ]);
        rows.push(Row {
            query: q.name().to_string(),
            vertex_cover: cover,
            cover_value: lps.vertex_cover().total().to_string(),
            edge_packing: packing,
            packing_value: lps.edge_packing().total().to_string(),
            duality_holds: duality,
            packing_tight: tight,
        });
    }
    table.print("Figure 1 / Example 2.2 — vertex-cover LP and edge-packing LP, solved exactly");
    println!(
        "\nPaper reference (Example 2.2): L3 has optimal cover (0,1,1,0) with value 2 and \
         optimal packing (1,0,1), which is tight; C3 has the all-1/2 cover with τ* = 3/2."
    );
    maybe_write_json("figure1_lps", &rows);
}
