//! Experiment **E4** (Section 4.1, query `SP_k`): one round versus two.
//! `SP_k = ⋀_i R_i(z,x_i), S_i(x_i,y_i)` has τ* = k, so a single round
//! needs replication `p^{1−1/k}`; a two-round plan (join each `R_i,S_i`
//! pair, then join everything on `z`) needs essentially no replication.
//! The shape to reproduce: the one-round max load grows with k (and with
//! p) while the two-round load stays flat.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the input; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = (spoke count `k`, `p`),
//! columns = the one-round ε*, replication and max bytes against the
//! two-round plan's, plus a correctness check.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_spoke_tradeoff
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCube;
use mpc_core::multiround::executor::MultiRound;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_sim::MpcConfig;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    k: usize,
    p: usize,
    one_round_epsilon: String,
    one_round_replication: f64,
    one_round_max_bytes: u64,
    two_round_replication: f64,
    two_round_max_bytes: u64,
    both_correct: bool,
}

fn main() {
    let n = scaled(2000, 200);
    let mut table = TextTable::new([
        "k",
        "p",
        "1-round ε* = 1-1/k",
        "1-round replication",
        "1-round max bytes",
        "2-round max replication",
        "2-round max bytes",
        "correct",
    ]);
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 5] {
        let q = families::spoke(k);
        let db = matching_database(&q, n, 31 + k as u64);
        let truth = evaluate(&q, &db).expect("sequential evaluation succeeds");
        for p in [16usize, 64] {
            let eps = space_exponent(&q).expect("LP solvable");
            let one_round =
                HyperCube::run(&q, &db, &MpcConfig::new(p, eps.to_f64())).expect("HC run succeeds");
            let two_round =
                MultiRound::run(&q, &db, p, Rational::ZERO, 7).expect("plan execution succeeds");
            let correct = one_round.result.output.same_tuples(&truth)
                && two_round.result.output.same_tuples(&truth);
            let row = Row {
                k,
                p,
                one_round_epsilon: eps.to_string(),
                one_round_replication: one_round.result.max_replication_rate(),
                one_round_max_bytes: one_round.result.max_load_bytes(),
                two_round_replication: two_round.result.max_replication_rate(),
                two_round_max_bytes: two_round.result.max_load_bytes(),
                both_correct: correct,
            };
            table.row([
                k.to_string(),
                p.to_string(),
                row.one_round_epsilon.clone(),
                format!("{:.2}", row.one_round_replication),
                row.one_round_max_bytes.to_string(),
                format!("{:.2}", row.two_round_replication),
                row.two_round_max_bytes.to_string(),
                correct.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print(&format!(
        "E4 — SPk: one round with replication p^(1-1/k) vs two rounds with O(1) (n = {n})"
    ));
    println!(
        "\nExpected shape (§4.1): the one-round replication grows towards p as k grows \
         (p^(1-1/k)), while the two-round plan keeps every round's replication near 1."
    );
    maybe_write_json("exp_spoke_tradeoff", &rows);
}
