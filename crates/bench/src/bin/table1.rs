//! Regenerates **Table 1** of the paper: for the running query families
//! `C_k`, `T_k`, `L_k` and `B_{k,m}` — the expected answer size over
//! matching databases, an optimal fractional vertex cover, the HyperCube
//! share exponents, the fractional covering number `τ*` and the space
//! exponent — with the analytic values cross-checked against measurements
//! on random matching databases.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin table1
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::analysis::QueryAnalysis;
use mpc_cq::{families, Query};
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    query: String,
    expected_answer_size: String,
    measured_answer_size: f64,
    vertex_cover: Vec<String>,
    share_exponents: Vec<String>,
    tau_star: String,
    space_exponent: String,
}

fn analyse(q: &Query, n: u64, seeds: &[u64]) -> Row {
    let a = QueryAnalysis::analyze(q).expect("analysis succeeds for the running examples");
    // Measure the answer size over a few random matching databases.
    let mut total = 0usize;
    for &seed in seeds {
        let db = matching_database(q, n, seed);
        total += evaluate(q, &db).expect("evaluation succeeds").len();
    }
    let measured = total as f64 / seeds.len() as f64;
    let expected = match a.expected_answer_exponent {
        0 => "1".to_string(),
        1 => "n".to_string(),
        e => format!("n^{e}"),
    };
    Row {
        query: q.name().to_string(),
        expected_answer_size: expected,
        measured_answer_size: measured,
        vertex_cover: a.vertex_cover.iter().map(Rational::to_string).collect(),
        share_exponents: a.share_exponents.iter().map(Rational::to_string).collect(),
        tau_star: a.tau_star.to_string(),
        space_exponent: a.space_exponent.to_string(),
    }
}

fn main() {
    let n = scaled(4000, 100);
    let seeds = [11u64, 22, 33];
    let queries = vec![
        families::cycle(3),
        families::cycle(4),
        families::cycle(6),
        families::star(3),
        families::star(5),
        families::chain(3),
        families::chain(4),
        families::chain(5),
        families::binomial(3, 2).expect("valid parameters"),
        families::binomial(4, 2).expect("valid parameters"),
    ];

    let mut table = TextTable::new([
        "query",
        "E[|q|] (Lemma 3.4)",
        "measured |q| (avg)",
        "min vertex cover",
        "share exponents",
        "τ*",
        "space exponent",
    ]);
    let mut rows = Vec::new();
    for q in &queries {
        let row = analyse(q, n, &seeds);
        table.row([
            row.query.clone(),
            row.expected_answer_size.clone(),
            format!("{:.1}", row.measured_answer_size),
            format!("({})", row.vertex_cover.join(", ")),
            format!("({})", row.share_exponents.join(", ")),
            row.tau_star.clone(),
            row.space_exponent.clone(),
        ]);
        rows.push(row);
    }
    table.print(&format!("Table 1 (paper §2.3/§3.3) — n = {n}, {} seeds", seeds.len()));
    println!(
        "\nPaper reference values: Ck → (1/2,…), τ* = k/2, ε = 1−2/k, E = 1; \
         Tk → τ* = 1, ε = 0, E = n; Lk → τ* = ⌈k/2⌉, ε = 1−1/⌈k/2⌉, E = n; \
         B(k,m) → τ* = k/m, ε = 1−m/k."
    );
    maybe_write_json("table1", &rows);
}
