//! Regenerates **Table 1** of the paper: for the running query families
//! `C_k`, `T_k`, `L_k` and `B_{k,m}` — the expected answer size over
//! matching databases, an optimal fractional vertex cover, the HyperCube
//! share exponents, the fractional covering number `τ*` and the space
//! exponent — with the analytic values cross-checked against measurements
//! on random matching databases.
//!
//! The `--k <n>` sweep (default 18, ≥3× the sizes of the original table)
//! extends the table with LP-only rows `C_k`, `L_k`, `T_k`, `B_{min(k,12),2}`
//! and `SP_{k/2}`, and a **solver-path** column reports which LP layer
//! answered each row (`closed-form` / `cache-hit` / `simplex`).
//!
//! Every row is verified by [`mpc_bench::verify_lp_solver_agreement`]: the
//! dense oracle, the sparse revised simplex and the closed form (when
//! recognised) must agree exactly, and the binary exits non-zero otherwise
//! — CI runs it (scaled down) as a smoke step.
//!
//! CLI flags: `--k <n>` sweeps larger family instances; `--scale <f64>`
//! shrinks/grows the measured inputs; `--json <path>` (or
//! `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = query family instances,
//! columns = expected vs measured answer sizes, the minimum vertex
//! cover, share exponents, τ*, the space exponent and the solver path.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin table1 [-- --k 24] [-- --scale 0.1]
//! ```

use serde::Serialize;

use mpc_bench::{
    arg_usize, fmt_weights, maybe_write_json, scaled, verify_lp_solver_agreement, TextTable,
};
use mpc_core::analysis::QueryAnalysis;
use mpc_cq::{families, Query};
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    query: String,
    expected_answer_size: String,
    measured_answer_size: Option<f64>,
    vertex_cover: Vec<String>,
    share_exponents: Vec<String>,
    tau_star: String,
    space_exponent: String,
    solver_path: String,
}

fn analyse(q: &Query, measure: Option<(u64, &[u64])>) -> Row {
    if let Err(msg) = verify_lp_solver_agreement(q) {
        eprintln!("solver-path disagreement: {msg}");
        std::process::exit(1);
    }
    let a = QueryAnalysis::analyze(q).expect("analysis succeeds for the running examples");
    // Measure the answer size over a few random matching databases.
    let measured = measure.map(|(n, seeds)| {
        let mut total = 0usize;
        for &seed in seeds {
            let db = matching_database(q, n, seed);
            total += evaluate(q, &db).expect("evaluation succeeds").len();
        }
        total as f64 / seeds.len() as f64
    });
    let expected = match a.expected_answer_exponent {
        0 => "1".to_string(),
        1 => "n".to_string(),
        e => format!("n^{e}"),
    };
    Row {
        query: q.name().to_string(),
        expected_answer_size: expected,
        measured_answer_size: measured,
        vertex_cover: a.vertex_cover.iter().map(Rational::to_string).collect(),
        share_exponents: a.share_exponents.iter().map(Rational::to_string).collect(),
        tau_star: a.tau_star.to_string(),
        space_exponent: a.space_exponent.to_string(),
        solver_path: a.lp_solver_path,
    }
}

fn main() {
    let n = scaled(4000, 100);
    let k = arg_usize("--k", 18).max(6);
    let seeds = [11u64, 22, 33];
    let measured_queries = vec![
        families::cycle(3),
        families::cycle(4),
        families::cycle(6),
        families::star(3),
        families::star(5),
        families::chain(3),
        families::chain(4),
        families::chain(5),
        families::binomial(3, 2).expect("valid parameters"),
        families::binomial(4, 2).expect("valid parameters"),
    ];
    // LP-only sweep rows: ≥3× the family sizes of the original table.
    let sweep_queries = [
        families::cycle(k),
        families::chain(k),
        families::star(k),
        families::binomial(k.min(12), 2).expect("valid parameters"),
        families::spoke((k / 2).max(3)),
    ];

    let mut table = TextTable::new([
        "query",
        "E[|q|] (Lemma 3.4)",
        "measured |q| (avg)",
        "min vertex cover",
        "share exponents",
        "τ*",
        "space exponent",
        "solver path",
    ]);
    let mut rows = Vec::new();
    for (q, measure) in measured_queries
        .iter()
        .map(|q| (q, Some((n, &seeds[..]))))
        .chain(sweep_queries.iter().map(|q| (q, None)))
    {
        let row = analyse(q, measure);
        table.row([
            row.query.clone(),
            row.expected_answer_size.clone(),
            row.measured_answer_size.map_or_else(|| "–".to_string(), |m| format!("{m:.1}")),
            fmt_weights(&row.vertex_cover),
            fmt_weights(&row.share_exponents),
            row.tau_star.clone(),
            row.space_exponent.clone(),
            row.solver_path.clone(),
        ]);
        rows.push(row);
    }
    table.print(&format!(
        "Table 1 (paper §2.3/§3.3) — n = {n}, {} seeds, sweep to k = {k}",
        seeds.len()
    ));
    println!(
        "\nPaper reference values: Ck → (1/2,…), τ* = k/2, ε = 1−2/k, E = 1; \
         Tk → τ* = 1, ε = 0, E = n; Lk → τ* = ⌈k/2⌉, ε = 1−1/⌈k/2⌉, E = n; \
         B(k,m) → τ* = k/m, ε = 1−m/k. Sweep rows are LP-only (no join \
         measurement); every row's three solver paths were verified to agree \
         exactly."
    );
    maybe_write_json("table1", &rows);
}
