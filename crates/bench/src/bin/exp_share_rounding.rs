//! Experiment **E8** (ablation; §3.1): integer share rounding. The ideal
//! HyperCube shares `p^{eᵢ}` are irrational; rounding them to integers
//! with `∏ pᵢ ≤ p` wastes some servers and slightly raises the per-server
//! load. This experiment quantifies the waste (cells used / p) and the
//! load penalty versus the ideal fractional load `n/p^{1/τ*}` for several
//! queries and server counts.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the input; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = (query, `p`), columns = the
//! integer shares, cells used, server utilisation, and the measured max
//! load against the ideal fractional load (the rounding penalty).
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_share_rounding
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCube;
use mpc_core::shares::ShareAllocation;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_sim::MpcConfig;

#[derive(Serialize)]
struct Row {
    query: String,
    p: usize,
    shares: Vec<usize>,
    cells_used: usize,
    utilisation: f64,
    ideal_load_tuples: f64,
    measured_max_tuples: u64,
    penalty: f64,
}

fn main() {
    let n = scaled(8000, 500);
    let mut table = TextTable::new([
        "query",
        "p",
        "integer shares",
        "cells used",
        "server utilisation",
        "ideal max tuples n/p^(1/τ*)·ℓ·repl",
        "measured max tuples",
        "penalty (measured/ideal)",
    ]);
    let mut rows = Vec::new();

    for q in [families::cycle(3), families::chain(5), families::binomial(4, 2).unwrap()] {
        let db = matching_database(&q, n, 13);
        let eps = space_exponent(&q).expect("LP solvable");
        let tau = mpc_lp::cover::tau_star(&q).expect("LP solvable").to_f64();
        for p in [16usize, 50, 64, 100, 256] {
            let alloc = ShareAllocation::optimal(&q, p).expect("allocation succeeds");
            let run =
                HyperCube::run(&q, &db, &MpcConfig::new(p, eps.to_f64())).expect("HC run succeeds");
            // Ideal per-server tuple count with perfect fractional shares:
            // every relation contributes n / p^{1/τ*} tuples.
            let ideal = q.num_atoms() as f64 * n as f64 / (p as f64).powf(1.0 / tau);
            let measured = run.result.max_load_tuples();
            let row = Row {
                query: q.name().to_string(),
                p,
                shares: alloc.shares.clone(),
                cells_used: alloc.num_cells(),
                utilisation: alloc.num_cells() as f64 / p as f64,
                ideal_load_tuples: ideal,
                measured_max_tuples: measured,
                penalty: measured as f64 / ideal.max(1.0),
            };
            table.row([
                row.query.clone(),
                p.to_string(),
                format!("{:?}", row.shares),
                row.cells_used.to_string(),
                format!("{:.2}", row.utilisation),
                format!("{:.0}", row.ideal_load_tuples),
                row.measured_max_tuples.to_string(),
                format!("{:.2}", row.penalty),
            ]);
            rows.push(row);
        }
    }
    table.print(&format!("E8 — integer share rounding ablation (n = {n})"));
    println!(
        "\nExpected shape: when p is a perfect power matching the share exponents (e.g. 27, 64 \
         for C3) utilisation is 1.0 and the penalty stays close to 1; for awkward p (50, 100) \
         some servers idle and the busiest server carries up to ~2x the ideal fractional load."
    );
    maybe_write_json("exp_share_rounding", &rows);
}
