//! Experiment **E11** (the query *service*, not a single run): `mpc-net`'s
//! [`QueryService`] multiplexes many concurrent conjunctive queries over
//! one shared set of per-server reactors, with per-query tag namespaces
//! keeping the FIN accounting separate and the `LpCache` serving repeated
//! templates without re-solving the LP. This experiment drives the
//! service with a **Zipf-over-templates** workload — a few hot templates
//! dominate, exactly the regime a plan cache targets — and reports
//! **queries/sec** and **p99 submit-to-completion latency**.
//!
//! The hottest template is deliberately the expensive one (the witness
//! query has no closed-form LP, so its first analysis runs the simplex):
//! the cache turns the popular-and-expensive case into a hit, which the
//! per-template `cache hits` column makes visible.
//!
//! Built-in correctness gates (any failure exits non-zero, which is how
//! CI uses this binary):
//!
//! * every outcome's output and per-round statistics must equal a
//!   dedicated [`Cluster::run`] of the same program — multiplexing can
//!   change *latency*, never semantics;
//! * each template solves the LP at most once; repeats of a
//!   simplex-solved template must report `cache-hit`;
//! * at least `--inflight` (≥ 4) queries are genuinely in flight at once.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the per-template databases
//! (CI uses 0.1), `--queries <usize>` sets the workload length,
//! `--inflight <usize>` the concurrency window (clamped to ≥ 4),
//! `--p <usize>` the server count, `--json <path>` (or
//! `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_service_throughput
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use mpc_bench::{arg_usize, maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCubeProgram;
use mpc_cq::{families, Query};
use mpc_data::matching_database;
use mpc_net::{QueryJob, QueryOutcome, QueryService, ServiceConfig};
use mpc_sim::{Cluster, MpcConfig, RunResult};
use mpc_storage::Database;

/// Zipf exponent over template ranks: rank `r` drawn ∝ `1/(r+1)^θ`.
const THETA: f64 = 1.1;

/// Per-template aggregate row of the printed table and JSON artefact.
#[derive(Serialize)]
struct Row {
    template: String,
    submissions: u64,
    mean_latency_micros: u64,
    max_latency_micros: u64,
    simplex_solves: u64,
    cache_hits: u64,
    output_tuples: usize,
}

/// Workload-level summary (the headline numbers).
#[derive(Serialize)]
struct Summary {
    queries: u64,
    p: usize,
    inflight_window: usize,
    max_observed_inflight: usize,
    elapsed_micros: u64,
    queries_per_sec: f64,
    mean_latency_micros: u64,
    p99_latency_micros: u64,
}

#[derive(Serialize)]
struct Artefact {
    templates: Vec<Row>,
    summary: Summary,
}

/// A tiny splitmix-style deterministic generator: the workload must be
/// reproducible across runs and platforms, and the shimmed `rand` crate
/// stays out of the timed loop.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Sample a template rank from the truncated Zipf(θ) distribution.
fn sample_zipf(weights: &[f64], state: &mut u64) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = next_f64(state) * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

struct Template {
    query: Query,
    db: Arc<Database>,
    seed: u64,
    reference: RunResult,
}

fn main() {
    let p = arg_usize("--p", 4);
    let inflight_window = arg_usize("--inflight", 8).max(4);
    let total_queries = arg_usize("--queries", 48).max(inflight_window);
    let epsilon = 0.5;

    // Rank order is popularity order: the witness query (no closed-form
    // LP → first analysis runs the simplex) is the hottest template.
    let shapes: Vec<(&str, Query, u64)> = vec![
        ("witness", families::witness_query(), scaled(300, 40)),
        ("C3", families::triangle(), scaled(500, 60)),
        ("C4", families::cycle(4), scaled(400, 60)),
        ("S3", families::star(3), scaled(350, 60)),
        ("L3", families::chain(3), scaled(450, 60)),
    ];
    let weights: Vec<f64> = (0..shapes.len()).map(|r| 1.0 / ((r + 1) as f64).powf(THETA)).collect();

    // Pre-build databases and dedicated-run references outside the timed
    // loop: the experiment measures the service, not data generation.
    let cluster = Cluster::new(MpcConfig::new(p, epsilon)).expect("valid config");
    let templates: Vec<Template> = shapes
        .into_iter()
        .enumerate()
        .map(|(ti, (_, query, n))| {
            let seed = 7 * ti as u64 + 1;
            let db = Arc::new(matching_database(&query, n, seed));
            let program = HyperCubeProgram::new(&query, p, seed).expect("allocation");
            let reference = cluster.run(&program, &db).expect("reference run");
            Template { query, db, seed, reference }
        })
        .collect();

    // The timed loop: keep `inflight_window` queries outstanding over one
    // shared service, drain completions as they arrive (out of order).
    let mut svc = QueryService::start(&ServiceConfig::new(p, epsilon)).expect("service starts");
    let mut rng_state = 0x5eed_u64;
    let mut qid_to_template: HashMap<u64, usize> = HashMap::new();
    let mut outcomes: Vec<QueryOutcome> = Vec::new();
    let mut submitted = 0usize;
    let mut outstanding = 0usize;
    let mut max_observed_inflight = 0usize;
    let start = Instant::now();
    while outcomes.len() < total_queries {
        while submitted < total_queries && outstanding < inflight_window {
            let ti = sample_zipf(&weights, &mut rng_state);
            let t = &templates[ti];
            let qid = svc
                .submit(&QueryJob {
                    query: t.query.clone(),
                    db: Arc::clone(&t.db),
                    seed: t.seed,
                    plan_epsilon: None,
                })
                .expect("submission accepted")
                .qid;
            qid_to_template.insert(qid, ti);
            submitted += 1;
            outstanding += 1;
            max_observed_inflight = max_observed_inflight.max(outstanding);
        }
        outcomes.push(svc.next_outcome().expect("outcome"));
        outstanding -= 1;
    }
    let elapsed = start.elapsed();
    svc.shutdown().expect("clean shutdown");

    // Gate 1: every multiplexed outcome equals its dedicated run.
    let mut diverged = false;
    for o in &outcomes {
        let ti = qid_to_template[&o.qid];
        let t = &templates[ti];
        if !o.output.same_tuples(&t.reference.output) {
            eprintln!("DIVERGENCE: qid {} ({}) output differs from dedicated run", o.qid, ti);
            diverged = true;
        }
        if o.rounds != t.reference.rounds {
            eprintln!("DIVERGENCE: qid {} ({}) per-round stats differ", o.qid, ti);
            diverged = true;
        }
    }

    // Per-template aggregation + gate 2 (LP solved at most once each).
    let names = ["witness", "C3", "C4", "S3", "L3"];
    let mut rows = Vec::new();
    for (ti, t) in templates.iter().enumerate() {
        let mine: Vec<&QueryOutcome> =
            outcomes.iter().filter(|o| qid_to_template[&o.qid] == ti).collect();
        if mine.is_empty() {
            continue;
        }
        let simplex = mine.iter().filter(|o| o.analysis_path == "simplex").count() as u64;
        let hits = mine.iter().filter(|o| o.cache_hot).count() as u64;
        if simplex > 1 {
            eprintln!("FAIL: template {} solved the LP {simplex} times", names[ti]);
            diverged = true;
        }
        if simplex > 0 && mine.len() > 1 && hits + simplex < mine.len() as u64 {
            eprintln!("FAIL: repeats of simplex-solved template {} were not cache-hot", names[ti]);
            diverged = true;
        }
        let lat: Vec<u64> = mine.iter().map(|o| o.latency_micros).collect();
        rows.push(Row {
            template: names[ti].to_string(),
            submissions: mine.len() as u64,
            mean_latency_micros: lat.iter().sum::<u64>() / lat.len() as u64,
            max_latency_micros: *lat.iter().max().expect("non-empty"),
            simplex_solves: simplex,
            cache_hits: hits,
            output_tuples: t.reference.output.len(),
        });
    }

    // Gate 3: the window genuinely multiplexed ≥ 4 concurrent queries.
    if max_observed_inflight < 4 {
        eprintln!("FAIL: never reached 4 concurrent queries ({max_observed_inflight})");
        diverged = true;
    }

    let mut latencies: Vec<u64> = outcomes.iter().map(|o| o.latency_micros).collect();
    latencies.sort_unstable();
    let p99 =
        latencies[((latencies.len() as f64 * 0.99).ceil() as usize - 1).min(latencies.len() - 1)];
    let elapsed_micros = elapsed.as_micros() as u64;
    let summary = Summary {
        queries: outcomes.len() as u64,
        p,
        inflight_window,
        max_observed_inflight,
        elapsed_micros,
        queries_per_sec: outcomes.len() as f64 / elapsed.as_secs_f64(),
        mean_latency_micros: latencies.iter().sum::<u64>() / latencies.len() as u64,
        p99_latency_micros: p99,
    };

    let mut table = TextTable::new([
        "template",
        "submissions",
        "mean lat µs",
        "max lat µs",
        "LP solves",
        "cache hits",
        "output",
    ]);
    for r in &rows {
        table.row([
            r.template.clone(),
            r.submissions.to_string(),
            r.mean_latency_micros.to_string(),
            r.max_latency_micros.to_string(),
            r.simplex_solves.to_string(),
            r.cache_hits.to_string(),
            r.output_tuples.to_string(),
        ]);
    }
    table.print("Service throughput under a Zipf-over-templates workload (E11)");
    println!(
        "\n{} queries over p = {} shared reactors, window {} (observed {}): \
         {:.1} queries/sec, mean latency {} µs, p99 {} µs.",
        summary.queries,
        summary.p,
        summary.inflight_window,
        summary.max_observed_inflight,
        summary.queries_per_sec,
        summary.mean_latency_micros,
        summary.p99_latency_micros,
    );
    maybe_write_json("exp_service_throughput", &Artefact { templates: rows, summary });

    if diverged {
        eprintln!("\nFAIL: service outcomes diverged from dedicated runs");
        std::process::exit(1);
    }
}
