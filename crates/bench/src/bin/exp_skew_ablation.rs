//! Experiment **E7** (ablation; §2.5 and §3.3 discussion): the HyperCube
//! load guarantee is stated for matching databases — skew-free inputs. On
//! Zipf-skewed inputs the hash-partitioning balance degrades. The shape to
//! reproduce: the max/mean load ratio stays ≈ 1 on matchings and grows
//! with the Zipf exponent.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_skew_ablation
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCube;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_data::skew::zipf_database;
use mpc_sim::MpcConfig;

#[derive(Serialize)]
struct Row {
    query: String,
    input: String,
    p: usize,
    max_bytes: u64,
    balance_ratio: f64,
    within_budget: bool,
}

fn main() {
    let n = scaled(6000, 500);
    let p = 32;
    let mut table = TextTable::new([
        "query",
        "input",
        "p",
        "max bytes/server",
        "max/mean balance ratio",
        "within budget",
    ]);
    let mut rows = Vec::new();

    for q in [families::chain(2), families::cycle(3)] {
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let inputs: Vec<(String, mpc_storage::Database)> = vec![
            ("matching".to_string(), matching_database(&q, n, 5)),
            ("zipf θ=0.8".to_string(), zipf_database(&q, n, n as usize, 0.8, 5)),
            ("zipf θ=1.2".to_string(), zipf_database(&q, n, n as usize, 1.2, 5)),
        ];
        for (label, db) in inputs {
            let run = HyperCube::run(&q, &db, &MpcConfig::new(p, eps)).expect("HC run succeeds");
            let row = Row {
                query: q.name().to_string(),
                input: label,
                p,
                max_bytes: run.result.max_load_bytes(),
                balance_ratio: run.result.rounds[0].balance_ratio,
                within_budget: run.result.within_budget(),
            };
            table.row([
                row.query.clone(),
                row.input.clone(),
                p.to_string(),
                row.max_bytes.to_string(),
                format!("{:.2}", row.balance_ratio),
                row.within_budget.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print(&format!(
        "E7 — skew ablation: HyperCube balance on matchings vs Zipf inputs (n ≈ {n}, p = {p})"
    ));
    println!(
        "\nExpected shape: matchings balance within a small constant of perfect (ratio ≈ 1–2); \
         increasing Zipf skew concentrates load on the servers owning the heavy hash keys, \
         inflating the ratio — the reason the paper restricts its guarantees to skew-free data \
         and defers skew handling to Koutris–Suciu (PODS 2011)."
    );
    maybe_write_json("exp_skew_ablation", &rows);
}
