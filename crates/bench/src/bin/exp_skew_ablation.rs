//! Experiment **E7** (ablation; §2.5 and §3.3 discussion, plus the 2014
//! follow-up "Skew in Parallel Query Processing"): the HyperCube load
//! guarantee is stated for matching databases — skew-free inputs. This is
//! a **before/after** comparison on identical inputs:
//!
//! * *before* — vanilla HyperCube: the max/mean balance ratio stays ≈ 1 on
//!   matchings and grows with the Zipf exponent until the load budget is
//!   blown;
//! * *after* — the skew-resilient program of `mpc-skew`: heavy hitters are
//!   detected against the `n/p_x` threshold and routed through residual
//!   plans, restoring balance (and the budget) on the rows where vanilla
//!   HyperCube fails.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs (CI uses 0.1);
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = (query, input distribution),
//! columns = vanilla vs resilient max load / balance / budget verdicts,
//! heavy-value and residual-plan counts. Exits non-zero if the resilient
//! program regresses over budget (a CI smoke step).
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_skew_ablation
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCube;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_data::skew::{heavy_hitter_database, zipf_database};
use mpc_sim::MpcConfig;
use mpc_skew::SkewResilient;

#[derive(Serialize)]
struct Row {
    query: String,
    input: String,
    p: usize,
    vanilla_max_bytes: u64,
    vanilla_balance: f64,
    vanilla_within_budget: bool,
    resilient_max_bytes: u64,
    resilient_balance: f64,
    resilient_within_budget: bool,
    heavy_values: usize,
    plans: usize,
}

fn main() {
    let n = scaled(6000, 500);
    let p = 32;
    let mut table = TextTable::new([
        "query",
        "input",
        "HC max B",
        "HC balance",
        "HC ok",
        "skew-res max B",
        "skew-res balance",
        "skew-res ok",
        "heavy vals",
        "plans",
    ]);
    let mut rows = Vec::new();
    let mut regression = false;

    for q in [families::chain(2), families::cycle(3)] {
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let inputs: Vec<(String, mpc_storage::Database)> = vec![
            ("matching".to_string(), matching_database(&q, n, 5)),
            ("zipf θ=0.8".to_string(), zipf_database(&q, n, n as usize, 0.8, 5)),
            ("zipf θ=1.2".to_string(), zipf_database(&q, n, n as usize, 1.2, 5)),
            ("heavy 50%".to_string(), heavy_hitter_database(&q, n, n as usize, 0.5, 5)),
        ];
        for (label, db) in inputs {
            let cfg = MpcConfig::new(p, eps);
            let vanilla = HyperCube::run(&q, &db, &cfg).expect("HC run succeeds");
            let resilient = SkewResilient::run(&q, &db, &cfg).expect("skew-resilient run succeeds");
            assert!(
                resilient.result.output.same_tuples(&vanilla.result.output),
                "skew-resilient output must equal the vanilla join"
            );
            if !resilient.result.within_budget() {
                regression = true;
            }
            let row = Row {
                query: q.name().to_string(),
                input: label,
                p,
                vanilla_max_bytes: vanilla.result.max_load_bytes(),
                vanilla_balance: vanilla.result.max_balance_ratio(),
                vanilla_within_budget: vanilla.result.within_budget(),
                resilient_max_bytes: resilient.result.max_load_bytes(),
                resilient_balance: resilient.result.max_balance_ratio(),
                resilient_within_budget: resilient.result.within_budget(),
                heavy_values: resilient.num_heavy_values(),
                plans: resilient.num_plans(),
            };
            table.row([
                row.query.clone(),
                row.input.clone(),
                row.vanilla_max_bytes.to_string(),
                format!("{:.2}", row.vanilla_balance),
                row.vanilla_within_budget.to_string(),
                row.resilient_max_bytes.to_string(),
                format!("{:.2}", row.resilient_balance),
                row.resilient_within_budget.to_string(),
                row.heavy_values.to_string(),
                row.plans.to_string(),
            ]);
            if !row.vanilla_within_budget {
                println!(
                    "{} on {}: vanilla  {}\n{} on {}: resilient {}",
                    row.query,
                    row.input,
                    vanilla.result.summary(),
                    row.query,
                    row.input,
                    resilient.result.summary()
                );
            }
            rows.push(row);
        }
    }
    table.print(&format!(
        "E7 — skew ablation, before/after: vanilla HyperCube vs skew-resilient residual plans \
         (n ≈ {n}, p = {p})"
    ));
    println!(
        "\nExpected shape: matchings balance within a small constant of perfect (ratio ≈ 1–2) and \
         detect no heavy hitters (1 plan). Zipf and heavy-hitter inputs concentrate load on the \
         servers owning the heavy hash keys and blow the vanilla budget; the resilient program \
         splits those values into residual plans (heavy variables degenerate, light variables \
         re-partitioned over a dedicated server group) and stays within budget on every row \
         where vanilla HyperCube fails."
    );
    maybe_write_json("exp_skew_ablation", &rows);
    if regression {
        // Non-zero exit so the CI smoke step fails on the exact property
        // this experiment guards: residual plans keep every row in budget.
        eprintln!("\nERROR: some row is over budget even with residual plans — investigate.");
        std::process::exit(1);
    }
}
