//! Experiment **E5** (Theorem 4.10): connected components of sparse graphs
//! need many rounds; dense graphs need two. Sparse instances are the
//! paper's layered path graphs with `k = ⌊p^δ⌋` layers. The shape to
//! reproduce: the sparse round count grows with `p` (it is Ω(log p) for
//! any tuple-based algorithm; the label-propagation algorithm used here
//! needs Θ(p^δ)), while the dense instances stay at two rounds within
//! budget and the two-round algorithm blows the budget on sparse inputs.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the graphs; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = server count `p`, columns =
//! layer count, sparse/dense round counts and their budget verdicts.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_connected_components
//! ```

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_graph::experiment::{theorem_4_10_experiment, CcExperimentConfig};

fn main() {
    let config = CcExperimentConfig {
        layer_size: scaled(64, 8),
        dense_degree: 32,
        max_rounds: 64,
        ..Default::default()
    };
    let ps = [4usize, 16, 64, 256];
    let rows = theorem_4_10_experiment(&ps, &config).expect("experiment runs");

    let mut table = TextTable::new([
        "p",
        "layers k = ⌊√p⌋",
        "sparse rounds (label prop.)",
        "sparse within budget",
        "dense rounds",
        "dense within budget",
        "2-round alg. on sparse within budget",
    ]);
    for row in &rows {
        table.row([
            row.p.to_string(),
            row.k.to_string(),
            format!(
                "{}{}",
                row.sparse_rounds,
                if row.sparse_converged { "" } else { " (not converged)" }
            ),
            row.sparse_within_budget.to_string(),
            row.dense_rounds.to_string(),
            row.dense_within_budget.to_string(),
            row.dense_on_sparse_within_budget.to_string(),
        ]);
    }
    table.print(&format!(
        "E5 — Theorem 4.10: connected components, sparse vs dense (layer size {}, ε = 0)",
        config.layer_size
    ));
    println!(
        "\nExpected shape: sparse round counts grow with p (Ω(log p) for any tuple-based \
         algorithm; Θ(p^δ) for label propagation), while dense graphs finish in 2 rounds \
         within budget — and the same 2-round algorithm violates the budget on sparse inputs."
    );
    maybe_write_json("exp_connected_components", &rows);
}
