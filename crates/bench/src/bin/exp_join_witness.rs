//! Experiment **E6** (Proposition 3.12): JOIN-WITNESS for
//! `q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)` on the hard input
//! family (matchings for S1–S3, random √n-subsets for R and T, so the
//! query has about one answer). The shape to reproduce: a one-round
//! ε < 1/2 algorithm almost never produces a witness, and its success
//! probability decays with `p`; the two-round plan always finds every
//! witness.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the trials and inputs;
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = server count `p`, columns =
//! trial counts and how often the 1-round vs 2-round algorithm found a
//! witness.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_join_witness
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::PartialHyperCube;
use mpc_core::multiround::executor::MultiRound;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;
use mpc_storage::{Database, Relation, Tuple};

#[derive(Serialize)]
struct Row {
    p: usize,
    trials: usize,
    instances_with_witness: usize,
    one_round_found: usize,
    two_round_found: usize,
}

/// Build one hard instance: S1,S2,S3 matchings over `[n]`; R, T random
/// subsets of size √n.
fn hard_instance(n: u64, seed: u64) -> Database {
    let q = families::witness_query();
    let base = matching_database(&q, n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let sqrt_n = (n as f64).sqrt().round() as u64;
    let mut db = Database::new(n);
    for name in ["S1", "S2", "S3"] {
        db.insert_relation(base.relation(name).expect("matching generated").clone());
    }
    for name in ["R", "T"] {
        let mut rel = Relation::empty(name, 1);
        while (rel.len() as u64) < sqrt_n {
            rel.insert(Tuple(vec![rng.gen_range(1..=n)])).expect("arity 1");
        }
        db.insert_relation(rel);
    }
    db
}

fn main() {
    let q = families::witness_query();
    let n = scaled(2500, 400);
    let trials = 12usize;
    let eps = Rational::ZERO; // strictly below the 1/2 threshold of Prop 3.12

    let mut table = TextTable::new([
        "p",
        "trials",
        "instances with a witness",
        "1-round (ε=0) found a witness",
        "2-round plan found a witness",
    ]);
    let mut rows = Vec::new();
    for p in [4usize, 16, 64] {
        let mut with_witness = 0usize;
        let mut one_round_found = 0usize;
        let mut two_round_found = 0usize;
        for t in 0..trials {
            let db = hard_instance(n, 100 + t as u64);
            let truth = evaluate(&q, &db).expect("sequential evaluation succeeds");
            if truth.is_empty() {
                continue;
            }
            with_witness += 1;
            let one_round =
                PartialHyperCube::run(&q, &db, p, eps, t as u64).expect("partial HC run succeeds");
            if !one_round.result.output.is_empty() {
                one_round_found += 1;
            }
            let two_round = MultiRound::run(&q, &db, p, Rational::new(1, 2), t as u64)
                .expect("plan execution succeeds");
            if two_round.result.output.same_tuples(&truth) {
                two_round_found += 1;
            }
        }
        table.row([
            p.to_string(),
            trials.to_string(),
            with_witness.to_string(),
            one_round_found.to_string(),
            two_round_found.to_string(),
        ]);
        rows.push(Row {
            p,
            trials,
            instances_with_witness: with_witness,
            one_round_found,
            two_round_found,
        });
    }
    table.print(&format!("E6 — JOIN-WITNESS hard instances (Prop 3.12), n = {n}"));
    println!(
        "\nExpected shape: the one-round ε = 0 algorithm finds a witness on only a small, \
         p-decreasing fraction of the instances that have one, while the two-round plan \
         recovers every witness."
    );
    maybe_write_json("exp_join_witness", &rows);
}
