//! Experiment **E9** (schedules, not just volumes; the ROADMAP "Async
//! mpc-sim" item, motivated by the journal version "Communication Cost in
//! Parallel Query Processing", arXiv:1602.06236, and by the skew paper's
//! observation that stragglers stall barriers): the MPC model counts
//! *rounds and bytes*, but real wall-clock behaviour depends on **when**
//! the bytes move. This experiment runs HyperCube and multi-round plans
//! on the event-driven backend under seeded straggler injection and
//! shows the separation the synchronous backend cannot see:
//!
//! * **volume stats are schedule-independent** — max load, replication
//!   and round count are identical with and without stragglers (and
//!   identical to the synchronous backend: the built-in differential
//!   check exits non-zero on any divergence, which is how CI uses this
//!   binary);
//! * **makespan is not** — slowing `k` servers down by `s`× inflates the
//!   virtual-clock makespan and the per-round barrier wait roughly `s`×,
//!   while the dependency-only critical path of the uninjected run stays
//!   put.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs (CI uses 0.1),
//! `--p <usize>` overrides the server count of the HyperCube case (the
//! multi-round plan cases are fixed at `p = 8`), `--batch-size <usize>`
//! sets the columnar block capacity of the async data plane (CI runs a
//! `--batch-size 1` smoke, degenerating to per-tuple packets, on top of
//! the default), `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the
//! rows as JSON.
//!
//! Output shape: one markdown table; rows = (query, straggler spec),
//! columns = volume stats (constant per query) and schedule stats
//! (inflating with the injected slowdown).
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_straggler_schedule
//! ```

use serde::Serialize;

use mpc_bench::{arg_usize, maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::HyperCubeProgram;
use mpc_core::multiround::executor::PlanProgram;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_sim::{run_differential, AsyncConfig, Cluster, MpcConfig, MpcProgram, StragglerSpec};

#[derive(Serialize)]
struct Row {
    query: String,
    rounds: usize,
    stragglers: String,
    max_load_bytes: u64,
    replication: f64,
    makespan: u64,
    critical_path: u64,
    max_barrier_wait: u64,
    blocked_ticks: u64,
    efficiency: f64,
}

/// The straggler sweep: (label, spec, per-link queue capacity). `None`
/// is the uninjected baseline; the final row shrinks the send window so
/// the straggler's slow ingest backpressures its senders (blocked > 0).
fn sweep() -> Vec<(&'static str, Option<StragglerSpec>, usize)> {
    vec![
        ("none", None, 64),
        ("1 × 4", Some(StragglerSpec::new(11, 1, 4)), 64),
        ("1 × 16", Some(StragglerSpec::new(11, 1, 16)), 64),
        ("3 × 4", Some(StragglerSpec::new(23, 3, 4)), 64),
        ("1 × 16, win 2", Some(StragglerSpec::new(11, 1, 16)), 2),
    ]
}

/// The accumulated experiment output: JSON rows, the printed table, and
/// the fatal divergence flag.
struct Report {
    rows: Vec<Row>,
    table: TextTable,
    diverged: bool,
}

fn run_case<P: MpcProgram>(
    name: &str,
    program: &P,
    db: &mpc_storage::Database,
    cfg: &MpcConfig,
    batch_size: usize,
    out: &mut Report,
) {
    let cluster = Cluster::new(cfg.clone()).expect("valid config");
    let mut baseline_volumes: Option<(u64, usize)> = None;
    for (label, straggler, capacity) in sweep() {
        let mut async_cfg =
            AsyncConfig::new().with_queue_capacity(capacity).with_block_capacity(batch_size);
        if let Some(spec) = straggler {
            async_cfg = async_cfg.with_straggler(spec);
        }
        // The differential layer: any async/sync divergence is fatal.
        let report =
            run_differential(&cluster, program, db, &async_cfg).expect("both backends complete");
        if let Some(d) = report.divergence() {
            eprintln!("DIVERGENCE on {name} ({label}): {d}");
            out.diverged = true;
        }
        let result = &report.event_driven.result;
        let sched = &report.event_driven.schedule;
        // Volumes must also be straggler-independent.
        match baseline_volumes {
            None => baseline_volumes = Some((result.max_load_bytes(), result.num_rounds())),
            Some((bytes, rounds)) => {
                if (result.max_load_bytes(), result.num_rounds()) != (bytes, rounds) {
                    eprintln!("DIVERGENCE on {name} ({label}): volumes changed with stragglers");
                    out.diverged = true;
                }
            }
        }
        let row = Row {
            query: name.to_string(),
            rounds: result.num_rounds(),
            stragglers: label.to_string(),
            max_load_bytes: result.max_load_bytes(),
            replication: result.max_replication_rate(),
            makespan: sched.makespan,
            critical_path: sched.critical_path,
            max_barrier_wait: sched.max_barrier_wait(),
            blocked_ticks: sched.total_blocked(),
            efficiency: sched.schedule_efficiency(),
        };
        out.table.row([
            row.query.clone(),
            row.rounds.to_string(),
            row.stragglers.clone(),
            row.max_load_bytes.to_string(),
            format!("{:.2}", row.replication),
            row.makespan.to_string(),
            row.critical_path.to_string(),
            row.max_barrier_wait.to_string(),
            row.blocked_ticks.to_string(),
            format!("{:.2}", row.efficiency),
        ]);
        out.rows.push(row);
    }
}

fn main() {
    let n_hc = scaled(2000, 200);
    let n_plan = scaled(600, 100);
    let p = arg_usize("--p", 27);
    let batch_size = arg_usize("--batch-size", AsyncConfig::default().block_capacity);
    let mut out = Report {
        rows: Vec::new(),
        table: TextTable::new([
            "query",
            "rounds",
            "stragglers",
            "max load B",
            "repl",
            "makespan",
            "crit path",
            "barrier wait",
            "blocked",
            "efficiency",
        ]),
        diverged: false,
    };

    // One-round HyperCube on the triangle: the straggler stalls the only
    // barrier.
    {
        let q = families::triangle();
        let db = matching_database(&q, n_hc, 11);
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let program = HyperCubeProgram::new(&q, p, 42).expect("allocation");
        run_case("C3 (HC)", &program, &db, &MpcConfig::new(p, eps), batch_size, &mut out);
    }

    // Multi-round chains: the straggler stalls *every* round's barrier.
    for k in [4usize, 8] {
        let q = families::chain(k);
        let db = matching_database(&q, n_plan, 7);
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).expect("planable");
        let program = PlanProgram::new(&plan, 8, 5).expect("compilable");
        run_case(
            &format!("L{k} (plan)"),
            &program,
            &db,
            &MpcConfig::new(8, 0.0),
            batch_size,
            &mut out,
        );
    }

    out.table.print("Straggler injection: volumes constant, schedules inflated (E9)");
    println!(
        "\nVolume columns (max load, replication, rounds) are identical across \
         straggler specs and identical to the synchronous backend; schedule \
         columns come from the event-driven backend's virtual clock."
    );
    maybe_write_json("exp_straggler_schedule", &out.rows);

    if out.diverged {
        eprintln!("\nFAIL: async/sync divergence detected");
        std::process::exit(1);
    }
    // Sanity for CI: injected stragglers must actually inflate makespan.
    let baseline: Vec<&Row> = out.rows.iter().filter(|r| r.stragglers == "none").collect();
    for b in baseline {
        let worst = out
            .rows
            .iter()
            .filter(|r| r.query == b.query && r.stragglers != "none")
            .map(|r| r.makespan)
            .max()
            .unwrap_or(0);
        if worst <= b.makespan {
            eprintln!("\nFAIL: stragglers did not inflate the makespan of {}", b.query);
            std::process::exit(1);
        }
    }
}
