//! Experiment **E1** (Example 3.1 / Proposition 3.2): per-server load of
//! the HyperCube algorithm on the triangle query `C_3` as the number of
//! servers grows, compared against the broadcast baseline and the
//! `O(n/p^{1−ε})` budget. The *shape* to reproduce: HC load falls like
//! `p^{−1/3}`... i.e. `n / p^{1/τ*}`, stays within the ε = 1/3 budget, and
//! is far below broadcast.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the input; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = server count `p`, columns =
//! integer shares, HC max bytes/server vs the budget, replication, the
//! broadcast baseline's load and the answer count.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_hypercube_load
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::baseline::BroadcastProgram;
use mpc_core::hypercube::HyperCube;
use mpc_core::space_exponent::space_exponent;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_sim::{Cluster, MpcConfig};
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    p: usize,
    shares: Vec<usize>,
    hc_max_bytes: u64,
    budget_bytes: u64,
    hc_within_budget: bool,
    hc_replication: f64,
    broadcast_max_bytes: u64,
    answers: usize,
    correct: bool,
}

fn main() {
    let q = families::triangle();
    let n = scaled(20_000, 500);
    let db = matching_database(&q, n, 42);
    let truth = evaluate(&q, &db).expect("sequential evaluation succeeds");
    let eps = space_exponent(&q).expect("LP solvable");

    let mut table = TextTable::new([
        "p",
        "shares",
        "HC max bytes/server",
        "budget c·N/p^(1-ε)",
        "within budget",
        "HC replication",
        "broadcast max bytes",
        "answers",
    ]);
    let mut rows = Vec::new();
    for p in [8usize, 27, 64, 216, 512, 1000] {
        let cfg = MpcConfig::new(p, eps.to_f64());
        let hc = HyperCube::run(&q, &db, &cfg).expect("HC run succeeds");
        let cluster = Cluster::new(cfg.clone()).expect("valid config");
        let broadcast =
            cluster.run(&BroadcastProgram::new(q.clone()), &db).expect("broadcast run succeeds");
        let correct = hc.result.output.same_tuples(&truth);
        let row = Row {
            p,
            shares: hc.allocation.shares.clone(),
            hc_max_bytes: hc.result.max_load_bytes(),
            budget_bytes: hc.result.rounds[0].budget_bytes,
            hc_within_budget: hc.result.within_budget(),
            hc_replication: hc.result.max_replication_rate(),
            broadcast_max_bytes: broadcast.max_load_bytes(),
            answers: hc.result.output.len(),
            correct,
        };
        table.row([
            p.to_string(),
            format!("{:?}", row.shares),
            row.hc_max_bytes.to_string(),
            row.budget_bytes.to_string(),
            row.hc_within_budget.to_string(),
            format!("{:.2}", row.hc_replication),
            row.broadcast_max_bytes.to_string(),
            format!("{} ({})", row.answers, if correct { "exact" } else { "WRONG" }),
        ]);
        rows.push(row);
    }
    table.print(&format!("E1 — HyperCube load for C3 (n = {n}, ε = {eps}), vs broadcast"));
    println!(
        "\nExpected shape (Prop 3.2): max load ≈ 3·n·8·2 / p^(2/3) bytes (each relation \
         replicated p^(1/3) times over p servers); broadcast stays at 3·n·16 bytes regardless of p."
    );
    maybe_write_json("exp_hypercube_load", &rows);
}
