//! Experiment **E2** (Theorem 3.3 / Proposition 3.11): when a query is
//! forced to run in one round *below* its space exponent, only a
//! `Θ(1/p^{τ*(1−ε)−1})` fraction of the answers can be reported. The
//! partial HyperCube achieves exactly that fraction; this experiment
//! sweeps `p` for `L_3` and `C_3` at ε = 0 and compares the measured
//! fraction with the prediction. The shape to reproduce: the fraction
//! decays polynomially in `p` (1/p for both queries, since τ* = 2 resp.
//! the exponent τ*(1−ε)−1 = 1/2 for C3).
//!
//! CLI flags: `--scale <f64>` shrinks/grows the input; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = (query, `p`), columns = τ*,
//! the predicted `1/p^{τ*(1−ε)−1}` fraction and the measured one.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_one_round_fraction
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::hypercube::PartialHyperCube;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::cover::tau_star;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    query: String,
    p: usize,
    tau_star: String,
    predicted_fraction: f64,
    measured_fraction: f64,
    total_answers: usize,
    reported_answers: usize,
}

fn main() {
    let n = scaled(8000, 500);
    let eps = Rational::ZERO;
    let mut table = TextTable::new([
        "query",
        "p",
        "τ*",
        "predicted fraction 1/p^(τ*(1-ε)-1)",
        "measured fraction",
        "answers reported / total",
    ]);
    let mut rows = Vec::new();

    for q in [families::chain(3), families::cycle(3)] {
        let db = matching_database(&q, n, 21);
        let truth = evaluate(&q, &db).expect("sequential evaluation succeeds");
        let tau = tau_star(&q).expect("LP solvable");
        for p in [4usize, 16, 64, 256] {
            let outcome =
                PartialHyperCube::run(&q, &db, p, eps, 9).expect("partial HC run succeeds");
            let reported = outcome.result.output.len();
            let total = truth.len().max(1);
            let exponent = tau.to_f64() * (1.0 - eps.to_f64()) - 1.0;
            let predicted = 1.0 / (p as f64).powf(exponent);
            let row = Row {
                query: q.name().to_string(),
                p,
                tau_star: tau.to_string(),
                predicted_fraction: predicted,
                measured_fraction: reported as f64 / total as f64,
                total_answers: truth.len(),
                reported_answers: reported,
            };
            table.row([
                row.query.clone(),
                p.to_string(),
                row.tau_star.clone(),
                format!("{:.4}", row.predicted_fraction),
                format!("{:.4}", row.measured_fraction),
                format!("{} / {}", row.reported_answers, row.total_answers),
            ]);
            rows.push(row);
        }
    }
    table.print(&format!(
        "E2 — fraction of answers reportable in one round below the space exponent (n = {n}, ε = 0)"
    ));
    println!(
        "\nExpected shape (Thm 3.3): the measured fraction tracks 1/p^(τ*−1) — about 1/p for L3 \
         and 1/√p for C3 — so more parallelism strictly reduces what one round can produce. \
         (C3 has only ~1 expected answer over matchings, so its measured column is noisy.)"
    );
    maybe_write_json("exp_one_round_fraction", &rows);
}
