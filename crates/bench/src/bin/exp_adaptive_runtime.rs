//! Experiment **E13** (the adaptive runtime, end to end): sampled
//! statistics feed the planner, the planner's heavy grids declare
//! themselves movable, and the event-driven backend's observed schedule
//! drives mid-round rerouting — three claims, three machine-checked
//! gates (any failure exits non-zero, which is how CI uses this binary):
//!
//! 1. **Planning on a sample is sublinear.** Collecting
//!    `StatsMode::Sampled` statistics scans `O(budget)` tuples per
//!    relation regardless of `n`; as the input grows 4× the exact scan
//!    grows with it while the sampled scan stays flat — at equal plan
//!    quality (both plans compute the exact join; the sampled plan's
//!    max per-server load stays within a small factor of the exact
//!    plan's).
//! 2. **Rerouting recovers the straggled makespan.** A seeded straggler
//!    pinned to a heavy grid cell inflates the static schedule; the
//!    [`mpc_sim::reroute`] controller moves that cell to a fast server
//!    and must recover at least `--recovery` (default 30%) of the
//!    static makespan.
//! 3. **Nothing changes the answer.** The output tuple set is identical
//!    across {exact, sampled} statistics × {static, rerouting}
//!    schedules × {synchronous, event-driven} backends — all eight
//!    cells, each also checked against the sequential join.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs (CI uses 0.1),
//! `--p <usize>` servers (default 16), `--budget <usize>` sample budget
//! (default 600), `--slowdown <usize>` straggler factor (default 16),
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_adaptive_runtime
//! ```

use serde::Serialize;

use mpc_bench::{arg_f64, arg_usize, maybe_write_json, scaled, TextTable};
use mpc_core::wco::WcoProgram;
use mpc_cq::families;
use mpc_data::skew::heavy_hitter_database;
use mpc_data::{DbStatistics, StatsMode};
use mpc_sim::reroute::{RerouteHost, RerouteSpec};
use mpc_sim::{AsyncConfig, Cluster, MpcConfig, MpcProgram, StragglerSpec};
use mpc_storage::join::evaluate;
use mpc_storage::Relation;

/// One cell of the equivalence matrix.
#[derive(Serialize)]
struct MatrixRow {
    stats: String,
    schedule: String,
    backend: String,
    output_tuples: usize,
    max_load_bytes: u64,
    makespan: Option<u64>,
    identical: bool,
}

/// One point of the sampling-cost sweep.
#[derive(Serialize)]
struct CostRow {
    n: u64,
    exact_scanned: usize,
    sampled_scanned: usize,
    exact_output: usize,
    sampled_output: usize,
    load_ratio: f64,
}

#[derive(Serialize)]
struct Rows {
    cost: Vec<CostRow>,
    matrix: Vec<MatrixRow>,
    recovery: f64,
    moved_cells: usize,
}

fn fail(msg: &str) -> ! {
    eprintln!("\nFAIL: {msg}");
    std::process::exit(1);
}

/// The straggler seed whose single pick lands on a movable (heavy grid)
/// cell, so the controller has something to move.
fn seed_hitting(cells: &[usize], p: usize, slowdown: u64) -> StragglerSpec {
    for seed in 0..512u64 {
        let spec = StragglerSpec::new(seed, 1, slowdown);
        if spec.pick(p).iter().any(|c| cells.contains(c)) {
            return spec;
        }
    }
    fail("no straggler seed hits a heavy grid cell");
}

fn main() {
    let p = arg_usize("--p", 16);
    let slowdown = arg_usize("--slowdown", 16) as u64;
    let min_recovery = arg_f64("--recovery", 0.30, |v| (0.0..1.0).contains(&v));
    let q = families::triangle();
    let base_n = scaled(1500, 300);
    // The sample must stay below the smallest swept input, or sampling
    // degenerates to the exact scan and the sublinearity gate is vacuous.
    let budget = arg_usize("--budget", (base_n / 2).min(600) as usize);

    // ---------------------------------------------------------------
    // Gate 1: sampled planning cost is sublinear at equal plan quality.
    // ---------------------------------------------------------------
    let mut cost_rows: Vec<CostRow> = Vec::new();
    let mut cost_table =
        TextTable::new(["n", "exact scan", "sampled scan", "exact out", "sampled out", "load ×"]);
    let cluster = Cluster::new(MpcConfig::new(p, 0.9)).expect("valid config");
    for k in [1u64, 2, 4] {
        let n = base_n * k;
        let db = heavy_hitter_database(&q, n.max(4) / 2, n as usize, 0.5, 21);
        let exact = DbStatistics::collect(&db, StatsMode::Exact);
        let sampled = DbStatistics::collect(&db, StatsMode::Sampled { budget, seed: 13 });
        let exact_prog =
            WcoProgram::new_with_stats(&q, &db, p, 5, &exact).expect("exact plan builds");
        let sampled_prog =
            WcoProgram::new_with_stats(&q, &db, p, 5, &sampled).expect("sampled plan builds");
        let expected = evaluate(&q, &db).expect("sequential join");
        let exact_run = cluster.run(&exact_prog, &db).expect("exact plan runs");
        let sampled_run = cluster.run(&sampled_prog, &db).expect("sampled plan runs");
        if !exact_run.output.same_tuples(&expected) || !sampled_run.output.same_tuples(&expected) {
            fail(&format!("a plan at n = {n} computed a wrong join"));
        }
        let load_ratio =
            sampled_run.max_load_bytes() as f64 / exact_run.max_load_bytes().max(1) as f64;
        let row = CostRow {
            n,
            exact_scanned: exact.scanned_tuples(),
            sampled_scanned: sampled.scanned_tuples(),
            exact_output: exact_run.output.len(),
            sampled_output: sampled_run.output.len(),
            load_ratio,
        };
        cost_table.row([
            row.n.to_string(),
            row.exact_scanned.to_string(),
            row.sampled_scanned.to_string(),
            row.exact_output.to_string(),
            row.sampled_output.to_string(),
            format!("{:.2}", row.load_ratio),
        ]);
        cost_rows.push(row);
    }
    cost_table.print("Planning on a sample: scan cost vs input size (E13, gate 1)");
    let first = &cost_rows[0];
    let last = &cost_rows[cost_rows.len() - 1];
    let exact_growth = last.exact_scanned as f64 / first.exact_scanned.max(1) as f64;
    let sampled_growth = last.sampled_scanned as f64 / first.sampled_scanned.max(1) as f64;
    println!(
        "\nInput grew 4×: exact scan grew {exact_growth:.2}×, sampled scan {sampled_growth:.2}×."
    );
    if exact_growth < 3.0 {
        fail("exact statistics scan did not grow with the input (sweep too small?)");
    }
    if sampled_growth > 1.5 {
        fail("sampled statistics scan grew with the input — not sublinear");
    }
    if last.load_ratio > 3.0 {
        fail("sampled plan quality degraded: max load over 3× the exact plan's");
    }

    // ---------------------------------------------------------------
    // Gates 2 + 3 share one workload: a heavy-hitter triangle with the
    // straggler pinned (by seed search) to a movable heavy grid cell.
    // ---------------------------------------------------------------
    let n = base_n * 2;
    let db = heavy_hitter_database(&q, n.max(4) / 2, n as usize, 0.5, 21);
    let expected = evaluate(&q, &db).expect("sequential join");
    let modes: [(&str, StatsMode); 2] =
        [("exact", StatsMode::Exact), ("sampled", StatsMode::Sampled { budget, seed: 13 })];
    let exact_cells = {
        let stats = DbStatistics::collect(&db, StatsMode::Exact);
        WcoProgram::new_with_stats(&q, &db, p, 5, &stats).expect("plan builds").reroutable_cells()
    };
    if exact_cells.is_empty() {
        fail("the heavy-hitter input produced no movable heavy grid cells");
    }
    let straggler = seed_hitting(&exact_cells, p, slowdown);
    let async_cfg = AsyncConfig::new().with_straggler(straggler);
    let spec = RerouteSpec::default();

    let mut matrix_rows: Vec<MatrixRow> = Vec::new();
    let mut matrix_table =
        TextTable::new(["stats", "schedule", "backend", "out", "max load B", "makespan", "ok"]);
    let push = |rows: &mut Vec<MatrixRow>,
                table: &mut TextTable,
                stats: &str,
                schedule: &str,
                backend: &str,
                output: &Relation,
                max_load: u64,
                makespan: Option<u64>| {
        let row = MatrixRow {
            stats: stats.to_string(),
            schedule: schedule.to_string(),
            backend: backend.to_string(),
            output_tuples: output.len(),
            max_load_bytes: max_load,
            makespan,
            identical: output.same_tuples(&expected),
        };
        table.row([
            row.stats.clone(),
            row.schedule.clone(),
            row.backend.clone(),
            row.output_tuples.to_string(),
            row.max_load_bytes.to_string(),
            row.makespan.map_or("—".to_string(), |m| m.to_string()),
            if row.identical { "✓".to_string() } else { "DIVERGED".to_string() },
        ]);
        rows.push(row);
    };

    let mut recovery = 0.0f64;
    let mut moved_cells = 0usize;
    for (label, mode) in modes {
        let stats = DbStatistics::collect(&db, mode);
        let program = WcoProgram::new_with_stats(&q, &db, p, 5, &stats).expect("plan builds");
        // Observe → decide → act on the event-driven backend: baseline
        // is the static schedule, adaptive the rerouted one, both under
        // the same injected straggler.
        let run =
            cluster.run_adaptive(&program, &db, &async_cfg, &spec).expect("adaptive run completes");
        if let Some(d) = run.divergence() {
            fail(&format!("{label}: static/rerouted divergence: {d}"));
        }
        if label == "exact" {
            recovery = run.recovery();
            moved_cells = run.plan.len();
            if run.plan.is_empty() {
                fail("the controller moved nothing despite a pinned straggler");
            }
        }
        // The same plan replayed on the synchronous backend: rerouting
        // is a program transformation, not a backend feature.
        let host = RerouteHost::new(&program, run.plan.clone());
        let sync_static = cluster.run(&program, &db).expect("sync static run");
        let sync_reroute = cluster.run(&host, &db).expect("sync rerouted run");
        let b = &run.baseline.result;
        let a = &run.adaptive.result;
        push(
            &mut matrix_rows,
            &mut matrix_table,
            label,
            "static",
            "sync",
            &sync_static.output,
            sync_static.max_load_bytes(),
            None,
        );
        push(
            &mut matrix_rows,
            &mut matrix_table,
            label,
            "static",
            "async",
            &b.output,
            b.max_load_bytes(),
            Some(run.baseline.schedule.makespan),
        );
        push(
            &mut matrix_rows,
            &mut matrix_table,
            label,
            "reroute",
            "sync",
            &sync_reroute.output,
            sync_reroute.max_load_bytes(),
            None,
        );
        push(
            &mut matrix_rows,
            &mut matrix_table,
            label,
            "reroute",
            "async",
            &a.output,
            a.max_load_bytes(),
            Some(run.adaptive.schedule.makespan),
        );
    }
    matrix_table.print("Output equivalence: stats × schedule × backend (E13, gate 3)");
    println!(
        "\nStraggler: {moved_cells} heavy cell(s) moved; rerouting recovered \
         {:.1}% of the static makespan (gate 2 floor: {:.0}%).",
        recovery * 100.0,
        min_recovery * 100.0
    );

    let rows = Rows { cost: cost_rows, matrix: matrix_rows, recovery, moved_cells };
    maybe_write_json("exp_adaptive_runtime", &rows);

    if rows.matrix.iter().any(|r| !r.identical) {
        fail("the equivalence matrix has a diverging cell");
    }
    if recovery < min_recovery {
        fail(&format!(
            "rerouting recovered only {:.1}% of the straggled makespan (need {:.0}%)",
            recovery * 100.0,
            min_recovery * 100.0
        ));
    }
    println!("\nAll E13 gates passed.");
}
