//! Experiment **E12** — the multi-round worst-case optimal crossover
//! (BKS 2018, arXiv:1604.01848).
//!
//! On skew-free inputs the one-round HyperCube load `n/p^{1/τ*}` is
//! optimal, and on cycles and cliques (`τ* = ρ*`) it even matches the AGM
//! target — there is nothing to gain from extra rounds. Under skew the
//! picture flips: a heavy hitter pins `Θ(deg)` tuples to the servers
//! owning its hash coordinate, so the one-round max load decays only as
//! `deg/p^{1/k}` while the WCO strategy keeps decaying as `n/p^{1/ρ*}`.
//! This experiment sweeps `p` on a degree-planted input (one heavy key of
//! degree `n/2` in every relation) for C3, C4 and K4 and reports the
//! measured per-server loads of both strategies — the crossover point
//! where two rounds start beating one is visible in each table.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs (CI uses 0.1);
//! `--slack <f64>` sets the prediction bracket multiplier (default 4);
//! `--json <path>` (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Exit is non-zero when (a) the one-round HyperCube still beats WCO at
//! the largest `p` on any query — no crossover demonstrated — or (b) a
//! measured WCO load escapes the predicted bracket
//! `slack · predicted + 16`, or (c) the two strategies disagree on the
//! answer set.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_wco_crossover
//! ```

use serde::Serialize;

use mpc_bench::{arg_f64, maybe_write_json, scaled, TextTable};
use mpc_core::analysis::QueryAnalysis;
use mpc_core::hypercube::HyperCube;
use mpc_core::space_exponent::space_exponent;
use mpc_core::wco::{PlannerChoice, WcoLoadPrediction, WcoProgram, WorstCaseOptimalPlan};
use mpc_cq::families;
use mpc_data::skew::degree_planted_database;
use mpc_sim::{Cluster, MpcConfig};

#[derive(Serialize)]
struct Row {
    query: String,
    p: usize,
    rounds: usize,
    hc_max_tuples: u64,
    wco_max_tuples: u64,
    wco_predicted: f64,
    agm_target: f64,
    one_round_target: f64,
    wco_wins: bool,
}

fn main() {
    let n = scaled(2000, 300) as usize;
    let slack = arg_f64("--slack", 4.0, |v| v > 1.0);
    let sweep = [4usize, 8, 16, 32, 64];
    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    let queries = [
        families::triangle(),
        families::cycle(4),
        families::clique(4).expect("K4 is a valid clique"),
    ];
    for (qi, q) in queries.iter().enumerate() {
        let eps = space_exponent(q).expect("LP solvable").to_f64();
        let analysis = QueryAnalysis::analyze(q).expect("analysis succeeds");
        let choice =
            analysis.planner_choice(mpc_lp::Rational::ZERO, true).expect("planner choice resolves");
        assert_eq!(
            choice,
            PlannerChoice::WorstCaseOptimal,
            "{}: skewed cyclic queries route to the WCO planner",
            q.name()
        );
        // One heavy key of degree n/2 in every relation: heavy enough to
        // pin the one-round load, light enough that the WCO heavy grids
        // stay small.
        let db = degree_planted_database(q, 8 * n as u64, n, 1, n / 2, 41 + qi as u64);
        let mut table = TextTable::new([
            "p",
            "rounds",
            "HC max tuples",
            "WCO max tuples",
            "WCO predicted",
            "AGM target",
            "1-round target",
            "winner",
        ]);
        for &p in &sweep {
            let hc = HyperCube::run(q, &db, &MpcConfig::new(p, eps)).expect("HC run succeeds");
            let plan = WorstCaseOptimalPlan::build(q, &db, p).expect("WCO plan builds");
            plan.verify_round_floor().expect("round floor holds");
            let pred = WcoLoadPrediction::predict(&plan).expect("prediction succeeds");
            let program = WcoProgram::with_plan(plan, 7 + p as u64);
            let cluster = Cluster::new(MpcConfig::new(p, eps)).expect("cluster config valid");
            let wco = cluster.run(&program, &db).expect("WCO run succeeds");
            if !wco.output.same_tuples(&hc.result.output) {
                failures.push(format!(
                    "{} at p = {p}: WCO answered {} tuples, HyperCube {}",
                    q.name(),
                    wco.output.len(),
                    hc.result.output.len()
                ));
            }
            for cmp in pred.compare(&wco).expect("round counts match") {
                if cmp.simulated_max_tuples as f64 > slack * cmp.predicted_tuples + 16.0 {
                    failures.push(format!(
                        "{} at p = {p}: round {} measured {} escapes {slack} × {:.1} + 16",
                        q.name(),
                        cmp.round,
                        cmp.simulated_max_tuples,
                        cmp.predicted_tuples
                    ));
                }
            }
            let row = Row {
                query: q.name().to_string(),
                p,
                rounds: wco.num_rounds(),
                hc_max_tuples: hc.result.max_load_tuples(),
                wco_max_tuples: wco.max_load_tuples(),
                wco_predicted: pred.max_predicted_tuples(),
                agm_target: pred.agm_target,
                one_round_target: pred.one_round_target,
                wco_wins: wco.max_load_tuples() < hc.result.max_load_tuples(),
            };
            table.row([
                row.p.to_string(),
                row.rounds.to_string(),
                row.hc_max_tuples.to_string(),
                row.wco_max_tuples.to_string(),
                format!("{:.1}", row.wco_predicted),
                format!("{:.1}", row.agm_target),
                format!("{:.1}", row.one_round_target),
                if row.wco_wins { "WCO".to_string() } else { "one-round".to_string() },
            ]);
            rows.push(row);
        }
        table.print(&format!(
            "E12 — {} under a planted heavy hitter (deg = n/2, n = {n}): one-round HyperCube vs \
             worst-case optimal",
            q.name()
        ));
        let last = rows.last().expect("sweep is non-empty");
        if !last.wco_wins {
            failures.push(format!(
                "{}: one-round still wins at p = {} ({} vs {} tuples) — no crossover",
                last.query, last.p, last.hc_max_tuples, last.wco_max_tuples
            ));
        }
    }

    println!(
        "\nExpected shape: at small p the one-round HyperCube wins (the WCO staging and \
         broadcast rounds cost more than they save), but its max load is pinned at Θ(deg/p^(1/k)) \
         by the planted hitter while the WCO rounds keep decaying as n/p^(1/ρ*) — so the winner \
         column flips to WCO as p grows, on every cyclic query. The measured WCO loads stay \
         inside the slack × predicted bracket computed from the plan's exact tuple masses."
    );
    maybe_write_json("exp_wco_crossover", &rows);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
