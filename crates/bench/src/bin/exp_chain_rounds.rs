//! Experiment **E3** (Example 4.2 / Lemma 4.6): the number of rounds
//! needed for chain queries `L_k` as a function of the space exponent ε,
//! with the plans actually executed on the simulator. The shape to
//! reproduce: `⌈log_{kε} k⌉` rounds where `kε = 2⌊1/(1−ε)⌋` — e.g. `L_16`
//! takes 4 rounds at ε = 0 but only 2 at ε = 1/2 — and the measured lower
//! bounds match.
//!
//! CLI flags: `--scale <f64>` shrinks/grows the inputs; `--json <path>`
//! (or `MPC_BENCH_JSON=<dir>`) writes the rows as JSON.
//!
//! Output shape: one markdown table; rows = (chain length `k`, ε),
//! columns = `kε`, the round lower bound, the planner's depth, the
//! executed round count, max bytes/round and a correctness check.
//!
//! ```text
//! cargo run --release -p mpc-bench --bin exp_chain_rounds
//! ```

use serde::Serialize;

use mpc_bench::{maybe_write_json, scaled, TextTable};
use mpc_core::multiround::executor::MultiRound;
use mpc_core::multiround::lower_bound::round_lower_bound;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_lp::Rational;
use mpc_storage::join::evaluate;

#[derive(Serialize)]
struct Row {
    k: usize,
    epsilon: String,
    k_epsilon: usize,
    lower_bound: usize,
    plan_rounds: usize,
    executed_rounds: usize,
    max_bytes_per_round: u64,
    correct: bool,
}

fn main() {
    let n = scaled(1000, 100);
    let p = 16;
    let epsilons = [Rational::ZERO, Rational::new(1, 2), Rational::new(2, 3)];
    let ks = [4usize, 8, 16, 32];

    let mut table = TextTable::new([
        "k",
        "ε",
        "kε",
        "lower bound",
        "plan rounds",
        "executed rounds",
        "max bytes/round",
        "correct",
    ]);
    let mut rows = Vec::new();
    for &k in &ks {
        let q = families::chain(k);
        let db = matching_database(&q, n, 3 + k as u64);
        let truth = evaluate(&q, &db).expect("sequential evaluation succeeds");
        for &eps in &epsilons {
            let ke = mpc_core::space_exponent::k_epsilon(eps);
            let lower = round_lower_bound(&q, eps).expect("bound computable");
            let plan = MultiRoundPlan::build(&q, eps).expect("planning succeeds");
            let outcome = MultiRound::run_plan(&plan, &db, p, 5).expect("execution succeeds");
            let correct = outcome.result.output.same_tuples(&truth);
            let row = Row {
                k,
                epsilon: eps.to_string(),
                k_epsilon: ke,
                lower_bound: lower,
                plan_rounds: plan.num_rounds(),
                executed_rounds: outcome.result.num_rounds(),
                max_bytes_per_round: outcome.result.max_load_bytes(),
                correct,
            };
            table.row([
                k.to_string(),
                row.epsilon.clone(),
                ke.to_string(),
                lower.to_string(),
                row.plan_rounds.to_string(),
                row.executed_rounds.to_string(),
                row.max_bytes_per_round.to_string(),
                correct.to_string(),
            ]);
            rows.push(row);
        }
    }
    table.print(&format!("E3 — rounds vs space exponent for chain queries Lk (n = {n}, p = {p})"));
    println!(
        "\nExpected shape (Example 4.2 / Cor 4.8): rounds = ⌈log_kε k⌉ with kε = 2⌊1/(1−ε)⌋; \
         L16 drops from 4 rounds (ε=0) to 2 rounds (ε=1/2); the lower bound matches the plan \
         depth for chains."
    );
    maybe_write_json("exp_chain_rounds", &rows);
}
