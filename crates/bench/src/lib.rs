//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one artefact of the paper (see
//! the per-experiment index in `DESIGN.md`): it prints a human-readable
//! table to stdout and, when `--json <path>` is passed (or the
//! `MPC_BENCH_JSON` environment variable is set), also writes the rows as
//! JSON so the numbers in `EXPERIMENTS.md` are reproducible artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A rendered table: header + rows of equal width.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must have the same number of cells as the header).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width must match header width");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&render(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout with a caption.
    pub fn print(&self, caption: &str) {
        println!("\n## {caption}\n");
        print!("{}", self.to_markdown());
    }
}

/// Where to write the JSON artefact of an experiment, if requested via
/// `--json <path>` or `MPC_BENCH_JSON=<dir>`.
pub fn json_output_path(experiment: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            return Some(PathBuf::from(path));
        }
    }
    if let Ok(dir) = std::env::var("MPC_BENCH_JSON") {
        return Some(PathBuf::from(dir).join(format!("{experiment}.json")));
    }
    None
}

/// Serialise the experiment rows to the requested JSON path (if any).
pub fn maybe_write_json<T: Serialize>(experiment: &str, rows: &T) {
    if let Some(path) = json_output_path(experiment) {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        match serde_json::to_string_pretty(rows) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("\n(wrote JSON rows to {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialise rows: {e}"),
        }
    }
}

/// Parse `--scale <f64>` (default 1.0): all experiment binaries accept it
/// to shrink or grow the workload sizes.
pub fn scale_factor() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse::<f64>().ok()) {
            if v > 0.0 {
                return v;
            }
        }
    }
    1.0
}

/// Scale an integer workload parameter by the `--scale` factor, with a
/// minimum of `min`.
pub fn scaled(base: u64, min: u64) -> u64 {
    ((base as f64 * scale_factor()).round() as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new(["query", "τ*"]);
        t.row(["C3", "3/2"]);
        t.row(["L5", "3"]);
        let md = t.to_markdown();
        assert!(md.contains("| query | τ*"));
        assert!(md.lines().count() == 4);
        assert!(md.contains("| C3 "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(100, 10) >= 10);
    }
}
