//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one artefact of the paper (see
//! the per-experiment index in `DESIGN.md`): it prints a human-readable
//! table to stdout and, when `--json <path>` is passed (or the
//! `MPC_BENCH_JSON` environment variable is set), also writes the rows as
//! JSON so the numbers in `EXPERIMENTS.md` are reproducible artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A rendered table: header + rows of equal width.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must have the same number of cells as the header).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width must match header width");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&render(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout with a caption.
    pub fn print(&self, caption: &str) {
        println!("\n## {caption}\n");
        print!("{}", self.to_markdown());
    }
}

/// Where to write the JSON artefact of an experiment, if requested via
/// `--json <path>` or `MPC_BENCH_JSON=<dir>`.
pub fn json_output_path(experiment: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            return Some(PathBuf::from(path));
        }
    }
    if let Ok(dir) = std::env::var("MPC_BENCH_JSON") {
        return Some(PathBuf::from(dir).join(format!("{experiment}.json")));
    }
    None
}

/// Serialise the experiment rows to the requested JSON path (if any).
///
/// The write is atomic: rows go to a `.tmp` sibling first and are moved
/// into place with a rename, so a reader (the bench gate, a concurrent
/// experiment) never observes a truncated artefact, and a crash mid-write
/// leaves any previous artefact intact.
pub fn maybe_write_json<T: Serialize>(experiment: &str, rows: &T) {
    if let Some(path) = json_output_path(experiment) {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let json = match serde_json::to_string_pretty(rows) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("warning: could not serialise rows: {e}");
                return;
            }
        };
        let tmp = path.with_extension("json.tmp");
        let result = fs::write(&tmp, json).and_then(|()| fs::rename(&tmp, &path));
        match result {
            Ok(()) => println!("\n(wrote JSON rows to {})", path.display()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Parse `--<name> <usize>` (default `default`): used by the sweep flags
/// of the table/figure binaries (e.g. `--k 24`).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == name) {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
            return v;
        }
    }
    default
}

/// Parse `--<name> <f64>` (default `default`), accepting only values for
/// which `accept` holds (e.g. positivity): the float twin of
/// [`arg_usize`], shared by `--scale`, `--slack` and future flags.
pub fn arg_f64(name: &str, default: f64, accept: fn(f64) -> bool) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == name) {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse::<f64>().ok()) {
            if accept(v) {
                return v;
            }
        }
    }
    default
}

/// Cross-check every LP solver path on `q`: the dense tableau oracle, the
/// sparse revised simplex, and (when the family is recognised) the
/// closed form must agree **exactly** — rational equality of `τ*` and of
/// the edge-cover optimum, plus feasibility of every returned solution.
///
/// Returns a description of the first disagreement; the experiment
/// binaries treat any `Err` as fatal (CI smoke runs fail on it).
pub fn verify_lp_solver_agreement(q: &mpc_cq::Query) -> Result<(), String> {
    use mpc_lp::QueryLps;
    let dense = QueryLps::solve_dense(q).map_err(|e| format!("dense oracle failed: {e}"))?;
    let sparse = QueryLps::solve_sparse(q).map_err(|e| format!("sparse solver failed: {e}"))?;
    if dense.covering_number() != sparse.covering_number() {
        return Err(format!(
            "τ* disagreement on {}: dense {} vs sparse {}",
            q.name(),
            dense.covering_number(),
            sparse.covering_number()
        ));
    }
    if dense.edge_cover().total() != sparse.edge_cover().total() {
        return Err(format!(
            "edge-cover disagreement on {}: dense {} vs sparse {}",
            q.name(),
            dense.edge_cover().total(),
            sparse.edge_cover().total()
        ));
    }
    for (label, lps) in [("dense", &dense), ("sparse", &sparse)] {
        if !lps.vertex_cover().is_valid_for(q)
            || !lps.edge_packing().is_valid_for(q)
            || !lps.edge_cover().is_valid_for(q)
            || lps.vertex_cover().total() != lps.edge_packing().total()
        {
            return Err(format!("{label} solution of {} fails validation", q.name()));
        }
    }
    if let Some((family, closed)) = mpc_lp::families::closed_form(q) {
        if closed.covering_number() != dense.covering_number()
            || closed.edge_cover().total() != dense.edge_cover().total()
        {
            return Err(format!(
                "closed form {family} disagrees on {}: τ* {} vs {}",
                q.name(),
                closed.covering_number(),
                dense.covering_number()
            ));
        }
    }
    Ok(())
}

/// Compress long weight vectors for text tables (uniform vectors collapse
/// to `(w ×n)`, very long ones are truncated); JSON artefacts keep the
/// full vectors.
pub fn fmt_weights(weights: &[String]) -> String {
    if weights.len() > 8 && weights.iter().all(|w| w == &weights[0]) {
        return format!("({} ×{})", weights[0], weights.len());
    }
    if weights.len() > 16 {
        return format!("({}, … {} total)", weights[..6].join(", "), weights.len());
    }
    format!("({})", weights.join(", "))
}

/// Parse `--scale <f64>` (default 1.0): all experiment binaries accept it
/// to shrink or grow the workload sizes.
pub fn scale_factor() -> f64 {
    arg_f64("--scale", 1.0, |v| v > 0.0)
}

/// Scale an integer workload parameter by the `--scale` factor, with a
/// minimum of `min`.
pub fn scaled(base: u64, min: u64) -> u64 {
    ((base as f64 * scale_factor()).round() as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new(["query", "τ*"]);
        t.row(["C3", "3/2"]);
        t.row(["L5", "3"]);
        let md = t.to_markdown();
        assert!(md.contains("| query | τ*"));
        assert!(md.lines().count() == 4);
        assert!(md.contains("| C3 "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn json_artefact_write_is_atomic() {
        let dir = std::env::temp_dir().join(format!("mpc-bench-json-{}", std::process::id()));
        std::env::set_var("MPC_BENCH_JSON", &dir);
        maybe_write_json("BENCH_atomic_test", &vec![1u64, 2, 3]);
        let path = dir.join("BENCH_atomic_test.json");
        let content = fs::read_to_string(&path).expect("artefact must exist");
        assert!(content.contains('2'));
        // No temp-file droppings: the rename consumed the staging file.
        assert!(!dir.join("BENCH_atomic_test.json.tmp").exists());
        std::env::remove_var("MPC_BENCH_JSON");
        let _ = fs::remove_dir_all(&dir);
    }
}
