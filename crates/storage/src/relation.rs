//! Tuples and relation instances.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::Result;

/// A database value. The paper's matching databases draw values from the
/// domain `[n] = {1, …, n}`; we use `u64` throughout.
pub type Value = u64;

/// A fixed-arity tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Create a tuple from a value slice.
    pub fn new<V: Into<Vec<Value>>>(values: V) -> Self {
        Tuple(values.into())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The value at a position.
    pub fn get(&self, i: usize) -> Option<Value> {
        self.0.get(i).copied()
    }

    /// Project onto the given positions (panics if a position is out of
    /// range — positions always come from a validated query).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i]).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(values)
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple(values.to_vec())
    }
}

/// A named relation instance: a set of tuples of fixed arity.
///
/// Duplicates are eliminated on construction and on
/// [`Relation::insert`]; iteration order is insertion order of the first
/// occurrence, which keeps downstream algorithms deterministic.
///
/// Only [`Serialize`] is derived: the deduplication index is rebuilt on
/// construction, so round-tripping goes through [`Relation::from_tuples`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Relation {
    name: String,
    arity: usize,
    tuples: Vec<Tuple>,
    #[serde(skip)]
    seen: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given name and arity.
    pub fn empty<S: Into<String>>(name: S, arity: usize) -> Self {
        Relation { name: name.into(), arity, tuples: Vec::new(), seen: BTreeSet::new() }
    }

    /// Create a relation from an iterator of tuples.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::TupleArity`] if a tuple's arity differs from
    /// `arity`.
    pub fn from_tuples<S, I, T>(name: S, arity: usize, tuples: I) -> Result<Self>
    where
        S: Into<String>,
        I: IntoIterator<Item = T>,
        T: Into<Tuple>,
    {
        let mut rel = Relation::empty(name, arity);
        for t in tuples {
            rel.insert(t.into())?;
        }
        Ok(rel)
    }

    /// The relation symbol.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple; duplicates are ignored. Returns `true` if the tuple
    /// was new.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::TupleArity`] if the arity does not match.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.arity {
            return Err(StorageError::TupleArity {
                relation: self.name.clone(),
                expected: self.arity,
                actual: t.arity(),
            });
        }
        if self.seen.insert(t.clone()) {
            self.tuples.push(t);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// The tuples, in deterministic (first-insertion) order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Rename the relation (returns a copy).
    pub fn with_name<S: Into<String>>(&self, name: S) -> Relation {
        let mut r = self.clone();
        r.name = name.into();
        r
    }

    /// Size of the relation in bytes, counting 8 bytes per value. This is
    /// the accounting unit used by the simulator's load bounds.
    pub fn size_in_bytes(&self) -> u64 {
        (self.len() as u64) * (self.arity as u64) * 8
    }

    /// Size of the relation in bits when each value is encoded with
    /// `⌈log₂(domain)⌉` bits — the paper's `N = O(n log n)` accounting.
    pub fn size_in_bits(&self, domain: u64) -> u64 {
        let bits_per_value = (64 - domain.max(2).leading_zeros()) as u64;
        (self.len() as u64) * (self.arity as u64) * bits_per_value
    }

    /// The set of tuples as a sorted vector (useful for equality checks in
    /// tests, ignoring insertion order).
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }

    /// True if two relations contain exactly the same tuple sets
    /// (names and insertion order are ignored).
    pub fn same_tuples(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.seen == other.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_basics() {
        let t = Tuple::from([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(2));
        assert_eq!(t.get(5), None);
        assert_eq!(t.project(&[2, 0]), Tuple::from([3, 1]));
        assert_eq!(t.to_string(), "(1,2,3)");
    }

    #[test]
    fn relation_dedups() {
        let mut r = Relation::empty("R", 2);
        assert!(r.insert(Tuple::from([1, 2])).unwrap());
        assert!(!r.insert(Tuple::from([1, 2])).unwrap());
        assert!(r.insert(Tuple::from([2, 1])).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::from([1, 2])));
        assert!(!r.contains(&Tuple::from([9, 9])));
    }

    #[test]
    fn relation_rejects_wrong_arity() {
        let mut r = Relation::empty("R", 2);
        let err = r.insert(Tuple::from([1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::TupleArity { .. }));
    }

    #[test]
    fn from_tuples_builder() {
        let r = Relation::from_tuples("R", 2, vec![[1u64, 2], [3, 4], [1, 2]]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(), "R");
        assert!(Relation::from_tuples("R", 1, vec![[1u64, 2]]).is_err());
    }

    #[test]
    fn size_accounting() {
        let r = Relation::from_tuples("R", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        assert_eq!(r.size_in_bytes(), 2 * 2 * 8);
        // domain 1000 → 10 bits per value.
        assert_eq!(r.size_in_bits(1000), 2 * 2 * 10);
        // tiny domains still get at least 1 bit per value.
        assert!(r.size_in_bits(1) >= 4);
    }

    #[test]
    fn same_tuples_ignores_order_and_name() {
        let a = Relation::from_tuples("A", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        let b = Relation::from_tuples("B", 2, vec![[3u64, 4], [1, 2]]).unwrap();
        assert!(a.same_tuples(&b));
        let c = Relation::from_tuples("C", 2, vec![[3u64, 4]]).unwrap();
        assert!(!a.same_tuples(&c));
    }

    #[test]
    fn sorted_tuples_is_sorted() {
        let r = Relation::from_tuples("R", 1, vec![[3u64], [1], [2]]).unwrap();
        assert_eq!(r.sorted_tuples(), vec![Tuple::from([1]), Tuple::from([2]), Tuple::from([3])]);
    }
}
