//! Error type for the storage layer.

use std::fmt;

/// Errors raised while constructing database instances or evaluating
/// queries on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A query atom references a relation that the database does not
    /// contain.
    MissingRelation(String),
    /// The arity of a relation instance does not match the atom that uses
    /// it.
    ArityMismatch {
        /// Relation symbol.
        relation: String,
        /// Arity expected by the query atom.
        expected: usize,
        /// Arity of the stored instance.
        actual: usize,
    },
    /// A tuple has the wrong arity for the relation it is inserted into.
    TupleArity {
        /// Relation symbol.
        relation: String,
        /// Arity of the relation.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A query-level error (propagated from `mpc-cq`).
    Query(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::MissingRelation(r) => write!(f, "relation `{r}` not found in database"),
            StorageError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "relation `{relation}` has arity {actual} but the query expects arity {expected}"
            ),
            StorageError::TupleArity { relation, expected, actual } => write!(
                f,
                "tuple of arity {actual} inserted into relation `{relation}` of arity {expected}"
            ),
            StorageError::Query(msg) => write!(f, "query error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<mpc_cq::CqError> for StorageError {
    fn from(e: mpc_cq::CqError) -> Self {
        StorageError::Query(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::MissingRelation("R".into()).to_string().contains('R'));
        let e = StorageError::ArityMismatch { relation: "S".into(), expected: 2, actual: 3 };
        assert!(e.to_string().contains("arity 3"));
    }
}
