//! Database instances: a binding of relation symbols to instances.

use std::collections::BTreeMap;

use serde::Serialize;

use mpc_cq::Query;

use crate::error::StorageError;
use crate::relation::{Relation, Tuple};
use crate::Result;

/// A database instance over a domain `[n] = {1, …, n}`.
///
/// Relations are keyed by their symbol; a query can be evaluated on the
/// database as long as every atom's relation symbol is bound with the right
/// arity ([`Database::validate_for`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Database {
    domain_size: u64,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Create an empty database over the domain `[n]`.
    pub fn new(domain_size: u64) -> Self {
        Database { domain_size, relations: BTreeMap::new() }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Insert (or replace) a relation instance.
    pub fn insert_relation(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Retrieve a relation by symbol.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::MissingRelation`] if the symbol is unbound.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations.get(name).ok_or_else(|| StorageError::MissingRelation(name.to_string()))
    }

    /// Retrieve a relation mutably.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::MissingRelation`] if the symbol is unbound.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations.get_mut(name).ok_or_else(|| StorageError::MissingRelation(name.to_string()))
    }

    /// All relations, keyed by symbol.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The largest relation cardinality `n` (the paper's `n`); zero for an
    /// empty database.
    pub fn max_relation_size(&self) -> usize {
        self.relations.values().map(Relation::len).max().unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Total size in bytes (8 bytes per value), the simulator's `N`.
    pub fn total_bytes(&self) -> u64 {
        self.relations.values().map(Relation::size_in_bytes).sum()
    }

    /// Total size in bits with `⌈log₂ n⌉` bits per value
    /// (the paper's `N = O(n log n)`).
    pub fn total_bits(&self) -> u64 {
        self.relations.values().map(|r| r.size_in_bits(self.domain_size)).sum()
    }

    /// Check that every atom of `q` is bound to a relation of the correct
    /// arity.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::MissingRelation`] or
    /// [`StorageError::ArityMismatch`] accordingly.
    pub fn validate_for(&self, q: &Query) -> Result<()> {
        for atom in q.atoms() {
            let rel = self.relation(&atom.name)?;
            if rel.arity() != atom.arity() {
                return Err(StorageError::ArityMismatch {
                    relation: atom.name.clone(),
                    expected: atom.arity(),
                    actual: rel.arity(),
                });
            }
        }
        Ok(())
    }

    /// Restrict the database to the relations used by `q` (cloning them).
    /// Handy when passing inputs to per-query programs.
    pub fn project_to_query(&self, q: &Query) -> Result<Database> {
        let mut db = Database::new(self.domain_size);
        for atom in q.atoms() {
            db.insert_relation(self.relation(&atom.name)?.clone());
        }
        Ok(db)
    }

    /// Build a database from `(name, arity, tuples)` triples.
    ///
    /// # Errors
    ///
    /// Propagates tuple-arity errors.
    pub fn from_relations<I>(domain_size: u64, relations: I) -> Result<Database>
    where
        I: IntoIterator<Item = (String, usize, Vec<Tuple>)>,
    {
        let mut db = Database::new(domain_size);
        for (name, arity, tuples) in relations {
            db.insert_relation(Relation::from_tuples(name, arity, tuples)?);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn sample_db() -> Database {
        let mut db = Database::new(4);
        db.insert_relation(
            Relation::from_tuples("S1", 2, vec![[1u64, 2], [2, 3], [3, 4], [4, 1]]).unwrap(),
        );
        db.insert_relation(
            Relation::from_tuples("S2", 2, vec![[1u64, 2], [2, 3], [3, 4], [4, 1]]).unwrap(),
        );
        db
    }

    #[test]
    fn insert_and_lookup() {
        let db = sample_db();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.relation("S1").unwrap().len(), 4);
        assert!(db.relation("S9").is_err());
        assert_eq!(db.domain_size(), 4);
    }

    #[test]
    fn size_accounting() {
        let db = sample_db();
        assert_eq!(db.total_tuples(), 8);
        assert_eq!(db.total_bytes(), 8 * 2 * 8);
        assert_eq!(db.max_relation_size(), 4);
        // 4-value domain → 3 bits per value (⌈log₂ 4⌉ rounded up via leading_zeros of 4 = 3 bits).
        assert!(db.total_bits() > 0);
    }

    #[test]
    fn validate_for_query() {
        let db = sample_db();
        let l2 = families::chain(2);
        assert!(db.validate_for(&l2).is_ok());
        let l3 = families::chain(3);
        assert!(matches!(db.validate_for(&l3), Err(StorageError::MissingRelation(_))));

        let mut bad = sample_db();
        bad.insert_relation(Relation::from_tuples("S2", 3, vec![[1u64, 2, 3]]).unwrap());
        assert!(matches!(bad.validate_for(&l2), Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn project_to_query_filters_relations() {
        let mut db = sample_db();
        db.insert_relation(Relation::from_tuples("Junk", 1, vec![[1u64]]).unwrap());
        let l2 = families::chain(2);
        let projected = db.project_to_query(&l2).unwrap();
        assert_eq!(projected.num_relations(), 2);
        assert!(projected.relation("Junk").is_err());
    }

    #[test]
    fn from_relations_builder() {
        let db = Database::from_relations(
            3,
            vec![("R".to_string(), 1, vec![Tuple::from([1u64]), Tuple::from([2])])],
        )
        .unwrap();
        assert_eq!(db.relation("R").unwrap().len(), 2);
    }
}
