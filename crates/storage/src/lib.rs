//! Relations, database instances and the local (single-server) join engine.
//!
//! This crate is the storage substrate of the PODS 2013 reproduction. The
//! MPC model moves *tuples of integers* between servers; locally each
//! server is computationally unbounded, so any correct in-memory join
//! suffices. We provide
//!
//! * [`Tuple`] and [`Relation`]: flat `u64` tuples grouped into named
//!   relation instances with exact size accounting (tuples / bytes / bits),
//! * [`Database`]: an instance binding every relation symbol of a query to
//!   an instance, plus its domain size `n`,
//! * [`join`]: evaluation of a full conjunctive query on a database by
//!   connected-order hash joins — used both as the per-server local
//!   evaluation inside the simulator and as the sequential ground truth the
//!   parallel algorithms are checked against, and
//! * [`estimate`]: the expected answer size `n^{1+χ(q)}` over random
//!   matching databases (Lemma 3.4) and the AGM-style upper bound from a
//!   fractional edge cover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod estimate;
pub mod join;
pub mod relation;

pub use database::Database;
pub use error::StorageError;
pub use relation::{Relation, Tuple, Value};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
