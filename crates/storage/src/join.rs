//! Local (single-server) evaluation of full conjunctive queries.
//!
//! Servers in the MPC model are computationally unbounded; what matters is
//! only the data they receive. This module provides the in-memory join used
//! (a) inside every simulated server to compute its local output and
//! (b) sequentially on the whole database as the ground truth against which
//! the parallel algorithms are verified.
//!
//! The algorithm is a connected-order hash join: atoms are processed in an
//! order in which each atom (after the first) shares at least one variable
//! with the already-joined prefix whenever the query is connected; each
//! step builds a hash index on the shared variables and extends the
//! current partial assignments.
//!
//! The per-step build is **columnar**: the atom's relation is snapshotted
//! once into column vectors (self-inconsistent rows on repeated variables
//! dropped up front) and the index maps shared-variable keys to `u32` row
//! ids instead of tuple references — probes touch only the new-variable
//! columns, and single-variable keys skip the per-probe `Vec` allocation
//! entirely. When enough partial assignments are in flight the probe runs
//! rayon-parallel in deterministic (input-order-preserving) chunks.

use std::collections::HashMap;

use mpc_cq::{Query, VarId};
use rayon::prelude::*;

use crate::database::Database;
use crate::relation::{Relation, Tuple, Value};
use crate::Result;

/// Probe in parallel only when at least this many partial assignments are
/// in flight — below it, thread spawn overhead beats the win.
const PAR_PROBE_THRESHOLD: usize = 1024;

/// The hash index of one join step over the columnar image of an atom's
/// relation: rows self-consistent on repeated variables, stored
/// column-major, with row ids grouped by their shared-variable key.
struct AtomIndex {
    cols: Vec<Vec<Value>>,
    keys: KeyIndex,
}

enum KeyIndex {
    /// No shared variables (first atom, or a new connected component):
    /// every row matches every partial.
    All(Vec<u32>),
    /// Exactly one shared position — the common case; keyed directly by
    /// value, no per-row or per-probe key allocation.
    Single(HashMap<Value, Vec<u32>>),
    /// Two or more shared positions.
    Multi(HashMap<Vec<Value>, Vec<u32>>),
}

impl AtomIndex {
    /// Snapshot `rel` column-major, dropping rows that disagree with
    /// themselves on a repeated variable, and index the survivors on the
    /// shared positions.
    fn build(
        rel: &Relation,
        var_positions: &[(VarId, Vec<usize>)],
        shared: &[(VarId, usize)],
    ) -> AtomIndex {
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rel.len()); rel.arity()];
        let mut keys = match shared {
            [] => KeyIndex::All(Vec::with_capacity(rel.len())),
            [_] => KeyIndex::Single(HashMap::new()),
            _ => KeyIndex::Multi(HashMap::new()),
        };
        let mut row = 0u32;
        'tuples: for t in rel.iter() {
            let values = t.values();
            for (_, positions) in var_positions {
                let first = values[positions[0]];
                if positions[1..].iter().any(|&p| values[p] != first) {
                    continue 'tuples;
                }
            }
            for (col, &v) in cols.iter_mut().zip(values) {
                col.push(v);
            }
            match &mut keys {
                KeyIndex::All(ids) => ids.push(row),
                KeyIndex::Single(map) => {
                    map.entry(values[shared[0].1]).or_default().push(row);
                }
                KeyIndex::Multi(map) => {
                    let key: Vec<Value> = shared.iter().map(|&(_, pos)| values[pos]).collect();
                    map.entry(key).or_default().push(row);
                }
            }
            row += 1;
        }
        AtomIndex { cols, keys }
    }

    /// Row ids matching one partial assignment's shared-variable values.
    fn candidates(&self, partial: &[Value], shared: &[(VarId, usize)]) -> &[u32] {
        match &self.keys {
            KeyIndex::All(ids) => ids,
            KeyIndex::Single(map) => map.get(&partial[shared[0].0 .0]).map_or(&[], Vec::as_slice),
            KeyIndex::Multi(map) => {
                let key: Vec<Value> = shared.iter().map(|&(v, _)| partial[v.0]).collect();
                map.get(&key).map_or(&[], Vec::as_slice)
            }
        }
    }

    /// Extend `partial` once per matching row, reading only the
    /// new-variable columns.
    fn probe(
        &self,
        partial: &[Value],
        shared: &[(VarId, usize)],
        new_vars: &[(VarId, usize)],
    ) -> Vec<Vec<Value>> {
        self.candidates(partial, shared)
            .iter()
            .map(|&row| {
                let mut extended = partial.to_vec();
                for &(v, pos) in new_vars {
                    extended[v.0] = self.cols[pos][row as usize];
                }
                extended
            })
            .collect()
    }
}

/// Evaluate the query on the database.
///
/// The output relation is named after the query and has one column per
/// query variable, ordered by [`VarId`] (i.e. [`Query::var_names`] order).
///
/// # Errors
///
/// Returns an error if a relation is missing or has the wrong arity.
pub fn evaluate(q: &Query, db: &Database) -> Result<Relation> {
    db.validate_for(q)?;
    let k = q.num_vars();
    let order = join_order(q, db);

    // Partial assignments: value per variable; `bound[v]` says which
    // entries are meaningful. All partials share the same bound set.
    let mut bound = vec![false; k];
    let mut partials: Vec<Vec<Value>> = vec![vec![0; k]];

    for atom_idx in order {
        let atom = &q.atoms()[atom_idx];
        let rel = db.relation(&atom.name)?;

        // Positions of the atom grouped by variable (handles repeated
        // variables within one atom, which arise after contraction).
        let mut var_positions: Vec<(VarId, Vec<usize>)> = Vec::new();
        for (pos, v) in atom.vars.iter().enumerate() {
            match var_positions.iter_mut().find(|(w, _)| w == v) {
                Some((_, ps)) => ps.push(pos),
                None => var_positions.push((*v, vec![pos])),
            }
        }

        let shared: Vec<(VarId, usize)> =
            var_positions.iter().filter(|(v, _)| bound[v.0]).map(|(v, ps)| (*v, ps[0])).collect();
        let new_vars: Vec<(VarId, usize)> =
            var_positions.iter().filter(|(v, _)| !bound[v.0]).map(|(v, ps)| (*v, ps[0])).collect();

        let index = AtomIndex::build(rel, &var_positions, &shared);

        // Probe: order-preserving, so the output stays deterministic
        // whether or not the parallel path runs.
        partials = if partials.len() >= PAR_PROBE_THRESHOLD {
            let chunks: Vec<Vec<Vec<Value>>> = partials
                .par_iter()
                .map(|partial| index.probe(partial, &shared, &new_vars))
                .collect();
            chunks.into_iter().flatten().collect()
        } else {
            partials.iter().flat_map(|partial| index.probe(partial, &shared, &new_vars)).collect()
        };
        for (v, _) in &new_vars {
            bound[v.0] = true;
        }
        if partials.is_empty() {
            break;
        }
    }

    let mut out = Relation::empty(q.name(), k);
    for p in partials {
        out.insert(Tuple(p))?;
    }
    Ok(out)
}

/// Evaluate a connected subset of the query's atoms; the result has one
/// column per variable of the induced subquery, in the *induced subquery's*
/// variable order, and is named after the induced subquery.
///
/// # Errors
///
/// Propagates storage and query errors.
pub fn evaluate_atoms(q: &Query, db: &Database, atoms: &[mpc_cq::AtomId]) -> Result<Relation> {
    let sub = q.induced_subquery(atoms)?;
    evaluate(&sub, db)
}

/// The output column names of [`evaluate`] for a query: its variable names
/// in [`VarId`] order.
pub fn output_columns(q: &Query) -> Vec<String> {
    q.var_names().to_vec()
}

/// Choose a join order: start from the smallest relation and repeatedly add
/// an atom sharing a variable with the already-chosen prefix (falling back
/// to the smallest remaining atom when the query is disconnected).
fn join_order(q: &Query, db: &Database) -> Vec<usize> {
    let l = q.num_atoms();
    let size_of =
        |i: usize| db.relation(&q.atoms()[i].name).map(Relation::len).unwrap_or(usize::MAX);

    let mut remaining: Vec<usize> = (0..l).collect();
    remaining.sort_by_key(|&i| (size_of(i), i));
    let mut order = Vec::with_capacity(l);
    let mut bound_vars: Vec<bool> = vec![false; q.num_vars()];

    while !remaining.is_empty() {
        // Prefer an atom that shares a bound variable; otherwise take the
        // smallest remaining (start of a new component).
        let pick_pos = remaining
            .iter()
            .position(|&i| q.atoms()[i].vars.iter().any(|v| bound_vars[v.0]))
            .unwrap_or(0);
        let atom = remaining.remove(pick_pos);
        for v in &q.atoms()[atom].vars {
            bound_vars[v.0] = true;
        }
        order.push(atom);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn db_with(relations: Vec<(&str, Vec<[Value; 2]>)>) -> Database {
        let mut db = Database::new(10);
        for (name, tuples) in relations {
            db.insert_relation(Relation::from_tuples(name, 2, tuples).unwrap());
        }
        db
    }

    #[test]
    fn two_way_join() {
        let q = families::chain(2); // S1(x0,x1), S2(x1,x2)
        let db = db_with(vec![("S1", vec![[1, 2], [3, 4]]), ("S2", vec![[2, 5], [2, 6], [4, 7]])]);
        let out = evaluate(&q, &db).unwrap();
        // Columns are (x0, x1, x2).
        let expected =
            Relation::from_tuples("L2", 3, vec![[1u64, 2, 5], [1, 2, 6], [3, 4, 7]]).unwrap();
        assert!(out.same_tuples(&expected));
        assert_eq!(output_columns(&q), vec!["x0", "x1", "x2"]);
    }

    #[test]
    fn triangle_join() {
        let q = families::cycle(3); // S1(x1,x2), S2(x2,x3), S3(x3,x1)
        let db = db_with(vec![
            ("S1", vec![[1, 2], [4, 5], [7, 8]]),
            ("S2", vec![[2, 3], [5, 6]]),
            ("S3", vec![[3, 1], [6, 9]]),
        ]);
        let out = evaluate(&q, &db).unwrap();
        // Only the triangle 1-2-3 closes.
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([1, 2, 3])));
    }

    #[test]
    fn empty_relation_gives_empty_output() {
        let q = families::chain(2);
        let mut db = db_with(vec![("S1", vec![[1, 2]])]);
        db.insert_relation(Relation::empty("S2", 2));
        let out = evaluate(&q, &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn star_join() {
        let q = families::star(2); // S1(z,x1), S2(z,x2)
        let db =
            db_with(vec![("S1", vec![[1, 10], [2, 20]]), ("S2", vec![[1, 11], [1, 12], [3, 30]])]);
        let out = evaluate(&q, &db).unwrap();
        // z=1 pairs with x1=10 and x2 ∈ {11,12}.
        assert_eq!(out.len(), 2);
        // Column order is (z, x1, x2).
        assert!(out.contains(&Tuple::from([1, 10, 11])));
        assert!(out.contains(&Tuple::from([1, 10, 12])));
    }

    #[test]
    fn disconnected_query_is_cartesian_product() {
        let q = mpc_cq::Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        let mut db = Database::new(10);
        db.insert_relation(Relation::from_tuples("R", 1, vec![[1u64], [2]]).unwrap());
        db.insert_relation(Relation::from_tuples("S", 1, vec![[5u64], [6], [7]]).unwrap());
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn repeated_variable_in_atom_filters_diagonal() {
        // q(x) :- R(x,x): only tuples with equal components survive.
        let q = mpc_cq::Query::new("q", vec![("R", vec!["x", "x"])]).unwrap();
        let db = db_with(vec![("R", vec![[1, 1], [1, 2], [3, 3]])]);
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::from([1])));
        assert!(out.contains(&Tuple::from([3])));
    }

    #[test]
    fn missing_relation_is_error() {
        let q = families::chain(2);
        let db = db_with(vec![("S1", vec![[1, 2]])]);
        assert!(evaluate(&q, &db).is_err());
    }

    #[test]
    fn evaluate_atoms_projects_to_subquery() {
        let q = families::chain(3);
        let db = db_with(vec![("S1", vec![[1, 2]]), ("S2", vec![[2, 3]]), ("S3", vec![[3, 4]])]);
        let s1 = q.atom_by_name("S1").unwrap().0;
        let s2 = q.atom_by_name("S2").unwrap().0;
        let out = evaluate_atoms(&q, &db, &[s1, s2]).unwrap();
        assert_eq!(out.arity(), 3);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unary_and_binary_mix() {
        // The JOIN-WITNESS query shape with tiny data.
        let q = families::witness_query();
        let mut db = Database::new(10);
        db.insert_relation(Relation::from_tuples("R", 1, vec![[1u64], [5]]).unwrap());
        db.insert_relation(Relation::from_tuples("S1", 2, vec![[1u64, 2], [5, 6]]).unwrap());
        db.insert_relation(Relation::from_tuples("S2", 2, vec![[2u64, 3], [6, 7]]).unwrap());
        db.insert_relation(Relation::from_tuples("S3", 2, vec![[3u64, 4], [7, 8]]).unwrap());
        db.insert_relation(Relation::from_tuples("T", 1, vec![[4u64]]).unwrap());
        let out = evaluate(&q, &db).unwrap();
        // Only the chain 1→2→3→4 ends in T.
        assert_eq!(out.len(), 1);
        // Columns are (w, x, y, z) in first-occurrence order.
        assert!(out.contains(&Tuple::from([1, 2, 3, 4])));
    }

    #[test]
    fn parallel_probe_path_matches_small_case_semantics() {
        // R(x) × S(y) builds 1600 partials — past PAR_PROBE_THRESHOLD —
        // before T(z) is probed, so the rayon path runs; the result must
        // be the full 40 · 40 · 3 cartesian product, deterministically.
        let q = mpc_cq::Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"]), ("T", vec!["z"])])
            .unwrap();
        let mut db = Database::new(10_000);
        db.insert_relation(Relation::from_tuples("R", 1, (0..40u64).map(|v| [v])).unwrap());
        db.insert_relation(Relation::from_tuples("S", 1, (100..140u64).map(|v| [v])).unwrap());
        db.insert_relation(Relation::from_tuples("T", 1, (200..203u64).map(|v| [v])).unwrap());
        const { assert!(40 * 40 >= PAR_PROBE_THRESHOLD) };
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 40 * 40 * 3);
        assert!(out.contains(&Tuple::from([0, 100, 200])));
        assert!(out.contains(&Tuple::from([39, 139, 202])));
    }

    #[test]
    fn join_order_prefers_connected_atoms() {
        let q = families::chain(3);
        let db = db_with(vec![
            ("S1", vec![[1, 2], [9, 9]]),
            ("S2", vec![[2, 3]]),
            ("S3", vec![[3, 4], [8, 8], [7, 7]]),
        ]);
        let order = join_order(&q, &db);
        assert_eq!(order.len(), 3);
        // S2 is smallest, so it comes first; the rest must stay connected.
        assert_eq!(order[0], 1);
    }
}
