//! Answer-size estimates: the matching-database expectation of Lemma 3.4
//! and the AGM-style bound from a fractional edge cover.

use mpc_cq::Query;
use mpc_lp::cover::solve_edge_cover;

use crate::database::Database;
use crate::error::StorageError;
use crate::Result;

/// Expected number of answers of `q` over a uniformly random matching
/// database with domain `[n]`:
///
/// * for a connected query, `E[|q(I)|] = n^{1 + χ(q)}` (Lemma 3.4);
/// * in general, multiplying over connected components gives
///   `n^{c + χ(q)} = n^{k + ℓ − a}`.
///
/// The value is returned as `f64` because the exponent is frequently
/// negative (e.g. cycles have `χ = −1`, so `E = 1`... for `C_k` the exact
/// expectation is `1`); exact comparisons in tests use integer `n` powers.
pub fn expected_matching_answer_size(q: &Query, n: u64) -> f64 {
    let exponent = q.num_vars() as i64 + q.num_atoms() as i64 - q.total_arity() as i64;
    (n as f64).powi(exponent as i32)
}

/// The exponent `k + ℓ − a = c + χ(q)` such that the expected matching
/// answer size is `n` to this power.
pub fn expected_answer_exponent(q: &Query) -> i64 {
    q.num_vars() as i64 + q.num_atoms() as i64 - q.total_arity() as i64
}

/// The AGM-style upper bound `∏ⱼ |Sⱼ|^{uⱼ}` where `u` is an optimal
/// fractional edge cover of `q` (Friedgut's inequality applied to indicator
/// weights, Section 2.6).
///
/// # Errors
///
/// Returns an error if a relation is missing or the LP fails.
pub fn agm_bound(q: &Query, db: &Database) -> Result<f64> {
    db.validate_for(q)?;
    let cover = solve_edge_cover(q).map_err(|e| StorageError::Query(e.to_string()))?;
    let mut bound = 1.0f64;
    for a in q.atom_ids() {
        let atom = q.atom(a)?;
        let size = db.relation(&atom.name)?.len() as f64;
        let weight = cover.weight(a).to_f64();
        if weight > 0.0 {
            if size == 0.0 {
                return Ok(0.0);
            }
            bound *= size.powf(weight);
        }
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::evaluate;
    use crate::relation::Relation;
    use mpc_cq::families;

    #[test]
    fn expected_sizes_match_table_1() {
        let n = 1000u64;
        // Lk and Tk: expected size n.
        assert_eq!(expected_matching_answer_size(&families::chain(3), n), n as f64);
        assert_eq!(expected_matching_answer_size(&families::star(4), n), n as f64);
        // Ck: expected size 1.
        assert_eq!(expected_matching_answer_size(&families::cycle(3), n), 1.0);
        assert_eq!(expected_matching_answer_size(&families::cycle(6), n), 1.0);
        // B(k,m): n^{k−(m−1)·C(k,m)}.
        let b32 = families::binomial(3, 2).unwrap();
        assert_eq!(expected_answer_exponent(&b32), 3 - 3);
        let b42 = families::binomial(4, 2).unwrap();
        assert_eq!(expected_answer_exponent(&b42), 4 - 6);
    }

    #[test]
    fn exponent_equals_c_plus_chi() {
        for q in [
            families::chain(4),
            families::cycle(5),
            families::star(3),
            families::spoke(2),
            families::binomial(4, 2).unwrap(),
        ] {
            assert_eq!(
                expected_answer_exponent(&q),
                q.num_connected_components() as i64 + q.characteristic(),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn agm_bound_dominates_actual_output() {
        // |C3| ≤ sqrt(|S1|·|S2|·|S3|).
        let q = families::cycle(3);
        let mut db = Database::new(4);
        for name in ["S1", "S2", "S3"] {
            db.insert_relation(
                Relation::from_tuples(name, 2, vec![[1u64, 2], [2, 3], [3, 1], [4, 4]]).unwrap(),
            );
        }
        let actual = evaluate(&q, &db).unwrap().len() as f64;
        let bound = agm_bound(&q, &db).unwrap();
        assert!(actual <= bound + 1e-9, "actual {actual} > bound {bound}");
        assert!((bound - 8.0).abs() < 1e-9); // sqrt(4·4·4) = 8
    }

    #[test]
    fn agm_bound_zero_when_a_relation_is_empty() {
        let q = families::chain(2);
        let mut db = Database::new(4);
        db.insert_relation(Relation::from_tuples("S1", 2, vec![[1u64, 2]]).unwrap());
        db.insert_relation(Relation::empty("S2", 2));
        assert_eq!(agm_bound(&q, &db).unwrap(), 0.0);
    }
}
