//! Canonical hypergraph signatures, the cache key of the LP layer.
//!
//! Two queries have equal [`QuerySignature`]s only if their hypergraphs
//! (one node per variable, one hyperedge per atom's *distinct* variable
//! set) are isomorphic — the LPs of the paper (vertex cover, edge packing,
//! edge cover) depend on exactly that structure, so an LP solution computed
//! for one query can be transported to any query with the same signature by
//! permuting weights through the two queries' canonical maps.
//!
//! The canonical labeling is computed by **colour refinement**
//! (1-dimensional Weisfeiler–Leman) followed, when refinement does not
//! discretise the partition, by a bounded individualise-and-refine
//! backtracking search for the lexicographically smallest edge encoding.
//! When the search budget is exhausted (possible only for highly symmetric
//! hypergraphs such as `B_{k,m}`, which the closed-form LP layer handles
//! without the cache anyway), the labeling falls back to refinement order
//! with variable-id tie-breaks: still deterministic — identical queries keep
//! hitting the cache — merely no longer isomorphism-invariant, so *renamed*
//! copies of such queries may miss.
//!
//! Soundness does not depend on which branch produced the labeling: the
//! signature embeds the full canonically-labelled incidence structure, so
//! equal signatures always certify an isomorphism via the composition of
//! the two canonical maps.

use std::collections::BTreeMap;

use crate::query::Query;

/// Search budget for the individualise-and-refine backtracking (number of
/// refinement nodes explored before falling back to the deterministic
/// non-invariant labeling).
const SEARCH_BUDGET: usize = 2_000;

/// The canonical signature of a query hypergraph: the number of variables
/// plus the canonically-labelled hyperedges, sorted. Equal signatures imply
/// isomorphic hypergraphs (the converse holds whenever the canonicalisation
/// search completed within budget).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuerySignature {
    num_vars: usize,
    /// Sorted list of hyperedges, each a sorted list of canonical labels.
    edges: Vec<Vec<u32>>,
}

impl QuerySignature {
    /// Number of variables of the signed hypergraph.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of hyperedges (atoms) of the signed hypergraph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// A query's canonical form: the signature plus the maps needed to
/// transport per-variable and per-atom weight vectors between the query's
/// own labeling and the canonical one.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical signature (the cache key).
    pub signature: QuerySignature,
    /// `var_to_canonical[v]` is the canonical label of `VarId(v)`.
    pub var_to_canonical: Vec<usize>,
    /// `atom_to_canonical[a]` is the position of atom `a`'s edge in the
    /// signature's sorted edge list. Atoms with identical variable sets map
    /// to distinct positions (ties broken by atom id), which is sound for
    /// LP transport because such atoms have identical constraints.
    pub atom_to_canonical: Vec<usize>,
}

/// The distinct-variable sets of the atoms, as sorted `usize` vectors.
fn edge_sets(q: &Query) -> Vec<Vec<usize>> {
    q.atoms()
        .iter()
        .map(|a| {
            let mut vs: Vec<usize> = a.distinct_vars().into_iter().map(|v| v.0).collect();
            vs.sort_unstable();
            vs
        })
        .collect()
}

/// One round of colour refinement: the new colour of a variable is the pair
/// (old colour, sorted multiset over incident edges of (edge size, sorted
/// multiset of member colours)). Returns the refined colours, densely
/// renumbered in order of first appearance of the sorted keys.
fn refine_step(colors: &[usize], edges: &[Vec<usize>], incident: &[Vec<usize>]) -> Vec<usize> {
    type Key = (usize, Vec<(usize, Vec<usize>)>);
    let keys: Vec<Key> = (0..colors.len())
        .map(|v| {
            let mut around: Vec<(usize, Vec<usize>)> = incident[v]
                .iter()
                .map(|&e| {
                    let mut member_colors: Vec<usize> =
                        edges[e].iter().map(|&w| colors[w]).collect();
                    member_colors.sort_unstable();
                    (edges[e].len(), member_colors)
                })
                .collect();
            around.sort();
            (colors[v], around)
        })
        .collect();
    let mut order: BTreeMap<&Key, usize> = BTreeMap::new();
    for key in &keys {
        let next = order.len();
        order.entry(key).or_insert(next);
    }
    // Renumber by sorted key order so colours are independent of var order.
    let mut sorted: Vec<&Key> = order.keys().copied().collect();
    sorted.sort();
    let rank: BTreeMap<&Key, usize> = sorted.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
    keys.iter().map(|k| rank[k]).collect()
}

/// Refine colours to a fixed point.
fn refine(mut colors: Vec<usize>, edges: &[Vec<usize>], incident: &[Vec<usize>]) -> Vec<usize> {
    loop {
        let next = refine_step(&colors, edges, incident);
        let classes_before = count_classes(&colors);
        let classes_after = count_classes(&next);
        colors = next;
        if classes_after == classes_before {
            return colors;
        }
    }
}

fn count_classes(colors: &[usize]) -> usize {
    let mut seen: Vec<usize> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Encode the edges under a labeling (label per variable): each edge's
/// labels sorted, edges sorted lexicographically.
fn encode(edges: &[Vec<usize>], labels: &[usize]) -> Vec<Vec<u32>> {
    let mut enc: Vec<Vec<u32>> = edges
        .iter()
        .map(|e| {
            let mut le: Vec<u32> = e.iter().map(|&v| labels[v] as u32).collect();
            le.sort_unstable();
            le
        })
        .collect();
    enc.sort();
    enc
}

/// Labels from a *discrete* colouring (every colour class a singleton):
/// the label of a variable is its colour rank.
fn labels_of_discrete(colors: &[usize]) -> Vec<usize> {
    colors.to_vec()
}

/// Deterministic fallback labeling: refinement colours with variable-id
/// tie-breaks. Not isomorphism-invariant, but stable for identical inputs.
fn fallback_labels(colors: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..colors.len()).collect();
    order.sort_by_key(|&v| (colors[v], v));
    let mut labels = vec![0usize; colors.len()];
    for (rank, &v) in order.iter().enumerate() {
        labels[v] = rank;
    }
    labels
}

/// Individualise-and-refine search for the labeling with the
/// lexicographically smallest edge encoding. Returns `None` when the
/// budget is exhausted.
struct Search<'a> {
    edges: &'a [Vec<usize>],
    incident: &'a [Vec<usize>],
    budget: usize,
    best: Option<(Vec<Vec<u32>>, Vec<usize>)>,
}

impl Search<'_> {
    fn run(&mut self, colors: Vec<usize>) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        let n = colors.len();
        if count_classes(&colors) == n {
            let labels = labels_of_discrete(&colors);
            let enc = encode(self.edges, &labels);
            match &self.best {
                Some((best_enc, _)) if *best_enc <= enc => {}
                _ => self.best = Some((enc, labels)),
            }
            return true;
        }
        // Target cell: the smallest non-singleton colour class, lowest
        // colour on ties — an isomorphism-invariant choice.
        let mut class_sizes: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in &colors {
            *class_sizes.entry(c).or_insert(0) += 1;
        }
        let (&target, _) = class_sizes
            .iter()
            .filter(|(_, &size)| size > 1)
            .min_by_key(|(&c, &size)| (size, c))
            .expect("non-discrete colouring has a non-singleton class");
        let members: Vec<usize> = (0..n).filter(|&v| colors[v] == target).collect();
        for v in members {
            // Individualise v: give it a fresh colour below every other, then
            // re-refine. Colour values only matter relatively, so shift all
            // other colours up by one.
            let mut next: Vec<usize> = colors.iter().map(|&c| c + 1).collect();
            next[v] = 0;
            let refined = refine(next, self.edges, self.incident);
            if !self.run(refined) {
                return false;
            }
        }
        true
    }
}

impl Query {
    /// The canonical form of the query's hypergraph: signature plus the
    /// variable/atom maps into canonical coordinates. See the module docs
    /// for the guarantees.
    pub fn canonical_form(&self) -> CanonicalForm {
        let edges = edge_sets(self);
        let n = self.num_vars();
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (e, vs) in edges.iter().enumerate() {
            for &v in vs {
                incident[v].push(e);
            }
        }

        let base = refine(vec![0; n], &edges, &incident);
        let labels = if count_classes(&base) == n {
            labels_of_discrete(&base)
        } else {
            let mut search =
                Search { edges: &edges, incident: &incident, budget: SEARCH_BUDGET, best: None };
            if search.run(base.clone()) {
                search.best.expect("complete search visited at least one leaf").1
            } else {
                fallback_labels(&base)
            }
        };

        // Canonical edge list with a stable atom map: sort atom encodings,
        // ties broken by original atom id so duplicated edges get distinct,
        // deterministic positions.
        let mut keyed: Vec<(Vec<u32>, usize)> = edges
            .iter()
            .enumerate()
            .map(|(a, e)| {
                let mut le: Vec<u32> = e.iter().map(|&v| labels[v] as u32).collect();
                le.sort_unstable();
                (le, a)
            })
            .collect();
        keyed.sort();
        let mut atom_to_canonical = vec![0usize; edges.len()];
        let mut canonical_edges = Vec::with_capacity(edges.len());
        for (pos, (enc, a)) in keyed.into_iter().enumerate() {
            atom_to_canonical[a] = pos;
            canonical_edges.push(enc);
        }

        CanonicalForm {
            signature: QuerySignature { num_vars: n, edges: canonical_edges },
            var_to_canonical: labels,
            atom_to_canonical,
        }
    }

    /// Shortcut for `self.canonical_form().signature`.
    pub fn canonical_signature(&self) -> QuerySignature {
        self.canonical_form().signature
    }
}

/// Transport a per-variable weight vector into canonical coordinates.
pub fn vars_to_canonical<T: Clone + Default>(cf: &CanonicalForm, weights: &[T]) -> Vec<T> {
    let mut out = vec![T::default(); weights.len()];
    for (v, w) in weights.iter().enumerate() {
        out[cf.var_to_canonical[v]] = w.clone();
    }
    out
}

/// Transport a canonical per-variable weight vector back to query
/// coordinates.
pub fn vars_from_canonical<T: Clone + Default>(cf: &CanonicalForm, canonical: &[T]) -> Vec<T> {
    (0..canonical.len()).map(|v| canonical[cf.var_to_canonical[v]].clone()).collect()
}

/// Transport a per-atom weight vector into canonical coordinates.
pub fn atoms_to_canonical<T: Clone + Default>(cf: &CanonicalForm, weights: &[T]) -> Vec<T> {
    let mut out = vec![T::default(); weights.len()];
    for (a, w) in weights.iter().enumerate() {
        out[cf.atom_to_canonical[a]] = w.clone();
    }
    out
}

/// Transport a canonical per-atom weight vector back to query coordinates.
pub fn atoms_from_canonical<T: Clone + Default>(cf: &CanonicalForm, canonical: &[T]) -> Vec<T> {
    (0..canonical.len()).map(|a| canonical[cf.atom_to_canonical[a]].clone()).collect()
}

/// Convenience for tests: does `v` occur in canonical edge `e`?
#[cfg(test)]
fn canonical_edge_contains(sig: &QuerySignature, e: usize, label: u32) -> bool {
    sig.edges[e].contains(&label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::query::Query;

    /// A renamed copy of a query: variables and atoms permuted/renamed.
    fn renamed(q: &Query, var_prefix: &str, reverse_atoms: bool) -> Query {
        let mut atoms: Vec<(String, Vec<String>)> = q
            .atoms()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                (format!("R{i}"), a.vars.iter().map(|v| format!("{var_prefix}{}", v.0)).collect())
            })
            .collect();
        if reverse_atoms {
            atoms.reverse();
        }
        Query::new(format!("{}~", q.name()), atoms).unwrap()
    }

    #[test]
    fn identical_queries_share_signatures() {
        for q in [families::cycle(5), families::chain(4), families::star(3), families::spoke(3)] {
            assert_eq!(q.canonical_signature(), q.canonical_signature());
        }
    }

    #[test]
    fn renamed_queries_share_signatures() {
        for q in [
            families::cycle(4),
            families::cycle(5),
            families::chain(6),
            families::star(4),
            families::spoke(3),
            families::witness_query(),
        ] {
            let r = renamed(&q, "y", true);
            assert_eq!(q.canonical_signature(), r.canonical_signature(), "{}", q.name());
        }
    }

    #[test]
    fn different_shapes_get_different_signatures() {
        let sigs = [
            families::cycle(4).canonical_signature(),
            families::cycle(5).canonical_signature(),
            families::chain(4).canonical_signature(),
            families::chain(5).canonical_signature(),
            families::star(4).canonical_signature(),
            families::spoke(3).canonical_signature(),
            families::witness_query().canonical_signature(),
        ];
        for (i, a) in sigs.iter().enumerate() {
            for (j, b) in sigs.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "signatures {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn maps_transport_weights_consistently() {
        // The signature's edges, pulled back through the maps, must be the
        // query's own edges.
        for q in [families::chain(5), families::cycle(6), families::witness_query()] {
            let cf = q.canonical_form();
            for (a, atom) in q.atoms().iter().enumerate() {
                let e = cf.atom_to_canonical[a];
                for v in atom.distinct_vars() {
                    let label = cf.var_to_canonical[v.0] as u32;
                    assert!(
                        canonical_edge_contains(&cf.signature, e, label),
                        "atom {a} of {} maps inconsistently",
                        q.name()
                    );
                }
            }
            // Round-trip of a weight vector.
            let weights: Vec<usize> = (0..q.num_vars()).collect();
            let there = vars_to_canonical(&cf, &weights);
            let back = vars_from_canonical(&cf, &there);
            assert_eq!(back, weights);
            let aw: Vec<usize> = (0..q.num_atoms()).collect();
            let athere = atoms_to_canonical(&cf, &aw);
            let aback = atoms_from_canonical(&cf, &athere);
            assert_eq!(aback, aw);
        }
    }

    #[test]
    fn symmetric_binomial_still_deterministic() {
        // B(4,2) exhausts no budget for k=4 but is highly symmetric; the
        // signature must at least be self-consistent and stable.
        let q = families::binomial(4, 2).unwrap();
        let s1 = q.canonical_signature();
        let s2 = q.canonical_signature();
        assert_eq!(s1, s2);
        assert_eq!(s1.num_vars(), 4);
        assert_eq!(s1.num_edges(), 6);
    }

    #[test]
    fn repeated_position_atoms_use_distinct_var_sets() {
        // S(x,x) contributes the unary edge {x}.
        let q = Query::new("q", vec![("S", vec!["x", "x"]), ("T", vec!["x", "y"])]).unwrap();
        let sig = q.canonical_signature();
        assert_eq!(sig.num_edges(), 2);
        assert!(sig.edges.iter().any(|e| e.len() == 1));
    }
}
