//! The query *characteristic* `χ(q)` and hyperedge contraction `q / M`
//! (Section 2.3, Lemma 2.1 of the paper).
//!
//! For a query with `k` variables, `ℓ` atoms, total arity `a = Σⱼ aⱼ` and
//! `c` connected components,
//!
//! ```text
//! χ(q) = k + ℓ − a − c .
//! ```
//!
//! The characteristic controls the expected answer size over random
//! matching databases: `E[|q(I)|] = n^{1 + χ(q)}` for connected `q`
//! (Lemma 3.4). Lemma 2.1 establishes that `χ` is additive over connected
//! components, interacts with contraction as `χ(q/M) = χ(q) − χ(M)`, and is
//! always `≤ 0`.
//!
//! *Contraction* `q / M` collapses each hyperedge of `M` to a single node
//! (merging its variables) and removes the atoms of `M`; for example
//! `L5 / {S2, S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5)`.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::CqError;
use crate::hypergraph::UnionFind;
use crate::query::{Atom, AtomId, Query, VarId};
use crate::Result;

impl Query {
    /// The characteristic `χ(q) = k + ℓ − a − c`.
    ///
    /// Always `≤ 0` (Lemma 2.1(c)); equal to `0` exactly for disjoint unions
    /// of tree-like queries.
    pub fn characteristic(&self) -> i64 {
        let k = self.num_vars() as i64;
        let l = self.num_atoms() as i64;
        let a = self.total_arity() as i64;
        let c = self.num_connected_components() as i64;
        k + l - a - c
    }

    /// The characteristic `χ(M)` of the sub-hypergraph induced by an atom
    /// set `M ⊆ atoms(q)` (counting only variables occurring in `M`).
    ///
    /// Returns `0` for the empty set.
    pub fn characteristic_of_atoms(&self, m: &[AtomId]) -> Result<i64> {
        if m.is_empty() {
            return Ok(0);
        }
        let sub = self.induced_subquery(m)?;
        Ok(sub.characteristic())
    }

    /// Contract the hyperedges in `M`: merge the variables of every atom in
    /// `M` into a single variable (per connected component of `M`) and drop
    /// the atoms of `M`, yielding the query `q / M`.
    ///
    /// Variables of a merged class are represented by the class member with
    /// the smallest [`VarId`], keeping its original name (the paper:
    /// "we replace them with one of the nodes in the set").
    ///
    /// # Errors
    ///
    /// Returns [`CqError::EmptyQuery`] if `M` contains every atom of the
    /// query (the contraction would have no atoms left) and
    /// [`CqError::UnknownAtom`] for out-of-range ids.
    pub fn contract(&self, m: &[AtomId]) -> Result<Query> {
        for a in m {
            if a.0 >= self.num_atoms() {
                return Err(CqError::UnknownAtom(a.0));
            }
        }
        let m_set: BTreeSet<AtomId> = m.iter().copied().collect();
        if m_set.len() == self.num_atoms() {
            return Err(CqError::EmptyQuery);
        }

        // Merge variables occurring in the same contracted atom.
        let mut uf = UnionFind::new(self.num_vars());
        for a in &m_set {
            let vars = &self.atoms()[a.0].vars;
            for w in vars.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
        }

        // Representative of each class = smallest VarId in the class.
        let mut class_min: BTreeMap<usize, usize> = BTreeMap::new();
        for v in 0..self.num_vars() {
            let root = uf.find(v);
            let entry = class_min.entry(root).or_insert(v);
            if v < *entry {
                *entry = v;
            }
        }

        // Rebuild the remaining atoms over the representatives.
        let mut new_var_names: Vec<String> = Vec::new();
        let mut remap: BTreeMap<usize, VarId> = BTreeMap::new();
        let mut new_atoms: Vec<Atom> = Vec::new();
        for (i, atom) in self.atoms().iter().enumerate() {
            if m_set.contains(&AtomId(i)) {
                continue;
            }
            let vars = atom
                .vars
                .iter()
                .map(|v| {
                    let rep = class_min[&uf.find(v.0)];
                    *remap.entry(rep).or_insert_with(|| {
                        let id = VarId(new_var_names.len());
                        new_var_names.push(self.var_names()[rep].clone());
                        id
                    })
                })
                .collect();
            new_atoms.push(Atom { name: atom.name.clone(), vars });
        }

        Query::from_parts(format!("{}/M", self.name()), new_var_names, new_atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn characteristic_of_running_examples() {
        // Tree-like queries have χ = 0.
        assert_eq!(families::chain(5).characteristic(), 0);
        assert_eq!(families::star(4).characteristic(), 0);
        // Cycles have χ = −1 for k ≥ 3? No: Ck has k vars, k atoms, arity 2k,
        // 1 component: χ = k + k − 2k − 1 = −1.
        assert_eq!(families::cycle(3).characteristic(), -1);
        assert_eq!(families::cycle(6).characteristic(), -1);
    }

    #[test]
    fn characteristic_additive_over_components() {
        // Lemma 2.1(a): χ is additive over connected components.
        let q = Query::new(
            "q",
            vec![
                ("R", vec!["x", "y"]),
                ("S", vec!["y", "z"]),
                ("A", vec!["u", "v"]),
                ("B", vec!["v", "w"]),
                ("C", vec!["w", "u"]),
            ],
        )
        .unwrap();
        let total = q.characteristic();
        let sum: i64 = q.connected_component_queries().iter().map(Query::characteristic).sum();
        assert_eq!(total, sum);
        assert_eq!(total, -1);
    }

    #[test]
    fn characteristic_nonpositive_for_many_shapes() {
        // Lemma 2.1(c).
        for q in [
            families::chain(1),
            families::chain(7),
            families::cycle(4),
            families::star(5),
            families::binomial(4, 2).unwrap(),
            families::spoke(3),
        ] {
            assert!(q.characteristic() <= 0, "χ({}) = {} > 0", q.name(), q.characteristic());
        }
    }

    #[test]
    fn paper_contraction_example_l5() {
        // L5 / {S2, S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5)  (Section 2.3).
        let l5 = families::chain(5);
        let s2 = l5.atom_by_name("S2").unwrap().0;
        let s4 = l5.atom_by_name("S4").unwrap().0;
        let c = l5.contract(&[s2, s4]).unwrap();
        assert_eq!(c.num_atoms(), 3);
        assert_eq!(c.num_vars(), 4);
        // The contracted query is a chain of length 3 (tree-like, connected).
        assert!(c.is_connected());
        assert_eq!(c.characteristic(), 0);
        assert_eq!(c.diameter(), Some(3));
    }

    #[test]
    fn contraction_characteristic_identity() {
        // Lemma 2.1(b): χ(q/M) = χ(q) − χ(M) whenever every contracted
        // component touches a remaining atom (true for connected q and
        // proper M).
        let q = families::cycle(6);
        let m: Vec<AtomId> = vec![q.atom_by_name("S1").unwrap().0, q.atom_by_name("S4").unwrap().0];
        let chi_q = q.characteristic();
        let chi_m = q.characteristic_of_atoms(&m).unwrap();
        let contracted = q.contract(&m).unwrap();
        assert_eq!(contracted.characteristic(), chi_q - chi_m);
    }

    #[test]
    fn contract_all_atoms_is_error() {
        let q = families::chain(2);
        let all: Vec<AtomId> = q.atom_ids().collect();
        assert!(q.contract(&all).is_err());
    }

    #[test]
    fn contract_nothing_is_identity_shape() {
        let q = families::cycle(4);
        let c = q.contract(&[]).unwrap();
        assert_eq!(c.num_atoms(), q.num_atoms());
        assert_eq!(c.num_vars(), q.num_vars());
        assert_eq!(c.characteristic(), q.characteristic());
    }

    #[test]
    fn contract_cycle_stays_cycle() {
        // Contracting every other atom of C6 yields C3 (Lemma 4.9 uses this).
        let q = families::cycle(6);
        let m: Vec<AtomId> =
            ["S2", "S4", "S6"].iter().map(|n| q.atom_by_name(n).unwrap().0).collect();
        let c = q.contract(&m).unwrap();
        assert_eq!(c.num_atoms(), 3);
        assert_eq!(c.num_vars(), 3);
        assert_eq!(c.characteristic(), -1);
        assert!(c.is_connected());
    }

    #[test]
    fn characteristic_of_empty_atom_set_is_zero() {
        let q = families::chain(3);
        assert_eq!(q.characteristic_of_atoms(&[]).unwrap(), 0);
    }

    #[test]
    fn contraction_unknown_atom_errors() {
        let q = families::chain(3);
        assert!(q.contract(&[AtomId(99)]).is_err());
    }
}
