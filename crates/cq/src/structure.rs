//! Structural classification of queries: tree-likeness, acyclicity and
//! subquery enumeration.
//!
//! A connected query is *tree-like* (Section 2.3) when `χ(q) = 0`; for
//! binary vocabularies this coincides with the query graph being a tree.
//! Over non-binary vocabularies every tree-like query is acyclic but not
//! conversely (the paper's example: `S1(x0,x1,x2), S2(x1,x2,x3)` is acyclic
//! yet not tree-like). Acyclicity is decided with the classical GYO ear
//! removal.

use std::collections::BTreeSet;

use crate::query::{AtomId, Query};

impl Query {
    /// True if the query is connected and `χ(q) = 0` (tree-like,
    /// Section 2.3). Every connected subquery of a tree-like query is again
    /// tree-like.
    pub fn is_tree_like(&self) -> bool {
        self.is_connected() && self.characteristic() == 0
    }

    /// True if the query hypergraph is α-acyclic (GYO reduction succeeds).
    pub fn is_acyclic(&self) -> bool {
        // Work on multisets of variable sets; repeatedly apply the two GYO
        // rules until no more progress: (1) delete a variable that occurs in
        // at most one hyperedge, (2) delete a hyperedge contained in another.
        let mut edges: Vec<BTreeSet<usize>> = self
            .atoms()
            .iter()
            .map(|a| a.distinct_vars().into_iter().map(|v| v.0).collect())
            .collect();
        loop {
            let mut changed = false;

            // Rule 1: remove isolated variables (occurring in ≤ 1 edge).
            let mut var_count = std::collections::BTreeMap::new();
            for e in &edges {
                for &v in e {
                    *var_count.entry(v).or_insert(0usize) += 1;
                }
            }
            for e in edges.iter_mut() {
                let before = e.len();
                e.retain(|v| var_count[v] > 1);
                if e.len() != before {
                    changed = true;
                }
            }

            // Remove empty edges.
            let before = edges.len();
            edges.retain(|e| !e.is_empty());
            if edges.len() != before {
                changed = true;
            }

            // Rule 2: remove an edge contained in another edge.
            let mut removed = None;
            'outer: for i in 0..edges.len() {
                for j in 0..edges.len() {
                    if i != j && edges[i].is_subset(&edges[j]) {
                        removed = Some(i);
                        break 'outer;
                    }
                }
            }
            if let Some(i) = removed {
                edges.remove(i);
                changed = true;
            }

            if edges.is_empty() {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// Enumerate every non-empty **connected** subset of atoms, as sorted
    /// atom-id vectors. The enumeration grows connected sets one adjacent
    /// atom at a time, so only connected candidates are materialised.
    ///
    /// Queries in this crate are small (`ℓ ≤ ~20`), so the output size
    /// (at most `2^ℓ`) is acceptable; larger queries should use
    /// [`Query::connected_subqueries_up_to`] with a size cap.
    pub fn connected_subqueries(&self) -> Vec<Vec<AtomId>> {
        self.connected_subqueries_up_to(self.num_atoms())
    }

    /// Enumerate every non-empty connected subset of atoms of size at most
    /// `max_size`.
    pub fn connected_subqueries_up_to(&self, max_size: usize) -> Vec<Vec<AtomId>> {
        // Atom adjacency: atoms sharing a variable.
        let l = self.num_atoms();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); l];
        for i in 0..l {
            let vi = self.atoms()[i].distinct_vars();
            for j in (i + 1)..l {
                let vj = self.atoms()[j].distinct_vars();
                if vi.intersection(&vj).next().is_some() {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }

        let mut results: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut frontier: BTreeSet<Vec<usize>> = (0..l).map(|i| vec![i]).collect();
        results.extend(frontier.iter().cloned());

        for _ in 1..max_size {
            let mut next: BTreeSet<Vec<usize>> = BTreeSet::new();
            for set in &frontier {
                let members: BTreeSet<usize> = set.iter().copied().collect();
                for &m in set {
                    for &n in &adj[m] {
                        if !members.contains(&n) {
                            let mut grown: Vec<usize> = set.clone();
                            grown.push(n);
                            grown.sort_unstable();
                            grown.dedup();
                            next.insert(grown);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            results.extend(next.iter().cloned());
            frontier = next;
        }

        results.into_iter().map(|s| s.into_iter().map(AtomId).collect()).collect()
    }

    /// The connected subqueries (as queries) of size at most `max_size`
    /// atoms, in deterministic order.
    pub fn connected_subquery_views(&self, max_size: usize) -> Vec<Query> {
        self.connected_subqueries_up_to(max_size)
            .iter()
            .map(|atoms| self.induced_subquery(atoms).expect("connected subsets are valid"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::families;
    use crate::query::Query;

    #[test]
    fn chains_and_stars_are_tree_like() {
        for k in 1..=6 {
            assert!(families::chain(k).is_tree_like(), "L{k}");
            assert!(families::star(k).is_tree_like(), "T{k}");
        }
    }

    #[test]
    fn cycles_are_not_tree_like() {
        for k in 3..=6 {
            assert!(!families::cycle(k).is_tree_like(), "C{k}");
        }
    }

    #[test]
    fn paper_acyclic_but_not_tree_like_example() {
        // q = S1(x0,x1,x2), S2(x1,x2,x3): acyclic, connected, χ = −1.
        let q =
            Query::new("q", vec![("S1", vec!["x0", "x1", "x2"]), ("S2", vec!["x1", "x2", "x3"])])
                .unwrap();
        assert!(q.is_acyclic());
        assert!(q.is_connected());
        assert_eq!(q.characteristic(), -1);
        assert!(!q.is_tree_like());
    }

    #[test]
    fn cycles_are_cyclic_chains_are_acyclic() {
        for k in 3..=6 {
            assert!(!families::cycle(k).is_acyclic(), "C{k} should be cyclic");
            assert!(families::chain(k).is_acyclic(), "L{k} should be acyclic");
            assert!(families::star(k).is_acyclic(), "T{k} should be acyclic");
        }
    }

    #[test]
    fn single_atom_is_acyclic_and_tree_like_when_binary() {
        let q = Query::new("q", vec![("R", vec!["x", "y"])]).unwrap();
        assert!(q.is_acyclic());
        assert!(q.is_tree_like());
        let t = Query::new("q", vec![("R", vec!["x", "y", "z"])]).unwrap();
        assert!(t.is_acyclic());
        // Ternary single atom: χ = 3 + 1 − 3 − 1 = 0, still tree-like by the
        // definition (connected and χ = 0).
        assert!(t.is_tree_like());
    }

    #[test]
    fn connected_subqueries_of_chain() {
        // Connected subsets of Lk atoms are contiguous segments:
        // k·(k+1)/2 of them.
        for k in 1..=6usize {
            let q = families::chain(k);
            let subs = q.connected_subqueries();
            assert_eq!(subs.len(), k * (k + 1) / 2, "L{k}");
        }
    }

    #[test]
    fn connected_subqueries_of_cycle() {
        // Connected subsets of Ck atoms: k·(k−1) proper arcs + 1 full cycle.
        for k in 3..=6usize {
            let q = families::cycle(k);
            let subs = q.connected_subqueries();
            assert_eq!(subs.len(), k * (k - 1) + 1, "C{k}");
        }
    }

    #[test]
    fn connected_subqueries_respect_size_cap() {
        let q = families::chain(5);
        let subs = q.connected_subqueries_up_to(2);
        assert!(subs.iter().all(|s| s.len() <= 2));
        // 5 singletons + 4 adjacent pairs.
        assert_eq!(subs.len(), 9);
    }

    #[test]
    fn subquery_views_are_connected_and_tree_like_for_chains() {
        // "Every connected subquery of a tree-like query is tree-like."
        let q = families::chain(5);
        for view in q.connected_subquery_views(5) {
            assert!(view.is_connected());
            assert!(view.is_tree_like());
        }
    }

    #[test]
    fn every_enumerated_subset_is_connected() {
        let q = families::binomial(4, 2).unwrap();
        for atoms in q.connected_subqueries() {
            assert!(q.atoms_connected(&atoms));
        }
    }
}
