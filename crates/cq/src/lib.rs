//! Conjunctive queries and their structural measures.
//!
//! This crate is the query-representation substrate for the reproduction of
//! *Beame, Koutris & Suciu, "Communication Steps for Parallel Query
//! Processing" (PODS 2013)*. It provides
//!
//! * [`Query`]: full conjunctive queries without self-joins, together with
//!   their hypergraph view (one node per variable, one hyperedge per atom),
//! * structural measures used throughout the paper: connectivity and
//!   connected components, the *characteristic* `χ(q) = k + ℓ − Σ aⱼ − c`
//!   (Section 2.3), contraction `q / M`, radius and diameter of the
//!   hypergraph, tree-likeness and acyclicity,
//! * the paper's running query families (`C_k`, `L_k`, `T_k`, `B_{k,m}`,
//!   `SP_k`, the JOIN-WITNESS query) in [`families`], together with
//!   [`families::recognize`] which classifies an arbitrary query as one of
//!   them up to renaming (feeding the LP layer's closed-form solver),
//! * canonical hypergraph signatures ([`signature`]) — the
//!   isomorphism-aware cache key of the LP layer — and
//! * a small text [`parser`] for the usual `q(x,y) :- R(x,y), S(y,z)`
//!   notation.
//!
//! Everything downstream — the LP layer that computes fractional vertex
//! covers, the HyperCube shuffle, the multi-round planner and the round
//! lower bounds — is driven by the structures defined here.
//!
//! # Example
//!
//! ```
//! use mpc_cq::families;
//!
//! // The triangle query C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1).
//! let c3 = families::cycle(3);
//! assert!(c3.is_connected());
//! assert_eq!(c3.characteristic(), -1);
//! assert_eq!(c3.diameter(), Some(1));
//! assert!(!c3.is_tree_like());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characteristic;
pub mod distance;
pub mod error;
pub mod families;
pub mod hypergraph;
pub mod parser;
pub mod query;
pub mod signature;
pub mod structure;

pub use error::CqError;
pub use query::{Atom, AtomId, Query, VarId};
pub use signature::{CanonicalForm, QuerySignature};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, CqError>;
