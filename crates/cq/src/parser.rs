//! A small text parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  :=  head sep body
//! head   :=  NAME '(' varlist ')'
//! sep    :=  ':-' | '='
//! body   :=  atom (',' atom)*
//! atom   :=  NAME '(' varlist ')'
//! varlist:=  NAME (',' NAME)*
//! ```
//!
//! The parsed query must be *full*: every body variable must occur in the
//! head and vice-versa, matching the class of queries studied in the paper.
//!
//! ```
//! use mpc_cq::parser::parse_query;
//!
//! let q = parse_query("C3(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)").unwrap();
//! assert_eq!(q.num_atoms(), 3);
//! assert_eq!(q.characteristic(), -1);
//! ```

use std::collections::BTreeSet;

use crate::error::CqError;
use crate::query::Query;
use crate::Result;

/// Parse a conjunctive query from its textual form.
///
/// # Errors
///
/// Returns [`CqError::Parse`] for malformed input,
/// [`CqError::NonFullQuery`] / [`CqError::UnboundHeadVariable`] when the
/// head and body variable sets differ, and any error of [`Query::new`]
/// (self-joins, empty bodies, ...).
pub fn parse_query(input: &str) -> Result<Query> {
    let (head, body) = split_head_body(input)?;
    let (name, head_vars) = parse_predicate(head)?;

    let mut atoms = Vec::new();
    for atom_src in split_atoms(body)? {
        let (rel, vars) = parse_predicate(&atom_src)?;
        if vars.is_empty() {
            return Err(CqError::NullaryAtom(rel));
        }
        atoms.push((rel, vars));
    }

    // Fullness check: head variables = body variables (as sets).
    let body_vars: BTreeSet<&String> = atoms.iter().flat_map(|(_, vs)| vs.iter()).collect();
    let head_set: BTreeSet<&String> = head_vars.iter().collect();
    for v in &head_set {
        if !body_vars.contains(*v) {
            return Err(CqError::UnboundHeadVariable((*v).clone()));
        }
    }
    for v in &body_vars {
        if !head_set.contains(*v) {
            return Err(CqError::NonFullQuery((*v).clone()));
        }
    }

    Query::new(name, atoms)
}

fn split_head_body(input: &str) -> Result<(&str, &str)> {
    if let Some(pos) = input.find(":-") {
        return Ok((&input[..pos], &input[pos + 2..]));
    }
    // Fall back to `=`, but only one that is not inside parentheses.
    let mut depth = 0i32;
    for (i, c) in input.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '=' if depth == 0 => return Ok((&input[..i], &input[i + 1..])),
            _ => {}
        }
    }
    Err(CqError::Parse("missing `:-` or `=` separating head and body".to_string()))
}

/// Split a body into atom substrings, respecting parenthesis nesting.
fn split_atoms(body: &str) -> Result<Vec<String>> {
    let mut atoms = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return Err(CqError::Parse("unbalanced `)`".to_string()));
                }
                current.push(c);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    atoms.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if depth != 0 {
        return Err(CqError::Parse("unbalanced `(`".to_string()));
    }
    if !current.trim().is_empty() {
        atoms.push(current.trim().to_string());
    }
    if atoms.is_empty() {
        return Err(CqError::Parse("query body is empty".to_string()));
    }
    Ok(atoms)
}

/// Parse `Name(v1, v2, ...)` into the name and its variable list.
fn parse_predicate(src: &str) -> Result<(String, Vec<String>)> {
    let src = src.trim();
    let open = src.find('(').ok_or_else(|| CqError::Parse(format!("expected `(` in `{src}`")))?;
    if !src.ends_with(')') {
        return Err(CqError::Parse(format!("expected trailing `)` in `{src}`")));
    }
    let name = src[..open].trim();
    if name.is_empty() || !is_identifier(name) {
        return Err(CqError::Parse(format!("`{name}` is not a valid identifier in `{src}`")));
    }
    let inner = &src[open + 1..src.len() - 1];
    let mut vars = Vec::new();
    for piece in inner.split(',') {
        let v = piece.trim();
        if v.is_empty() {
            if inner.trim().is_empty() && vars.is_empty() {
                break; // zero-argument predicate; caller decides validity
            }
            return Err(CqError::Parse(format!("empty variable name in `{src}`")));
        }
        if !is_identifier(v) {
            return Err(CqError::Parse(format!("`{v}` is not a valid variable name in `{src}`")));
        }
        vars.push(v.to_string());
    }
    Ok((name.to_string(), vars))
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn parses_triangle() {
        let q = parse_query("C3(x1,x2,x3) :- S1(x1,x2), S2(x2,x3), S3(x3,x1)").unwrap();
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.characteristic(), families::cycle(3).characteristic());
    }

    #[test]
    fn parses_with_equals_separator() {
        let q = parse_query("L2(x,y,z) = S1(x,y), S2(y,z)").unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.diameter(), Some(2));
    }

    #[test]
    fn tolerates_whitespace() {
        let q = parse_query("  q ( x , y )  :-   R ( x , y )  ").unwrap();
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn display_round_trip() {
        let q = families::chain(3);
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(reparsed.num_atoms(), q.num_atoms());
        assert_eq!(reparsed.num_vars(), q.num_vars());
        assert_eq!(reparsed.characteristic(), q.characteristic());
        assert_eq!(reparsed.diameter(), q.diameter());
    }

    #[test]
    fn rejects_missing_separator() {
        assert!(parse_query("q(x) R(x)").is_err());
    }

    #[test]
    fn rejects_non_full_query() {
        // y occurs in the body but not the head.
        let err = parse_query("q(x) :- R(x,y)").unwrap_err();
        assert!(matches!(err, CqError::NonFullQuery(_)));
    }

    #[test]
    fn rejects_unbound_head_variable() {
        let err = parse_query("q(x,z) :- R(x,y), S(y,x)").unwrap_err();
        assert!(matches!(err, CqError::UnboundHeadVariable(_)));
    }

    #[test]
    fn rejects_self_join() {
        let err = parse_query("q(x,y,z) :- R(x,y), R(y,z)").unwrap_err();
        assert!(matches!(err, CqError::SelfJoin(_)));
    }

    #[test]
    fn rejects_unbalanced_parentheses() {
        assert!(parse_query("q(x :- R(x)").is_err());
        assert!(parse_query("q(x) :- R(x))").is_err());
    }

    #[test]
    fn rejects_bad_identifiers() {
        assert!(parse_query("q(1x) :- R(1x)").is_err());
        assert!(parse_query("q(x) :- 2R(x)").is_err());
    }

    #[test]
    fn rejects_empty_body() {
        assert!(parse_query("q(x) :- ").is_err());
    }
}
