//! Hypergraph view of a query: connectivity and connected components.
//!
//! The hypergraph of a query (Section 2.3) has one node per variable and
//! one hyperedge per atom. Two atoms are *adjacent* when they share a
//! variable; the *connected components* of the query are the maximal
//! connected sub-queries.

use std::collections::BTreeSet;

use crate::query::{AtomId, Query, VarId};

/// A simple union-find (disjoint-set) structure used for connectivity and
/// contraction computations over variables or atoms.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
}

impl UnionFind {
    /// Create `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Find the canonical representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `x` and `y`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        match self.rank[rx].cmp(&self.rank[ry]) {
            std::cmp::Ordering::Less => self.parent[rx] = ry,
            std::cmp::Ordering::Greater => self.parent[ry] = rx,
            std::cmp::Ordering::Equal => {
                self.parent[ry] = rx;
                self.rank[rx] += 1;
            }
        }
        true
    }

    /// True if `x` and `y` are in the same set.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of distinct sets among elements `0..n`.
    pub fn num_sets(&mut self) -> usize {
        let n = self.parent.len();
        let mut roots = BTreeSet::new();
        for i in 0..n {
            roots.insert(self.find(i));
        }
        roots.len()
    }
}

impl Query {
    /// Union-find over variables where variables occurring in the same atom
    /// are merged. Exposed for reuse by contraction and component
    /// computations.
    fn variable_components(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.num_vars());
        for atom in self.atoms() {
            let vars: Vec<VarId> = atom.vars.clone();
            for w in vars.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
        }
        uf
    }

    /// Number of connected components `c` of the query hypergraph.
    pub fn num_connected_components(&self) -> usize {
        if self.num_vars() == 0 {
            return 0;
        }
        let mut uf = self.variable_components();
        uf.num_sets()
    }

    /// True if the query hypergraph is connected.
    pub fn is_connected(&self) -> bool {
        self.num_connected_components() <= 1
    }

    /// The connected components, each given as the set of atoms it contains,
    /// ordered by the smallest atom id they contain.
    pub fn connected_components(&self) -> Vec<Vec<AtomId>> {
        let mut uf = self.variable_components();
        // Group atoms by the component of (any of) their variables. Every
        // atom has at least one variable (validated at construction).
        let mut groups: std::collections::BTreeMap<usize, Vec<AtomId>> =
            std::collections::BTreeMap::new();
        for a in self.atom_ids() {
            let first_var = self.atoms()[a.0].vars[0];
            let root = uf.find(first_var.0);
            groups.entry(root).or_default().push(a);
        }
        let mut comps: Vec<Vec<AtomId>> = groups.into_values().collect();
        comps.sort_by_key(|atoms| atoms[0]);
        comps
    }

    /// The connected components as sub-queries.
    pub fn connected_component_queries(&self) -> Vec<Query> {
        self.connected_components()
            .iter()
            .enumerate()
            .map(|(i, atoms)| {
                self.induced_subquery(atoms)
                    .expect("component is non-empty and ids are valid")
                    .with_name(format!("{}#{}", self.name(), i))
            })
            .collect()
    }

    /// True if the given atom set is connected *as a subhypergraph*
    /// (considering only the variables occurring in those atoms).
    pub fn atoms_connected(&self, atoms: &[AtomId]) -> bool {
        if atoms.is_empty() {
            return true;
        }
        match self.induced_subquery(atoms) {
            Ok(sub) => sub.is_connected(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn triangle_is_connected() {
        let q = Query::new(
            "C3",
            vec![("S1", vec!["x", "y"]), ("S2", vec!["y", "z"]), ("S3", vec!["z", "x"])],
        )
        .unwrap();
        assert!(q.is_connected());
        assert_eq!(q.num_connected_components(), 1);
        assert_eq!(q.connected_components().len(), 1);
        assert_eq!(q.connected_components()[0].len(), 3);
    }

    #[test]
    fn cartesian_product_is_disconnected() {
        // q(x,y) = R(x), S(y) — the paper's example of a disconnected query.
        let q = Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        assert!(!q.is_connected());
        assert_eq!(q.num_connected_components(), 2);
        let comps = q.connected_component_queries();
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.num_atoms() == 1));
    }

    #[test]
    fn mixed_components() {
        let q = Query::new(
            "q",
            vec![("R", vec!["x", "y"]), ("S", vec!["y", "z"]), ("T", vec!["u", "v"])],
        )
        .unwrap();
        assert_eq!(q.num_connected_components(), 2);
        let comps = q.connected_components();
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 1);
    }

    #[test]
    fn atom_subset_connectivity() {
        let q = Query::new(
            "L3",
            vec![("S1", vec!["x0", "x1"]), ("S2", vec!["x1", "x2"]), ("S3", vec!["x2", "x3"])],
        )
        .unwrap();
        let s1 = q.atom_by_name("S1").unwrap().0;
        let s2 = q.atom_by_name("S2").unwrap().0;
        let s3 = q.atom_by_name("S3").unwrap().0;
        assert!(q.atoms_connected(&[s1, s2]));
        assert!(!q.atoms_connected(&[s1, s3]));
        assert!(q.atoms_connected(&[s1, s2, s3]));
        assert!(q.atoms_connected(&[]));
    }
}
