//! Distances, radius and diameter of the query hypergraph (Section 4).
//!
//! The distance `d(u, v)` between two variables is the length of the
//! shortest path in the hypergraph where one step moves between variables
//! co-occurring in an atom. The *radius* is `rad(q) = min_u max_v d(u,v)`
//! and the *diameter* is `diam(q) = max_{u,v} d(u,v)`.
//!
//! These quantities drive the multi-round bounds: a tuple-based MPC(ε)
//! algorithm needs at least `⌈log_{kε} diam(q)⌉` rounds for tree-like
//! queries (Corollary 4.8), while `⌈log_{kε} rad(q)⌉ + 1` rounds always
//! suffice (Lemma 4.3).

use std::collections::VecDeque;

use crate::query::{Query, VarId};

impl Query {
    /// Breadth-first distances (in hypergraph steps) from `source` to every
    /// variable. Unreachable variables get `None`.
    pub fn distances_from(&self, source: VarId) -> Vec<Option<usize>> {
        let k = self.num_vars();
        let mut dist: Vec<Option<usize>> = vec![None; k];
        if source.0 >= k {
            return dist;
        }
        // Precompute adjacency once; queries are small (ℓ, k = O(10²)).
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); k];
        for atom in self.atoms() {
            let distinct = atom.distinct_vars();
            for &u in &distinct {
                for &v in &distinct {
                    if u != v {
                        adjacency[u.0].push(v.0);
                    }
                }
            }
        }
        dist[source.0] = Some(0);
        let mut queue = VecDeque::from([source.0]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have a distance");
            for &v in &adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The distance `d(u, v)` between two variables, or `None` if they lie
    /// in different connected components.
    pub fn distance(&self, u: VarId, v: VarId) -> Option<usize> {
        self.distances_from(u).get(v.0).copied().flatten()
    }

    /// Eccentricity of a variable: its maximum distance to any other
    /// variable, or `None` if the query is disconnected.
    pub fn eccentricity(&self, v: VarId) -> Option<usize> {
        let d = self.distances_from(v);
        let mut max = 0;
        for entry in d {
            max = max.max(entry?);
        }
        Some(max)
    }

    /// `rad(q) = min_u max_v d(u, v)`, or `None` if the query is
    /// disconnected.
    pub fn radius(&self) -> Option<usize> {
        self.var_ids()
            .map(|v| self.eccentricity(v))
            .try_fold(usize::MAX, |acc, e| e.map(|e| acc.min(e)))
    }

    /// `diam(q) = max_{u,v} d(u, v)`, or `None` if the query is
    /// disconnected.
    pub fn diameter(&self) -> Option<usize> {
        self.var_ids()
            .map(|v| self.eccentricity(v))
            .try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
    }

    /// A *center* of the query: a variable of minimum eccentricity
    /// (`None` if disconnected). Used by the radius-based multi-round plan
    /// of Lemma 4.3.
    pub fn center(&self) -> Option<VarId> {
        let mut best: Option<(usize, VarId)> = None;
        for v in self.var_ids() {
            let ecc = self.eccentricity(v)?;
            if best.is_none_or(|(b, _)| ecc < b) {
                best = Some((ecc, v));
            }
        }
        best.map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use crate::families;

    #[test]
    fn chain_radius_and_diameter() {
        // rad(Lk) = ⌈k/2⌉, diam(Lk) = k (Section 4.1 / 4.2.2).
        for k in 1..=9usize {
            let q = families::chain(k);
            assert_eq!(q.diameter(), Some(k), "diam(L{k})");
            assert_eq!(q.radius(), Some(k.div_ceil(2)), "rad(L{k})");
        }
    }

    #[test]
    fn cycle_radius_and_diameter() {
        // rad(Ck) = diam(Ck) = ⌊k/2⌋.
        for k in 3..=9usize {
            let q = families::cycle(k);
            assert_eq!(q.diameter(), Some(k / 2), "diam(C{k})");
            assert_eq!(q.radius(), Some(k / 2), "rad(C{k})");
        }
    }

    #[test]
    fn star_radius_and_diameter() {
        // Tk: center z at distance 1 from every leaf; leaves at distance 2.
        for k in 2..=6usize {
            let q = families::star(k);
            assert_eq!(q.radius(), Some(1));
            assert_eq!(q.diameter(), Some(2));
        }
        // T1 = S1(z, x1) is a single edge.
        assert_eq!(families::star(1).diameter(), Some(1));
    }

    #[test]
    fn distances_within_chain() {
        let q = families::chain(4);
        let x0 = q.var_id("x0").unwrap();
        let x4 = q.var_id("x4").unwrap();
        let x2 = q.var_id("x2").unwrap();
        assert_eq!(q.distance(x0, x4), Some(4));
        assert_eq!(q.distance(x0, x2), Some(2));
        assert_eq!(q.distance(x2, x2), Some(0));
        assert_eq!(q.distance(x4, x0), Some(4));
    }

    #[test]
    fn center_of_chain_is_middle() {
        let q = families::chain(4);
        let c = q.center().unwrap();
        assert_eq!(q.var_name(c).unwrap(), "x2");
    }

    #[test]
    fn disconnected_query_has_no_radius() {
        let q = crate::query::Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        assert_eq!(q.radius(), None);
        assert_eq!(q.diameter(), None);
        assert_eq!(q.center(), None);
        let x = q.var_id("x").unwrap();
        let y = q.var_id("y").unwrap();
        assert_eq!(q.distance(x, y), None);
    }

    #[test]
    fn radius_diameter_inequalities() {
        // rad ≤ diam ≤ 2·rad for every connected query.
        for q in [
            families::chain(6),
            families::cycle(7),
            families::star(4),
            families::binomial(4, 2).unwrap(),
            families::spoke(3),
        ] {
            let r = q.radius().unwrap();
            let d = q.diameter().unwrap();
            assert!(r <= d, "{}", q.name());
            assert!(d <= 2 * r, "{}", q.name());
        }
    }

    #[test]
    fn hyperedge_counts_as_single_step() {
        // In B(3,2)-style queries, all variables inside one atom are at
        // distance 1 even though the atom is ternary.
        let q = crate::query::Query::new("q", vec![("R", vec!["x", "y", "z"])]).unwrap();
        assert_eq!(q.diameter(), Some(1));
        assert_eq!(q.radius(), Some(1));
    }
}
