//! The [`Query`] type: full conjunctive queries without self-joins.
//!
//! A query `q(x1,…,xk) = S1(x̄1), …, Sℓ(x̄ℓ)` is stored as a list of variable
//! names plus a list of atoms whose positions reference variables by index
//! ([`VarId`]). The *hypergraph of the query* (Section 2.3 of the paper) has
//! one node per variable and one hyperedge per atom; most structural
//! operations in this crate are phrased over that hypergraph.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CqError;
use crate::Result;

/// Identifier of a variable within a [`Query`] (index into
/// [`Query::var_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// Identifier of an atom within a [`Query`] (index into [`Query::atoms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AtomId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One atom `Sj(x̄j)` of a conjunctive query.
///
/// The variable list is positional: `vars.len()` is the arity `aⱼ` of the
/// relation symbol. The same variable may occur in several positions (this
/// happens after contraction, see [`Query::contract`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Relation symbol, unique within the query (no self-joins).
    pub name: String,
    /// Positional variable list; length = arity.
    pub vars: Vec<VarId>,
}

impl Atom {
    /// The arity `aⱼ` of the relation symbol (number of positions).
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The set of *distinct* variables appearing in this atom,
    /// `vars(Sⱼ)` in the paper.
    pub fn distinct_vars(&self) -> BTreeSet<VarId> {
        self.vars.iter().copied().collect()
    }
}

/// A full conjunctive query without self-joins (Section 2.3).
///
/// *Full* means every variable of the body also appears in the head, so the
/// head is simply the set of all variables and is not stored separately.
/// *Without self-joins* means every relation symbol appears in exactly one
/// atom.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    name: String,
    var_names: Vec<String>,
    atoms: Vec<Atom>,
}

impl Query {
    /// Build a query from `(relation name, variable names)` pairs.
    ///
    /// Variables are identified by name; the set of head variables is the
    /// union of all body variables (the query is full by construction).
    ///
    /// # Errors
    ///
    /// Returns [`CqError::EmptyQuery`] if `atoms` is empty,
    /// [`CqError::SelfJoin`] if a relation symbol repeats and
    /// [`CqError::NullaryAtom`] if an atom has no variables.
    pub fn new<S, V, I, A>(name: S, atoms: A) -> Result<Self>
    where
        S: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = V>,
        A: IntoIterator<Item = (S, I)>,
    {
        let mut var_names: Vec<String> = Vec::new();
        let mut var_index: BTreeMap<String, VarId> = BTreeMap::new();
        let mut built_atoms: Vec<Atom> = Vec::new();
        let mut seen_relations: BTreeSet<String> = BTreeSet::new();

        for (rel, vars) in atoms {
            let rel: String = rel.into();
            if !seen_relations.insert(rel.clone()) {
                return Err(CqError::SelfJoin(rel));
            }
            let mut positions = Vec::new();
            for v in vars {
                let v: String = v.into();
                let id = *var_index.entry(v.clone()).or_insert_with(|| {
                    let id = VarId(var_names.len());
                    var_names.push(v);
                    id
                });
                positions.push(id);
            }
            if positions.is_empty() {
                return Err(CqError::NullaryAtom(rel));
            }
            built_atoms.push(Atom { name: rel, vars: positions });
        }

        if built_atoms.is_empty() {
            return Err(CqError::EmptyQuery);
        }

        Ok(Query { name: name.into(), var_names, atoms: built_atoms })
    }

    /// Construct from pre-built parts. Used internally by transformations
    /// that already maintain the invariants; still re-validates symbols.
    pub(crate) fn from_parts(
        name: String,
        var_names: Vec<String>,
        atoms: Vec<Atom>,
    ) -> Result<Self> {
        if atoms.is_empty() {
            return Err(CqError::EmptyQuery);
        }
        let mut seen = BTreeSet::new();
        for a in &atoms {
            if !seen.insert(a.name.clone()) {
                return Err(CqError::SelfJoin(a.name.clone()));
            }
            if a.vars.is_empty() {
                return Err(CqError::NullaryAtom(a.name.clone()));
            }
            for v in &a.vars {
                if v.0 >= var_names.len() {
                    return Err(CqError::UnknownVariable(v.0));
                }
            }
        }
        Ok(Query { name, var_names, atoms })
    }

    /// The query name (the head symbol), e.g. `"C3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables `k`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of atoms `ℓ`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total arity `a = Σⱼ aⱼ`.
    pub fn total_arity(&self) -> usize {
        self.atoms.iter().map(Atom::arity).sum()
    }

    /// All variable identifiers, `VarId(0) .. VarId(k-1)`.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.var_names.len()).map(VarId)
    }

    /// All atom identifiers, `AtomId(0) .. AtomId(ℓ-1)`.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> + '_ {
        (0..self.atoms.len()).map(AtomId)
    }

    /// Variable names, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The name of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`CqError::UnknownVariable`] if the id is out of range.
    pub fn var_name(&self, v: VarId) -> Result<&str> {
        self.var_names.get(v.0).map(String::as_str).ok_or(CqError::UnknownVariable(v.0))
    }

    /// Look up a variable by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names.iter().position(|n| n == name).map(VarId)
    }

    /// All atoms in declaration order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// A single atom.
    ///
    /// # Errors
    ///
    /// Returns [`CqError::UnknownAtom`] if the id is out of range.
    pub fn atom(&self, a: AtomId) -> Result<&Atom> {
        self.atoms.get(a.0).ok_or(CqError::UnknownAtom(a.0))
    }

    /// Look up an atom by relation symbol.
    pub fn atom_by_name(&self, name: &str) -> Option<(AtomId, &Atom)> {
        self.atoms.iter().enumerate().find(|(_, a)| a.name == name).map(|(i, a)| (AtomId(i), a))
    }

    /// `atoms(x)`: the atoms in which variable `x` occurs.
    pub fn atoms_of_var(&self, v: VarId) -> Vec<AtomId> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.vars.contains(&v))
            .map(|(i, _)| AtomId(i))
            .collect()
    }

    /// `vars(Sj)`: the distinct variables of an atom.
    ///
    /// # Errors
    ///
    /// Returns [`CqError::UnknownAtom`] if the id is out of range.
    pub fn vars_of_atom(&self, a: AtomId) -> Result<BTreeSet<VarId>> {
        Ok(self.atom(a)?.distinct_vars())
    }

    /// Variables adjacent to `v` in the hypergraph (co-occurring in some
    /// atom), excluding `v` itself.
    pub fn neighbours(&self, v: VarId) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            if a.vars.contains(&v) {
                for &w in &a.vars {
                    if w != v {
                        out.insert(w);
                    }
                }
            }
        }
        out
    }

    /// The sub*query* induced by a subset of atoms: atoms outside the set
    /// are dropped and only the variables occurring in the kept atoms
    /// remain. Variable and relation names are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CqError::EmptyQuery`] if `keep` is empty and
    /// [`CqError::UnknownAtom`] if any id is out of range.
    pub fn induced_subquery(&self, keep: &[AtomId]) -> Result<Query> {
        if keep.is_empty() {
            return Err(CqError::EmptyQuery);
        }
        let keep_set: BTreeSet<AtomId> = keep.iter().copied().collect();
        for a in &keep_set {
            if a.0 >= self.atoms.len() {
                return Err(CqError::UnknownAtom(a.0));
            }
        }
        let mut new_var_names = Vec::new();
        let mut remap: BTreeMap<VarId, VarId> = BTreeMap::new();
        let mut new_atoms = Vec::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            if !keep_set.contains(&AtomId(i)) {
                continue;
            }
            let vars = atom
                .vars
                .iter()
                .map(|v| {
                    *remap.entry(*v).or_insert_with(|| {
                        let id = VarId(new_var_names.len());
                        new_var_names.push(self.var_names[v.0].clone());
                        id
                    })
                })
                .collect();
            new_atoms.push(Atom { name: atom.name.clone(), vars });
        }
        Query::from_parts(format!("{}[{}]", self.name, keep_set.len()), new_var_names, new_atoms)
    }

    /// The complement of an atom set: `atoms(q) − M`.
    pub fn complement_atoms(&self, m: &[AtomId]) -> Vec<AtomId> {
        let set: BTreeSet<AtomId> = m.iter().copied().collect();
        self.atom_ids().filter(|a| !set.contains(a)).collect()
    }

    /// Rename the query (returns a copy with the new head symbol).
    pub fn with_name<S: Into<String>>(&self, name: S) -> Query {
        let mut q = self.clone();
        q.name = name.into();
        q
    }

    /// True if the query consists of a single atom.
    pub fn is_single_atom(&self) -> bool {
        self.atoms.len() == 1
    }

    /// True if some variable occurs in **every** atom.
    ///
    /// Corollary 3.10 of the paper: this holds iff `τ*(q) = 1`, i.e. iff the
    /// query has space exponent 0 (computable in one round without
    /// replication on matching databases).
    pub fn has_variable_in_all_atoms(&self) -> bool {
        self.var_ids().any(|v| self.atoms.iter().all(|a| a.vars.contains(&v)))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.var_names.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.name)?;
            for (j, v) in a.vars.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.var_names[v.0])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Query {
        Query::new(
            "C3",
            vec![("S1", vec!["x1", "x2"]), ("S2", vec!["x2", "x3"]), ("S3", vec!["x3", "x1"])],
        )
        .unwrap()
    }

    #[test]
    fn basic_counts() {
        let q = triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.total_arity(), 6);
        assert_eq!(q.name(), "C3");
    }

    #[test]
    fn rejects_self_join() {
        let err = Query::new("q", vec![("S", vec!["x", "y"]), ("S", vec!["y", "z"])]).unwrap_err();
        assert_eq!(err, CqError::SelfJoin("S".to_string()));
    }

    #[test]
    fn rejects_empty_query() {
        let atoms: Vec<(&str, Vec<&str>)> = vec![];
        let err = Query::new("q", atoms).unwrap_err();
        assert_eq!(err, CqError::EmptyQuery);
    }

    #[test]
    fn rejects_nullary_atom() {
        let err = Query::new("q", vec![("S", Vec::<&str>::new())]).unwrap_err();
        assert_eq!(err, CqError::NullaryAtom("S".to_string()));
    }

    #[test]
    fn var_lookup_round_trips() {
        let q = triangle();
        for v in q.var_ids() {
            let name = q.var_name(v).unwrap();
            assert_eq!(q.var_id(name), Some(v));
        }
        assert_eq!(q.var_id("nope"), None);
        assert!(q.var_name(VarId(99)).is_err());
    }

    #[test]
    fn atoms_of_var_and_vars_of_atom() {
        let q = triangle();
        let x2 = q.var_id("x2").unwrap();
        let atoms = q.atoms_of_var(x2);
        assert_eq!(atoms.len(), 2);
        let s1 = q.atom_by_name("S1").unwrap().0;
        let vars = q.vars_of_atom(s1).unwrap();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&q.var_id("x1").unwrap()));
    }

    #[test]
    fn neighbours_of_triangle_variable() {
        let q = triangle();
        let x1 = q.var_id("x1").unwrap();
        let nb = q.neighbours(x1);
        assert_eq!(nb.len(), 2);
    }

    #[test]
    fn induced_subquery_keeps_names() {
        let q = triangle();
        let s1 = q.atom_by_name("S1").unwrap().0;
        let s2 = q.atom_by_name("S2").unwrap().0;
        let sub = q.induced_subquery(&[s1, s2]).unwrap();
        assert_eq!(sub.num_atoms(), 2);
        assert_eq!(sub.num_vars(), 3);
        assert!(sub.atom_by_name("S1").is_some());
        assert!(sub.atom_by_name("S3").is_none());
    }

    #[test]
    fn induced_subquery_rejects_empty() {
        let q = triangle();
        assert!(q.induced_subquery(&[]).is_err());
    }

    #[test]
    fn complement_atoms_partitions() {
        let q = triangle();
        let s1 = q.atom_by_name("S1").unwrap().0;
        let rest = q.complement_atoms(&[s1]);
        assert_eq!(rest.len(), 2);
        assert!(!rest.contains(&s1));
    }

    #[test]
    fn display_round_trips_shape() {
        let q = triangle();
        let s = q.to_string();
        assert!(s.starts_with("C3("));
        assert!(s.contains("S1(x1,x2)"));
        assert!(s.contains(":-"));
    }

    #[test]
    fn variable_in_all_atoms_detection() {
        let q = triangle();
        assert!(!q.has_variable_in_all_atoms());
        let star =
            Query::new("T2", vec![("S1", vec!["z", "x1"]), ("S2", vec!["z", "x2"])]).unwrap();
        assert!(star.has_variable_in_all_atoms());
    }

    #[test]
    fn repeated_variable_positions_allowed() {
        let q = Query::new("q", vec![("S", vec!["x", "x"])]).unwrap();
        assert_eq!(q.num_vars(), 1);
        assert_eq!(q.total_arity(), 2);
        assert_eq!(q.atoms()[0].distinct_vars().len(), 1);
    }
}
