//! Error type for query construction and parsing.

use std::fmt;

/// Errors raised while constructing, parsing or transforming a conjunctive
/// query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// The query has no atoms; the MPC analysis requires at least one.
    EmptyQuery,
    /// Two atoms share the same relation symbol (the paper restricts to
    /// queries *without self-joins*, Section 2.3).
    SelfJoin(String),
    /// An atom has zero variables.
    NullaryAtom(String),
    /// A head variable does not occur in any atom (the query would not be
    /// *full*).
    UnboundHeadVariable(String),
    /// A body variable does not occur in the head even though the query is
    /// declared full.
    NonFullQuery(String),
    /// An atom identifier is out of range for this query.
    UnknownAtom(usize),
    /// A variable identifier is out of range for this query.
    UnknownVariable(usize),
    /// The parser failed; the payload is a human-readable explanation with
    /// the offending fragment.
    Parse(String),
    /// A query-family parameter is outside its meaningful range
    /// (e.g. a cycle of length < 2).
    InvalidFamilyParameter(String),
    /// A structural operation required a connected query but the query was
    /// disconnected.
    Disconnected(String),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::EmptyQuery => write!(f, "query has no atoms"),
            CqError::SelfJoin(rel) => {
                write!(f, "relation `{rel}` appears more than once (self-joins are not supported)")
            }
            CqError::NullaryAtom(rel) => write!(f, "atom `{rel}` has no variables"),
            CqError::UnboundHeadVariable(v) => {
                write!(f, "head variable `{v}` does not occur in the body")
            }
            CqError::NonFullQuery(v) => {
                write!(
                    f,
                    "body variable `{v}` is missing from the head; only full queries are supported"
                )
            }
            CqError::UnknownAtom(id) => write!(f, "atom id {id} out of range"),
            CqError::UnknownVariable(id) => write!(f, "variable id {id} out of range"),
            CqError::Parse(msg) => write!(f, "parse error: {msg}"),
            CqError::InvalidFamilyParameter(msg) => write!(f, "invalid family parameter: {msg}"),
            CqError::Disconnected(msg) => write!(f, "query is not connected: {msg}"),
        }
    }
}

impl std::error::Error for CqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CqError::SelfJoin("R".to_string());
        assert!(e.to_string().contains('R'));
        let e = CqError::Parse("unexpected token `)`".to_string());
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CqError>();
    }
}
