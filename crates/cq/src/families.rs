//! The paper's running query families (Table 1 and Section 4.1).
//!
//! | Family | Definition | τ*(q) | space exponent ε* |
//! |--------|------------|-------|-------------------|
//! | `cycle(k)` = `C_k` | `⋀_{j=1}^{k} S_j(x_j, x_{(j mod k)+1})` | `k/2` | `1 − 2/k` |
//! | `star(k)` = `T_k` | `⋀_{j=1}^{k} S_j(z, x_j)` | `1` | `0` |
//! | `chain(k)` = `L_k` | `⋀_{j=1}^{k} S_j(x_{j−1}, x_j)` | `⌈k/2⌉` | `1 − 1/⌈k/2⌉` |
//! | `binomial(k,m)` = `B_{k,m}` | <code>⋀_{I ⊆ \[k\], \|I\|=m} S_I(x̄_I)</code> | `k/m` | `1 − m/k` |
//! | `spoke(k)` = `SP_k` | `⋀_{i=1}^{k} R_i(z,x_i), S_i(x_i,y_i)` | `k` | `1 − 1/k` |
//!
//! plus [`witness_query`], the query of Proposition 3.12 used for the
//! JOIN-WITNESS lower bound.

use std::collections::BTreeSet;

use crate::error::CqError;
use crate::query::{AtomId, Query, VarId};
use crate::Result;

/// The chain (path) query `L_k(x0,…,xk) = S1(x0,x1), …, Sk(x_{k−1},x_k)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn chain(k: usize) -> Query {
    assert!(k >= 1, "chain length must be at least 1");
    let atoms = (1..=k)
        .map(|j| (format!("S{j}"), vec![format!("x{}", j - 1), format!("x{j}")]))
        .collect::<Vec<_>>();
    Query::new(format!("L{k}"), atoms).expect("chain construction is valid")
}

/// The cycle query `C_k(x1,…,xk) = S1(x1,x2), S2(x2,x3), …, Sk(xk,x1)`.
///
/// # Panics
///
/// Panics if `k < 2` (a cycle needs at least two edges).
pub fn cycle(k: usize) -> Query {
    assert!(k >= 2, "cycle length must be at least 2");
    let atoms = (1..=k)
        .map(|j| {
            let next = (j % k) + 1;
            (format!("S{j}"), vec![format!("x{j}"), format!("x{next}")])
        })
        .collect::<Vec<_>>();
    Query::new(format!("C{k}"), atoms).expect("cycle construction is valid")
}

/// The star query `T_k(z,x1,…,xk) = S1(z,x1), …, Sk(z,xk)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn star(k: usize) -> Query {
    assert!(k >= 1, "star must have at least one ray");
    let atoms = (1..=k)
        .map(|j| (format!("S{j}"), vec!["z".to_string(), format!("x{j}")]))
        .collect::<Vec<_>>();
    Query::new(format!("T{k}"), atoms).expect("star construction is valid")
}

/// The query `B_{k,m}` with one `m`-ary relation `S_I(x̄_I)` for every
/// subset `I ⊆ [k]` of size `m` (Table 1).
///
/// # Errors
///
/// Returns [`CqError::InvalidFamilyParameter`] unless `1 ≤ m ≤ k` and the
/// number of atoms `C(k,m)` is at most 10 000.
pub fn binomial(k: usize, m: usize) -> Result<Query> {
    if m == 0 || m > k {
        return Err(CqError::InvalidFamilyParameter(format!(
            "binomial(k={k}, m={m}) requires 1 <= m <= k"
        )));
    }
    let subsets = subsets_of_size(k, m);
    if subsets.len() > 10_000 {
        return Err(CqError::InvalidFamilyParameter(format!(
            "binomial(k={k}, m={m}) would create {} atoms",
            subsets.len()
        )));
    }
    let atoms = subsets
        .into_iter()
        .map(|subset| {
            let name =
                format!("S_{}", subset.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("_"));
            let vars = subset.iter().map(|i| format!("x{i}")).collect::<Vec<_>>();
            (name, vars)
        })
        .collect::<Vec<_>>();
    Query::new(format!("B{k}_{m}"), atoms)
}

/// The clique query `K_k(x1,…,xk)` with one binary atom `S_i_j(x_i,x_j)`
/// per edge `i < j` — [`binomial`]`(k, 2)` under its graph-theoretic name.
/// Cliques have `τ* = ρ* = k/2`, so the one-round HyperCube and AGM load
/// targets coincide on skew-free data and the worst-case optimal strategy
/// wins exactly when the input is skewed.
///
/// # Errors
///
/// Returns [`CqError::InvalidFamilyParameter`] when `k < 2` (a clique
/// needs at least one edge).
pub fn clique(k: usize) -> Result<Query> {
    if k < 2 {
        return Err(CqError::InvalidFamilyParameter(format!("clique(k={k}) requires k >= 2")));
    }
    let edges = binomial(k, 2)?;
    let atoms = edges
        .atoms()
        .iter()
        .map(|atom| {
            let vars = atom.vars.iter().map(|v| edges.var_names()[v.0].clone()).collect();
            (atom.name.clone(), vars)
        })
        .collect::<Vec<(String, Vec<String>)>>();
    Query::new(format!("K{k}"), atoms)
}

/// The "spoke" query `SP_k(z, x1, y1, …, xk, yk) = ⋀_i R_i(z,x_i), S_i(x_i,y_i)`
/// from Example 4.2: one round needs replication `p^{1−1/k}`, but a 2-round
/// plan needs none.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn spoke(k: usize) -> Query {
    assert!(k >= 1, "spoke must have at least one arm");
    let mut atoms = Vec::with_capacity(2 * k);
    for i in 1..=k {
        atoms.push((format!("R{i}"), vec!["z".to_string(), format!("x{i}")]));
        atoms.push((format!("S{i}"), vec![format!("x{i}"), format!("y{i}")]));
    }
    Query::new(format!("SP{k}"), atoms).expect("spoke construction is valid")
}

/// The JOIN-WITNESS query of Proposition 3.12:
/// `q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`.
pub fn witness_query() -> Query {
    Query::new(
        "W",
        vec![
            ("R", vec!["w"]),
            ("S1", vec!["w", "x"]),
            ("S2", vec!["x", "y"]),
            ("S3", vec!["y", "z"]),
            ("T", vec!["z"]),
        ],
    )
    .expect("witness query construction is valid")
}

/// The two-way join `L_2 = S1(x,y), S2(y,z)` highlighted in the
/// introduction (space exponent 0).
pub fn two_way_join() -> Query {
    chain(2)
}

/// The triangle query `C_3` (space exponent 1/3), the canonical HyperCube
/// example (Example 3.1).
pub fn triangle() -> Query {
    cycle(3)
}

/// The outcome of [`recognize`]: the query is one of the paper's running
/// families, *up to variable and atom renaming*, together with the role
/// data a closed-form LP solution needs (path orders, centres, arms).
///
/// Recognition is purely structural over the hypergraph of *distinct*
/// variable sets, which is exactly the structure the cover/packing LPs
/// depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecognizedFamily {
    /// A path `L_k`: `var_order` walks the path (`k+1` variables),
    /// `atom_order[j]` is the atom joining `var_order[j]` and
    /// `var_order[j+1]`.
    Chain {
        /// Path length (number of atoms).
        k: usize,
        /// The variables in path order.
        var_order: Vec<VarId>,
        /// The atoms in path order.
        atom_order: Vec<AtomId>,
    },
    /// A cycle `C_k` (`k ≥ 2`; `C_2` is the doubled edge). All optimal LP
    /// solutions used downstream are uniform, so no role data is needed.
    Cycle {
        /// Cycle length (number of atoms = number of variables).
        k: usize,
    },
    /// A star `T_k`: `center` occurs in every atom, every other variable in
    /// exactly one.
    Star {
        /// Number of rays.
        k: usize,
        /// The centre variable.
        center: VarId,
    },
    /// The complete `m`-uniform hypergraph `B_{k,m}`: every `m`-subset of
    /// the `k` variables occurs as exactly one atom. Uniform LP solutions,
    /// so no role data is needed.
    Binomial {
        /// Number of variables.
        k: usize,
        /// Atom arity (subset size).
        m: usize,
    },
    /// The spoke query `SP_k`: a centre `z` with `k` arms
    /// `R_i(z, x_i), S_i(x_i, y_i)`. For each arm `i`, `arms[i]` is
    /// `(R_i, S_i, x_i, y_i)`.
    Spoke {
        /// Number of arms.
        k: usize,
        /// The hub variable `z`.
        center: VarId,
        /// Per-arm `(R_i, S_i, x_i, y_i)`.
        arms: Vec<(AtomId, AtomId, VarId, VarId)>,
    },
}

impl RecognizedFamily {
    /// A display name in the paper's notation, e.g. `C5`, `L3`, `B4_2`.
    pub fn display_name(&self) -> String {
        match self {
            RecognizedFamily::Chain { k, .. } => format!("L{k}"),
            RecognizedFamily::Cycle { k } => format!("C{k}"),
            RecognizedFamily::Star { k, .. } => format!("T{k}"),
            RecognizedFamily::Binomial { k, m } => format!("B{k}_{m}"),
            RecognizedFamily::Spoke { k, .. } => format!("SP{k}"),
        }
    }
}

/// Classify `q` as one of the running families up to renaming, returning
/// the role data closed-form LP solutions need, or `None` when the query
/// matches no family.
///
/// The checks are exact (no heuristics): a `Some` answer certifies the
/// family structure. Precedence on overlaps is chain/star before spoke
/// (`SP_1 ≅ L_2`, `SP_2 ≅ L_4`) and cycle before binomial (`C_3 = B_{3,2}`);
/// either classification would yield an optimal closed form.
pub fn recognize(q: &Query) -> Option<RecognizedFamily> {
    let edges: Vec<BTreeSet<VarId>> = q.atoms().iter().map(|a| a.distinct_vars()).collect();
    let mut degree = vec![0usize; q.num_vars()];
    for e in &edges {
        for v in e {
            degree[v.0] += 1;
        }
    }
    try_star(q, &edges, &degree)
        .or_else(|| try_chain(q, &edges, &degree))
        .or_else(|| try_cycle(q, &edges, &degree))
        .or_else(|| try_spoke(q, &edges, &degree))
        .or_else(|| try_binomial(q, &edges, &degree))
}

fn all_binary(edges: &[BTreeSet<VarId>]) -> bool {
    edges.iter().all(|e| e.len() == 2)
}

fn try_star(q: &Query, edges: &[BTreeSet<VarId>], degree: &[usize]) -> Option<RecognizedFamily> {
    let l = edges.len();
    if !all_binary(edges) || q.num_vars() != l + 1 {
        return None;
    }
    let center = VarId(degree.iter().position(|&d| d == l)?);
    let leaves_ok = degree.iter().enumerate().all(|(v, &d)| VarId(v) == center || d == 1);
    let center_everywhere = edges.iter().all(|e| e.contains(&center));
    if leaves_ok && center_everywhere {
        Some(RecognizedFamily::Star { k: l, center })
    } else {
        None
    }
}

fn try_chain(q: &Query, edges: &[BTreeSet<VarId>], degree: &[usize]) -> Option<RecognizedFamily> {
    let l = edges.len();
    if !all_binary(edges) || q.num_vars() != l + 1 {
        return None;
    }
    let endpoints: Vec<VarId> =
        degree.iter().enumerate().filter(|(_, &d)| d == 1).map(|(v, _)| VarId(v)).collect();
    if endpoints.len() != 2 || degree.iter().any(|&d| d == 0 || d > 2) {
        return None;
    }
    // Walk the path from the smaller endpoint.
    let start = *endpoints.iter().min().expect("two endpoints");
    let mut var_order = vec![start];
    let mut atom_order = Vec::with_capacity(l);
    let mut used = vec![false; l];
    let mut current = start;
    for _ in 0..l {
        let (a, _) = edges.iter().enumerate().find(|(a, e)| !used[*a] && e.contains(&current))?;
        used[a] = true;
        let next = *edges[a].iter().find(|v| **v != current)?;
        atom_order.push(AtomId(a));
        var_order.push(next);
        current = next;
    }
    // A walk that consumed every atom and every variable is a path.
    if var_order.len() == q.num_vars() {
        Some(RecognizedFamily::Chain { k: l, var_order, atom_order })
    } else {
        None
    }
}

fn try_cycle(q: &Query, edges: &[BTreeSet<VarId>], degree: &[usize]) -> Option<RecognizedFamily> {
    let l = edges.len();
    if l < 2 || !all_binary(edges) || q.num_vars() != l {
        return None;
    }
    if degree.iter().all(|&d| d == 2) && q.is_connected() {
        Some(RecognizedFamily::Cycle { k: l })
    } else {
        None
    }
}

fn try_spoke(q: &Query, edges: &[BTreeSet<VarId>], degree: &[usize]) -> Option<RecognizedFamily> {
    let l = edges.len();
    if !all_binary(edges) || !l.is_multiple_of(2) || l == 0 {
        return None;
    }
    let k = l / 2;
    if q.num_vars() != 2 * k + 1 {
        return None;
    }
    let center = VarId(degree.iter().position(|&d| d == k)?);
    // k middles of degree 2, k tips of degree 1 (k ≥ 3 keeps the centre
    // distinct from the middles; smaller spokes are chains, caught earlier).
    if degree[center.0] != k {
        return None;
    }
    let mut arms = Vec::with_capacity(k);
    let mut seen_middle: BTreeSet<VarId> = BTreeSet::new();
    for (a, e) in edges.iter().enumerate() {
        if !e.contains(&center) {
            continue;
        }
        let x = *e.iter().find(|v| **v != center)?;
        if degree[x.0] != 2 || !seen_middle.insert(x) {
            return None;
        }
        // The unique other atom of x must pair it with a degree-1 tip.
        let (s, se) = edges.iter().enumerate().find(|(s, se)| *s != a && se.contains(&x))?;
        let y = *se.iter().find(|v| **v != x)?;
        if y == center || degree[y.0] != 1 {
            return None;
        }
        arms.push((AtomId(a), AtomId(s), x, y));
    }
    if arms.len() == k {
        Some(RecognizedFamily::Spoke { k, center, arms })
    } else {
        None
    }
}

/// `C(k, m)` without overflow; `None` when the value exceeds `cap`.
fn binomial_coefficient(k: usize, m: usize, cap: u128) -> Option<u128> {
    if m > k {
        return Some(0);
    }
    let m = m.min(k - m);
    let mut c: u128 = 1;
    for i in 0..m {
        c = c.checked_mul((k - i) as u128)? / (i as u128 + 1);
        if c > cap {
            return None;
        }
    }
    Some(c)
}

fn try_binomial(
    q: &Query,
    edges: &[BTreeSet<VarId>],
    degree: &[usize],
) -> Option<RecognizedFamily> {
    let k = q.num_vars();
    let m = edges.first()?.len();
    if m == 0 || edges.iter().any(|e| e.len() != m) {
        return None;
    }
    let expected = binomial_coefficient(k, m, 1_000_000)?;
    if edges.len() as u128 != expected {
        return None;
    }
    // Distinct m-subsets in the right quantity are *all* m-subsets.
    let distinct: BTreeSet<&BTreeSet<VarId>> = edges.iter().collect();
    if distinct.len() != edges.len() {
        return None;
    }
    let per_var = binomial_coefficient(k - 1, m - 1, 1_000_000)?;
    if degree.iter().any(|&d| d as u128 != per_var) {
        return None;
    }
    Some(RecognizedFamily::Binomial { k, m })
}

/// All subsets of `{1,…,k}` of the given size, in lexicographic order.
fn subsets_of_size(k: usize, m: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(m);
    fn rec(start: usize, k: usize, m: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == m {
            out.push(current.clone());
            return;
        }
        for i in start..=k {
            if k - i + 1 < m - current.len() {
                break;
            }
            current.push(i);
            rec(i + 1, k, m, current, out);
            current.pop();
        }
    }
    rec(1, k, m, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let q = chain(4);
        assert_eq!(q.num_atoms(), 4);
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_connected());
        assert_eq!(
            q.to_string(),
            "L4(x0,x1,x2,x3,x4) :- S1(x0,x1), S2(x1,x2), S3(x2,x3), S4(x3,x4)"
        );
    }

    #[test]
    fn cycle_shape() {
        let q = cycle(5);
        assert_eq!(q.num_atoms(), 5);
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_connected());
        // The last atom wraps around to x1.
        let (_, last) = q.atom_by_name("S5").unwrap();
        assert_eq!(q.var_name(last.vars[1]).unwrap(), "x1");
    }

    #[test]
    fn star_shape() {
        let q = star(3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 4);
        assert!(q.has_variable_in_all_atoms());
    }

    #[test]
    fn binomial_shape() {
        let q = binomial(4, 2).unwrap();
        assert_eq!(q.num_atoms(), 6); // C(4,2)
        assert_eq!(q.num_vars(), 4);
        assert!(q.is_connected());
        let q = binomial(3, 3).unwrap();
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn binomial_rejects_bad_parameters() {
        assert!(binomial(3, 0).is_err());
        assert!(binomial(3, 4).is_err());
    }

    #[test]
    fn clique_is_binomial_k_2_renamed() {
        let k4 = clique(4).unwrap();
        assert_eq!(k4.name(), "K4");
        assert_eq!(k4.num_atoms(), 6);
        assert_eq!(k4.num_vars(), 4);
        let b42 = binomial(4, 2).unwrap();
        for (a, b) in k4.atoms().iter().zip(b42.atoms()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.vars, b.vars);
        }
        // K3 is the triangle, which the recognizer reports as the cycle C3.
        let k3 = clique(3).unwrap();
        assert_eq!(k3.num_atoms(), 3);
        assert!(matches!(recognize(&k3), Some(RecognizedFamily::Cycle { k: 3 })));
        assert!(clique(1).is_err());
    }

    #[test]
    fn spoke_shape() {
        let q = spoke(3);
        assert_eq!(q.num_atoms(), 6);
        assert_eq!(q.num_vars(), 7);
        assert!(q.is_connected());
        assert!(!q.has_variable_in_all_atoms());
        assert!(q.is_tree_like());
    }

    #[test]
    fn witness_query_shape() {
        let q = witness_query();
        assert_eq!(q.num_atoms(), 5);
        assert_eq!(q.num_vars(), 4);
        assert!(q.is_connected());
        assert_eq!(q.total_arity(), 8);
    }

    #[test]
    fn convenience_aliases() {
        assert_eq!(two_way_join().num_atoms(), 2);
        assert_eq!(triangle().num_atoms(), 3);
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 1).len(), 5);
        assert_eq!(subsets_of_size(5, 5).len(), 1);
        assert_eq!(subsets_of_size(5, 5)[0], vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn recognize_families_up_to_renaming() {
        // The constructors themselves.
        assert!(matches!(recognize(&cycle(3)), Some(RecognizedFamily::Cycle { k: 3 })));
        assert!(matches!(recognize(&cycle(7)), Some(RecognizedFamily::Cycle { k: 7 })));
        assert!(matches!(recognize(&chain(5)), Some(RecognizedFamily::Chain { k: 5, .. })));
        assert!(matches!(recognize(&star(4)), Some(RecognizedFamily::Star { k: 4, .. })));
        assert!(matches!(
            recognize(&binomial(5, 3).unwrap()),
            Some(RecognizedFamily::Binomial { k: 5, m: 3 })
        ));
        assert!(matches!(recognize(&spoke(3)), Some(RecognizedFamily::Spoke { k: 3, .. })));
        // Renamed/permuted copies are still recognized.
        let shuffled_cycle = Query::new(
            "Z",
            vec![("A", vec!["b", "c"]), ("B", vec!["a", "b"]), ("C", vec!["c", "a"])],
        )
        .unwrap();
        assert!(matches!(recognize(&shuffled_cycle), Some(RecognizedFamily::Cycle { k: 3 })));
        let shuffled_chain =
            Query::new("Z", vec![("A", vec!["m", "n"]), ("B", vec!["p", "m"])]).unwrap();
        // A 2-chain is also a 2-star around the middle variable; either
        // classification carries a valid closed form.
        let got = recognize(&shuffled_chain).unwrap();
        assert!(matches!(
            got,
            RecognizedFamily::Star { k: 2, .. } | RecognizedFamily::Chain { k: 2, .. }
        ));
    }

    #[test]
    fn recognize_roles_are_consistent() {
        let q = spoke(4);
        let Some(RecognizedFamily::Spoke { k, center, arms }) = recognize(&q) else {
            panic!("SP4 must be recognized");
        };
        assert_eq!(k, 4);
        assert_eq!(q.var_name(center).unwrap(), "z");
        for (r, s, x, y) in arms {
            let rv = q.vars_of_atom(r).unwrap();
            assert!(rv.contains(&center) && rv.contains(&x));
            let sv = q.vars_of_atom(s).unwrap();
            assert!(sv.contains(&x) && sv.contains(&y));
        }
        let q = chain(6);
        let Some(RecognizedFamily::Chain { k, var_order, atom_order }) = recognize(&q) else {
            panic!("L6 must be recognized");
        };
        assert_eq!(k, 6);
        assert_eq!(var_order.len(), 7);
        for (j, a) in atom_order.iter().enumerate() {
            let vars = q.vars_of_atom(*a).unwrap();
            assert!(vars.contains(&var_order[j]) && vars.contains(&var_order[j + 1]));
        }
    }

    #[test]
    fn recognize_rejects_non_family_queries() {
        assert_eq!(recognize(&witness_query()), None);
        // A triangle with a pendant edge.
        let q = Query::new(
            "q",
            vec![
                ("S1", vec!["a", "b"]),
                ("S2", vec!["b", "c"]),
                ("S3", vec!["c", "a"]),
                ("S4", vec!["c", "d"]),
            ],
        )
        .unwrap();
        assert_eq!(recognize(&q), None);
        // Two disjoint paths: connected-family checks must all fail.
        let q = Query::new("q", vec![("R", vec!["x", "y"]), ("S", vec!["u", "v"])]).unwrap();
        assert_eq!(recognize(&q), None);
    }

    #[test]
    fn recognize_degenerate_shapes() {
        // A single unary atom is B(1,1); k unary atoms are B(k,1).
        let q = Query::new("q", vec![("S", vec!["x"])]).unwrap();
        assert!(matches!(recognize(&q), Some(RecognizedFamily::Binomial { k: 1, m: 1 })));
        let q = Query::new("q", vec![("S", vec!["x"]), ("T", vec!["y"])]).unwrap();
        assert!(matches!(recognize(&q), Some(RecognizedFamily::Binomial { k: 2, m: 1 })));
        // The doubled edge is C2.
        assert!(matches!(recognize(&cycle(2)), Some(RecognizedFamily::Cycle { k: 2 })));
        // A repeated-variable atom S(x,x) has the unary edge {x}: B(1,1).
        let q = Query::new("q", vec![("S", vec!["x", "x"])]).unwrap();
        assert!(matches!(recognize(&q), Some(RecognizedFamily::Binomial { k: 1, m: 1 })));
        assert_eq!(recognize(&q).unwrap().display_name(), "B1_1");
    }

    #[test]
    #[should_panic(expected = "chain length")]
    fn chain_zero_panics() {
        chain(0);
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn cycle_one_panics() {
        cycle(1);
    }
}
