//! The paper's running query families (Table 1 and Section 4.1).
//!
//! | Family | Definition | τ*(q) | space exponent ε* |
//! |--------|------------|-------|-------------------|
//! | `cycle(k)` = `C_k` | `⋀_{j=1}^{k} S_j(x_j, x_{(j mod k)+1})` | `k/2` | `1 − 2/k` |
//! | `star(k)` = `T_k` | `⋀_{j=1}^{k} S_j(z, x_j)` | `1` | `0` |
//! | `chain(k)` = `L_k` | `⋀_{j=1}^{k} S_j(x_{j−1}, x_j)` | `⌈k/2⌉` | `1 − 1/⌈k/2⌉` |
//! | `binomial(k,m)` = `B_{k,m}` | <code>⋀_{I ⊆ \[k\], \|I\|=m} S_I(x̄_I)</code> | `k/m` | `1 − m/k` |
//! | `spoke(k)` = `SP_k` | `⋀_{i=1}^{k} R_i(z,x_i), S_i(x_i,y_i)` | `k` | `1 − 1/k` |
//!
//! plus [`witness_query`], the query of Proposition 3.12 used for the
//! JOIN-WITNESS lower bound.

use crate::error::CqError;
use crate::query::Query;
use crate::Result;

/// The chain (path) query `L_k(x0,…,xk) = S1(x0,x1), …, Sk(x_{k−1},x_k)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn chain(k: usize) -> Query {
    assert!(k >= 1, "chain length must be at least 1");
    let atoms = (1..=k)
        .map(|j| (format!("S{j}"), vec![format!("x{}", j - 1), format!("x{j}")]))
        .collect::<Vec<_>>();
    Query::new(format!("L{k}"), atoms).expect("chain construction is valid")
}

/// The cycle query `C_k(x1,…,xk) = S1(x1,x2), S2(x2,x3), …, Sk(xk,x1)`.
///
/// # Panics
///
/// Panics if `k < 2` (a cycle needs at least two edges).
pub fn cycle(k: usize) -> Query {
    assert!(k >= 2, "cycle length must be at least 2");
    let atoms = (1..=k)
        .map(|j| {
            let next = (j % k) + 1;
            (format!("S{j}"), vec![format!("x{j}"), format!("x{next}")])
        })
        .collect::<Vec<_>>();
    Query::new(format!("C{k}"), atoms).expect("cycle construction is valid")
}

/// The star query `T_k(z,x1,…,xk) = S1(z,x1), …, Sk(z,xk)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn star(k: usize) -> Query {
    assert!(k >= 1, "star must have at least one ray");
    let atoms = (1..=k)
        .map(|j| (format!("S{j}"), vec!["z".to_string(), format!("x{j}")]))
        .collect::<Vec<_>>();
    Query::new(format!("T{k}"), atoms).expect("star construction is valid")
}

/// The query `B_{k,m}` with one `m`-ary relation `S_I(x̄_I)` for every
/// subset `I ⊆ [k]` of size `m` (Table 1).
///
/// # Errors
///
/// Returns [`CqError::InvalidFamilyParameter`] unless `1 ≤ m ≤ k` and the
/// number of atoms `C(k,m)` is at most 10 000.
pub fn binomial(k: usize, m: usize) -> Result<Query> {
    if m == 0 || m > k {
        return Err(CqError::InvalidFamilyParameter(format!(
            "binomial(k={k}, m={m}) requires 1 <= m <= k"
        )));
    }
    let subsets = subsets_of_size(k, m);
    if subsets.len() > 10_000 {
        return Err(CqError::InvalidFamilyParameter(format!(
            "binomial(k={k}, m={m}) would create {} atoms",
            subsets.len()
        )));
    }
    let atoms = subsets
        .into_iter()
        .map(|subset| {
            let name =
                format!("S_{}", subset.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("_"));
            let vars = subset.iter().map(|i| format!("x{i}")).collect::<Vec<_>>();
            (name, vars)
        })
        .collect::<Vec<_>>();
    Query::new(format!("B{k}_{m}"), atoms)
}

/// The "spoke" query `SP_k(z, x1, y1, …, xk, yk) = ⋀_i R_i(z,x_i), S_i(x_i,y_i)`
/// from Example 4.2: one round needs replication `p^{1−1/k}`, but a 2-round
/// plan needs none.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn spoke(k: usize) -> Query {
    assert!(k >= 1, "spoke must have at least one arm");
    let mut atoms = Vec::with_capacity(2 * k);
    for i in 1..=k {
        atoms.push((format!("R{i}"), vec!["z".to_string(), format!("x{i}")]));
        atoms.push((format!("S{i}"), vec![format!("x{i}"), format!("y{i}")]));
    }
    Query::new(format!("SP{k}"), atoms).expect("spoke construction is valid")
}

/// The JOIN-WITNESS query of Proposition 3.12:
/// `q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`.
pub fn witness_query() -> Query {
    Query::new(
        "W",
        vec![
            ("R", vec!["w"]),
            ("S1", vec!["w", "x"]),
            ("S2", vec!["x", "y"]),
            ("S3", vec!["y", "z"]),
            ("T", vec!["z"]),
        ],
    )
    .expect("witness query construction is valid")
}

/// The two-way join `L_2 = S1(x,y), S2(y,z)` highlighted in the
/// introduction (space exponent 0).
pub fn two_way_join() -> Query {
    chain(2)
}

/// The triangle query `C_3` (space exponent 1/3), the canonical HyperCube
/// example (Example 3.1).
pub fn triangle() -> Query {
    cycle(3)
}

/// All subsets of `{1,…,k}` of the given size, in lexicographic order.
fn subsets_of_size(k: usize, m: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(m);
    fn rec(start: usize, k: usize, m: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == m {
            out.push(current.clone());
            return;
        }
        for i in start..=k {
            if k - i + 1 < m - current.len() {
                break;
            }
            current.push(i);
            rec(i + 1, k, m, current, out);
            current.pop();
        }
    }
    rec(1, k, m, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let q = chain(4);
        assert_eq!(q.num_atoms(), 4);
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_connected());
        assert_eq!(
            q.to_string(),
            "L4(x0,x1,x2,x3,x4) :- S1(x0,x1), S2(x1,x2), S3(x2,x3), S4(x3,x4)"
        );
    }

    #[test]
    fn cycle_shape() {
        let q = cycle(5);
        assert_eq!(q.num_atoms(), 5);
        assert_eq!(q.num_vars(), 5);
        assert!(q.is_connected());
        // The last atom wraps around to x1.
        let (_, last) = q.atom_by_name("S5").unwrap();
        assert_eq!(q.var_name(last.vars[1]).unwrap(), "x1");
    }

    #[test]
    fn star_shape() {
        let q = star(3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 4);
        assert!(q.has_variable_in_all_atoms());
    }

    #[test]
    fn binomial_shape() {
        let q = binomial(4, 2).unwrap();
        assert_eq!(q.num_atoms(), 6); // C(4,2)
        assert_eq!(q.num_vars(), 4);
        assert!(q.is_connected());
        let q = binomial(3, 3).unwrap();
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn binomial_rejects_bad_parameters() {
        assert!(binomial(3, 0).is_err());
        assert!(binomial(3, 4).is_err());
    }

    #[test]
    fn spoke_shape() {
        let q = spoke(3);
        assert_eq!(q.num_atoms(), 6);
        assert_eq!(q.num_vars(), 7);
        assert!(q.is_connected());
        assert!(!q.has_variable_in_all_atoms());
        assert!(q.is_tree_like());
    }

    #[test]
    fn witness_query_shape() {
        let q = witness_query();
        assert_eq!(q.num_atoms(), 5);
        assert_eq!(q.num_vars(), 4);
        assert!(q.is_connected());
        assert_eq!(q.total_arity(), 8);
    }

    #[test]
    fn convenience_aliases() {
        assert_eq!(two_way_join().num_atoms(), 2);
        assert_eq!(triangle().num_atoms(), 3);
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 1).len(), 5);
        assert_eq!(subsets_of_size(5, 5).len(), 1);
        assert_eq!(subsets_of_size(5, 5)[0], vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "chain length")]
    fn chain_zero_panics() {
        chain(0);
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn cycle_one_panics() {
        cycle(1);
    }
}
