//! The two-round connected-components algorithm for dense graphs.
//!
//! Karloff, Suri & Vassilvitskii (SODA 2010) — cited in Section 1 of the
//! paper as the contrast to Theorem 4.10 — show that connected components
//! (and minimum spanning trees) of *sufficiently dense* graphs can be
//! computed in O(1) MapReduce rounds. The scheme implemented here:
//!
//! 1. Round 1: hash-partition the edges arbitrarily across the `p`
//!    servers; each server computes a spanning forest of its local edges
//!    (at most `V − 1` edges survive).
//! 2. Round 2: every server sends its forest edges to server 0, which has
//!    now enough information to output the exact components.
//!
//! Server 0 receives at most `p · (V − 1)` edges; the input has `E` edges,
//! so the round-2 load stays within the `c · N / p^{1−ε}` budget exactly
//! when the graph is dense enough (`E ≳ p^{2−ε} · V`). On sparse inputs —
//! like the layered path graphs of Theorem 4.10 — the same program blows
//! the budget, which is precisely the dichotomy the experiment E5 reports.

use std::collections::BTreeMap;

use mpc_sim::program::hash_to_bucket;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::cc::partition_matches;
use crate::Result;

const EDGE_TAG: &str = "E";
const FOREST_TAG: &str = "Forest";

/// The dense-graph two-round connected-components program.
#[derive(Debug, Clone)]
pub struct DenseTwoRoundCc {
    seed: u64,
}

impl DenseTwoRoundCc {
    /// Create the program.
    pub fn new(seed: u64) -> Self {
        DenseTwoRoundCc { seed }
    }
}

/// Union-find over arbitrary vertex ids.
fn components_of(edges: impl Iterator<Item = (u64, u64)>) -> BTreeMap<u64, u64> {
    let mut parent: BTreeMap<u64, u64> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<u64, u64>, v: u64) -> u64 {
        let mut root = v;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = v;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            parent.insert(cur, root);
            cur = p;
        }
        root
    }
    for (u, v) in edges {
        parent.entry(u).or_insert(u);
        parent.entry(v).or_insert(v);
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent.insert(hi, lo);
        }
    }
    let keys: Vec<u64> = parent.keys().copied().collect();
    let mut labels = BTreeMap::new();
    for v in keys {
        let r = find(&mut parent, v);
        labels.insert(v, r);
    }
    labels
}

/// A spanning forest of the given edges (one representative edge per
/// union-find merge).
fn spanning_forest(edges: &Relation) -> Vec<(u64, u64)> {
    let mut parent: BTreeMap<u64, u64> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<u64, u64>, v: u64) -> u64 {
        let mut root = v;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        root
    }
    let mut forest = Vec::new();
    for t in edges.iter() {
        let (u, v) = (t.values()[0], t.values()[1]);
        parent.entry(u).or_insert(u);
        parent.entry(v).or_insert(v);
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent.insert(ru.max(rv), ru.min(rv));
            forest.push((u, v));
        }
    }
    forest
}

impl MpcProgram for DenseTwoRoundCc {
    fn num_rounds(&self) -> usize {
        2
    }

    fn route_input(&self, relation: &Relation, p: usize) -> mpc_sim::Result<Vec<Routed>> {
        Ok(relation
            .iter()
            .map(|t| {
                let dest = hash_to_bucket(self.seed, t.values(), p);
                Routed::new(EDGE_TAG, t.clone(), vec![dest])
            })
            .collect())
    }

    fn compute(
        &self,
        round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        if round != 1 {
            return Ok(Vec::new());
        }
        let Some(edges) = state.relation(EDGE_TAG) else {
            return Ok(Vec::new());
        };
        let mut forest = Relation::empty(FOREST_TAG, 2);
        for (u, v) in spanning_forest(edges) {
            forest
                .insert(Tuple(vec![u, v]))
                .map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
        }
        Ok(vec![forest])
    }

    fn route_tuples(
        &self,
        round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Routed>> {
        if round != 2 {
            return Ok(Vec::new());
        }
        let Some(forest) = state.relation(FOREST_TAG) else {
            return Ok(Vec::new());
        };
        Ok(forest.iter().map(|t| Routed::new(FOREST_TAG, t.clone(), vec![0])).collect())
    }

    fn output(&self, server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        let mut out = Relation::empty("components", 2);
        if server != 0 {
            return Ok(out);
        }
        let Some(forest) = state.relation(FOREST_TAG) else {
            return Ok(out);
        };
        let labels = components_of(forest.iter().map(|t| (t.values()[0], t.values()[1])));
        for (v, l) in labels {
            out.insert(Tuple(vec![v, l])).map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
        }
        Ok(out)
    }

    fn output_name(&self) -> String {
        "components".to_string()
    }

    fn output_arity(&self) -> usize {
        2
    }
}

/// Outcome of the dense two-round algorithm.
#[derive(Debug, Clone)]
pub struct DenseCcOutcome {
    /// Simulator result (2 rounds).
    pub result: RunResult,
    /// Whether the output partition matches the true components.
    pub correct: bool,
    /// Whether every round stayed within the configured budget (true for
    /// dense inputs, typically false for sparse ones).
    pub within_budget: bool,
}

/// Run the dense two-round connected-components algorithm.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn run_dense_cc(
    edges: &Relation,
    num_vertices: u64,
    p: usize,
    epsilon: f64,
    seed: u64,
) -> Result<DenseCcOutcome> {
    let mut db = Database::new(num_vertices);
    db.insert_relation(edges.clone());
    let program = DenseTwoRoundCc::new(seed);
    let cluster = Cluster::new(MpcConfig::new(p, epsilon))?;
    let result = cluster.run(&program, &db)?;
    let correct = partition_matches(&result.output, edges, num_vertices);
    let within_budget = result.within_budget();
    Ok(DenseCcOutcome { result, correct, within_budget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::graphs::{dense_graph, LayeredGraph};

    #[test]
    fn dense_graph_two_rounds_correct_and_within_budget() {
        let edges = dense_graph(100, 40, 3, "E");
        let outcome = run_dense_cc(&edges, 100, 4, 0.0, 1).unwrap();
        assert!(outcome.correct);
        assert_eq!(outcome.result.num_rounds(), 2);
        assert!(
            outcome.within_budget,
            "dense input should fit the ε = 0 budget (max load {} vs budget {})",
            outcome.result.max_load_bytes(),
            outcome.result.rounds[0].budget_bytes
        );
    }

    #[test]
    fn sparse_graph_is_correct_but_blows_the_budget() {
        // The layered path graphs are sparse: collecting p spanning forests
        // at one server exceeds c·N/p.
        let g = LayeredGraph::generate(6, 50, 2);
        let outcome = run_dense_cc(&g.edge_relation("E"), g.num_vertices(), 16, 0.0, 1).unwrap();
        assert!(outcome.correct, "the algorithm is always correct");
        assert!(!outcome.within_budget, "sparse input must exceed the ε = 0 budget");
    }

    #[test]
    fn spanning_forest_has_at_most_v_minus_1_edges() {
        let edges = dense_graph(50, 20, 5, "E");
        let forest = spanning_forest(&edges);
        assert!(forest.len() < 50);
        // The forest preserves connectivity: same partition.
        let forest_rel =
            Relation::from_tuples("F", 2, forest.iter().map(|&(u, v)| [u, v]).collect::<Vec<_>>())
                .unwrap();
        let full = components_of(edges.iter().map(|t| (t.values()[0], t.values()[1])));
        let reduced = components_of(forest_rel.iter().map(|t| (t.values()[0], t.values()[1])));
        for (v, l) in &full {
            for (w, m) in &full {
                assert_eq!(l == m, reduced[v] == reduced[w]);
            }
        }
    }

    #[test]
    fn components_of_handles_isolated_unions() {
        let labels = components_of(vec![(1, 2), (3, 4), (2, 3)].into_iter());
        assert_eq!(labels[&1], labels[&4]);
        let labels = components_of(vec![(1, 2), (5, 6)].into_iter());
        assert_ne!(labels[&1], labels[&5]);
    }
}
