//! Transitive closure / reachability on the MPC model by path doubling.
//!
//! The paper's Theorem 4.10 is stated for CONNECTED-COMPONENTS, and the
//! introduction notes the same consequence for **transitive closure**: no
//! tuple-based MPC(ε) algorithm with ε < 1 computes it in O(1) rounds.
//! The classic upper bound is *path doubling*: maintain the set of known
//! reachable pairs and square it every round by joining on the midpoint,
//! reaching all pairs after `⌈log₂ diameter⌉ + 1` doubling rounds. Each
//! doubling round is a two-way join, i.e. exactly one HyperCube-style
//! shuffle on the midpoint — a tuple-based program.
//!
//! Compared with the label propagation of [`crate::cc`], path doubling
//! uses exponentially fewer rounds (`log d` instead of `d`) but shuffles
//! up to `Θ(V·d)` pairs per round — a concrete instance of the paper's
//! rounds-versus-communication tradeoff.

use std::collections::BTreeSet;

use mpc_sim::program::hash_value;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::Result;

/// Tag for pairs hashed by their target vertex (awaiting extension).
const BY_TARGET: &str = "ByTarget";
/// Tag for pairs hashed by their source vertex (providing extensions).
const BY_SOURCE: &str = "BySource";

/// The path-doubling transitive-closure program.
#[derive(Debug, Clone)]
pub struct PathDoublingTc {
    rounds: usize,
    p: usize,
    seed: u64,
}

impl PathDoublingTc {
    /// A program running the given number of rounds (round 1 distributes
    /// the edges; every later round doubles the path length) on `p`
    /// servers.
    pub fn new(rounds: usize, p: usize, seed: u64) -> Self {
        PathDoublingTc { rounds: rounds.max(1), p: p.max(1), seed }
    }

    fn owner(&self, vertex: u64) -> usize {
        hash_value(self.seed, vertex, self.p)
    }

    /// All pairs currently known at a server (union of both tags).
    fn known_pairs(&self, state: &ServerState) -> BTreeSet<(u64, u64)> {
        let mut pairs = BTreeSet::new();
        for tag in [BY_TARGET, BY_SOURCE] {
            if let Some(rel) = state.relation(tag) {
                for t in rel.iter() {
                    pairs.insert((t.values()[0], t.values()[1]));
                }
            }
        }
        if let Some(rel) = state.relation("Closed") {
            for t in rel.iter() {
                pairs.insert((t.values()[0], t.values()[1]));
            }
        }
        pairs
    }
}

impl MpcProgram for PathDoublingTc {
    fn num_rounds(&self) -> usize {
        self.rounds
    }

    fn route_input(&self, relation: &Relation, p: usize) -> mpc_sim::Result<Vec<Routed>> {
        if p != self.p {
            return Err(mpc_sim::SimError::Program(format!(
                "program was built for p = {} but the cluster has p = {p}",
                self.p
            )));
        }
        // Each edge (u, v) participates both as a left factor (hashed by
        // its target v) and as a right factor (hashed by its source u).
        let mut out = Vec::with_capacity(relation.len() * 2);
        for t in relation.iter() {
            let (u, v) = (t.values()[0], t.values()[1]);
            out.push(Routed::new(BY_TARGET, t.clone(), vec![self.owner(v)]));
            out.push(Routed::new(BY_SOURCE, t.clone(), vec![self.owner(u)]));
        }
        Ok(out)
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        // Join ByTarget(x, m) ⋈ BySource(m, z) on the locally-owned midpoint
        // m, producing new pairs (x, z); keep every pair ever seen in the
        // local "Closed" relation so the output is cumulative.
        let mut closed = Relation::empty("Closed", 2);
        let (Some(by_target), Some(by_source)) =
            (state.relation(BY_TARGET), state.relation(BY_SOURCE))
        else {
            return Ok(vec![]);
        };
        let mut by_mid: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
        for t in by_source.iter() {
            by_mid.entry(t.values()[0]).or_default().push(t.values()[1]);
        }
        for t in by_target.iter() {
            let (x, m) = (t.values()[0], t.values()[1]);
            closed
                .insert(Tuple(vec![x, m]))
                .map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
            if let Some(targets) = by_mid.get(&m) {
                for &z in targets {
                    if x != z {
                        closed
                            .insert(Tuple(vec![x, z]))
                            .map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
                    }
                }
            }
        }
        for t in by_source.iter() {
            closed.insert(t.clone()).map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
        }
        Ok(vec![closed])
    }

    fn route_tuples(
        &self,
        _round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Routed>> {
        // Re-shuffle every known pair under both roles so the next round
        // can double path lengths again. Destinations depend only on the
        // tuple, so the program is tuple-based.
        let mut msgs = Vec::new();
        for (x, y) in self.known_pairs(state) {
            let t = Tuple(vec![x, y]);
            msgs.push(Routed::new(BY_TARGET, t.clone(), vec![self.owner(y)]));
            msgs.push(Routed::new(BY_SOURCE, t, vec![self.owner(x)]));
        }
        Ok(msgs)
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        let mut out = Relation::empty("TC", 2);
        if let Some(closed) = state.relation("Closed") {
            for t in closed.iter() {
                out.insert(t.clone()).map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
            }
        }
        Ok(out)
    }

    fn output_name(&self) -> String {
        "TC".to_string()
    }

    fn output_arity(&self) -> usize {
        2
    }
}

/// Outcome of a transitive-closure run.
#[derive(Debug, Clone)]
pub struct TcOutcome {
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the output equals the true reachability relation.
    pub complete: bool,
    /// Simulator result.
    pub result: RunResult,
}

/// Sequential reachability (the ground truth): all ordered pairs `(u, v)`
/// with `u ≠ v` and a directed path from `u` to `v` in `edges`.
pub fn sequential_reachability(edges: &Relation) -> BTreeSet<(u64, u64)> {
    let mut adj: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
    let mut vertices = BTreeSet::new();
    for t in edges.iter() {
        let (u, v) = (t.values()[0], t.values()[1]);
        adj.entry(u).or_default().push(v);
        vertices.insert(u);
        vertices.insert(v);
    }
    let mut pairs = BTreeSet::new();
    for &s in &vertices {
        let mut stack = vec![s];
        let mut seen = BTreeSet::new();
        while let Some(u) = stack.pop() {
            if let Some(next) = adj.get(&u) {
                for &v in next {
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        for v in seen {
            if v != s {
                pairs.insert((s, v));
            }
        }
    }
    pairs
}

/// Run path doubling for a fixed number of rounds.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn run_tc(
    edges: &Relation,
    num_vertices: u64,
    p: usize,
    epsilon: f64,
    rounds: usize,
    seed: u64,
) -> Result<TcOutcome> {
    let mut db = Database::new(num_vertices);
    db.insert_relation(edges.clone());
    let program = PathDoublingTc::new(rounds, p, seed);
    let cluster = Cluster::new(MpcConfig::new(p, epsilon))?;
    let result = cluster.run(&program, &db)?;
    let ours: BTreeSet<(u64, u64)> = result
        .output
        .iter()
        .filter(|t| t.values()[0] != t.values()[1])
        .map(|t| (t.values()[0], t.values()[1]))
        .collect();
    let truth = sequential_reachability(edges);
    Ok(TcOutcome { rounds, complete: ours == truth, result })
}

/// Run path doubling with increasing round counts until the closure is
/// complete (or `max_rounds` is reached).
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn tc_rounds_to_completion(
    edges: &Relation,
    num_vertices: u64,
    p: usize,
    epsilon: f64,
    max_rounds: usize,
    seed: u64,
) -> Result<TcOutcome> {
    let mut last = None;
    for rounds in 1..=max_rounds.max(1) {
        let outcome = run_tc(edges, num_vertices, p, epsilon, rounds, seed)?;
        let complete = outcome.complete;
        last = Some(outcome);
        if complete {
            break;
        }
    }
    Ok(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_path(len: u64) -> Relation {
        Relation::from_tuples("E", 2, (1..len).map(|i| [i, i + 1]).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn sequential_reachability_on_path() {
        let edges = directed_path(5);
        let pairs = sequential_reachability(&edges);
        assert_eq!(pairs.len(), 4 + 3 + 2 + 1);
        assert!(pairs.contains(&(1, 5)));
        assert!(!pairs.contains(&(5, 1)));
    }

    #[test]
    fn path_doubling_closes_a_path_in_logarithmic_rounds() {
        let edges = directed_path(17); // diameter 16
        let outcome = tc_rounds_to_completion(&edges, 17, 8, 0.5, 12, 3).unwrap();
        assert!(outcome.complete);
        // log2(16) + 1 = 5 doubling rounds (plus the distribution round).
        assert!(outcome.rounds <= 6, "took {} rounds", outcome.rounds);
        assert!(outcome.rounds >= 4);
        assert_eq!(outcome.result.output.len(), 16 * 17 / 2);
    }

    #[test]
    fn doubling_beats_label_propagation_style_round_counts() {
        // The same 17-vertex path would need ~16 propagation rounds; path
        // doubling needs ~5 — the rounds-for-communication tradeoff.
        let edges = directed_path(17);
        let doubling = tc_rounds_to_completion(&edges, 17, 8, 0.5, 12, 3).unwrap();
        assert!(doubling.rounds < 8);
        // But it ships far more pairs per round than there are edges.
        assert!(doubling.result.total_bytes() > edges.size_in_bytes() * 4);
    }

    #[test]
    fn insufficient_rounds_leave_closure_incomplete() {
        let edges = directed_path(32);
        let outcome = run_tc(&edges, 32, 8, 0.5, 3, 1).unwrap();
        assert!(!outcome.complete);
    }

    #[test]
    fn branching_graph_closure() {
        // A small DAG: 1 → 2 → 4, 1 → 3 → 4, 4 → 5.
        let edges =
            Relation::from_tuples("E", 2, vec![[1u64, 2], [1, 3], [2, 4], [3, 4], [4, 5]]).unwrap();
        let outcome = tc_rounds_to_completion(&edges, 5, 4, 0.5, 8, 2).unwrap();
        assert!(outcome.complete);
        let truth = sequential_reachability(&edges);
        assert!(truth.contains(&(1, 5)));
        assert_eq!(outcome.result.output.len(), truth.len());
    }

    #[test]
    fn cycle_reaches_everything() {
        let edges = Relation::from_tuples("E", 2, vec![[1u64, 2], [2, 3], [3, 4], [4, 1]]).unwrap();
        let outcome = tc_rounds_to_completion(&edges, 4, 4, 0.5, 8, 5).unwrap();
        assert!(outcome.complete);
        // Every ordered pair of distinct vertices is reachable.
        assert_eq!(outcome.result.output.len(), 4 * 3);
    }
}
