//! Connected components and transitive closure on the MPC model — the
//! application behind Theorem 4.10 of the paper.
//!
//! The paper shows that for any fixed `ε < 1`, no tuple-based MPC(ε)
//! algorithm computes CONNECTED-COMPONENTS of *sparse* graphs in `o(log p)`
//! rounds: the hard instances are layered path graphs whose components are
//! exactly the answers of a long chain query `L_k` with `k ≈ p^δ`. In
//! contrast, *dense* graphs admit O(1)-round algorithms (Karloff, Suri &
//! Vassilvitskii), which is why the sparse lower bound is interesting.
//!
//! This crate provides both sides as executable [`mpc_sim::MpcProgram`]s:
//!
//! * [`cc::LabelPropagationCc`] — the classic tuple-based label-propagation
//!   algorithm (min-label flooding), which needs `Θ(diameter)` rounds;
//! * [`cc::rounds_to_convergence`] — a driver that reports how many rounds
//!   it actually needs on a given graph;
//! * [`dense::DenseTwoRoundCc`] — the 2-round spanning-forest algorithm
//!   that works within budget on sufficiently dense graphs;
//! * [`experiment`] — the Theorem 4.10 experiment: rounds needed vs. `p` on
//!   layered path graphs, contrasted with the dense 2-round algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod dense;
pub mod experiment;
pub mod tc;

pub use cc::{rounds_to_convergence, CcOutcome, LabelPropagationCc};
pub use dense::DenseTwoRoundCc;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, mpc_core::CoreError>;
