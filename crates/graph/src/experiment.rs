//! The Theorem 4.10 experiment: connected components of sparse layered
//! graphs need many rounds; dense graphs need two.

use serde::Serialize;

use mpc_data::graphs::{dense_graph, LayeredGraph};

use crate::cc::rounds_to_convergence;
use crate::dense::run_dense_cc;
use crate::Result;

/// One row of the Theorem 4.10 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct CcExperimentRow {
    /// Number of servers.
    pub p: usize,
    /// Number of edge layers `k = ⌊p^δ⌋` of the sparse instance.
    pub k: usize,
    /// Vertices per layer of the sparse instance.
    pub layer_size: u64,
    /// Rounds the tuple-based label-propagation algorithm needed on the
    /// sparse layered graph.
    pub sparse_rounds: usize,
    /// Whether it converged within the allowed maximum.
    pub sparse_converged: bool,
    /// Whether the sparse run stayed within the per-round budget.
    pub sparse_within_budget: bool,
    /// Rounds of the dense-graph algorithm (always 2).
    pub dense_rounds: usize,
    /// Whether the dense 2-round algorithm stayed within budget on the
    /// dense instance.
    pub dense_within_budget: bool,
    /// Whether the dense 2-round algorithm stayed within budget when fed
    /// the *sparse* instance (expected: no — that is the dichotomy).
    pub dense_on_sparse_within_budget: bool,
}

/// Parameters of the experiment.
#[derive(Debug, Clone)]
pub struct CcExperimentConfig {
    /// The exponent δ with `k = ⌊p^δ⌋` layers (the paper uses δ = 1/(2t)
    /// for ε = 1 − 1/t).
    pub delta: f64,
    /// Vertices per layer of the sparse instances.
    pub layer_size: u64,
    /// Space exponent of the simulated cluster.
    pub epsilon: f64,
    /// Average degree of the dense contrast instances.
    pub dense_degree: usize,
    /// Cap on the number of label-propagation rounds attempted.
    pub max_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CcExperimentConfig {
    fn default() -> Self {
        CcExperimentConfig {
            delta: 0.5,
            layer_size: 64,
            epsilon: 0.0,
            dense_degree: 16,
            max_rounds: 64,
            seed: 7,
        }
    }
}

/// Run the experiment for each number of servers in `ps`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn theorem_4_10_experiment(
    ps: &[usize],
    config: &CcExperimentConfig,
) -> Result<Vec<CcExperimentRow>> {
    let mut rows = Vec::with_capacity(ps.len());
    for &p in ps {
        let k = ((p as f64).powf(config.delta).floor() as usize).max(2);
        let sparse = LayeredGraph::generate(k, config.layer_size, config.seed + p as u64);
        let sparse_edges = sparse.edge_relation("E");
        let sparse_outcome = rounds_to_convergence(
            &sparse_edges,
            sparse.num_vertices(),
            p,
            config.epsilon,
            config.max_rounds,
            config.seed,
        )?;

        let num_vertices = sparse.num_vertices();
        let dense_edges =
            dense_graph(num_vertices, config.dense_degree, config.seed + 1 + p as u64, "E");
        let dense_outcome =
            run_dense_cc(&dense_edges, num_vertices, p, config.epsilon, config.seed)?;
        let dense_on_sparse =
            run_dense_cc(&sparse_edges, num_vertices, p, config.epsilon, config.seed)?;

        rows.push(CcExperimentRow {
            p,
            k,
            layer_size: config.layer_size,
            sparse_rounds: sparse_outcome.rounds,
            sparse_converged: sparse_outcome.converged,
            sparse_within_budget: sparse_outcome.result.within_budget(),
            dense_rounds: dense_outcome.result.num_rounds(),
            dense_within_budget: dense_outcome.within_budget,
            dense_on_sparse_within_budget: dense_on_sparse.within_budget,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_with_p_for_sparse_graphs() {
        let config = CcExperimentConfig {
            layer_size: 16,
            dense_degree: 12,
            max_rounds: 40,
            ..CcExperimentConfig::default()
        };
        let rows = theorem_4_10_experiment(&[4, 64], &config).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.sparse_converged, "p = {}", row.p);
            assert_eq!(row.dense_rounds, 2);
        }
        // k = ⌊√p⌋: 2 layers at p = 4, 8 layers at p = 64 — the round count
        // must grow accordingly.
        assert!(rows[1].sparse_rounds > rows[0].sparse_rounds);
        assert!(rows[1].k > rows[0].k);
    }

    #[test]
    fn dense_two_round_fails_budget_on_sparse_inputs() {
        // p = 8: collecting the spanning forests of a *forest-shaped* sparse
        // input at one server costs ≈ N/2 bytes, above the ε = 0 budget of
        // 2N/p; a degree-40 dense instance keeps the same step within
        // budget because its N is ~30× larger.
        let config = CcExperimentConfig {
            layer_size: 48,
            dense_degree: 40,
            max_rounds: 30,
            ..CcExperimentConfig::default()
        };
        let rows = theorem_4_10_experiment(&[8], &config).unwrap();
        let row = &rows[0];
        assert!(row.dense_within_budget, "dense instance should fit the budget");
        assert!(
            !row.dense_on_sparse_within_budget,
            "the 2-round algorithm must exceed the budget on the sparse instance"
        );
        // Label propagation keeps per-round load low on the sparse input.
        assert!(row.sparse_within_budget);
    }
}
