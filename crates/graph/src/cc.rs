//! Tuple-based label-propagation connected components.
//!
//! Each vertex is owned by the server its value hashes to; every round,
//! every owned vertex sends its current best (minimum) label along all of
//! its incident edges. The destination of each message depends only on the
//! message's vertex value, so the algorithm lives in the tuple-based
//! MPC(ε) model of Section 4.1. After `r` propagation rounds every vertex
//! knows the minimum vertex id within distance `r`, so the algorithm
//! converges after `diameter` propagation rounds — which on the layered
//! path graphs of Theorem 4.10 is `Θ(p^δ)`, far above the `Ω(log p)` lower
//! bound and wildly above the O(1) rounds available for dense inputs.

use std::collections::BTreeMap;

use mpc_sim::program::hash_value;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use mpc_data::graphs::sequential_components;

use crate::Result;

/// Tag under which edges are stored at their owning server.
const EDGE_TAG: &str = "E";
/// Tag under which propagated labels travel.
const PROP_TAG: &str = "Prop";

/// The label-propagation connected-components program with a fixed number
/// of rounds, for a cluster of `p` servers.
#[derive(Debug, Clone)]
pub struct LabelPropagationCc {
    rounds: usize,
    p: usize,
    seed: u64,
}

impl LabelPropagationCc {
    /// A program performing `rounds − 1` propagation steps (round 1 places
    /// the edges) on `p` servers.
    pub fn new(rounds: usize, p: usize, seed: u64) -> Self {
        LabelPropagationCc { rounds: rounds.max(1), p: p.max(1), seed }
    }

    fn owner(&self, vertex: u64) -> usize {
        hash_value(self.seed, vertex, self.p)
    }

    /// The current best label of every vertex owned by this server:
    /// the minimum of the vertex id itself and every label received for it.
    fn current_labels(&self, state: &ServerState) -> BTreeMap<u64, u64> {
        let mut labels: BTreeMap<u64, u64> = BTreeMap::new();
        if let Some(edges) = state.relation(EDGE_TAG) {
            for t in edges.iter() {
                let u = t.values()[0];
                labels.entry(u).or_insert(u);
            }
        }
        if let Some(props) = state.relation(PROP_TAG) {
            for t in props.iter() {
                let (v, label) = (t.values()[0], t.values()[1]);
                labels
                    .entry(v)
                    .and_modify(|l| *l = (*l).min(label))
                    .or_insert_with(|| v.min(label));
            }
        }
        labels
    }
}

impl MpcProgram for LabelPropagationCc {
    fn num_rounds(&self) -> usize {
        self.rounds
    }

    fn route_input(&self, relation: &Relation, p: usize) -> mpc_sim::Result<Vec<Routed>> {
        if p != self.p {
            return Err(mpc_sim::SimError::Program(format!(
                "program was built for p = {} but the cluster has p = {p}",
                self.p
            )));
        }
        // Edges (u, v) are owned by hash(u); the generator stores both
        // orientations, so every vertex with an incident edge is owned
        // somewhere.
        Ok(relation
            .iter()
            .map(|t| Routed::new(EDGE_TAG, t.clone(), vec![self.owner(t.values()[0])]))
            .collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn route_tuples(
        &self,
        _round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Routed>> {
        // Propagate each owned vertex's current label along its edges. The
        // destination depends only on the tuple's vertex value.
        let labels = self.current_labels(state);
        let Some(edges) = state.relation(EDGE_TAG) else {
            return Ok(Vec::new());
        };
        let mut msgs = Vec::new();
        for t in edges.iter() {
            let (u, v) = (t.values()[0], t.values()[1]);
            let label = labels.get(&u).copied().unwrap_or(u);
            if label < v {
                msgs.push(Routed::new(PROP_TAG, Tuple(vec![v, label]), vec![self.owner(v)]));
            }
        }
        Ok(msgs)
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        let labels = self.current_labels(state);
        let mut out = Relation::empty("components", 2);
        for (v, l) in labels {
            out.insert(Tuple(vec![v, l])).map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
        }
        Ok(out)
    }

    fn output_name(&self) -> String {
        "components".to_string()
    }

    fn output_arity(&self) -> usize {
        2
    }
}

/// Outcome of a connected-components run.
#[derive(Debug, Clone)]
pub struct CcOutcome {
    /// Rounds the algorithm was run for.
    pub rounds: usize,
    /// Whether the produced labelling matches the true components.
    pub converged: bool,
    /// The simulator result of the final run.
    pub result: RunResult,
}

/// Run label propagation for a fixed number of rounds on an edge relation.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn run_cc(
    edges: &Relation,
    num_vertices: u64,
    p: usize,
    epsilon: f64,
    rounds: usize,
    seed: u64,
) -> Result<CcOutcome> {
    let mut db = Database::new(num_vertices);
    db.insert_relation(edges.clone());
    let program = LabelPropagationCc::new(rounds, p, seed);
    let cluster = Cluster::new(MpcConfig::new(p, epsilon))?;
    let result = cluster.run(&program, &db)?;
    let converged = partition_matches(&result.output, edges, num_vertices);
    Ok(CcOutcome { rounds, converged, result })
}

/// Run label propagation with an increasing number of rounds until the
/// labelling matches the true connected components; returns the outcome of
/// the first converged run (or the last attempt if `max_rounds` was not
/// enough, with `converged == false`).
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn rounds_to_convergence(
    edges: &Relation,
    num_vertices: u64,
    p: usize,
    epsilon: f64,
    max_rounds: usize,
    seed: u64,
) -> Result<CcOutcome> {
    let mut last = None;
    for rounds in 1..=max_rounds.max(1) {
        let outcome = run_cc(edges, num_vertices, p, epsilon, rounds, seed)?;
        let converged = outcome.converged;
        last = Some(outcome);
        if converged {
            break;
        }
    }
    Ok(last.expect("at least one round is attempted"))
}

/// Extract the vertex → label map from a components output relation.
pub fn labels_from_output(output: &Relation) -> BTreeMap<u64, u64> {
    let mut labels = BTreeMap::new();
    for t in output.iter() {
        let (v, l) = (t.values()[0], t.values()[1]);
        labels.entry(v).and_modify(|cur: &mut u64| *cur = (*cur).min(l)).or_insert(l);
    }
    labels
}

/// Check that the labelling in `output` induces exactly the same partition
/// of the vertices as the true connected components of `edges`.
pub fn partition_matches(output: &Relation, edges: &Relation, num_vertices: u64) -> bool {
    let ours = labels_from_output(output);
    let (_, truth) = sequential_components(edges, num_vertices);
    // Every vertex incident to an edge must be labelled.
    let mut vertices: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for t in edges.iter() {
        vertices.insert(t.values()[0]);
        vertices.insert(t.values()[1]);
    }
    for &v in &vertices {
        if !ours.contains_key(&v) {
            return false;
        }
    }
    // Same partition: agree on label equality for every pair sharing a
    // component representative.
    let mut our_rep: BTreeMap<u64, u64> = BTreeMap::new();
    let mut true_rep: BTreeMap<u64, u64> = BTreeMap::new();
    for &v in &vertices {
        our_rep.insert(v, ours[&v]);
        true_rep.insert(v, truth[&v]);
    }
    // Build canonical partitions keyed by representative.
    let group = |rep: &BTreeMap<u64, u64>| {
        let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&v, &r) in rep {
            groups.entry(r).or_default().push(v);
        }
        let mut parts: Vec<Vec<u64>> = groups.into_values().collect();
        parts.sort();
        parts
    };
    group(&our_rep) == group(&true_rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::graphs::{random_sparse_graph, LayeredGraph};

    #[test]
    fn single_triangle_converges_in_two_rounds() {
        let edges =
            Relation::from_tuples("E", 2, vec![[1u64, 2], [2, 1], [2, 3], [3, 2], [3, 1], [1, 3]])
                .unwrap();
        let outcome = rounds_to_convergence(&edges, 3, 4, 0.0, 10, 1).unwrap();
        assert!(outcome.converged);
        assert!(outcome.rounds <= 2, "triangle has diameter 1, rounds = {}", outcome.rounds);
        let labels = labels_from_output(&outcome.result.output);
        assert_eq!(labels[&1], 1);
        assert_eq!(labels[&2], 1);
        assert_eq!(labels[&3], 1);
    }

    #[test]
    fn two_components_get_distinct_labels() {
        let edges =
            Relation::from_tuples("E", 2, vec![[1u64, 2], [2, 1], [5, 6], [6, 5], [6, 7], [7, 6]])
                .unwrap();
        let outcome = rounds_to_convergence(&edges, 7, 4, 0.0, 10, 3).unwrap();
        assert!(outcome.converged);
        let labels = labels_from_output(&outcome.result.output);
        assert_eq!(labels[&1], labels[&2]);
        assert_eq!(labels[&5], labels[&7]);
        assert_ne!(labels[&1], labels[&5]);
    }

    #[test]
    fn layered_graph_needs_rounds_proportional_to_depth() {
        // A layered path graph with k edge layers has diameter k; label
        // propagation needs ≈ k propagation rounds — the behaviour behind
        // Theorem 4.10's Ω(log p) statement (no tuple-based trick gets
        // below log p; this simple one does not even reach that).
        let shallow = LayeredGraph::generate(2, 12, 3);
        let deep = LayeredGraph::generate(8, 12, 3);
        let shallow_rounds = rounds_to_convergence(
            &shallow.edge_relation("E"),
            shallow.num_vertices(),
            8,
            0.0,
            32,
            5,
        )
        .unwrap();
        let deep_rounds =
            rounds_to_convergence(&deep.edge_relation("E"), deep.num_vertices(), 8, 0.0, 32, 5)
                .unwrap();
        assert!(shallow_rounds.converged);
        assert!(deep_rounds.converged);
        assert!(
            deep_rounds.rounds >= shallow_rounds.rounds + 4,
            "deep {} vs shallow {}",
            deep_rounds.rounds,
            shallow_rounds.rounds
        );
        assert!(deep_rounds.rounds >= 8);
    }

    #[test]
    fn sparse_random_graph_converges() {
        let edges = random_sparse_graph(60, 55, 7, "E");
        let outcome = rounds_to_convergence(&edges, 60, 6, 0.0, 64, 2).unwrap();
        assert!(outcome.converged);
    }

    #[test]
    fn insufficient_rounds_do_not_converge_on_long_paths() {
        let g = LayeredGraph::generate(10, 6, 1);
        let outcome = run_cc(&g.edge_relation("E"), g.num_vertices(), 4, 0.0, 3, 1).unwrap();
        assert!(!outcome.converged, "3 rounds cannot label a depth-10 path graph");
    }

    #[test]
    fn per_round_load_stays_proportional_to_edges() {
        // Label propagation ships at most one message per directed edge per
        // round: replication rate ≈ 1.
        let g = LayeredGraph::generate(5, 40, 4);
        let outcome = run_cc(&g.edge_relation("E"), g.num_vertices(), 8, 0.0, 6, 3).unwrap();
        for round in &outcome.result.rounds {
            assert!(
                round.replication_rate <= 1.1,
                "round {} rate {}",
                round.round,
                round.replication_rate
            );
        }
    }

    #[test]
    fn partition_matches_rejects_wrong_labelling() {
        let edges = Relation::from_tuples("E", 2, vec![[1u64, 2], [2, 1]]).unwrap();
        let wrong = Relation::from_tuples("components", 2, vec![[1u64, 1], [2, 2]]).unwrap();
        assert!(!partition_matches(&wrong, &edges, 2));
        let right = Relation::from_tuples("components", 2, vec![[1u64, 1], [2, 1]]).unwrap();
        assert!(partition_matches(&right, &edges, 2));
    }
}
