//! A size-classed buffer pool for columnar tuple blocks.
//!
//! The batched data plane of [`crate::cluster_async`] moves
//! [`crate::block::TupleBlock`]s between workers. Allocating a fresh set
//! of column vectors for every block would put the allocator straight
//! back on the hot path the batching removed, so blocks draw their column
//! storage from a [`BlockPool`]: checked out when a sender opens a block,
//! handed back when the receiver has decoded it, and recycled for the
//! next send.
//!
//! **Size classes.** Buffers are classed by *arity* (column count): a
//! returned 2-column buffer is only ever reused for another 2-column
//! block, so the per-column `Vec` capacities stay warm and no column is
//! ever re-grown from zero. Each class keeps a bounded free list
//! ([`BlockPool::MAX_FREE_PER_CLASS`]); overflow buffers are dropped
//! rather than hoarded.
//!
//! **Accounting.** The pool counts every checkout and every return
//! ([`PoolStats`]); a clean run returns every block it checked out, which
//! `tests/pool_invariants.rs` locks as a property. The counters are
//! atomics and the free lists sit behind one mutex per pool — the pool is
//! shared by all worker tasks of a run, and contention stays low because
//! checkouts happen once per *block*, not once per tuple.
//!
//! ```
//! use mpc_sim::pool::BlockPool;
//!
//! let pool = BlockPool::new();
//! let buf = pool.checkout(2, 64);
//! assert_eq!(buf.arity(), 2);
//! pool.give_back(buf);
//! let again = pool.checkout(2, 64); // recycled, not reallocated
//! pool.give_back(again);
//! assert_eq!(pool.stats().reused, 1);
//! assert!(pool.stats().balanced());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::block::ColumnBuf;

/// Checkout/return accounting of a [`BlockPool`], captured by
/// [`BlockPool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers handed out by [`BlockPool::checkout`].
    pub checked_out: u64,
    /// Buffers handed back by [`BlockPool::give_back`].
    pub returned: u64,
    /// Checkouts that had to allocate fresh storage (pool misses).
    pub allocated: u64,
    /// Checkouts served from a free list (pool hits).
    pub reused: u64,
}

impl PoolStats {
    /// Buffers currently checked out and not yet returned.
    pub fn outstanding(&self) -> u64 {
        self.checked_out - self.returned
    }

    /// Whether every checkout has been matched by a return — true after
    /// any clean (non-aborted) run of the batched data plane.
    pub fn balanced(&self) -> bool {
        self.checked_out == self.returned
    }
}

/// A thread-safe, size-classed free list of [`ColumnBuf`]s.
#[derive(Debug, Default)]
pub struct BlockPool {
    /// `classes[arity]` holds the free buffers with exactly `arity`
    /// columns (the vector grows lazily as arities appear).
    classes: Mutex<Vec<Vec<ColumnBuf>>>,
    checked_out: AtomicU64,
    returned: AtomicU64,
    allocated: AtomicU64,
    reused: AtomicU64,
}

impl BlockPool {
    /// Free buffers retained per size class; returns beyond this bound
    /// drop the buffer instead of growing the pool without limit.
    pub const MAX_FREE_PER_CLASS: usize = 1024;

    /// An empty pool.
    pub fn new() -> Self {
        BlockPool::default()
    }

    /// Check out a buffer with `arity` columns, each with room for
    /// `capacity` values: recycled from the `arity` class when possible,
    /// freshly allocated otherwise.
    pub fn checkout(&self, arity: usize, capacity: usize) -> ColumnBuf {
        self.checked_out.fetch_add(1, Ordering::Relaxed);
        let recycled = {
            let mut classes = self.classes.lock().expect("pool mutex poisoned");
            classes.get_mut(arity).and_then(Vec::pop)
        };
        match recycled {
            Some(buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                debug_assert!(buf.is_empty() && buf.arity() == arity);
                buf
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                ColumnBuf::with_arity(arity, capacity)
            }
        }
    }

    /// Return a buffer to its size class. The buffer is cleared (values
    /// dropped, capacity kept) and becomes available to the next
    /// [`BlockPool::checkout`] of the same arity.
    pub fn give_back(&self, mut buf: ColumnBuf) {
        self.returned.fetch_add(1, Ordering::Relaxed);
        buf.clear();
        let arity = buf.arity();
        let mut classes = self.classes.lock().expect("pool mutex poisoned");
        if classes.len() <= arity {
            classes.resize_with(arity + 1, Vec::new);
        }
        if classes[arity].len() < Self::MAX_FREE_PER_CLASS {
            classes[arity].push(buf);
        }
        // else: drop the buffer; the return is still counted, so the
        // checkout/return balance is preserved.
    }

    /// Snapshot of the checkout/return counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checked_out: self.checked_out.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            allocated: self.allocated.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }

    /// Free buffers currently parked in the `arity` size class.
    pub fn free_in_class(&self, arity: usize) -> usize {
        let classes = self.classes.lock().expect("pool mutex poisoned");
        classes.get(arity).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_allocates_then_reuses() {
        let pool = BlockPool::new();
        let a = pool.checkout(3, 8);
        assert_eq!(pool.stats().allocated, 1);
        pool.give_back(a);
        let b = pool.checkout(3, 8);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().allocated, 1);
        pool.give_back(b);
        assert!(pool.stats().balanced());
    }

    #[test]
    fn classes_are_segregated_by_arity() {
        let pool = BlockPool::new();
        let two = pool.checkout(2, 4);
        pool.give_back(two);
        // A 3-column checkout cannot be served by the 2-column buffer.
        let three = pool.checkout(3, 4);
        assert_eq!(three.arity(), 3);
        assert_eq!(pool.stats().reused, 0);
        assert_eq!(pool.free_in_class(2), 1);
        pool.give_back(three);
    }

    #[test]
    fn free_lists_are_bounded() {
        let pool = BlockPool::new();
        let bufs: Vec<_> =
            (0..BlockPool::MAX_FREE_PER_CLASS + 10).map(|_| pool.checkout(1, 2)).collect();
        for b in bufs {
            pool.give_back(b);
        }
        assert_eq!(pool.free_in_class(1), BlockPool::MAX_FREE_PER_CLASS);
        // Overflow returns were still counted.
        assert!(pool.stats().balanced());
    }

    #[test]
    fn returned_buffers_come_back_empty_with_capacity() {
        let pool = BlockPool::new();
        let mut buf = pool.checkout(2, 4);
        buf.push(&[1, 2]);
        buf.push(&[3, 4]);
        pool.give_back(buf);
        let buf = pool.checkout(2, 4);
        assert!(buf.is_empty());
        pool.give_back(buf);
    }
}
