//! Per-server state: everything a simulated worker knows.

use std::collections::BTreeMap;

use mpc_storage::{Database, Relation, Tuple};

/// The accumulated knowledge of one worker server.
///
/// A server knows (a) every tuple it has received in any round, grouped by
/// the tag (relation name) it was sent under, and (b) every relation it has
/// derived locally via [`ServerState::add_local`]. The distinction matters
/// only for accounting: received data is charged against the round's load
/// budget, locally derived data is free (local computation is unbounded in
/// the MPC model).
#[derive(Debug, Clone)]
pub struct ServerState {
    id: usize,
    domain_size: u64,
    relations: BTreeMap<String, Relation>,
    bytes_received: Vec<u64>,
    tuples_received: Vec<u64>,
}

impl ServerState {
    /// Create the empty state of server `id` for a database over `[n]`.
    pub fn new(id: usize, domain_size: u64) -> Self {
        ServerState {
            id,
            domain_size,
            relations: BTreeMap::new(),
            bytes_received: Vec::new(),
            tuples_received: Vec::new(),
        }
    }

    /// This server's index in `0..p`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The domain size of the input database.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Record the delivery of a tuple under `tag` during `round` (1-based),
    /// charging its size against that round.
    pub fn receive(&mut self, round: usize, tag: &str, tuple: Tuple) {
        self.credit_received(round, (tuple.arity() as u64) * 8, 1);
        let arity = tuple.arity();
        self.relations
            .entry(tag.to_string())
            .or_insert_with(|| Relation::empty(tag, arity))
            .insert(tuple)
            .expect("tuples under the same tag have the same arity");
    }

    /// Record the delivery of a whole batch of `arity`-wide tuples under
    /// one `tag` during `round` — the decode boundary of a columnar
    /// block. One relation lookup and one accounting update for the whole
    /// batch; duplicate tuples still cost bytes, exactly as under
    /// [`ServerState::receive`].
    pub fn receive_many<I>(&mut self, round: usize, tag: &str, arity: usize, tuples: I)
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rel =
            self.relations.entry(tag.to_string()).or_insert_with(|| Relation::empty(tag, arity));
        let mut count = 0u64;
        for t in tuples {
            debug_assert_eq!(t.arity(), arity, "block rows share the tag's arity");
            rel.insert(t).expect("tuples under the same tag have the same arity");
            count += 1;
        }
        self.credit_received(round, count * (arity as u64) * 8, count);
    }

    /// Charge `bytes`/`tuples` of received volume against `round` without
    /// touching any relation — used when staged (pre-hashed) future-round
    /// data is merged at its round boundary, where the tuples themselves
    /// arrive via [`ServerState::add_local`].
    pub fn credit_received(&mut self, round: usize, bytes: u64, tuples: u64) {
        while self.bytes_received.len() < round {
            self.bytes_received.push(0);
            self.tuples_received.push(0);
        }
        self.bytes_received[round - 1] += bytes;
        self.tuples_received[round - 1] += tuples;
    }

    /// Add a locally derived relation (no communication cost). Tuples are
    /// merged into any existing relation with the same name; when the tag
    /// is new the whole relation is moved in without re-hashing.
    pub fn add_local(&mut self, rel: Relation) {
        use std::collections::btree_map::Entry;
        match self.relations.entry(rel.name().to_string()) {
            Entry::Vacant(v) => {
                v.insert(rel);
            }
            Entry::Occupied(mut o) => {
                for t in rel.iter() {
                    o.get_mut().insert(t.clone()).expect("matching arity under the same tag");
                }
            }
        }
    }

    /// The relation known under `tag`, if any.
    pub fn relation(&self, tag: &str) -> Option<&Relation> {
        self.relations.get(tag)
    }

    /// All known tags.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Every relation this server knows, in tag order — the snapshot a
    /// round checkpoint serialises.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// The per-round received volumes `(bytes, tuples)` up to and
    /// including `rounds` — the accounting half of a checkpoint.
    pub fn received_volumes(&self, rounds: usize) -> (Vec<u64>, Vec<u64>) {
        (
            (1..=rounds).map(|r| self.bytes_received_in_round(r)).collect(),
            (1..=rounds).map(|r| self.tuples_received_in_round(r)).collect(),
        )
    }

    /// Snapshot the server's knowledge as a [`Database`] (used to run the
    /// local join engine on it).
    pub fn as_database(&self) -> Database {
        let mut db = Database::new(self.domain_size);
        for rel in self.relations.values() {
            db.insert_relation(rel.clone());
        }
        db
    }

    /// Bytes received in a given round (1-based); 0 if nothing was received.
    pub fn bytes_received_in_round(&self, round: usize) -> u64 {
        self.bytes_received.get(round - 1).copied().unwrap_or(0)
    }

    /// Tuples received in a given round (1-based).
    pub fn tuples_received_in_round(&self, round: usize) -> u64 {
        self.tuples_received.get(round - 1).copied().unwrap_or(0)
    }

    /// Total bytes received across all rounds.
    pub fn total_bytes_received(&self) -> u64 {
        self.bytes_received.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_accumulates_and_accounts() {
        let mut s = ServerState::new(3, 100);
        s.receive(1, "R", Tuple::from([1, 2]));
        s.receive(1, "R", Tuple::from([3, 4]));
        s.receive(1, "R", Tuple::from([1, 2])); // duplicate tuple still costs bytes
        s.receive(2, "V", Tuple::from([9]));
        assert_eq!(s.relation("R").unwrap().len(), 2);
        assert_eq!(s.relation("V").unwrap().len(), 1);
        assert_eq!(s.bytes_received_in_round(1), 3 * 16);
        assert_eq!(s.bytes_received_in_round(2), 8);
        assert_eq!(s.tuples_received_in_round(1), 3);
        assert_eq!(s.total_bytes_received(), 3 * 16 + 8);
        assert_eq!(s.bytes_received_in_round(5), 0);
    }

    #[test]
    fn receive_many_matches_tuplewise_receive() {
        let mut a = ServerState::new(0, 100);
        let mut b = ServerState::new(0, 100);
        let batch = vec![Tuple::from([1, 2]), Tuple::from([3, 4]), Tuple::from([1, 2])];
        for t in batch.clone() {
            a.receive(2, "R", t);
        }
        b.receive_many(2, "R", 2, batch);
        assert!(a.relation("R").unwrap().same_tuples(b.relation("R").unwrap()));
        assert_eq!(a.bytes_received_in_round(2), b.bytes_received_in_round(2));
        assert_eq!(a.tuples_received_in_round(2), b.tuples_received_in_round(2));
        assert_eq!(b.bytes_received_in_round(2), 3 * 16, "duplicates still cost");
    }

    #[test]
    fn credit_received_only_moves_counters() {
        let mut s = ServerState::new(0, 10);
        s.credit_received(3, 256, 4);
        assert_eq!(s.bytes_received_in_round(3), 256);
        assert_eq!(s.tuples_received_in_round(3), 4);
        assert_eq!(s.bytes_received_in_round(1), 0);
        assert_eq!(s.tags().count(), 0);
    }

    #[test]
    fn add_local_is_free() {
        let mut s = ServerState::new(0, 10);
        let rel = Relation::from_tuples("View", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        s.add_local(rel);
        assert_eq!(s.relation("View").unwrap().len(), 2);
        assert_eq!(s.total_bytes_received(), 0);
        // Merging with more local tuples under the same tag.
        s.add_local(Relation::from_tuples("View", 2, vec![[5u64, 6]]).unwrap());
        assert_eq!(s.relation("View").unwrap().len(), 3);
    }

    #[test]
    fn as_database_snapshot() {
        let mut s = ServerState::new(0, 42);
        s.receive(1, "R", Tuple::from([1, 2]));
        let db = s.as_database();
        assert_eq!(db.domain_size(), 42);
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn tags_listing() {
        let mut s = ServerState::new(0, 10);
        s.receive(1, "B", Tuple::from([1]));
        s.receive(1, "A", Tuple::from([1]));
        let tags: Vec<&str> = s.tags().collect();
        assert_eq!(tags, vec!["A", "B"]);
    }
}
