//! Mid-round adaptive rerouting: shift *movable* final-round work away
//! from observed stragglers, without changing the computed output.
//!
//! The adaptive runtime closes a feedback loop over the event-driven
//! backend:
//!
//! 1. **Observe** — [`Cluster::run_async_observed`] executes the static
//!    schedule while workers publish per-server counters into a shared
//!    [`LiveProgress`] (lock-free atomics, updated on every block
//!    delivery and round boundary). The run's [`ScheduleStats`] timeline
//!    exposes the same signal post-hoc: per-server round-1 finish times
//!    under the injected [`crate::StragglerSpec`].
//! 2. **Decide** — [`RerouteController::plan`] compares each server's
//!    round-1 finish against the cohort median; servers lagging beyond
//!    [`RerouteSpec::lag_percent`] are stragglers. Movable cells homed on
//!    a straggler (declared by [`MpcProgram::reroutable_cells`]) are
//!    reassigned to the fastest non-straggling servers. The plan is a
//!    pure function of `(schedule, cells, spec)` — deterministic and
//!    seeded, so runs replay exactly.
//! 3. **Act** — [`RerouteHost`] wraps the program. Final-round emissions
//!    towards a moved home `h` are re-tagged `reroute#h#<tag>` and sent
//!    to the replacement server, which reconstructs `h`'s inbound as a
//!    ghost [`ServerState`] and evaluates the *inner* program's
//!    `output(h, ·)` on it. Everything else — earlier rounds, unmoved
//!    destinations, the senders' emission order — is untouched.
//!
//! **Why the output cannot change.** A reroutable cell's contract (see
//! [`MpcProgram::reroutable_cells`]) is that its final-round inbound is
//! consumed only by `output`, a pure function of the tuples routed at it.
//! Relocation moves that inbound wholesale: every tuple still reaches
//! exactly one evaluation site (exactly-once — destinations are
//! *replaced*, never duplicated), the re-tagged flows ride the same
//! per-link lanes in the same sender order (per-link FIFO is untouched),
//! and the ghost state rebuilds precisely the relations the home server
//! would have held. Per-server output *placement* shifts; the output
//! *union* is invariant — which [`AdaptiveRunResult::divergence`] checks
//! on every adaptive run.
//!
//! ```
//! use mpc_sim::{AsyncConfig, Cluster, MpcConfig, StragglerSpec};
//! use mpc_sim::reroute::RerouteSpec;
//! use mpc_sim::program::BroadcastProgram;
//!
//! let q = mpc_cq::families::triangle();
//! let db = mpc_data::matching_database(&q, 100, 7);
//! let cluster = Cluster::new(MpcConfig::new(4, 1.0))?;
//! let cfg = AsyncConfig::new().with_straggler(StragglerSpec::new(3, 1, 8));
//! let run = cluster.run_adaptive(
//!     &BroadcastProgram::new(q),
//!     &db,
//!     &cfg,
//!     &RerouteSpec::default(),
//! )?;
//! // Broadcast declares nothing movable: rerouting degenerates to the
//! // static schedule, and the differential check passes trivially.
//! assert!(run.plan.is_empty());
//! assert_eq!(run.divergence(), None);
//! # Ok::<(), mpc_sim::SimError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mpc_storage::{Database, Relation};

use crate::cluster::Cluster;
use crate::cluster_async::{AsyncConfig, AsyncRunResult};
use crate::message::Routed;
use crate::program::MpcProgram;
use crate::schedule::ScheduleStats;
use crate::server::ServerState;
use crate::Result;

/// Tag prefix of relocated final-round flows: `reroute#<home>#<tag>`.
const REROUTE_PREFIX: &str = "reroute#";

/// The guest tag a flow towards moved home `home` travels under.
fn guest_tag(home: usize, tag: &str) -> String {
    format!("{REROUTE_PREFIX}{home}#{tag}")
}

/// Parse a guest tag back into `(home, original tag)`.
fn parse_guest_tag(tag: &str) -> Option<(usize, &str)> {
    let rest = tag.strip_prefix(REROUTE_PREFIX)?;
    let (home, orig) = rest.split_once('#')?;
    Some((home.parse().ok()?, orig))
}

/// A deterministic value mix for seeded tie-breaking (splitmix64 core).
fn mix(seed: u64, v: u64) -> u64 {
    let mut x = seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x.wrapping_mul(0x94D0_49BB_1331_11EB)
}

// ---------------------------------------------------------------------------
// Live progress counters.
// ---------------------------------------------------------------------------

/// Per-server counters one worker updates without coordination.
#[derive(Debug, Default)]
struct ServerCounters {
    bytes: AtomicU64,
    tuples: AtomicU64,
    round: AtomicUsize,
}

/// Live per-server progress counters, shared between the running workers
/// and an outside observer.
///
/// Workers of [`Cluster::run_async_observed`] bump their server's
/// counters on every delivered block and on every round they enter;
/// [`LiveProgress::snapshot`] can be read at any moment from any thread
/// — this is the "schedule counters surfaced live" half of the adaptive
/// runtime, and what [`AdaptiveRunResult::observed`] records.
#[derive(Debug)]
pub struct LiveProgress {
    servers: Vec<ServerCounters>,
}

/// One server's counters at the moment of a [`LiveProgress::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// The server index in `0..p`.
    pub server: usize,
    /// Payload bytes delivered to this server so far.
    pub bytes: u64,
    /// Tuples delivered to this server so far.
    pub tuples: u64,
    /// The round this server is currently receiving (1-based; 0 before
    /// the first).
    pub round: usize,
}

impl LiveProgress {
    /// Fresh zeroed counters for `p` servers.
    pub fn new(p: usize) -> Self {
        LiveProgress { servers: (0..p).map(|_| ServerCounters::default()).collect() }
    }

    /// Number of tracked servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Credit a delivered block to `server` (called by the worker tasks).
    pub(crate) fn record_delivery(&self, server: usize, bytes: u64, tuples: u64) {
        if let Some(c) = self.servers.get(server) {
            c.bytes.fetch_add(bytes, Ordering::Relaxed);
            c.tuples.fetch_add(tuples, Ordering::Relaxed);
        }
    }

    /// Record that `server` entered `round` (called by the worker tasks).
    pub(crate) fn record_round(&self, server: usize, round: usize) {
        if let Some(c) = self.servers.get(server) {
            c.round.store(round, Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time view of every server's counters
    /// (each counter individually atomic; the set is read racily, which
    /// is fine for progress observation).
    pub fn snapshot(&self) -> Vec<ProgressSnapshot> {
        self.servers
            .iter()
            .enumerate()
            .map(|(server, c)| ProgressSnapshot {
                server,
                bytes: c.bytes.load(Ordering::Relaxed),
                tuples: c.tuples.load(Ordering::Relaxed),
                round: c.round.load(Ordering::Relaxed),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The controller.
// ---------------------------------------------------------------------------

/// Tuning of the reroute decision: what counts as a straggler, how many
/// cells may move, and the tie-break seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RerouteSpec {
    /// Seed of the deterministic tie-break between equally fast targets.
    pub seed: u64,
    /// Maximum number of cells relocated by one plan.
    pub max_moves: usize,
    /// A server straggles when its round-1 finish exceeds this percentage
    /// of the cohort median (150 = "50% slower than typical").
    pub lag_percent: u64,
}

impl Default for RerouteSpec {
    fn default() -> Self {
        RerouteSpec { seed: 0, max_moves: 8, lag_percent: 150 }
    }
}

impl RerouteSpec {
    /// Builder-style: set the tie-break seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: cap the number of relocated cells.
    #[must_use]
    pub fn with_max_moves(mut self, max_moves: usize) -> Self {
        self.max_moves = max_moves;
        self
    }

    /// Builder-style: set the straggler lag threshold (percent of the
    /// median round-1 finish; clamped to ≥ 100).
    #[must_use]
    pub fn with_lag_percent(mut self, lag_percent: u64) -> Self {
        self.lag_percent = lag_percent.max(100);
        self
    }
}

/// An immutable relocation decision: `moves[home] = target`.
///
/// Invariants established by [`RerouteController::plan`]: every home is a
/// declared reroutable cell on a straggling server, every target is a
/// non-straggling server, and the home and target sets are disjoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReroutePlan {
    moves: BTreeMap<usize, usize>,
}

impl ReroutePlan {
    /// True when nothing moves (rerouting degenerates to the static
    /// schedule).
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of relocated cells.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// The replacement server of `home`, if it was moved.
    pub fn target(&self, home: usize) -> Option<usize> {
        self.moves.get(&home).copied()
    }

    /// All `(home, target)` moves in ascending home order.
    pub fn moves(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.moves.iter().map(|(&h, &t)| (h, t))
    }
}

/// Turns an observed schedule into a [`ReroutePlan`].
#[derive(Debug, Clone, Copy)]
pub struct RerouteController;

impl RerouteController {
    /// Decide which of `cells` (the program's reroutable cells) to move,
    /// given the observed `schedule` of a static run.
    ///
    /// Stragglers are servers whose round-1 finish exceeds
    /// [`RerouteSpec::lag_percent`] of the cohort median; moved cells go
    /// to the fastest non-straggling servers round-robin (ties broken by
    /// a seeded hash), at most [`RerouteSpec::max_moves`] of them. The
    /// result is a pure function of the inputs: same observation, same
    /// plan.
    pub fn plan(schedule: &ScheduleStats, cells: &[usize], spec: &RerouteSpec) -> ReroutePlan {
        let p = schedule.servers.len();
        let mut plan = ReroutePlan::default();
        if p == 0 || cells.is_empty() || spec.max_moves == 0 {
            return plan;
        }
        let finish = |s: usize| schedule.servers[s].round_finish.first().copied().unwrap_or(0);
        let mut finishes: Vec<u64> = (0..p).map(finish).collect();
        finishes.sort_unstable();
        // The *lower* median: with an even cohort split this sides with
        // the fast half, so up to half the servers may straggle before
        // the signal drowns.
        let median = finishes[(p - 1) / 2];
        if median == 0 {
            // A free cost model times nothing; there is no signal.
            return plan;
        }
        let threshold = median.saturating_mul(spec.lag_percent.max(100)) / 100;
        let straggling: Vec<bool> = (0..p).map(|s| finish(s) > threshold).collect();
        let mut targets: Vec<usize> = (0..p).filter(|&s| !straggling[s]).collect();
        if targets.is_empty() {
            return plan;
        }
        targets.sort_by_key(|&s| (finish(s), mix(spec.seed, s as u64)));

        let mut homes: Vec<usize> =
            cells.iter().copied().filter(|&c| c < p && straggling[c]).collect();
        homes.sort_unstable();
        homes.dedup();
        for home in homes.into_iter().take(spec.max_moves) {
            let target = targets[plan.moves.len() % targets.len()];
            plan.moves.insert(home, target);
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// The host program.
// ---------------------------------------------------------------------------

/// A program wrapper that applies a [`ReroutePlan`] to the final round.
///
/// Rounds `1..last` pass through unchanged. In the final round, each
/// emission towards a moved home `h` is re-tagged `reroute#h#<tag>` and
/// redirected to `h`'s replacement; at output time the replacement
/// rebuilds `h`'s would-have-been state from those guest tags and
/// evaluates the inner program's `output(h, ·)` on it, unioned with its
/// own share. See the [module docs](self) for the invariance argument.
#[derive(Debug)]
pub struct RerouteHost<'a, P: MpcProgram> {
    inner: &'a P,
    plan: ReroutePlan,
}

impl<'a, P: MpcProgram> RerouteHost<'a, P> {
    /// Wrap `inner` under `plan`. An empty plan makes the host a
    /// transparent pass-through.
    pub fn new(inner: &'a P, plan: ReroutePlan) -> Self {
        RerouteHost { inner, plan }
    }

    /// The applied plan.
    pub fn plan(&self) -> &ReroutePlan {
        &self.plan
    }
}

impl<P: MpcProgram> MpcProgram for RerouteHost<'_, P> {
    fn num_rounds(&self) -> usize {
        self.inner.num_rounds()
    }

    fn route_input(&self, relation: &Relation, p: usize) -> Result<Vec<Routed>> {
        // Round 1 is never remapped: reroutable cells' movable inbound is
        // final-round `route_tuples` traffic (programs with reroutable
        // cells have ≥ 2 rounds — single-round inbound is input routing,
        // which the contract excludes).
        self.inner.route_input(relation, p)
    }

    fn compute(&self, round: usize, server: usize, state: &ServerState) -> Result<Vec<Relation>> {
        self.inner.compute(round, server, state)
    }

    fn route_tuples(
        &self,
        round: usize,
        server: usize,
        state: &ServerState,
    ) -> Result<Vec<Routed>> {
        let routed = self.inner.route_tuples(round, server, state)?;
        if self.plan.is_empty() || round != self.inner.num_rounds() {
            return Ok(routed);
        }
        let mut out = Vec::with_capacity(routed.len());
        for msg in routed {
            let mut stay: Vec<usize> = Vec::with_capacity(msg.destinations.len());
            let mut moved: Vec<usize> = Vec::new();
            for &dest in &msg.destinations {
                match self.plan.target(dest) {
                    None => stay.push(dest),
                    Some(_) => {
                        if !moved.contains(&dest) {
                            moved.push(dest);
                        }
                    }
                }
            }
            for home in moved {
                let target = self.plan.target(home).expect("home came from the plan");
                out.push(Routed::new(guest_tag(home, &msg.tag), msg.tuple.clone(), vec![target]));
            }
            if !stay.is_empty() {
                out.push(Routed::new(msg.tag, msg.tuple, stay));
            }
        }
        Ok(out)
    }

    fn output(&self, server: usize, state: &ServerState) -> Result<Relation> {
        // A moved home's own call returns empty naturally: its movable
        // inbound never arrived, so the inner gate (all atom relations
        // present) fails. The replacement answers for it instead.
        let mut out = self.inner.output(server, state)?;
        for (home, target) in self.plan.moves() {
            if target != server {
                continue;
            }
            let mut ghost = ServerState::new(home, state.domain_size());
            for tag in state.tags() {
                let Some((h, orig)) = parse_guest_tag(tag) else { continue };
                if h != home {
                    continue;
                }
                let rel = state.relation(tag).expect("tag was just listed");
                let mut renamed = Relation::empty(orig, rel.arity());
                for t in rel.iter() {
                    renamed.insert(t.clone())?;
                }
                ghost.add_local(renamed);
            }
            let extra = self.inner.output(home, &ghost)?;
            for t in extra.iter() {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    fn reroutable_cells(&self) -> Vec<usize> {
        // No nested rerouting: the host's cells are already placed.
        Vec::new()
    }

    fn output_name(&self) -> String {
        self.inner.output_name()
    }

    fn output_arity(&self) -> usize {
        self.inner.output_arity()
    }
}

// ---------------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------------

/// The outcome of an adaptive run: the static observation, the rerouted
/// execution, the plan that connected them and the live counters the
/// observation surfaced.
#[derive(Debug, Clone)]
pub struct AdaptiveRunResult {
    /// The static (observation) run.
    pub baseline: AsyncRunResult,
    /// The rerouted run under the same configuration and stragglers.
    pub adaptive: AsyncRunResult,
    /// The relocation decision derived from the observation.
    pub plan: ReroutePlan,
    /// The live per-server counters at the end of the observation run.
    pub observed: Vec<ProgressSnapshot>,
}

impl AdaptiveRunResult {
    /// Fraction of the static makespan the rerouted schedule recovered:
    /// `(static − adaptive) / static`. Positive means rerouting helped;
    /// 0 when nothing moved; negative would mean it hurt.
    pub fn recovery(&self) -> f64 {
        let base = self.baseline.schedule.makespan;
        if base == 0 {
            return 0.0;
        }
        let adapt = self.adaptive.schedule.makespan;
        (base as f64 - adapt as f64) / base as f64
    }

    /// The first divergence between the static and rerouted runs, if any
    /// — the differential wall of the adaptive runtime. Checked: output
    /// tuple sets, round counts, and (when the static run partitions its
    /// answers across servers) that the rerouted run still does. Per-
    /// server *placement* legitimately differs and is not compared.
    pub fn divergence(&self) -> Option<String> {
        let base = &self.baseline.result;
        let adapt = &self.adaptive.result;
        if !base.output.same_tuples(&adapt.output) {
            return Some(format!(
                "outputs differ: {} tuples static vs {} rerouted",
                base.output.len(),
                adapt.output.len()
            ));
        }
        if base.rounds.len() != adapt.rounds.len() {
            return Some(format!(
                "round counts differ: {} vs {}",
                base.rounds.len(),
                adapt.rounds.len()
            ));
        }
        let base_sum: usize = base.per_server_output.iter().sum();
        let adapt_sum: usize = adapt.per_server_output.iter().sum();
        if base_sum == base.output.len() && adapt_sum != adapt.output.len() {
            return Some(format!(
                "rerouting broke the answer partition: {} placed vs {} total",
                adapt_sum,
                adapt.output.len()
            ));
        }
        None
    }

    /// True when [`AdaptiveRunResult::divergence`] found nothing.
    pub fn is_equivalent(&self) -> bool {
        self.divergence().is_none()
    }
}

impl Cluster {
    /// Observe, decide, act: run `program` statically while surfacing
    /// live progress, derive a [`ReroutePlan`] from the observed
    /// schedule, and re-run under a [`RerouteHost`] with the *same*
    /// configuration (including injected stragglers).
    ///
    /// Programs that declare no [`MpcProgram::reroutable_cells`] — or
    /// observations without stragglers — yield an empty plan, and the
    /// adaptive run replays the static schedule exactly.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::run_async`], for either run.
    pub fn run_adaptive<P: MpcProgram>(
        &self,
        program: &P,
        db: &Database,
        async_config: &AsyncConfig,
        spec: &RerouteSpec,
    ) -> Result<AdaptiveRunResult> {
        let progress = Arc::new(LiveProgress::new(self.config().p));
        let baseline = self.run_async_observed(program, db, async_config, &progress)?;
        let observed = progress.snapshot();
        let cells = program.reroutable_cells();
        let plan = RerouteController::plan(&baseline.schedule, &cells, spec);
        let host = RerouteHost::new(program, plan.clone());
        let adaptive = self.run_async(&host, db, async_config)?;
        Ok(AdaptiveRunResult { baseline, adaptive, plan, observed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ServerTimeline;

    fn timeline(server: usize, round1_finish: u64) -> ServerTimeline {
        ServerTimeline {
            server,
            busy: 0,
            blocked: 0,
            idle: 0,
            finish: round1_finish,
            round_finish: vec![round1_finish],
        }
    }

    fn schedule_of(finishes: &[u64]) -> ScheduleStats {
        ScheduleStats {
            makespan: finishes.iter().copied().max().unwrap_or(0),
            critical_path: 0,
            servers: finishes.iter().enumerate().map(|(s, &f)| timeline(s, f)).collect(),
            barrier_wait: Vec::new(),
            stragglers: Vec::new(),
            queue_window: 1,
            pipeline_depth: 0,
        }
    }

    #[test]
    fn guest_tags_round_trip() {
        let tag = guest_tag(7, "wco.stage##R");
        assert_eq!(tag, "reroute#7#wco.stage##R");
        assert_eq!(parse_guest_tag(&tag), Some((7, "wco.stage##R")));
        assert_eq!(parse_guest_tag("R"), None);
        assert_eq!(parse_guest_tag("reroute#x#R"), None);
    }

    #[test]
    fn controller_moves_straggler_cells_to_fast_servers() {
        // Server 3 lags 10×; cells live on 1 and 3.
        let sched = schedule_of(&[100, 100, 110, 1000]);
        let plan = RerouteController::plan(&sched, &[1, 3], &RerouteSpec::default());
        assert_eq!(plan.len(), 1, "only the straggler-homed cell moves");
        let target = plan.target(3).expect("cell 3 moves");
        assert!(target != 3, "a move must relocate");
        assert!([0, 1].contains(&target), "the fastest servers host");
        assert_eq!(plan.target(1), None, "cell 1 is on a healthy server");
    }

    #[test]
    fn controller_is_deterministic_and_seed_sensitive_only_on_ties() {
        let sched = schedule_of(&[50, 50, 50, 900, 60]);
        let spec = RerouteSpec::default();
        let a = RerouteController::plan(&sched, &[3], &spec);
        let b = RerouteController::plan(&sched, &[3], &spec);
        assert_eq!(a, b, "same inputs, same plan");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn controller_caps_moves_and_ignores_foreign_cells() {
        let sched = schedule_of(&[10, 10, 10, 500, 500, 500]);
        let spec = RerouteSpec::default().with_max_moves(2);
        let plan = RerouteController::plan(&sched, &[3, 4, 5, 99], &spec);
        assert_eq!(plan.len(), 2, "max_moves caps the plan");
        for (home, target) in plan.moves() {
            assert!((3..=5).contains(&home));
            assert!(target < 3, "targets are the healthy servers");
        }
        // A majority of stragglers defeats the median signal: decline.
        let majority = schedule_of(&[10, 10, 500, 500, 500, 500]);
        assert!(RerouteController::plan(&majority, &[2, 3], &spec).is_empty());
    }

    #[test]
    fn controller_declines_without_signal_or_targets() {
        // Free cost model: every finish is 0 — no signal.
        let silent = schedule_of(&[0, 0, 0, 0]);
        assert!(RerouteController::plan(&silent, &[0, 1], &RerouteSpec::default()).is_empty());
        // Uniform finishes: no straggler.
        let uniform = schedule_of(&[70, 70, 70, 70]);
        assert!(RerouteController::plan(&uniform, &[0, 1], &RerouteSpec::default()).is_empty());
        // No cells declared.
        let skew = schedule_of(&[10, 10, 10, 400]);
        assert!(RerouteController::plan(&skew, &[], &RerouteSpec::default()).is_empty());
    }

    #[test]
    fn live_progress_counters_accumulate() {
        let lp = LiveProgress::new(3);
        lp.record_delivery(1, 128, 4);
        lp.record_delivery(1, 64, 2);
        lp.record_round(1, 2);
        lp.record_delivery(99, 1, 1); // out of range: ignored, not a panic
        let snap = lp.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!((snap[1].bytes, snap[1].tuples, snap[1].round), (192, 6, 2));
        assert_eq!((snap[0].bytes, snap[0].round), (0, 0));
    }
}
