//! Error type for the simulator.

use std::fmt;

/// Errors raised while running an MPC program on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A storage-level error (missing relation, arity mismatch, ...).
    Storage(String),
    /// A server exceeded the per-round load budget and the configuration
    /// requested hard enforcement ([`crate::MpcConfig::fail_on_overload`]).
    Overload {
        /// Round in which the budget was exceeded (1-based).
        round: usize,
        /// The overloaded server.
        server: usize,
        /// Bytes received by that server in that round.
        received_bytes: u64,
        /// The budget in bytes.
        budget_bytes: u64,
    },
    /// A program-level error (invalid destinations, internal failure, ...).
    Program(String),
    /// The configuration is invalid (e.g. `p = 0` or `ε ∉ [0, 1]`).
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Storage(msg) => write!(f, "storage error: {msg}"),
            SimError::Overload { round, server, received_bytes, budget_bytes } => write!(
                f,
                "server {server} received {received_bytes} bytes in round {round}, exceeding the budget of {budget_bytes} bytes"
            ),
            SimError::Program(msg) => write!(f, "program error: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<mpc_storage::StorageError> for SimError {
    fn from(e: mpc_storage::StorageError) -> Self {
        SimError::Storage(e.to_string())
    }
}

impl From<mpc_cq::CqError> for SimError {
    fn from(e: mpc_cq::CqError) -> Self {
        SimError::Program(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::Overload { round: 2, server: 5, received_bytes: 100, budget_bytes: 64 };
        let s = e.to_string();
        assert!(s.contains("server 5") && s.contains("round 2"));
        assert!(SimError::InvalidConfig("p = 0".into()).to_string().contains("p = 0"));
    }
}
