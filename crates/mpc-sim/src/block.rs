//! Columnar tuple blocks — the unit of transport of the batched data
//! plane.
//!
//! The event-driven backend used to push one inbox packet *per tuple
//! per destination*, so every delivered tuple paid a mutex/condvar round
//! trip. A [`TupleBlock`] amortises that: up to `block_capacity` tuples
//! sharing one `(destination, tag, round)` travel as a single packet whose
//! payload is **arity-major column slices** — `cols[c][r]` is column `c`
//! of row `r`. Column layout keeps the values of one attribute contiguous,
//! which is what the vectorised hash build/probe of the local join wants,
//! and makes the payload size a closed formula
//! (`rows × arity × 8` bytes — the same accounting unit as
//! [`crate::message::Routed::bytes_per_delivery`], so volume statistics
//! are bit-identical to the per-tuple plane).
//!
//! Blocks are assembled sender-side by a [`BlockAssembler`], which keeps
//! one open buffer per `(destination, tag)`, seals a block the moment it
//! reaches capacity, and drains the partial remainder on
//! [`BlockAssembler::flush`] — in deterministic `(destination, tag)`
//! order, so the canonical per-sender sequence numbers are reproducible.
//! Column storage is checked out of a [`crate::pool::BlockPool`] and
//! handed back by the receiver after decoding, so steady-state routing
//! allocates nothing.
//!
//! A block capacity of 1 degenerates to exactly the old per-tuple
//! behaviour (one tuple per packet), which the differential matrix in
//! `tests/async_equivalence.rs` exploits as a cross-check.

use std::collections::BTreeMap;
use std::sync::Arc;

use mpc_storage::{Tuple, Value};

use crate::pool::BlockPool;

/// Reusable column storage: `arity` value vectors growing in lockstep.
///
/// This is the pooled part of a [`TupleBlock`] — everything that owns heap
/// allocations — so returning it to the [`BlockPool`] recycles the block's
/// entire footprint.
#[derive(Debug, Clone, Default)]
pub struct ColumnBuf {
    cols: Vec<Vec<Value>>,
    /// Row count, tracked explicitly so zero-arity tuples still count.
    rows: usize,
}

impl ColumnBuf {
    /// An empty buffer with `arity` columns, each with room for
    /// `capacity` values.
    pub fn with_arity(arity: usize, capacity: usize) -> Self {
        ColumnBuf { cols: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(), rows: 0 }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row. `values` must have exactly [`ColumnBuf::arity`]
    /// entries.
    pub fn push(&mut self, values: &[Value]) {
        debug_assert_eq!(values.len(), self.cols.len(), "row arity must match the buffer");
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// The contiguous values of column `c`.
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Drop all rows, keeping the column capacities (pool recycling).
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.rows = 0;
    }

    /// Refill the buffer column by column: `fill` is called once per
    /// column, in order, and must append exactly `rows` values to the
    /// vector it is handed. This is the deserialisation boundary of the
    /// wire codec in `mpc-net` — a pooled buffer is refilled straight from
    /// the socket without an intermediate row-major copy.
    ///
    /// # Errors
    ///
    /// Propagates the first error `fill` returns; the buffer is left
    /// cleared in that case.
    pub fn refill<E, F>(&mut self, rows: usize, mut fill: F) -> Result<(), E>
    where
        F: FnMut(&mut Vec<Value>) -> Result<(), E>,
    {
        self.clear();
        for col in &mut self.cols {
            fill(col)?;
            debug_assert_eq!(col.len(), rows, "fill must append exactly `rows` values");
        }
        self.rows = rows;
        Ok(())
    }
}

/// A sealed columnar batch on the wire: up to the assembler's capacity of
/// tuples sharing one tag, round and sender, bound for one destination.
#[derive(Debug, Clone)]
pub struct TupleBlock {
    /// The relation tag all rows were sent under.
    pub tag: Arc<str>,
    /// Round the rows belong to (1-based).
    pub round: usize,
    /// Sending server (`>= p` for input servers).
    pub from: usize,
    /// Sequence number within `(from, round)`, in send order — blocks on
    /// one link inherit the FIFO order of the lane they travel on.
    pub seq: u64,
    cols: ColumnBuf,
}

impl TupleBlock {
    /// Number of tuples in the block.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the block carries no tuples (never on the wire; the
    /// assembler only seals non-empty blocks).
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Number of columns (the tag's relation arity).
    pub fn arity(&self) -> usize {
        self.cols.arity()
    }

    /// Payload size in bytes: `len × arity × 8`, the simulator's
    /// accounting unit — identical to the sum over the rows of
    /// [`crate::message::Routed::bytes_per_delivery`].
    pub fn payload_bytes(&self) -> u64 {
        (self.len() as u64) * (self.arity() as u64) * 8
    }

    /// The contiguous values of column `c`.
    pub fn column(&self, c: usize) -> &[Value] {
        self.cols.column(c)
    }

    /// Iterate the rows as owned [`Tuple`]s (the row-major decode at the
    /// join boundary).
    pub fn rows(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len()).map(move |r| Tuple((0..self.arity()).map(|c| self.column(c)[r]).collect()))
    }

    /// Tear the block down into its column storage, for return to the
    /// pool.
    pub fn into_columns(self) -> ColumnBuf {
        self.cols
    }

    /// Rebuild a block from its parts — the deserialisation boundary of
    /// the wire codec in `mpc-net`, where `cols` was refilled from a
    /// pooled buffer via [`ColumnBuf::refill`]. Everything else in the
    /// simulator receives blocks only from a [`BlockAssembler`].
    pub fn from_parts(tag: Arc<str>, round: usize, from: usize, seq: u64, cols: ColumnBuf) -> Self {
        TupleBlock { tag, round, from, seq, cols }
    }
}

/// How a [`BlockAssembler`] adapts its seal threshold to observed link
/// occupancy (the PR 6 ROADMAP follow-up).
///
/// Big blocks amortise per-packet overhead but add batching latency; on a
/// link whose lane sits near-empty the latency buys nothing. Under this
/// policy the assembler keeps a per-destination *effective capacity*:
/// every occupancy sample below `low_watermark` halves it (toward
/// `min_capacity`), every sample at or above `high_watermark` doubles it
/// (back toward the configured capacity). Adaptation changes only *when*
/// buffers seal — never what they carry — so outputs and per-round volume
/// statistics are invariant (pinned by `tests/async_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Floor for the effective capacity (clamped to ≥ 1).
    pub min_capacity: usize,
    /// Occupancy strictly below this shrinks the block size.
    pub low_watermark: f64,
    /// Occupancy at or above this grows it back.
    pub high_watermark: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy { min_capacity: 8, low_watermark: 0.25, high_watermark: 0.75 }
    }
}

/// Sender-side batcher: one open [`ColumnBuf`] per `(destination, tag)`,
/// sealed into [`TupleBlock`]s at capacity and on flush.
///
/// One assembler serves one `(sender, round)`: its sequence counter spans
/// all destinations and tags, so the per-sender send order is globally
/// sequenced exactly like the per-tuple plane's packets were.
///
/// ```
/// use std::sync::Arc;
/// use mpc_sim::block::BlockAssembler;
/// use mpc_sim::pool::BlockPool;
///
/// let pool = Arc::new(BlockPool::new());
/// let mut asm = BlockAssembler::new(Arc::clone(&pool), 2, 0, 1);
/// assert!(asm.push(3, "R", &[1, 2]).is_none()); // buffering
/// let sealed = asm.push(3, "R", &[3, 4]).expect("capacity reached");
/// assert_eq!((sealed.len(), sealed.seq), (2, 0));
/// pool.give_back(sealed.into_columns());
/// assert!(asm.flush().is_empty());
/// ```
#[derive(Debug)]
pub struct BlockAssembler {
    pool: Arc<BlockPool>,
    capacity: usize,
    from: usize,
    round: usize,
    next_seq: u64,
    open: BTreeMap<(usize, Arc<str>), ColumnBuf>,
    /// Tag interning: one `Arc<str>` per distinct tag, shared by every
    /// block sent under it.
    tags: BTreeMap<String, Arc<str>>,
    /// When set, per-destination effective capacities track observed link
    /// occupancy instead of pinning `capacity`.
    policy: Option<AdaptivePolicy>,
    /// Current effective seal threshold per destination (only populated
    /// when a policy is set and a sample arrived for that destination).
    effective: BTreeMap<usize, usize>,
}

impl BlockAssembler {
    /// An assembler for `(from, round)` sealing blocks of `capacity`
    /// tuples (clamped to ≥ 1) drawn from `pool`.
    pub fn new(pool: Arc<BlockPool>, capacity: usize, from: usize, round: usize) -> Self {
        BlockAssembler {
            pool,
            capacity: capacity.max(1),
            from,
            round,
            next_seq: 0,
            open: BTreeMap::new(),
            tags: BTreeMap::new(),
            policy: None,
            effective: BTreeMap::new(),
        }
    }

    /// Enable per-destination adaptive seal thresholds under `policy`.
    #[must_use]
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Feed one occupancy sample (see [`crate::queue::LinkSender::occupancy`])
    /// for the link to `dest`. Below the low watermark the effective
    /// capacity halves toward the policy floor; at or above the high
    /// watermark it doubles back toward the configured capacity. No-op
    /// without a policy.
    pub fn observe_occupancy(&mut self, dest: usize, occupancy: f64) {
        let Some(policy) = self.policy else { return };
        let floor = policy.min_capacity.clamp(1, self.capacity);
        let current = *self.effective.entry(dest).or_insert(self.capacity);
        let next = if occupancy < policy.low_watermark {
            (current / 2).max(floor)
        } else if occupancy >= policy.high_watermark {
            (current * 2).min(self.capacity)
        } else {
            current
        };
        self.effective.insert(dest, next);
    }

    /// The seal threshold currently in force for `dest`: the configured
    /// capacity, unless adaptation has shrunk it.
    pub fn effective_capacity(&self, dest: usize) -> usize {
        self.effective.get(&dest).copied().unwrap_or(self.capacity)
    }

    /// Buffer one tuple for `dest` under `tag`; returns the sealed block
    /// when this push fills the `(dest, tag)` buffer to capacity.
    pub fn push(&mut self, dest: usize, tag: &str, values: &[Value]) -> Option<TupleBlock> {
        let tag = match self.tags.get(tag) {
            Some(t) => Arc::clone(t),
            None => {
                let interned: Arc<str> = Arc::from(tag);
                self.tags.insert(tag.to_string(), Arc::clone(&interned));
                interned
            }
        };
        let buf = self
            .open
            .entry((dest, Arc::clone(&tag)))
            .or_insert_with(|| self.pool.checkout(values.len(), self.capacity));
        buf.push(values);
        if buf.len() >= self.effective.get(&dest).copied().unwrap_or(self.capacity) {
            let cols = self.open.remove(&(dest, Arc::clone(&tag))).expect("buffer just filled");
            Some(self.seal(tag, cols))
        } else {
            None
        }
    }

    /// Seal and return every partially filled buffer, in deterministic
    /// `(destination, tag)` order, paired with its destination.
    pub fn flush(&mut self) -> Vec<(usize, TupleBlock)> {
        let open = std::mem::take(&mut self.open);
        open.into_iter()
            .filter(|(_, buf)| !buf.is_empty())
            .map(|((dest, tag), buf)| (dest, self.seal(tag, buf)))
            .collect()
    }

    fn seal(&mut self, tag: Arc<str>, cols: ColumnBuf) -> TupleBlock {
        let seq = self.next_seq;
        self.next_seq += 1;
        TupleBlock { tag, round: self.round, from: self.from, seq, cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<BlockPool> {
        Arc::new(BlockPool::new())
    }

    #[test]
    fn column_layout_round_trips_rows() {
        let mut buf = ColumnBuf::with_arity(3, 4);
        buf.push(&[1, 2, 3]);
        buf.push(&[4, 5, 6]);
        assert_eq!(buf.column(0), &[1, 4]);
        assert_eq!(buf.column(1), &[2, 5]);
        assert_eq!(buf.column(2), &[3, 6]);
        let block = TupleBlock { tag: Arc::from("R"), round: 1, from: 0, seq: 0, cols: buf };
        let rows: Vec<Tuple> = block.rows().collect();
        assert_eq!(rows, vec![Tuple::from([1, 2, 3]), Tuple::from([4, 5, 6])]);
        assert_eq!(block.payload_bytes(), 2 * 3 * 8);
    }

    #[test]
    fn assembler_seals_at_capacity_and_flushes_the_rest() {
        let pool = pool();
        let mut asm = BlockAssembler::new(Arc::clone(&pool), 3, 7, 2);
        let mut sealed = Vec::new();
        for i in 0..7u64 {
            if let Some(b) = asm.push(0, "R", &[i, i]) {
                sealed.push(b);
            }
        }
        assert_eq!(sealed.len(), 2, "two full blocks of 3");
        let rest = asm.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].1.len(), 1, "the 7th tuple");
        // Sequence numbers are consecutive in seal order.
        let seqs: Vec<u64> =
            sealed.iter().chain(rest.iter().map(|(_, b)| b)).map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        for b in sealed.into_iter().chain(rest.into_iter().map(|(_, b)| b)) {
            assert_eq!((b.from, b.round), (7, 2));
            pool.give_back(b.into_columns());
        }
        assert!(pool.stats().balanced());
    }

    #[test]
    fn capacity_one_degenerates_to_per_tuple_packets() {
        let pool = pool();
        let mut asm = BlockAssembler::new(Arc::clone(&pool), 1, 0, 1);
        for i in 0..5u64 {
            let b = asm.push(i as usize % 2, "R", &[i]).expect("every push seals");
            assert_eq!(b.len(), 1);
            pool.give_back(b.into_columns());
        }
        assert!(asm.flush().is_empty());
        assert!(pool.stats().balanced());
    }

    #[test]
    fn destinations_and_tags_get_separate_buffers() {
        let pool = pool();
        let mut asm = BlockAssembler::new(Arc::clone(&pool), 10, 0, 1);
        assert!(asm.push(0, "R", &[1, 1]).is_none());
        assert!(asm.push(1, "R", &[2, 2]).is_none());
        assert!(asm.push(0, "S", &[3]).is_none());
        let flushed = asm.flush();
        // Deterministic (dest, tag) order: (0,R), (0,S), (1,R).
        let labels: Vec<(usize, String, u64)> =
            flushed.iter().map(|(d, b)| (*d, b.tag.to_string(), b.seq)).collect();
        assert_eq!(labels, vec![(0, "R".into(), 0), (0, "S".into(), 1), (1, "R".into(), 2)]);
        for (_, b) in flushed {
            pool.give_back(b.into_columns());
        }
        assert!(pool.stats().balanced());
    }

    #[test]
    fn refill_and_from_parts_round_trip() {
        let mut buf = ColumnBuf::with_arity(2, 4);
        buf.push(&[9, 9]);
        buf.refill::<(), _>(3, |col| {
            col.extend_from_slice(&[1, 2, 3]);
            Ok(())
        })
        .unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.column(0), &[1, 2, 3]);
        let block = TupleBlock::from_parts(Arc::from("R"), 4, 7, 11, buf);
        assert_eq!((block.round, block.from, block.seq, block.len()), (4, 7, 11, 3));
        let mut err = ColumnBuf::with_arity(1, 1);
        assert_eq!(err.refill(1, |_| Err("short read")), Err("short read"));
        assert!(err.is_empty(), "failed refill leaves the buffer cleared");
    }

    #[test]
    fn adaptive_policy_shrinks_and_recovers_per_destination() {
        let pool = pool();
        let mut asm =
            BlockAssembler::new(Arc::clone(&pool), 64, 0, 1).with_adaptive(AdaptivePolicy {
                min_capacity: 8,
                low_watermark: 0.25,
                high_watermark: 0.75,
            });
        assert_eq!(asm.effective_capacity(0), 64);
        asm.observe_occupancy(0, 0.0); // cold link: halve
        assert_eq!(asm.effective_capacity(0), 32);
        for _ in 0..10 {
            asm.observe_occupancy(0, 0.0);
        }
        assert_eq!(asm.effective_capacity(0), 8, "clamped at the policy floor");
        assert_eq!(asm.effective_capacity(1), 64, "other destinations untouched");
        asm.observe_occupancy(0, 0.5); // between watermarks: hold
        assert_eq!(asm.effective_capacity(0), 8);
        for _ in 0..10 {
            asm.observe_occupancy(0, 0.9); // hot link: double back
        }
        assert_eq!(asm.effective_capacity(0), 64, "recovers to the configured capacity");
    }

    #[test]
    fn adaptive_seal_threshold_changes_block_sizes_not_contents() {
        let pool = pool();
        let mut fixed = BlockAssembler::new(Arc::clone(&pool), 4, 0, 1);
        let mut adaptive =
            BlockAssembler::new(Arc::clone(&pool), 4, 0, 1).with_adaptive(AdaptivePolicy {
                min_capacity: 1,
                low_watermark: 0.25,
                high_watermark: 0.75,
            });
        adaptive.observe_occupancy(0, 0.0); // effective capacity now 2
        let mut rows_fixed: Vec<Tuple> = Vec::new();
        let mut rows_adaptive: Vec<Tuple> = Vec::new();
        let mut sealed_adaptive = 0;
        for i in 0..8u64 {
            if let Some(b) = fixed.push(0, "R", &[i]) {
                rows_fixed.extend(b.rows());
                pool.give_back(b.into_columns());
            }
            if let Some(b) = adaptive.push(0, "R", &[i]) {
                assert_eq!(b.len(), 2, "adapted seal threshold");
                sealed_adaptive += 1;
                rows_adaptive.extend(b.rows());
                pool.give_back(b.into_columns());
            }
        }
        for (_, b) in fixed.flush() {
            rows_fixed.extend(b.rows());
            pool.give_back(b.into_columns());
        }
        for (_, b) in adaptive.flush() {
            rows_adaptive.extend(b.rows());
            pool.give_back(b.into_columns());
        }
        assert_eq!(sealed_adaptive, 4, "twice as many, half-sized blocks");
        // Same tuples in the same per-link order, only framed differently.
        assert_eq!(rows_fixed.len(), 8);
        assert_eq!(rows_fixed, rows_adaptive);
        assert!(pool.stats().balanced());
    }

    #[test]
    fn assembler_recycles_pool_buffers() {
        let pool = pool();
        let mut asm = BlockAssembler::new(Arc::clone(&pool), 2, 0, 1);
        for i in 0..10u64 {
            if let Some(b) = asm.push(0, "R", &[i]) {
                pool.give_back(b.into_columns());
            }
        }
        let stats = pool.stats();
        assert!(stats.reused >= 3, "sealed buffers come back into rotation: {stats:?}");
    }
}
