//! Messages exchanged between servers.

use serde::Serialize;

use mpc_storage::Tuple;

/// A routed tuple: one tuple, tagged with the (base or intermediate)
/// relation it belongs to, together with the set of destination servers.
///
/// Round 1 messages carry base tuples from the input servers (Section 2.4);
/// rounds ≥ 2 of the tuple-based model carry *join tuples* — tuples of a
/// connected subquery of the query being computed — and their destinations
/// may depend only on the tag, the tuple and the round (Section 4.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Routed {
    /// Name of the (base or intermediate) relation this tuple belongs to.
    pub tag: String,
    /// The tuple payload.
    pub tuple: Tuple,
    /// Destination servers (indices in `0..p`). Duplicates are allowed but
    /// pointless; an empty list drops the tuple.
    pub destinations: Vec<usize>,
}

impl Routed {
    /// Create a routed tuple.
    pub fn new<S: Into<String>>(tag: S, tuple: Tuple, destinations: Vec<usize>) -> Self {
        Routed { tag: tag.into(), tuple, destinations }
    }

    /// Broadcast a tuple to every server in `0..p`.
    pub fn broadcast<S: Into<String>>(tag: S, tuple: Tuple, p: usize) -> Self {
        Routed { tag: tag.into(), tuple, destinations: (0..p).collect() }
    }

    /// Size in bytes of a single delivery of this tuple (8 bytes per value).
    pub fn bytes_per_delivery(&self) -> u64 {
        (self.tuple.arity() as u64) * 8
    }

    /// The replication of this tuple: how many servers receive it.
    pub fn replication(&self) -> usize {
        self.destinations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accounting() {
        let r = Routed::new("S1", Tuple::from([1, 2, 3]), vec![0, 4]);
        assert_eq!(r.bytes_per_delivery(), 24);
        assert_eq!(r.replication(), 2);
        assert_eq!(r.tag, "S1");
    }

    #[test]
    fn broadcast_targets_every_server() {
        let r = Routed::broadcast("S", Tuple::from([7]), 5);
        assert_eq!(r.destinations, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.replication(), 5);
    }
}
