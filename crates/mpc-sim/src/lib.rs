//! A round-synchronous simulator of the **Massively Parallel Communication
//! (MPC) model** of Beame, Koutris & Suciu (PODS 2013, Section 2.1).
//!
//! The model: `p` servers connected by private channels compute a query in
//! synchronous rounds. In each round every server first receives data, then
//! performs unbounded local computation. The only resource that is bounded
//! is **communication**: each server may receive at most `O(N / p^{1−ε})`
//! bits per round, where `N` is the input size and `ε ∈ [0, 1]` is the
//! *space exponent* (the replication rate per round is then `O(p^ε)`).
//!
//! This crate does not measure wall-clock time; it measures exactly the
//! quantities the theory speaks about:
//!
//! * per-server, per-round received bytes/tuples (maximum and total),
//! * the replication rate of each round,
//! * the number of rounds,
//! * whether the configured load budget `c · N / p^{1−ε}` was respected.
//!
//! Two backends execute programs. [`Cluster::run`] is the
//! **round-synchronous** reference: a global barrier between delivery and
//! computation, exactly the model of Section 2.1. [`Cluster::run_async`]
//! is the **event-driven** backend ([`cluster_async`]): every server is
//! an independent task over bounded per-link queues ([`queue`]) with
//! backpressure and no global barrier, producing — on top of the same
//! volume statistics — a virtual-clock [`ScheduleStats`] timeline
//! ([`schedule`]): busy/blocked/idle spans, per-round barrier waits,
//! critical path and makespan, with deterministic straggler injection.
//! A differential layer ([`cluster_async::run_differential`]) asserts
//! the two backends agree on outputs and volumes for every program.
//!
//! Programs are expressed against the [`MpcProgram`] trait: round 1 routes
//! base tuples from the input servers (one per relation, Section 2.4);
//! later rounds may only send *join tuples* whose destinations depend on
//! the tuple itself — the **tuple-based MPC model** of Section 4.1 — which
//! is the class of algorithms covered by the paper's multi-round lower
//! bounds and exactly what a multi-round MapReduce job can do.
//!
//! The per-server local computation (hash joins) is executed with rayon
//! across simulated servers, purely as an implementation detail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cluster;
pub mod cluster_async;
pub mod config;
pub mod error;
pub mod message;
pub mod pool;
pub mod program;
pub mod queue;
pub mod reroute;
pub mod schedule;
pub mod server;
pub mod stats;

pub use block::{AdaptivePolicy, BlockAssembler, ColumnBuf, TupleBlock};
pub use cluster::{build_round_stats, overloaded_server, union_outputs, Cluster};
pub use cluster_async::{
    run_differential, AsyncConfig, AsyncRunResult, Backend, BackendRun, DifferentialReport,
};
pub use config::MpcConfig;
pub use error::SimError;
pub use message::Routed;
pub use pool::{BlockPool, PoolStats};
pub use program::MpcProgram;
pub use reroute::{
    AdaptiveRunResult, LiveProgress, ProgressSnapshot, RerouteController, RerouteHost, ReroutePlan,
    RerouteSpec,
};
pub use schedule::{CostModel, MsgRecord, ScheduleStats, ServerTimeline, StragglerSpec};
pub use server::ServerState;
pub use stats::{RoundStats, RunResult};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, SimError>;
