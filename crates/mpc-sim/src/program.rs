//! The [`MpcProgram`] trait: how algorithms are expressed against the
//! simulator.
//!
//! The execution model mirrors Sections 2.1, 2.4 and 4.1 of the paper:
//!
//! 1. **Round 1** — every input relation lives on its own *input server*,
//!    which sends each of its tuples to a set of workers
//!    ([`MpcProgram::route_input`]). This round is unrestricted in the
//!    model; the programs in this repository route by hashing.
//! 2. After every round's delivery, each worker runs unbounded local
//!    computation ([`MpcProgram::compute`]), deriving new local relations
//!    (join tuples) at no communication cost.
//! 3. **Rounds ≥ 2** — each worker sends *join tuples* it knows to other
//!    workers ([`MpcProgram::route_tuples`]). The tuple-based MPC model
//!    requires the destinations to depend only on the tuple itself (its
//!    tag and values), the round and the sending server — never on other
//!    data the server holds. Implementations must respect this; the
//!    canonical way is to route through a pure function
//!    `(tag, tuple, round) → destinations`.
//! 4. After the final round each worker reports its share of the output
//!    ([`MpcProgram::output`]); the cluster unions the shares.

use mpc_storage::{Relation, Tuple};

use crate::message::Routed;
use crate::server::ServerState;
use crate::Result;

/// An algorithm in the (tuple-based) MPC model.
///
/// Implementations must be `Sync` because per-server calls are executed in
/// parallel across simulated servers.
pub trait MpcProgram: Sync {
    /// Total number of communication rounds.
    fn num_rounds(&self) -> usize;

    /// Round-1 routing performed by the input server that stores
    /// `relation`: return, for each tuple, the workers that receive it.
    fn route_input(&self, relation: &Relation, p: usize) -> Result<Vec<Routed>>;

    /// Local computation at the end of round `round` (1-based) on worker
    /// `server`. Returns relations derived locally (added to the server's
    /// knowledge at no communication cost).
    fn compute(&self, round: usize, server: usize, state: &ServerState) -> Result<Vec<Relation>>;

    /// Routing performed by worker `server` at the beginning of round
    /// `round ≥ 2`: join tuples to send, with their destinations.
    ///
    /// Tuple-based restriction: destinations may depend only on the tag,
    /// the tuple values, the round and the sender — not on anything else in
    /// `state`. The default implementation sends nothing.
    fn route_tuples(
        &self,
        round: usize,
        server: usize,
        state: &ServerState,
    ) -> Result<Vec<Routed>> {
        let _ = (round, server, state);
        Ok(Vec::new())
    }

    /// The output tuples this worker reports after the final round.
    fn output(&self, server: usize, state: &ServerState) -> Result<Relation>;

    /// Servers whose **final-round inbound** may be relocated wholesale to
    /// another server by the adaptive runtime ([`crate::reroute`]) — the
    /// program's declaration of which work units are *movable*.
    ///
    /// A server `s` may appear here only when its final-round traffic is
    /// consumed exclusively by [`MpcProgram::output`], and that output is a
    /// pure function of the tuples routed at `s` (no reliance on earlier
    /// rounds' state at `s`). The reroute host then re-tags `s`-bound
    /// final-round tuples, delivers them to a replacement server, and
    /// evaluates `output(s, ·)` there over the re-tagged state — so the
    /// union of outputs is invariant under any relocation.
    ///
    /// The default declares nothing movable: rerouting degenerates to the
    /// static schedule for programs that do not opt in.
    fn reroutable_cells(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Name of the output relation (used for the unioned result).
    fn output_name(&self) -> String {
        "output".to_string()
    }

    /// Arity of the output relation.
    fn output_arity(&self) -> usize;
}

/// A helper for hash-based routing: a deterministic hash of a tuple
/// restricted to selected positions, mapped into `0..buckets`.
///
/// This is the "random hash function" `h_i : [n] → [p_i]` of the HyperCube
/// algorithm; a seeded multiply-xor-shift hash is used so runs are
/// reproducible.
pub fn hash_to_bucket(seed: u64, values: &[u64], buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &v in values {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % buckets as u64) as usize
}

/// Convenience: hash a single value.
pub fn hash_value(seed: u64, value: u64, buckets: usize) -> usize {
    hash_to_bucket(seed, &[value], buckets)
}

/// A trivial broadcast program: send every relation to every worker, run a
/// user-provided local evaluation on worker 0's knowledge. Used as the
/// naive baseline and for testing the cluster mechanics.
#[derive(Debug, Clone)]
pub struct BroadcastProgram {
    query: mpc_cq::Query,
}

impl BroadcastProgram {
    /// Broadcast-and-evaluate for the given query.
    pub fn new(query: mpc_cq::Query) -> Self {
        BroadcastProgram { query }
    }
}

impl MpcProgram for BroadcastProgram {
    fn num_rounds(&self) -> usize {
        1
    }

    fn route_input(&self, relation: &Relation, p: usize) -> Result<Vec<Routed>> {
        Ok(relation.iter().map(|t| Routed::broadcast(relation.name(), t.clone(), p)).collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, server: usize, state: &ServerState) -> Result<Relation> {
        // Every server has the whole input; only server 0 reports to avoid
        // duplicating work in the union.
        if server != 0 {
            return Ok(Relation::empty(self.output_name(), self.output_arity()));
        }
        let db = state.as_database();
        let out = mpc_storage::join::evaluate(&self.query, &db)?;
        Ok(out)
    }

    fn output_name(&self) -> String {
        self.query.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.query.num_vars()
    }
}

/// Route every tuple of a relation with a pure function — the shape all
/// tuple-based programs use.
pub fn route_relation<F>(relation: &Relation, mut f: F) -> Vec<Routed>
where
    F: FnMut(&Tuple) -> Vec<usize>,
{
    relation.iter().map(|t| Routed::new(relation.name(), t.clone(), f(t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_in_range() {
        for buckets in [1usize, 2, 7, 64] {
            for v in 0..200u64 {
                let b1 = hash_value(42, v, buckets);
                let b2 = hash_value(42, v, buckets);
                assert_eq!(b1, b2);
                assert!(b1 < buckets);
            }
        }
    }

    #[test]
    fn hashing_depends_on_seed() {
        let a: Vec<usize> = (0..100).map(|v| hash_value(1, v, 16)).collect();
        let b: Vec<usize> = (0..100).map(|v| hash_value(2, v, 16)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn hashing_is_roughly_uniform() {
        let buckets = 8usize;
        let mut counts = vec![0usize; buckets];
        for v in 0..8000u64 {
            counts[hash_value(7, v, buckets)] += 1;
        }
        let expected = 1000.0;
        for c in counts {
            assert!((c as f64 - expected).abs() < 250.0, "bucket count {c} far from {expected}");
        }
    }

    #[test]
    fn route_relation_applies_function() {
        let rel = Relation::from_tuples("R", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        let routed = route_relation(&rel, |t| vec![t.values()[0] as usize % 2]);
        assert_eq!(routed.len(), 2);
        assert_eq!(routed[0].destinations, vec![1]);
        assert_eq!(routed[1].destinations, vec![1]);
        assert_eq!(routed[0].tag, "R");
    }
}
