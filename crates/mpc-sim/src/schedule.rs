//! The virtual clock of the event-driven backend: cost models, straggler
//! injection, and the deterministic schedule simulation that turns a
//! run's message traffic into a [`ScheduleStats`] timeline.
//!
//! The synchronous backend measures *volumes* — how many bytes move. This
//! module measures *schedules* — **when** they move. Every server is
//! modelled as a single resource that is, at any virtual instant, doing
//! exactly one of: **serializing** an outgoing packet onto its uplink,
//! **ingesting** an arrived packet, **computing** its local join, sitting
//! **blocked** on backpressure (a full per-link window), or **idle**
//! waiting for data. Those five states partition each server's timeline,
//! which is what makes the per-server `busy/blocked/idle` spans of
//! [`ServerTimeline`] well-defined.
//!
//! The simulation is a conservative discrete-event loop over virtual
//! *ticks* driven by a [`CostModel`]; it is a pure function of the traffic
//! and the model, so two runs of the same program on the same input get
//! identical schedules — stragglers included, because straggler selection
//! is seeded ([`StragglerSpec`]). The **critical path** is a lower bound
//! computed directly from the traffic: the maximum over servers and
//! rounds of the longest data-dependency chain and the server's
//! cumulative per-round work, both of which every execution must respect
//! — hence `makespan ≥ critical_path` by construction, whatever the
//! window size or event interleaving.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Virtual-tick costs of communication and computation.
///
/// Ticks are an abstract unit; only ratios matter. The defaults make
/// communication and computation comparable so schedules show both kinds
/// of waiting.
///
/// ```
/// use mpc_sim::schedule::CostModel;
///
/// let cost = CostModel::default();
/// assert!(cost.link_latency > 0);
/// assert_eq!(CostModel::zero_latency().link_latency, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Wire latency added between a packet's departure and its arrival.
    pub link_latency: u64,
    /// Uplink serialization cost per byte sent.
    pub send_ticks_per_byte: u64,
    /// Ingest cost per byte received.
    pub recv_ticks_per_byte: u64,
    /// Local-computation cost per tuple received in the round.
    pub compute_ticks_per_tuple: u64,
    /// Fixed per-round computation overhead (scheduling, hashing setup).
    pub round_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            link_latency: 4,
            send_ticks_per_byte: 1,
            recv_ticks_per_byte: 1,
            compute_ticks_per_tuple: 8,
            round_overhead: 16,
        }
    }
}

impl CostModel {
    /// The default model with zero wire latency: bytes arrive the instant
    /// they finish serializing. Useful to isolate bandwidth effects.
    pub fn zero_latency() -> Self {
        CostModel { link_latency: 0, ..CostModel::default() }
    }

    /// A model in which everything is free (all costs zero). Every event
    /// happens at tick 0; handy as a degenerate test case.
    pub fn free() -> Self {
        CostModel {
            link_latency: 0,
            send_ticks_per_byte: 0,
            recv_ticks_per_byte: 0,
            compute_ticks_per_tuple: 0,
            round_overhead: 0,
        }
    }
}

/// Deterministic straggler injection: `count` servers, drawn by `seed`,
/// run `slowdown`× slower (their serialize/ingest/compute ticks are all
/// multiplied).
///
/// ```
/// use mpc_sim::schedule::StragglerSpec;
///
/// let spec = StragglerSpec::new(42, 2, 8);
/// let picked = spec.pick(16);
/// assert_eq!(picked.len(), 2);
/// assert_eq!(picked, spec.pick(16)); // same seed, same stragglers
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Seed for the straggler draw.
    pub seed: u64,
    /// How many servers to slow down (clamped to `p`).
    pub count: usize,
    /// Slowdown multiplier (clamped to at least 1).
    pub slowdown: u64,
}

impl StragglerSpec {
    /// A spec slowing `count` seeded-random servers down by `slowdown`×.
    pub fn new(seed: u64, count: usize, slowdown: u64) -> Self {
        StragglerSpec { seed, count, slowdown: slowdown.max(1) }
    }

    /// The straggler server ids among `0..p` (sorted, distinct).
    pub fn pick(&self, p: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x57A6_617E);
        let mut picked = rand::seq::index::sample(&mut rng, p, self.count.min(p)).into_vec();
        picked.sort_unstable();
        picked
    }

    /// Per-server slowdown multipliers (1 for non-stragglers).
    pub fn slowdown_vector(&self, p: usize) -> Vec<u64> {
        let mut slow = vec![1u64; p];
        for s in self.pick(p) {
            slow[s] = self.slowdown.max(1);
        }
        slow
    }
}

/// One delivered packet, as recorded by the event-driven backend: enough
/// for the schedule simulation (sizes and endpoints; payloads don't
/// matter for timing).
///
/// `from` may be `>= p`: round-1 packets originate at the per-relation
/// input servers, numbered `p, p+1, …`. A packet is a columnar
/// [`crate::block::TupleBlock`] on the batched data plane, so it carries
/// `tuples ≥ 1` tuples; per-tuple traffic sets `tuples = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MsgRecord {
    /// Round the packet belongs to (1-based).
    pub round: usize,
    /// Sending server (`>= p` for input servers).
    pub from: usize,
    /// Receiving worker (`< p`).
    pub to: usize,
    /// Sequence number within `(from, round)`, in generation order.
    pub seq: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Tuples carried by the packet (drives the receiver's compute cost).
    pub tuples: u64,
}

/// The virtual-time account of one worker across the whole run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ServerTimeline {
    /// Worker id in `0..p`.
    pub server: usize,
    /// Ticks spent serializing, ingesting or computing.
    pub busy: u64,
    /// Ticks stalled on backpressure (a full per-link send window).
    pub blocked: u64,
    /// Ticks waiting for packets to arrive.
    pub idle: u64,
    /// Virtual time at which this worker finished its last round. The
    /// timeline `[0, finish]` is exactly partitioned by the three spans.
    pub finish: u64,
    /// Virtual time at which each round's local computation finished
    /// (index `r-1` for round `r`).
    pub round_finish: Vec<u64>,
}

impl ServerTimeline {
    /// Whether `busy + blocked + idle` exactly tiles `[0, finish]` — an
    /// invariant of the simulation, exposed for tests.
    pub fn span_partition_holds(&self) -> bool {
        self.busy + self.blocked + self.idle == self.finish
    }
}

/// The schedule of one event-driven run: what the synchronous backend
/// cannot see.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScheduleStats {
    /// Virtual time at which the last worker finished — wall-clock in
    /// ticks.
    pub makespan: u64,
    /// A lower bound on any execution of this traffic under the cost
    /// model: the maximum, over servers and rounds, of the longest
    /// data-dependency chain and the server's cumulative work. Always
    /// `<= makespan`.
    pub critical_path: u64,
    /// Per-worker busy/blocked/idle accounts.
    pub servers: Vec<ServerTimeline>,
    /// Per round `r` (index `r-1`): the spread between the last and first
    /// worker to finish round `r` — the stall a global barrier would
    /// impose on the fastest worker. Zero means the round was perfectly
    /// level.
    pub barrier_wait: Vec<u64>,
    /// Servers slowed down by straggler injection (empty when none).
    pub stragglers: Vec<usize>,
    /// The per-link send window (packets) the run was simulated with.
    pub queue_window: usize,
    /// How many rounds ahead a worker may ingest while its current round
    /// drains: 0 is the strict round-synchronous replay, 1 models the
    /// double-buffered data plane.
    pub pipeline_depth: usize,
}

impl ScheduleStats {
    /// Number of rounds covered by the schedule.
    pub fn num_rounds(&self) -> usize {
        self.barrier_wait.len()
    }

    /// Total ticks all workers spent blocked on backpressure.
    pub fn total_blocked(&self) -> u64 {
        self.servers.iter().map(|s| s.blocked).sum()
    }

    /// Total ticks all workers spent idle waiting for data.
    pub fn total_idle(&self) -> u64 {
        self.servers.iter().map(|s| s.idle).sum()
    }

    /// The worst per-round barrier wait.
    pub fn max_barrier_wait(&self) -> u64 {
        self.barrier_wait.iter().copied().max().unwrap_or(0)
    }

    /// `makespan / critical_path` — how much of the wall clock is
    /// explained by dependencies alone (1.0 means backpressure never
    /// mattered). 1.0 for degenerate zero-tick schedules.
    pub fn schedule_efficiency(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.critical_path as f64 / self.makespan as f64
        }
    }

    /// One-line digest mirroring [`crate::RunResult::summary`].
    pub fn summary(&self) -> String {
        format!(
            "makespan {} ticks, critical path {} ({:.0}% dependency-bound), \
             max barrier wait {}, blocked {} / idle {} ticks total",
            self.makespan,
            self.critical_path,
            self.schedule_efficiency() * 100.0,
            self.max_barrier_wait(),
            self.total_blocked(),
            self.total_idle(),
        )
    }
}

impl std::fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Simulate the schedule of a run: `p` workers, `num_rounds` rounds, the
/// recorded `traffic`, a cost model, per-worker slowdown multipliers
/// (length `p`; from [`StragglerSpec::slowdown_vector`] or all ones) and
/// the per-link send window in packets.
///
/// The traffic is canonicalised (sorted per sender) before simulation, so
/// the result is independent of the arrival interleaving of the real
/// threaded execution.
///
/// This is the strict round-synchronous replay: a worker never touches a
/// packet of a round it has not reached. Equivalent to
/// [`simulate_overlapped`] with `pipeline_depth = 0`.
pub fn simulate(
    p: usize,
    num_rounds: usize,
    traffic: &[MsgRecord],
    cost: &CostModel,
    slowdown: &[u64],
    window: usize,
) -> ScheduleStats {
    simulate_overlapped(p, num_rounds, traffic, cost, slowdown, window, 0)
}

/// [`simulate`] with **double-buffered rounds**: a worker that has nothing
/// left to do in its current round may already ingest packets up to
/// `pipeline_depth` rounds ahead (hashing round `r+1` while round `r`
/// lanes drain), instead of sitting idle. Packets of the current round
/// always take priority, so overlap never reorders a per-link FIFO — the
/// loop asserts this. `pipeline_depth = 0` reproduces the strict
/// round-synchronous schedule exactly.
pub fn simulate_overlapped(
    p: usize,
    num_rounds: usize,
    traffic: &[MsgRecord],
    cost: &CostModel,
    slowdown: &[u64],
    window: usize,
    pipeline_depth: usize,
) -> ScheduleStats {
    let window = window.max(1);
    let run = EventLoop::new(p, num_rounds, traffic, cost, slowdown, window, pipeline_depth).run();

    let servers: Vec<ServerTimeline> = (0..p)
        .map(|i| ServerTimeline {
            server: i,
            busy: run.busy[i],
            blocked: run.blocked[i],
            idle: run.idle[i],
            finish: run.finish[i],
            round_finish: run.round_finish[i].clone(),
        })
        .collect();
    let barrier_wait: Vec<u64> = (0..num_rounds)
        .map(|r| {
            let max = (0..p).map(|i| run.round_finish[i][r]).max().unwrap_or(0);
            let min = (0..p).map(|i| run.round_finish[i][r]).min().unwrap_or(0);
            max - min
        })
        .collect();
    ScheduleStats {
        makespan: run.finish.iter().copied().max().unwrap_or(0),
        critical_path: critical_path_bound(p, num_rounds, traffic, cost, slowdown, pipeline_depth),
        servers,
        barrier_wait,
        stragglers: slowdown.iter().enumerate().filter(|(_, &s)| s > 1).map(|(i, _)| i).collect(),
        queue_window: window,
        pipeline_depth,
    }
}

/// The critical-path lower bound: the latest round-`R` compute finish any
/// execution of this traffic could achieve, considering only (a) chains of
/// data dependencies (a packet cannot be ingested before its sender's
/// round started, its predecessors on the same uplink serialized, the wire
/// latency elapsed, and its own ingest ran) and (b) each server's
/// cumulative single-resource work per round (all serializations plus all
/// ingests precede the round's compute).
///
/// Both are true of the event loop regardless of window size or action
/// interleaving, so `makespan >= critical_path` holds by construction —
/// scheduling choices and backpressure can only add waiting on top.
///
/// With `pipeline_depth > 0` a round's ingest work may overlap earlier
/// rounds, so the per-round work bound drops its ingest term (only the
/// round's sends are guaranteed to sit between the previous compute and
/// this one); the chain bound still holds, and a per-server **total-work
/// floor** (one resource must eventually do *all* of its serialization,
/// ingest and compute ticks) is added back globally.
fn critical_path_bound(
    p: usize,
    num_rounds: usize,
    traffic: &[MsgRecord],
    cost: &CostModel,
    slowdown: &[u64],
    pipeline_depth: usize,
) -> u64 {
    let slow = |id: usize| if id < p { slowdown[id].max(1) } else { 1 };
    let num_actors = traffic.iter().map(|m| m.from + 1).max().unwrap_or(p).max(p);
    // Canonical send order, bucketed by round (one pass over the traffic;
    // the prefix-sum chain below needs each uplink's packets in order).
    let mut by_round: Vec<Vec<&MsgRecord>> = vec![Vec::new(); num_rounds];
    for m in traffic {
        by_round[m.round - 1].push(m);
    }
    for bucket in &mut by_round {
        bucket.sort_unstable_by_key(|m| (m.from, m.to, m.bytes, m.seq));
    }

    // `ready[id]` = earliest possible start of the current round.
    let mut ready = vec![0u64; num_actors];
    let mut finish = vec![0u64; p];
    let mut total_work = vec![0u64; p];
    for round in 1..=num_rounds {
        // Chain bound: prefix serialization on each uplink, then latency,
        // then the packet's own ingest.
        let mut uplink = ready.clone();
        let mut ingest_chain = vec![0u64; p]; // max over packets to i
        let mut send_work = vec![0u64; num_actors];
        let mut recv_work = vec![0u64; p];
        let mut recv_tuples = vec![0u64; p];
        for m in &by_round[round - 1] {
            let ser = m.bytes.saturating_mul(cost.send_ticks_per_byte).saturating_mul(slow(m.from));
            let ing = m.bytes.saturating_mul(cost.recv_ticks_per_byte).saturating_mul(slow(m.to));
            uplink[m.from] = uplink[m.from].saturating_add(ser);
            send_work[m.from] = send_work[m.from].saturating_add(ser);
            recv_work[m.to] = recv_work[m.to].saturating_add(ing);
            recv_tuples[m.to] = recv_tuples[m.to].saturating_add(m.tuples);
            ingest_chain[m.to] = ingest_chain[m.to]
                .max(uplink[m.from].saturating_add(cost.link_latency).saturating_add(ing));
        }
        for i in 0..p {
            // Work bound: one resource does all the round's sends — and,
            // without overlap, all the round's ingests — before computing.
            let mut work = ready[i].saturating_add(send_work[i]);
            if pipeline_depth == 0 {
                work = work.saturating_add(recv_work[i]);
            }
            let compute = recv_tuples[i]
                .saturating_mul(cost.compute_ticks_per_tuple)
                .saturating_add(cost.round_overhead)
                .saturating_mul(slow(i));
            finish[i] = work.max(ingest_chain[i]).saturating_add(compute);
            total_work[i] = total_work[i]
                .saturating_add(send_work[i])
                .saturating_add(recv_work[i])
                .saturating_add(compute);
        }
        ready[..p].copy_from_slice(&finish);
    }
    let chain = finish.iter().copied().max().unwrap_or(0);
    let floor = total_work.iter().copied().max().unwrap_or(0);
    chain.max(floor)
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

/// What an actor is waiting for while parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    /// Waiting for packets to arrive (accounted as idle).
    Arrival,
    /// Waiting for a full send window to drain (accounted as blocked).
    Window,
}

/// An outgoing packet in canonical send order.
#[derive(Debug, Clone)]
struct OutMsg {
    to: usize,
    bytes: u64,
    round: usize,
}

/// An arrived-but-not-yet-ingested packet in a worker's inbox, ordered by
/// `(arrival, from, seq)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Offer {
    arrival: u64,
    from: usize,
    seq: u64,
    bytes: u64,
    round: usize,
}

#[derive(Debug)]
struct Actor {
    /// Worker (`id < p`) or input server (`id >= p`, round-1 sends only).
    is_worker: bool,
    clock: u64,
    busy: u64,
    blocked: u64,
    idle: u64,
    round: usize,
    /// Outgoing packets per round (index `round - 1`), canonical order.
    out: Vec<Vec<OutMsg>>,
    out_idx: usize,
    /// Arrived-but-not-ingested packets, per round (index `round - 1`).
    /// A server only ingests its *current* round's packets; packets that
    /// race ahead wait here, exactly like the thread backend's stash —
    /// this keeps each round's ingest work inside that round's timeline,
    /// which the critical-path work bound relies on.
    pending: Vec<BinaryHeap<Reverse<Offer>>>,
    /// Packets ingested so far, per round (index `round - 1`).
    ingested: Vec<u64>,
    /// Packets this worker will receive, per round.
    expected: Vec<u64>,
    /// Tuples this worker will receive, per round (a packet is a columnar
    /// block carrying one or more tuples; compute cost scales with
    /// tuples, not packets).
    expected_tuples: Vec<u64>,
    wait: Option<(WaitKind, u64)>,
    round_finish: Vec<u64>,
    done: bool,
}

#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    /// A packet reaches its receiver's inbox.
    Deliver(usize, Offer),
    /// An actor is runnable again at its clock.
    Step(usize),
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    /// Delivers before steps at equal times so a stepping server sees
    /// everything that has arrived "by now".
    prio: u8,
    /// Strictly monotone stamp: a deterministic total order.
    stamp: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.prio, self.stamp).cmp(&(other.time, other.prio, other.stamp))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct RunOutcome {
    busy: Vec<u64>,
    blocked: Vec<u64>,
    idle: Vec<u64>,
    finish: Vec<u64>,
    round_finish: Vec<Vec<u64>>,
}

struct EventLoop<'a> {
    p: usize,
    num_rounds: usize,
    cost: &'a CostModel,
    slowdown: &'a [u64],
    window: usize,
    /// Rounds ahead of its current one a worker may ingest from.
    depth: usize,
    actors: Vec<Actor>,
    /// In-flight (sent, not yet ingested) packet count per link
    /// `from * p + to`.
    in_flight: Vec<usize>,
    /// `(round, seq)` of the last packet ingested per link `from * p + to`
    /// — overlap must never reorder a per-link FIFO, asserted on every
    /// ingest.
    last_ingest: Vec<(usize, u64)>,
    events: BinaryHeap<Reverse<Event>>,
    stamp: u64,
}

impl<'a> EventLoop<'a> {
    fn new(
        p: usize,
        num_rounds: usize,
        traffic: &[MsgRecord],
        cost: &'a CostModel,
        slowdown: &'a [u64],
        window: usize,
        depth: usize,
    ) -> Self {
        assert_eq!(slowdown.len(), p, "one slowdown multiplier per worker");
        let num_actors = traffic.iter().map(|m| m.from + 1).max().unwrap_or(p).max(p);

        // Canonical per-sender send order: independent of the threaded
        // execution's arrival interleaving.
        let mut sorted: Vec<&MsgRecord> = traffic.iter().collect();
        sorted.sort_unstable_by_key(|m| (m.from, m.round, m.to, m.bytes, m.seq));

        let mut actors: Vec<Actor> = (0..num_actors)
            .map(|id| Actor {
                is_worker: id < p,
                clock: 0,
                busy: 0,
                blocked: 0,
                idle: 0,
                round: 1,
                out: vec![Vec::new(); num_rounds],
                out_idx: 0,
                pending: (0..num_rounds).map(|_| BinaryHeap::new()).collect(),
                ingested: vec![0; num_rounds],
                expected: vec![0; num_rounds],
                expected_tuples: vec![0; num_rounds],
                wait: None,
                round_finish: vec![0; num_rounds],
                done: false,
            })
            .collect();
        for m in sorted {
            debug_assert!(m.to < p && m.round >= 1 && m.round <= num_rounds);
            actors[m.from].out[m.round - 1].push(OutMsg {
                to: m.to,
                bytes: m.bytes,
                round: m.round,
            });
            actors[m.to].expected[m.round - 1] += 1;
            actors[m.to].expected_tuples[m.round - 1] += m.tuples;
        }

        let mut el = EventLoop {
            p,
            num_rounds,
            cost,
            slowdown,
            window,
            depth,
            actors,
            in_flight: vec![0; num_actors * p],
            last_ingest: vec![(0, 0); num_actors * p],
            events: BinaryHeap::new(),
            stamp: 0,
        };
        for id in 0..num_actors {
            el.schedule_step(id, 0);
        }
        el
    }

    fn slow(&self, id: usize) -> u64 {
        if id < self.p {
            self.slowdown[id].max(1)
        } else {
            1 // input servers are never stragglers
        }
    }

    fn push_event(&mut self, time: u64, prio: u8, kind: EventKind) {
        self.stamp += 1;
        self.events.push(Reverse(Event { time, prio, stamp: self.stamp, kind }));
    }

    fn schedule_step(&mut self, id: usize, time: u64) {
        self.push_event(time, 1, EventKind::Step(id));
    }

    /// Wake a parked actor at `time`, charging the elapsed wait to the
    /// span its wait kind dictates.
    fn wake(&mut self, id: usize, time: u64) {
        if let Some((kind, since)) = self.actors[id].wait.take() {
            let span = time.saturating_sub(since);
            match kind {
                WaitKind::Arrival => self.actors[id].idle += span,
                WaitKind::Window => self.actors[id].blocked += span,
            }
            self.actors[id].clock = time;
            self.schedule_step(id, time);
        }
    }

    fn run(mut self) -> RunOutcome {
        while let Some(Reverse(ev)) = self.events.pop() {
            match ev.kind {
                EventKind::Deliver(to, offer) => {
                    self.actors[to].pending[offer.round - 1].push(Reverse(offer));
                    self.wake(to, ev.time);
                }
                EventKind::Step(id) => self.step(id),
            }
        }
        let p = self.p;
        RunOutcome {
            busy: self.actors[..p].iter().map(|a| a.busy).collect(),
            blocked: self.actors[..p].iter().map(|a| a.blocked).collect(),
            idle: self.actors[..p].iter().map(|a| a.idle).collect(),
            finish: self.actors[..p].iter().map(|a| a.clock).collect(),
            round_finish: self.actors[..p].iter().map(|a| a.round_finish.clone()).collect(),
        }
    }

    /// Perform one action for `id` at its clock, then reschedule or park.
    fn step(&mut self, id: usize) {
        if self.actors[id].done || self.actors[id].wait.is_some() {
            return;
        }
        let now = self.actors[id].clock;
        let slow = self.slow(id);

        // 1. Ingest the earliest arrived packet of the *current* round,
        //    if any (workers only — nothing is ever addressed to an input
        //    server). Future-round packets wait in their pending heap, so
        //    every round's ingest work lands inside that round's span of
        //    the timeline.
        let current = self.actors[id].round - 1;
        if let Some(Reverse(offer)) = self.actors[id].pending[current].pop() {
            self.ingest_offer(id, offer, now, slow);
            return;
        }

        // 2. Serialize the next outgoing packet of the current round.
        let round_idx = self.actors[id].round - 1;
        if let Some(msg) = self.actors[id].out[round_idx].get(self.actors[id].out_idx).cloned() {
            if self.in_flight[id * self.p + msg.to] < self.window {
                let dur =
                    msg.bytes.saturating_mul(self.cost.send_ticks_per_byte).saturating_mul(slow);
                let a = &mut self.actors[id];
                a.busy = a.busy.saturating_add(dur);
                a.clock = now.saturating_add(dur);
                let seq = a.out_idx as u64;
                a.out_idx += 1;
                let depart = a.clock;
                self.in_flight[id * self.p + msg.to] += 1;
                let offer = Offer {
                    arrival: depart.saturating_add(self.cost.link_latency),
                    from: id,
                    seq,
                    bytes: msg.bytes,
                    round: msg.round,
                };
                self.push_event(offer.arrival, 0, EventKind::Deliver(msg.to, offer));
                self.schedule_step(id, depart);
            } else {
                // Backpressure: park until the receiver drains the window.
                self.actors[id].wait = Some((WaitKind::Window, now));
            }
            return;
        }

        // 3. All sends of this round done. Input servers are finished;
        //    workers compute once the round's inbound is fully ingested.
        if !self.actors[id].is_worker {
            self.actors[id].done = true;
            return;
        }
        if self.actors[id].ingested[round_idx] == self.actors[id].expected[round_idx] {
            let tuples = self.actors[id].expected_tuples[round_idx];
            let dur = tuples
                .saturating_mul(self.cost.compute_ticks_per_tuple)
                .saturating_add(self.cost.round_overhead)
                .saturating_mul(slow);
            let a = &mut self.actors[id];
            a.busy = a.busy.saturating_add(dur);
            a.clock = now.saturating_add(dur);
            a.round_finish[round_idx] = a.clock;
            if a.round == self.num_rounds {
                a.done = true;
            } else {
                a.round += 1;
                a.out_idx = 0;
                let t = a.clock;
                self.schedule_step(id, t);
            }
            return;
        }

        // 4. The current round is waiting on arrivals. With a pipeline
        //    depth `d > 0`, fill the wait by pre-ingesting an arrived
        //    packet up to `d` rounds ahead — the double-buffered data
        //    plane hashing round `r+1` tuples while round `r` lanes
        //    drain. The current round always takes priority (steps 1–3),
        //    so overlap never reorders a per-link FIFO; packets beyond the
        //    depth window keep waiting in their pending heap.
        let horizon = current.saturating_add(self.depth).min(self.num_rounds - 1);
        let ahead =
            ((current + 1)..=horizon).find_map(|r| self.actors[id].pending[r].pop().map(|o| o.0));
        if let Some(offer) = ahead {
            self.ingest_offer(id, offer, now, slow);
            return;
        }

        // 5. Nothing to do until more packets arrive.
        self.actors[id].wait = Some((WaitKind::Arrival, now));
    }

    /// Charge the ingest of `offer` to worker `id` starting at `now`,
    /// decrement the link's in-flight window (possibly unblocking the
    /// sender), and reschedule the worker.
    fn ingest_offer(&mut self, id: usize, offer: Offer, now: u64, slow: u64) {
        let link = offer.from * self.p + id;
        assert!(
            (offer.round, offer.seq) > self.last_ingest[link],
            "per-link FIFO reordered: link {} ingested {:?} after {:?}",
            link,
            (offer.round, offer.seq),
            self.last_ingest[link],
        );
        self.last_ingest[link] = (offer.round, offer.seq);
        let dur = offer.bytes.saturating_mul(self.cost.recv_ticks_per_byte).saturating_mul(slow);
        let a = &mut self.actors[id];
        a.busy = a.busy.saturating_add(dur);
        a.clock = now.saturating_add(dur);
        a.ingested[offer.round - 1] += 1;
        let done_at = a.clock;
        self.in_flight[link] -= 1;
        // The freed window slot may unblock the sender.
        if self.actors[offer.from].wait.map(|(k, _)| k) == Some(WaitKind::Window) {
            let s = offer.from;
            let next_ok = {
                let sa = &self.actors[s];
                sa.out[sa.round - 1]
                    .get(sa.out_idx)
                    .is_some_and(|m| self.in_flight[s * self.p + m.to] < self.window)
            };
            if next_ok {
                self.wake(s, done_at.max(self.actors[s].clock));
            }
        }
        self.schedule_step(id, done_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-1 traffic: one input server fanning `n` packets of `bytes`
    /// bytes out to `p` workers, round-robin.
    fn fanout(p: usize, n: usize, bytes: u64) -> Vec<MsgRecord> {
        (0..n)
            .map(|i| MsgRecord { round: 1, from: p, to: i % p, seq: i as u64, bytes, tuples: 1 })
            .collect()
    }

    #[test]
    fn empty_traffic_still_pays_round_overhead() {
        let cost = CostModel::default();
        let stats = simulate(4, 2, &[], &cost, &[1; 4], 8);
        assert_eq!(stats.num_rounds(), 2);
        // Every worker computes twice with no inputs: 2 * overhead.
        for s in &stats.servers {
            assert_eq!(s.finish, 2 * cost.round_overhead);
            assert_eq!(s.busy, 2 * cost.round_overhead);
            assert!(s.span_partition_holds());
        }
        assert_eq!(stats.makespan, stats.critical_path);
        assert_eq!(stats.barrier_wait, vec![0, 0]);
    }

    #[test]
    fn free_model_collapses_to_zero_ticks() {
        let stats = simulate(4, 1, &fanout(4, 100, 16), &CostModel::free(), &[1; 4], 4);
        assert_eq!(stats.makespan, 0);
        assert_eq!(stats.critical_path, 0);
        assert_eq!(stats.schedule_efficiency(), 1.0);
    }

    #[test]
    fn balanced_fanout_levels_rounds_better_than_a_skewed_one() {
        let balanced = simulate(4, 1, &fanout(4, 40, 8), &CostModel::default(), &[1; 4], 8);
        // Same volume, but everything lands on worker 0.
        let skewed: Vec<MsgRecord> = (0..40)
            .map(|i| MsgRecord { round: 1, from: 4, to: 0, seq: i as u64, bytes: 8, tuples: 1 })
            .collect();
        let skewed = simulate(4, 1, &skewed, &CostModel::default(), &[1; 4], 8);
        assert!(balanced.barrier_wait[0] < skewed.barrier_wait[0]);
        assert!(balanced.makespan >= balanced.critical_path);
        for s in &balanced.servers {
            assert!(s.span_partition_holds());
        }
    }

    #[test]
    fn straggler_inflates_makespan_and_barrier_wait() {
        let traffic = fanout(4, 40, 8);
        let plain = simulate(4, 1, &traffic, &CostModel::default(), &[1; 4], 8);
        let slowed = simulate(4, 1, &traffic, &CostModel::default(), &[1, 1, 6, 1], 8);
        assert!(slowed.makespan > plain.makespan);
        assert!(slowed.barrier_wait[0] > 0);
        // The slowdown changes the schedule, never the traffic.
        assert_eq!(plain.num_rounds(), slowed.num_rounds());
    }

    #[test]
    fn straggler_spec_is_deterministic_and_clamped() {
        let spec = StragglerSpec::new(7, 100, 0);
        assert_eq!(spec.slowdown, 1, "slowdown clamps to >= 1");
        assert_eq!(spec.pick(4).len(), 4, "count clamps to p");
        let v = StragglerSpec::new(7, 1, 5).slowdown_vector(8);
        assert_eq!(v.iter().filter(|&&s| s == 5).count(), 1);
        assert_eq!(v.iter().filter(|&&s| s == 1).count(), 7);
    }

    #[test]
    fn tight_window_inflates_makespan_above_the_critical_path() {
        // Everything funnels into worker 0: the sender feels backpressure
        // through a window of 1 (each packet's serialization waits for the
        // previous packet's ingest), stretching the makespan well above
        // the dependency/work lower bound.
        let p = 4;
        let traffic: Vec<MsgRecord> = (0..60)
            .map(|i| MsgRecord { round: 1, from: p, to: 0, seq: i as u64, bytes: 64, tuples: 1 })
            .collect();
        let tight = simulate(p, 1, &traffic, &CostModel::default(), &[1; 4], 1);
        assert!(tight.makespan > tight.critical_path);
        // A generous window lets the uplink pipeline: here arrivals keep
        // exact pace with worker 0's ingest, so the bound is achieved.
        let wide = simulate(p, 1, &traffic, &CostModel::default(), &[1; 4], 1024);
        assert_eq!(wide.makespan, wide.critical_path);
        assert!(tight.makespan > wide.makespan);
    }

    #[test]
    fn extreme_costs_saturate_instead_of_overflowing() {
        // A pathological slowdown must saturate the virtual clock, not
        // wrap it (wrapping would make the straggler look *fast*).
        let stats = simulate(2, 1, &fanout(2, 10, 8), &CostModel::default(), &[u64::MAX, 1], 4);
        assert_eq!(stats.makespan, u64::MAX);
        assert!(stats.makespan >= stats.critical_path);
        let huge = CostModel {
            link_latency: u64::MAX / 2,
            send_ticks_per_byte: u64::MAX / 2,
            recv_ticks_per_byte: u64::MAX / 2,
            compute_ticks_per_tuple: u64::MAX / 2,
            round_overhead: u64::MAX / 2,
        };
        let stats = simulate(2, 1, &fanout(2, 10, 8), &huge, &[1; 2], 4);
        assert!(stats.makespan >= stats.critical_path);
    }

    #[test]
    fn makespan_dominates_critical_path_on_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Brute-force the invariant over adversarial shapes: arbitrary
        // fan-in/fan-out, zero-cost components, heavy slowdowns, tiny
        // windows — the regime where greedy scheduling anomalies lurk.
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for case in 0..300 {
            let p = rng.gen_range(2..5usize);
            let rounds = rng.gen_range(1..4usize);
            let n = rng.gen_range(0..80usize);
            let traffic: Vec<MsgRecord> = (0..n)
                .map(|s| {
                    let round = rng.gen_range(1..=rounds);
                    let from =
                        if round == 1 { p + rng.gen_range(0..2usize) } else { rng.gen_range(0..p) };
                    MsgRecord {
                        round,
                        from,
                        to: rng.gen_range(0..p),
                        seq: s as u64,
                        bytes: rng.gen_range(8..128),
                        tuples: rng.gen_range(1..16),
                    }
                })
                .collect();
            let cost = CostModel {
                link_latency: rng.gen_range(0..8),
                send_ticks_per_byte: rng.gen_range(0..4),
                recv_ticks_per_byte: rng.gen_range(0..4),
                compute_ticks_per_tuple: rng.gen_range(0..64),
                round_overhead: rng.gen_range(0..32),
            };
            let slowdown: Vec<u64> = (0..p).map(|_| rng.gen_range(1..8)).collect();
            let window = [1usize, 2, 8, 64][rng.gen_range(0..4usize)];
            let stats = simulate(p, rounds, &traffic, &cost, &slowdown, window);
            assert!(
                stats.makespan >= stats.critical_path,
                "case {case}: makespan {} < critical path {}",
                stats.makespan,
                stats.critical_path
            );
            for s in &stats.servers {
                assert!(s.span_partition_holds(), "case {case}: server {} leaks", s.server);
            }
        }
    }

    #[test]
    fn zero_depth_overlap_is_the_round_synchronous_schedule() {
        let traffic = fanout(4, 40, 8);
        let strict = simulate(4, 1, &traffic, &CostModel::default(), &[1; 4], 8);
        let overlapped = simulate_overlapped(4, 1, &traffic, &CostModel::default(), &[1; 4], 8, 0);
        assert_eq!(strict, overlapped);
        assert_eq!(strict.pipeline_depth, 0);
    }

    #[test]
    fn pre_ingesting_the_next_round_fills_idle_time() {
        // Worker 0 waits ~1000 ticks for a huge round-1 packet while
        // worker 1's round-2 packet sits arrived in its inbox. With
        // pipeline depth 1 the wait absorbs that packet's ingest, so the
        // makespan drops by exactly its 100 ingest ticks.
        let traffic = vec![
            MsgRecord { round: 1, from: 2, to: 0, seq: 0, bytes: 1000, tuples: 1 },
            MsgRecord { round: 2, from: 1, to: 0, seq: 0, bytes: 100, tuples: 1 },
        ];
        let cost = CostModel::default();
        let strict = simulate_overlapped(2, 2, &traffic, &cost, &[1; 2], 8, 0);
        let piped = simulate_overlapped(2, 2, &traffic, &cost, &[1; 2], 8, 1);
        assert_eq!(strict.makespan, 2152);
        assert_eq!(piped.makespan, 2052);
        assert!(piped.makespan >= piped.critical_path);
        for s in &piped.servers {
            assert!(s.span_partition_holds());
        }
        // The pre-ingested ticks moved from idle to busy, one for one.
        assert_eq!(piped.total_idle() + 100, strict.total_idle());
    }

    #[test]
    fn blockwise_traffic_pays_compute_per_tuple_not_per_packet() {
        // One 10-tuple block must cost the same compute as ten 1-tuple
        // packets of the same total size.
        let block = vec![MsgRecord { round: 1, from: 2, to: 0, seq: 0, bytes: 80, tuples: 10 }];
        let tuples: Vec<MsgRecord> = (0..10)
            .map(|i| MsgRecord { round: 1, from: 2, to: 0, seq: i, bytes: 8, tuples: 1 })
            .collect();
        let cost = CostModel::default();
        let a = simulate(2, 1, &block, &cost, &[1; 2], 64);
        let b = simulate(2, 1, &tuples, &cost, &[1; 2], 64);
        let busy_compute = |s: &ScheduleStats| s.servers[0].busy;
        // Same ingest bytes, same compute tuples; only per-packet latency
        // overlap may differ, which busy ticks don't include.
        assert_eq!(busy_compute(&a), busy_compute(&b));
    }

    #[test]
    fn overlap_keeps_invariants_on_random_traffic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // The depth-generalised loop must keep every schedule invariant —
        // and its internal per-link FIFO assertion quiet — across
        // adversarial shapes and depths.
        let mut rng = StdRng::seed_from_u64(0xD00B1E);
        for case in 0..200 {
            let p = rng.gen_range(2..5usize);
            let rounds = rng.gen_range(1..5usize);
            let n = rng.gen_range(0..60usize);
            let traffic: Vec<MsgRecord> = (0..n)
                .map(|s| {
                    let round = rng.gen_range(1..=rounds);
                    let from =
                        if round == 1 { p + rng.gen_range(0..2usize) } else { rng.gen_range(0..p) };
                    MsgRecord {
                        round,
                        from,
                        to: rng.gen_range(0..p),
                        seq: s as u64,
                        bytes: rng.gen_range(8..256),
                        tuples: rng.gen_range(1..32),
                    }
                })
                .collect();
            let slowdown: Vec<u64> = (0..p).map(|_| rng.gen_range(1..6)).collect();
            let window = [1usize, 2, 64][rng.gen_range(0..3usize)];
            for depth in 0..3usize {
                let stats = simulate_overlapped(
                    p,
                    rounds,
                    &traffic,
                    &CostModel::default(),
                    &slowdown,
                    window,
                    depth,
                );
                assert!(
                    stats.makespan >= stats.critical_path,
                    "case {case} depth {depth}: makespan {} < critical path {}",
                    stats.makespan,
                    stats.critical_path
                );
                assert_eq!(stats.pipeline_depth, depth);
                for s in &stats.servers {
                    assert!(s.span_partition_holds(), "case {case} depth {depth} leaks");
                }
            }
        }
    }

    #[test]
    fn schedule_is_independent_of_traffic_permutation() {
        let mut traffic = fanout(3, 30, 8);
        let a = simulate(3, 1, &traffic, &CostModel::default(), &[1; 3], 4);
        traffic.reverse();
        let b = simulate(3, 1, &traffic, &CostModel::default(), &[1; 3], 4);
        assert_eq!(a, b, "canonicalisation makes the schedule order-independent");
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let stats = simulate(2, 1, &fanout(2, 10, 8), &CostModel::default(), &[1; 2], 4);
        let s = stats.summary();
        assert!(s.contains("makespan"));
        assert!(s.contains("critical path"));
        assert_eq!(s, stats.to_string());
    }
}
