//! Communication statistics collected by the simulator.

use std::fmt;

use serde::Serialize;

use mpc_storage::Relation;

/// Communication statistics of one round.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RoundStats {
    /// Round number (1-based).
    pub round: usize,
    /// Maximum bytes received by any single server this round — the
    /// quantity bounded by `c · N / p^{1−ε}` in the MPC model.
    pub max_bytes_received: u64,
    /// Total bytes received across all servers this round.
    pub total_bytes_received: u64,
    /// Maximum tuples received by any single server this round.
    pub max_tuples_received: u64,
    /// Total tuples received across all servers this round.
    pub total_tuples_received: u64,
    /// The configured per-server budget in bytes for this input.
    pub budget_bytes: u64,
    /// Whether some server exceeded the budget this round.
    pub exceeds_budget: bool,
    /// `total_bytes_received / input_bytes`: the replication rate of this
    /// round (the model allows up to `load_factor · p^ε`).
    pub replication_rate: f64,
    /// Ratio of max to mean received bytes: 1.0 means perfectly balanced.
    pub balance_ratio: f64,
}

/// The result of running an [`crate::MpcProgram`] on the simulator.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The union of all servers' outputs (deduplicated).
    pub output: Relation,
    /// Per-round communication statistics.
    pub rounds: Vec<RoundStats>,
    /// Number of output tuples produced by each server (before
    /// deduplication across servers).
    pub per_server_output: Vec<usize>,
    /// Input size in bytes (the `N` used for the budget).
    pub input_bytes: u64,
}

impl RunResult {
    /// Number of communication rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The maximum per-server load (bytes) over all rounds.
    pub fn max_load_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.max_bytes_received).max().unwrap_or(0)
    }

    /// The maximum per-server load (tuples) over all rounds.
    pub fn max_load_tuples(&self) -> u64 {
        self.rounds.iter().map(|r| r.max_tuples_received).max().unwrap_or(0)
    }

    /// True if every round respected the budget.
    pub fn within_budget(&self) -> bool {
        self.rounds.iter().all(|r| !r.exceeds_budget)
    }

    /// The largest replication rate over all rounds.
    pub fn max_replication_rate(&self) -> f64 {
        self.rounds.iter().map(|r| r.replication_rate).fold(0.0, f64::max)
    }

    /// Total bytes shuffled over the whole execution.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.total_bytes_received).sum()
    }

    /// The worst max/mean balance ratio over all rounds (1.0 for an empty
    /// run — perfectly balanced by convention).
    pub fn max_balance_ratio(&self) -> f64 {
        self.rounds.iter().map(|r| r.balance_ratio).fold(1.0, f64::max)
    }

    /// One-line human-readable digest of the run: round count, worst
    /// per-server load, replication, balance and the budget verdict. The
    /// experiment binaries print this instead of each hand-formatting the
    /// same fields.
    pub fn summary(&self) -> String {
        format!(
            "{} round(s), {} answers, max load {} B, replication {:.2}, balance {:.2}, {}",
            self.num_rounds(),
            self.output.len(),
            self.max_load_bytes(),
            self.max_replication_rate(),
            self.max_balance_ratio(),
            if self.within_budget() { "within budget" } else { "OVER BUDGET" }
        )
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(round: usize, max: u64, total: u64, budget: u64) -> RoundStats {
        RoundStats {
            round,
            max_bytes_received: max,
            total_bytes_received: total,
            max_tuples_received: max / 16,
            total_tuples_received: total / 16,
            budget_bytes: budget,
            exceeds_budget: max > budget,
            replication_rate: total as f64 / 1000.0,
            balance_ratio: 1.0,
        }
    }

    #[test]
    fn aggregations() {
        let result = RunResult {
            output: Relation::empty("q", 2),
            rounds: vec![round(1, 100, 800, 128), round(2, 200, 600, 128)],
            per_server_output: vec![1, 2, 3],
            input_bytes: 1000,
        };
        assert_eq!(result.num_rounds(), 2);
        assert_eq!(result.max_load_bytes(), 200);
        assert!(!result.within_budget());
        assert_eq!(result.total_bytes(), 1400);
        assert!((result.max_replication_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn summary_and_display_agree() {
        let result = RunResult {
            output: Relation::empty("q", 2),
            rounds: vec![round(1, 100, 800, 128), round(2, 200, 600, 128)],
            per_server_output: vec![1, 2, 3],
            input_bytes: 1000,
        };
        let s = result.summary();
        assert_eq!(s, result.to_string());
        assert!(s.contains("2 round(s)"));
        assert!(s.contains("max load 200 B"));
        assert!(s.contains("OVER BUDGET"));
        assert_eq!(result.max_balance_ratio(), 1.0);
        let ok = RunResult {
            output: Relation::empty("q", 1),
            rounds: vec![round(1, 100, 800, 128)],
            per_server_output: vec![],
            input_bytes: 1000,
        };
        assert!(ok.summary().contains("within budget"));
    }

    #[test]
    fn empty_run() {
        let result = RunResult {
            output: Relation::empty("q", 1),
            rounds: vec![],
            per_server_output: vec![],
            input_bytes: 0,
        };
        assert_eq!(result.max_load_bytes(), 0);
        assert!(result.within_budget());
        assert_eq!(result.max_replication_rate(), 0.0);
    }
}
