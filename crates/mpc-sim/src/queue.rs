//! Bounded per-link queues with backpressure — the transport of the
//! event-driven backend.
//!
//! Every server of the async backend owns one [`Inbox`]: a set of bounded
//! FIFO lanes, one per inbound *link* (one for each peer server plus one
//! for the input router). Senders hold a [`LinkSender`] onto their lane and
//! block — or, via [`LinkSender::send_timeout`], back off — when the lane
//! is full, which is exactly the backpressure a real network stack would
//! exert. The receiving side drains all lanes through a single
//! [`InboxReceiver`], waking on the arrival of a packet on any lane.
//!
//! Lanes preserve per-sender FIFO order (the property the round protocol
//! of [`crate::cluster_async`] relies on: a round-`r` tuple from server `s`
//! is always seen before `s`'s round-`r` FIN marker), while packets from
//! *different* senders may interleave arbitrarily — as on a real network.
//!
//! The queues are built on `std` mutexes and condvars only; no external
//! dependencies. Capacity is counted in packets, matching the per-link
//! window of the virtual-clock model in [`crate::schedule`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The shared state of one receiver's inbound lanes.
#[derive(Debug)]
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a packet arrives on any lane (receiver waits here).
    arrived: Condvar,
    /// Signalled when the receiver pops a packet or goes away (blocked
    /// senders wait here).
    space: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    lanes: Vec<VecDeque<T>>,
    capacity: usize,
    /// Total packets over all lanes (so the receiver need not scan).
    pending: usize,
    /// Cleared when the receiver is dropped; senders then fail fast
    /// instead of blocking forever.
    open: bool,
    /// Round-robin cursor so no lane can starve the others.
    cursor: usize,
}

/// Outcome of a non-blocking or bounded-wait send attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum SendAttempt<T> {
    /// The packet was enqueued.
    Sent,
    /// The lane is still full after the wait; the packet is handed back so
    /// the caller can service its own inbox and retry (the event-driven
    /// send loop of the async backend).
    Full(T),
    /// The receiver is gone; the packet is handed back.
    Closed(T),
}

/// The sending end of one link into a server's [`Inbox`]. Cloneable:
/// clones share the same lane (and its capacity).
#[derive(Debug)]
pub struct LinkSender<T> {
    shared: Arc<Shared<T>>,
    lane: usize,
}

impl<T> Clone for LinkSender<T> {
    fn clone(&self) -> Self {
        LinkSender { shared: Arc::clone(&self.shared), lane: self.lane }
    }
}

impl<T> LinkSender<T> {
    /// Block until the packet is enqueued (backpressure) or the receiver
    /// is gone.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        loop {
            if !inner.open {
                return Err(value);
            }
            if inner.lanes[self.lane].len() < inner.capacity {
                inner.lanes[self.lane].push_back(value);
                inner.pending += 1;
                self.shared.arrived.notify_one();
                return Ok(());
            }
            inner = self.shared.space.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Wait at most `timeout` for space; on [`SendAttempt::Full`] the
    /// caller gets the packet back to retry after draining its own inbox.
    /// Wakeups for *other* lanes of the same inbox do not cut the wait
    /// short: the deadline is re-armed until this lane has space, the
    /// timeout truly expires, or the receiver goes away.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> SendAttempt<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        loop {
            if !inner.open {
                return SendAttempt::Closed(value);
            }
            if inner.lanes[self.lane].len() < inner.capacity {
                inner.lanes[self.lane].push_back(value);
                inner.pending += 1;
                self.shared.arrived.notify_one();
                return SendAttempt::Sent;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return SendAttempt::Full(value);
            };
            let (guard, _timed_out) =
                self.shared.space.wait_timeout(inner, remaining).expect("queue mutex poisoned");
            inner = guard;
        }
    }

    /// The lane's current fill level as a fraction of its capacity
    /// (`queued / capacity`). Can exceed 1.0 after [`LinkSender::force_send`]
    /// pushed past the bound. A point-in-time probe — the adaptive block
    /// sizing of [`crate::block::AdaptivePolicy`] samples it between block
    /// sends to decide whether the link is running hot or cold.
    pub fn occupancy(&self) -> f64 {
        let inner = self.shared.inner.lock().expect("queue mutex poisoned");
        inner.lanes[self.lane].len() as f64 / inner.capacity as f64
    }

    /// Enqueue ignoring the capacity bound. Reserved for control packets
    /// (aborts) that must never deadlock behind data traffic.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the receiver was dropped.
    pub fn force_send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        if !inner.open {
            return Err(value);
        }
        inner.lanes[self.lane].push_back(value);
        inner.pending += 1;
        self.shared.arrived.notify_one();
        Ok(())
    }
}

/// The receiving end of an [`Inbox`]: drains all lanes, fairly.
#[derive(Debug)]
pub struct InboxReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> InboxReceiver<T> {
    /// Block until a packet is available on any lane and return it. Lanes
    /// are polled round-robin so a chatty sender cannot starve the rest.
    pub fn recv(&self) -> T {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        loop {
            if inner.pending > 0 {
                return self.pop(&mut inner);
            }
            inner = self.shared.arrived.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Pop a packet if one is immediately available.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        if inner.pending > 0 {
            Some(self.pop(&mut inner))
        } else {
            None
        }
    }

    /// Block until at least one packet is available, then drain
    /// *everything* currently pending into `buf` under a single lock
    /// acquisition. Returns the number of packets appended. This is the
    /// batched receive of the columnar data plane: one mutex/condvar round
    /// trip per burst instead of one per packet.
    pub fn recv_many(&self, buf: &mut Vec<T>) -> usize {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        loop {
            if inner.pending > 0 {
                return self.drain(&mut inner, buf);
            }
            inner = self.shared.arrived.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Drain everything currently pending into `buf` without blocking.
    /// Returns the number of packets appended (0 when the inbox is empty).
    pub fn try_recv_many(&self, buf: &mut Vec<T>) -> usize {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        if inner.pending > 0 {
            self.drain(&mut inner, buf)
        } else {
            0
        }
    }

    fn drain(&self, inner: &mut Inner<T>, buf: &mut Vec<T>) -> usize {
        let n = inner.pending;
        buf.reserve(n);
        for _ in 0..n {
            let v = self.pop(inner);
            buf.push(v);
        }
        n
    }

    fn pop(&self, inner: &mut Inner<T>) -> T {
        let lanes = inner.lanes.len();
        for step in 0..lanes {
            let lane = (inner.cursor + step) % lanes;
            if let Some(v) = inner.lanes[lane].pop_front() {
                inner.cursor = (lane + 1) % lanes;
                inner.pending -= 1;
                // Wake blocked senders only when this pop actually opened
                // a slot on the drained lane (all senders share one
                // condvar, so pops on never-full lanes must not stampede
                // the others). Force-sent packets can leave a lane over
                // capacity; draining past the bound stays silent too.
                if inner.lanes[lane].len() == inner.capacity - 1 {
                    self.shared.space.notify_all();
                }
                return v;
            }
        }
        unreachable!("pending > 0 but every lane was empty");
    }
}

impl<T> Drop for InboxReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("queue mutex poisoned");
        inner.open = false;
        // Unblock every sender so they observe the closure.
        drop(inner);
        self.shared.space.notify_all();
    }
}

/// A server's inbound side: `links` bounded FIFO lanes feeding one
/// receiver.
#[derive(Debug)]
pub struct Inbox;

impl Inbox {
    /// Open an inbox with `links` lanes of `capacity` packets each,
    /// returning one [`LinkSender`] per lane plus the receiver (named
    /// `channel` rather than `new` because it returns the two endpoints,
    /// not an `Inbox`).
    ///
    /// `capacity` is clamped to at least 1 (a zero-capacity lane could
    /// never transport anything).
    ///
    /// ```
    /// use mpc_sim::queue::Inbox;
    ///
    /// let (senders, rx) = Inbox::channel(2, 4);
    /// senders[0].send("from link 0").unwrap();
    /// senders[1].send("from link 1").unwrap();
    /// let mut got = vec![rx.recv(), rx.recv()];
    /// got.sort_unstable();
    /// assert_eq!(got, ["from link 0", "from link 1"]);
    /// assert!(rx.try_recv().is_none());
    /// ```
    pub fn channel<T>(links: usize, capacity: usize) -> (Vec<LinkSender<T>>, InboxReceiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                lanes: (0..links).map(|_| VecDeque::new()).collect(),
                capacity: capacity.max(1),
                pending: 0,
                open: true,
                cursor: 0,
            }),
            arrived: Condvar::new(),
            space: Condvar::new(),
        });
        let senders =
            (0..links).map(|lane| LinkSender { shared: Arc::clone(&shared), lane }).collect();
        (senders, InboxReceiver { shared })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_per_lane() {
        let (senders, rx) = Inbox::channel(1, 8);
        for i in 0..5 {
            senders[0].send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_blocks_and_backpressure_releases() {
        let (senders, rx) = Inbox::channel(1, 2);
        senders[0].send(1).unwrap();
        senders[0].send(2).unwrap();
        // Third send would block: verify via the timeout variant.
        match senders[0].send_timeout(3, Duration::from_millis(10)) {
            SendAttempt::Full(v) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining frees a slot; a blocked sender completes.
        let tx = senders[0].clone();
        let handle = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), 1);
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), 2);
        assert_eq!(rx.recv(), 3);
    }

    #[test]
    fn dropped_receiver_fails_senders_fast() {
        let (senders, rx) = Inbox::channel(1, 1);
        senders[0].send(7).unwrap();
        drop(rx);
        assert_eq!(senders[0].send(8), Err(8));
        assert!(matches!(
            senders[0].send_timeout(9, Duration::from_millis(1)),
            SendAttempt::Closed(9)
        ));
        assert_eq!(senders[0].force_send(10), Err(10));
    }

    #[test]
    fn force_send_ignores_capacity() {
        let (senders, rx) = Inbox::channel(1, 1);
        senders[0].send(1).unwrap();
        senders[0].force_send(2).unwrap();
        senders[0].force_send(3).unwrap();
        assert_eq!((rx.recv(), rx.recv(), rx.recv()), (1, 2, 3));
    }

    #[test]
    fn round_robin_across_lanes() {
        let (senders, rx) = Inbox::channel(3, 8);
        // Lane 0 floods; lanes 1 and 2 each send one packet.
        for _ in 0..4 {
            senders[0].send("flood").unwrap();
        }
        senders[1].send("one").unwrap();
        senders[2].send("two").unwrap();
        let first_three: Vec<&str> = (0..3).map(|_| rx.recv()).collect();
        // Fairness: the single packets are not starved behind the flood.
        assert!(first_three.contains(&"one"));
        assert!(first_three.contains(&"two"));
    }

    #[test]
    fn recv_many_drains_all_lanes_in_one_call() {
        let (senders, rx) = Inbox::channel(3, 8);
        senders[0].send(1).unwrap();
        senders[1].send(2).unwrap();
        senders[2].send(3).unwrap();
        let mut buf = Vec::new();
        assert_eq!(rx.recv_many(&mut buf), 3);
        buf.sort_unstable();
        assert_eq!(buf, vec![1, 2, 3]);
        assert_eq!(rx.try_recv_many(&mut buf), 0, "inbox is now empty");
    }

    #[test]
    fn recv_many_keeps_per_lane_fifo_order() {
        let (senders, rx) = Inbox::channel(2, 16);
        for i in 0..5 {
            senders[0].send(("a", i)).unwrap();
            senders[1].send(("b", i)).unwrap();
        }
        let mut buf = Vec::new();
        rx.recv_many(&mut buf);
        for lane in ["a", "b"] {
            let seqs: Vec<i32> = buf.iter().filter(|(l, _)| *l == lane).map(|(_, i)| *i).collect();
            assert_eq!(seqs, vec![0, 1, 2, 3, 4], "lane {lane} reordered");
        }
    }

    #[test]
    fn recv_many_releases_backpressure() {
        let (senders, rx) = Inbox::channel(1, 2);
        senders[0].send(1).unwrap();
        senders[0].send(2).unwrap();
        let tx = senders[0].clone();
        let handle = thread::spawn(move || tx.send(3));
        let mut buf = Vec::new();
        // The first drain frees the lane; the blocked sender lands its
        // packet, picked up by a follow-up drain.
        rx.recv_many(&mut buf);
        rx.recv_many(&mut buf);
        handle.join().unwrap().unwrap();
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn occupancy_tracks_fill_level() {
        let (senders, rx) = Inbox::channel(2, 4);
        assert_eq!(senders[0].occupancy(), 0.0);
        senders[0].send(1).unwrap();
        senders[0].send(2).unwrap();
        assert_eq!(senders[0].occupancy(), 0.5);
        assert_eq!(senders[1].occupancy(), 0.0, "lanes are probed independently");
        for _ in 0..2 {
            senders[0].send(9).unwrap();
        }
        senders[0].force_send(9).unwrap();
        assert!(senders[0].occupancy() > 1.0, "force_send overshoots the bound");
        drop(rx);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (senders, rx) = Inbox::channel(8, 4);
        let total: usize = thread::scope(|scope| {
            for (i, tx) in senders.iter().enumerate() {
                let tx = tx.clone();
                scope.spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 1000 + j).unwrap();
                    }
                });
            }
            (0..800).map(|_| rx.recv()).collect::<Vec<_>>().len()
        });
        assert_eq!(total, 800);
    }
}
