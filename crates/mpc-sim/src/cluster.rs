//! The round-synchronous execution loop.

use rayon::prelude::*;

use mpc_storage::{Database, Relation};

use crate::config::MpcConfig;
use crate::error::SimError;
use crate::message::Routed;
use crate::program::MpcProgram;
use crate::server::ServerState;
use crate::stats::{RoundStats, RunResult};
use crate::Result;

/// A simulated MPC cluster of `p` workers.
///
/// The cluster owns no data; [`Cluster::run`] takes the input database (the
/// union of the input servers' contents) and an [`MpcProgram`] and executes
/// it round by round, recording per-round communication statistics.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: MpcConfig,
}

impl Cluster {
    /// Create a cluster with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: MpcConfig) -> Result<Self> {
        config.validate()?;
        Ok(Cluster { config })
    }

    /// The configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Execute a program on the given input database.
    ///
    /// # Errors
    ///
    /// Propagates program errors, reports out-of-range destinations, and —
    /// if the configuration requests hard budgets — returns
    /// [`SimError::Overload`] when a server receives more than
    /// `c · N / p^{1−ε}` bytes in a round.
    pub fn run<P: MpcProgram + ?Sized>(&self, program: &P, db: &Database) -> Result<RunResult> {
        let p = self.config.p;
        let input_bytes = db.total_bytes();
        let budget_bytes = self.config.budget_bytes(input_bytes);
        let total_rounds = program.num_rounds();
        if total_rounds == 0 {
            return Err(SimError::Program("program declares zero rounds".to_string()));
        }

        let mut servers: Vec<ServerState> =
            (0..p).map(|i| ServerState::new(i, db.domain_size())).collect();
        let mut rounds = Vec::with_capacity(total_rounds);

        for round in 1..=total_rounds {
            // -- Communication ------------------------------------------------
            let routed: Vec<Routed> = if round == 1 {
                // Input servers route their base tuples (Section 2.4). One
                // logical input server per relation.
                let mut msgs = Vec::new();
                for rel in db.relations() {
                    msgs.extend(program.route_input(rel, p)?);
                }
                msgs
            } else {
                // Workers send join tuples (tuple-based model, Section 4.1).
                let per_server: Vec<Result<Vec<Routed>>> =
                    servers.par_iter().map(|s| program.route_tuples(round, s.id(), s)).collect();
                let mut msgs = Vec::new();
                for r in per_server {
                    msgs.extend(r?);
                }
                msgs
            };

            // -- Delivery ------------------------------------------------------
            for msg in &routed {
                for &dest in &msg.destinations {
                    if dest >= p {
                        return Err(SimError::Program(format!(
                            "destination {dest} out of range for p = {p}"
                        )));
                    }
                    servers[dest].receive(round, &msg.tag, msg.tuple.clone());
                }
            }

            // -- Accounting ----------------------------------------------------
            let stats = self.round_stats(round, &servers, input_bytes, budget_bytes);
            if stats.exceeds_budget && self.config.fail_on_overload {
                let per_server: Vec<u64> =
                    servers.iter().map(|s| s.bytes_received_in_round(round)).collect();
                let (server, received_bytes) = overloaded_server(&per_server);
                return Err(SimError::Overload { round, server, received_bytes, budget_bytes });
            }
            rounds.push(stats);

            // -- Local computation --------------------------------------------
            let computed: Vec<Result<Vec<Relation>>> =
                servers.par_iter().map(|s| program.compute(round, s.id(), s)).collect();
            for (server, result) in servers.iter_mut().zip(computed) {
                for rel in result? {
                    server.add_local(rel);
                }
            }
        }

        // -- Output ------------------------------------------------------------
        let outputs: Vec<Result<Relation>> =
            servers.par_iter().map(|s| program.output(s.id(), s)).collect();
        let mut collected = Vec::with_capacity(p);
        for result in outputs {
            collected.push(result?);
        }
        let (output, per_server_output) = union_outputs(program, collected)?;

        Ok(RunResult { output, rounds, per_server_output, input_bytes })
    }

    fn round_stats(
        &self,
        round: usize,
        servers: &[ServerState],
        input_bytes: u64,
        budget_bytes: u64,
    ) -> RoundStats {
        let per_server: Vec<u64> =
            servers.iter().map(|s| s.bytes_received_in_round(round)).collect();
        let per_server_tuples: Vec<u64> =
            servers.iter().map(|s| s.tuples_received_in_round(round)).collect();
        build_round_stats(round, &per_server, &per_server_tuples, input_bytes, budget_bytes)
    }
}

/// Aggregate per-server received volumes into a [`RoundStats`] — the one
/// formula every backend shares (including the out-of-process runners in
/// `mpc-net`), so their statistics can never drift apart.
pub fn build_round_stats(
    round: usize,
    per_server_bytes: &[u64],
    per_server_tuples: &[u64],
    input_bytes: u64,
    budget_bytes: u64,
) -> RoundStats {
    let max_bytes_received = per_server_bytes.iter().copied().max().unwrap_or(0);
    let total_bytes_received: u64 = per_server_bytes.iter().sum();
    let max_tuples_received = per_server_tuples.iter().copied().max().unwrap_or(0);
    let total_tuples_received: u64 = per_server_tuples.iter().sum();
    let mean = total_bytes_received as f64 / per_server_bytes.len().max(1) as f64;
    RoundStats {
        round,
        max_bytes_received,
        total_bytes_received,
        max_tuples_received,
        total_tuples_received,
        budget_bytes,
        exceeds_budget: max_bytes_received > budget_bytes,
        replication_rate: if input_bytes == 0 {
            0.0
        } else {
            total_bytes_received as f64 / input_bytes as f64
        },
        balance_ratio: if mean == 0.0 { 1.0 } else { max_bytes_received as f64 / mean },
    }
}

/// The server blamed for an overloaded round: the one that received the
/// most bytes (ties broken towards the highest id, as `max_by_key`
/// resolves them — kept identical across backends).
pub fn overloaded_server(per_server_bytes: &[u64]) -> (usize, u64) {
    per_server_bytes.iter().copied().enumerate().max_by_key(|(_, b)| *b).expect("p >= 1")
}

/// Union the per-server outputs into the final (deduplicated) result
/// relation, recording each server's pre-deduplication contribution.
pub fn union_outputs<P: MpcProgram + ?Sized>(
    program: &P,
    outputs: Vec<Relation>,
) -> Result<(Relation, Vec<usize>)> {
    let mut output = Relation::empty(program.output_name(), program.output_arity());
    let mut per_server_output = Vec::with_capacity(outputs.len());
    for rel in outputs {
        per_server_output.push(rel.len());
        if rel.arity() != output.arity() && !rel.is_empty() {
            return Err(SimError::Program(format!(
                "server produced output of arity {} but the program declares arity {}",
                rel.arity(),
                output.arity()
            )));
        }
        for t in rel.iter() {
            output.insert(t.clone()).map_err(|e| SimError::Storage(e.to_string()))?;
        }
    }
    Ok((output, per_server_output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{hash_value, route_relation, BroadcastProgram};
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_storage::join::evaluate;
    use mpc_storage::Tuple;

    /// A one-round shuffle join for L2 = S1(x0,x1), S2(x1,x2): hash both
    /// relations on the join variable x1 (the classic parallel hash join,
    /// space exponent 0).
    struct HashJoinL2 {
        seed: u64,
    }

    impl MpcProgram for HashJoinL2 {
        fn num_rounds(&self) -> usize {
            1
        }

        fn route_input(&self, relation: &Relation, p: usize) -> Result<Vec<Routed>> {
            let position = match relation.name() {
                "S1" => 1, // x1 is the second column of S1
                "S2" => 0, // x1 is the first column of S2
                other => return Err(SimError::Program(format!("unexpected relation {other}"))),
            };
            Ok(route_relation(relation, |t| vec![hash_value(self.seed, t.values()[position], p)]))
        }

        fn compute(
            &self,
            _round: usize,
            _server: usize,
            _state: &ServerState,
        ) -> Result<Vec<Relation>> {
            Ok(Vec::new())
        }

        fn output(&self, _server: usize, state: &ServerState) -> Result<Relation> {
            let db = state.as_database();
            if db.num_relations() < 2 {
                return Ok(Relation::empty("L2", 3));
            }
            Ok(evaluate(&families::chain(2), &db)?)
        }

        fn output_name(&self) -> String {
            "L2".to_string()
        }

        fn output_arity(&self) -> usize {
            3
        }
    }

    #[test]
    fn broadcast_program_matches_sequential_join() {
        let q = families::cycle(3);
        let db = matching_database(&q, 60, 1);
        let cluster = Cluster::new(MpcConfig::new(4, 1.0)).unwrap();
        let result = cluster.run(&BroadcastProgram::new(q.clone()), &db).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(result.output.same_tuples(&expected));
        // Broadcast replicates the input p times.
        assert!((result.rounds[0].replication_rate - 4.0).abs() < 1e-9);
        assert_eq!(result.num_rounds(), 1);
    }

    #[test]
    fn hash_join_matches_sequential_join_and_balances_load() {
        let q = families::chain(2);
        let db = matching_database(&q, 400, 7);
        let cluster = Cluster::new(MpcConfig::new(8, 0.0)).unwrap();
        let result = cluster.run(&HashJoinL2 { seed: 3 }, &db).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(result.output.same_tuples(&expected));
        assert_eq!(expected.len(), 400);
        // No replication: every tuple goes to exactly one server.
        assert!((result.rounds[0].replication_rate - 1.0).abs() < 1e-9);
        // Matching data hash-partitions evenly: within the default budget.
        assert!(result.within_budget());
        // Load should be far below the whole input.
        assert!(result.max_load_bytes() < db.total_bytes() / 4);
    }

    #[test]
    fn hard_budget_overload_is_reported() {
        let q = families::chain(2);
        let db = matching_database(&q, 200, 2);
        // Broadcasting to 8 servers with ε = 0 must blow the budget.
        let cluster = Cluster::new(MpcConfig::new(8, 0.0).with_hard_budget()).unwrap();
        let err = cluster.run(&BroadcastProgram::new(q.clone()), &db).unwrap_err();
        assert!(matches!(err, SimError::Overload { round: 1, .. }));
        // The same program with soft budgets records the violation instead.
        let soft = Cluster::new(MpcConfig::new(8, 0.0)).unwrap();
        let result = soft.run(&BroadcastProgram::new(q), &db).unwrap();
        assert!(!result.within_budget());
    }

    #[test]
    fn out_of_range_destination_is_an_error() {
        struct Bad;
        impl MpcProgram for Bad {
            fn num_rounds(&self) -> usize {
                1
            }
            fn route_input(&self, relation: &Relation, p: usize) -> Result<Vec<Routed>> {
                Ok(relation.iter().map(|t| Routed::new("R", t.clone(), vec![p + 3])).collect())
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn output(&self, _: usize, _: &ServerState) -> Result<Relation> {
                Ok(Relation::empty("out", 1))
            }
            fn output_arity(&self) -> usize {
                1
            }
        }
        let mut db = Database::new(5);
        db.insert_relation(Relation::from_tuples("R", 1, vec![[1u64]]).unwrap());
        let cluster = Cluster::new(MpcConfig::new(2, 0.0)).unwrap();
        let err = cluster.run(&Bad, &db).unwrap_err();
        assert!(matches!(err, SimError::Program(_)));
    }

    #[test]
    fn zero_round_program_is_rejected() {
        struct Zero;
        impl MpcProgram for Zero {
            fn num_rounds(&self) -> usize {
                0
            }
            fn route_input(&self, _: &Relation, _: usize) -> Result<Vec<Routed>> {
                Ok(Vec::new())
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn output(&self, _: usize, _: &ServerState) -> Result<Relation> {
                Ok(Relation::empty("out", 1))
            }
            fn output_arity(&self) -> usize {
                1
            }
        }
        let db = Database::new(5);
        let cluster = Cluster::new(MpcConfig::new(2, 0.0)).unwrap();
        assert!(matches!(cluster.run(&Zero, &db), Err(SimError::Program(_))));
    }

    #[test]
    fn per_server_output_counts_are_recorded() {
        let q = families::chain(2);
        let db = matching_database(&q, 100, 9);
        let cluster = Cluster::new(MpcConfig::new(5, 0.0)).unwrap();
        let result = cluster.run(&HashJoinL2 { seed: 1 }, &db).unwrap();
        assert_eq!(result.per_server_output.len(), 5);
        let total: usize = result.per_server_output.iter().sum();
        // Hash partitioning assigns each answer to exactly one server.
        assert_eq!(total, result.output.len());
    }

    #[test]
    fn two_round_program_round_trips_tuples() {
        /// Round 1: send everything to server 0. Round 2: server 0 forwards
        /// every tuple of S1 to server 1, tagged "Fwd". Output: server 1
        /// reports the forwarded tuples.
        struct TwoRound;
        impl MpcProgram for TwoRound {
            fn num_rounds(&self) -> usize {
                2
            }
            fn route_input(&self, relation: &Relation, _p: usize) -> Result<Vec<Routed>> {
                Ok(route_relation(relation, |_| vec![0]))
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn route_tuples(
                &self,
                round: usize,
                server: usize,
                state: &ServerState,
            ) -> Result<Vec<Routed>> {
                if round == 2 && server == 0 {
                    if let Some(rel) = state.relation("S1") {
                        return Ok(rel
                            .iter()
                            .map(|t| Routed::new("Fwd", t.clone(), vec![1]))
                            .collect());
                    }
                }
                Ok(Vec::new())
            }
            fn output(&self, server: usize, state: &ServerState) -> Result<Relation> {
                if server == 1 {
                    if let Some(rel) = state.relation("Fwd") {
                        return Ok(rel.with_name("Fwd"));
                    }
                }
                Ok(Relation::empty("Fwd", 2))
            }
            fn output_name(&self) -> String {
                "Fwd".to_string()
            }
            fn output_arity(&self) -> usize {
                2
            }
        }

        let mut db = Database::new(10);
        db.insert_relation(Relation::from_tuples("S1", 2, vec![[1u64, 2], [3, 4]]).unwrap());
        let cluster = Cluster::new(MpcConfig::new(2, 1.0)).unwrap();
        let result = cluster.run(&TwoRound, &db).unwrap();
        assert_eq!(result.num_rounds(), 2);
        assert_eq!(result.output.len(), 2);
        assert!(result.output.contains(&Tuple::from([1, 2])));
        // Round-2 traffic was received by server 1 only.
        assert_eq!(result.rounds[1].total_tuples_received, 2);
    }
}
