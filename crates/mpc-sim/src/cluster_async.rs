//! The event-driven backend: every server is an independent task.
//!
//! [`Cluster::run`] executes a program round-synchronously — a global
//! barrier between communication and computation, which is the *reference
//! semantics* of the MPC model. This module adds [`Cluster::run_async`]:
//! the same program, the same rounds, but each server runs as its own
//! scoped thread (the same primitive the workspace's `rayon` shim is built
//! on) that receives, computes and sends through the bounded per-link
//! queues of [`crate::queue`], with real backpressure and no global
//! barrier — a fast server races ahead into the next round while a
//! straggler still drains the previous one.
//!
//! **Protocol.** Round 1 packets come from the input router (one logical
//! input server per relation, as in the synchronous backend). For a round
//! `r ≥ 2`, a worker first routes its join tuples (computed from its state
//! *before* any round-`r` delivery, exactly like the synchronous loop),
//! sends them — draining its own inbox whenever a peer's lane is full, so
//! bounded queues can never deadlock — then closes the round towards every
//! peer with a FIN marker. A worker enters local computation as soon as
//! *it* has seen every peer's FIN, not when everyone has: the barrier is
//! per-server. Packets that race ahead (a fast peer's round-`r+1` traffic)
//! are absorbed into a pre-hashed stage and merged when this worker
//! reaches that round.
//!
//! **The batched data plane.** Tuples do not travel one packet each: the
//! router side packs them into columnar [`TupleBlock`]s of up to
//! [`AsyncConfig::block_capacity`] tuples per `(destination, tag)`
//! ([`crate::block`]), drawing column storage from a shared size-classed
//! [`BlockPool`] ([`crate::pool`]) that receivers return decoded blocks
//! to — so a steady-state round moves `O(tuples / block_capacity)` inbox
//! packets and allocates nothing. Receivers drain their inbox in bursts
//! ([`crate::queue::InboxReceiver::recv_many`]), and future-round blocks
//! are hashed into per-tag relations *on arrival* (double-buffering: round
//! `r+1` build work overlaps round `r`'s drain), with their volume
//! credited to their own round at its boundary. Block capacity 1
//! degenerates to the old per-tuple plane, which the differential matrix
//! uses as a cross-check.
//!
//! **Equivalence.** Because a worker computes exactly when it holds the
//! same packets the synchronous backend would have delivered to it, the
//! two backends produce identical join outputs and identical per-round
//! communication volumes for every [`MpcProgram`]. That is not left to
//! inspection: [`run_differential`] runs both and
//! [`DifferentialReport::divergence`] checks outputs, per-round byte and
//! tuple tallies, and per-server output counts. The integration suite
//! locks this for the HyperCube, multi-round and skew-resilient programs.
//! One deliberate difference remains: with
//! [`crate::MpcConfig::fail_on_overload`] the synchronous backend aborts
//! *at* the violating round, while the async backend — having no global
//! view mid-flight — finishes the run and reports the same
//! [`SimError::Overload`] afterwards. A corollary: if the program itself
//! errors in a round *after* the overload, the async backend surfaces
//! that program error (the run unwound before the overload scan could
//! see complete statistics), where the synchronous backend would have
//! stopped at the overload first.
//!
//! What the async backend adds on top of the [`crate::RunResult`] volumes
//! is the [`ScheduleStats`] timeline from [`crate::schedule`]: busy /
//! blocked / idle spans, per-round barrier waits, critical path and
//! makespan under a configurable [`CostModel`], with deterministic
//! seeded straggler injection ([`StragglerSpec`]).
//!
//! ```
//! use mpc_sim::{AsyncConfig, Cluster, MpcConfig};
//! use mpc_sim::program::BroadcastProgram;
//!
//! let q = mpc_cq::families::triangle();
//! let db = mpc_data::matching_database(&q, 100, 7);
//! let cluster = Cluster::new(MpcConfig::new(4, 1.0))?;
//! let run = cluster.run_async(&BroadcastProgram::new(q), &db, &AsyncConfig::default())?;
//!
//! // Same volumes as the synchronous backend, plus a schedule.
//! assert_eq!(run.result.num_rounds(), 1);
//! assert!(run.schedule.makespan >= run.schedule.critical_path);
//! # Ok::<(), mpc_sim::SimError>(())
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use mpc_storage::{Database, Relation};

use crate::block::{BlockAssembler, TupleBlock};
use crate::cluster::{build_round_stats, overloaded_server, union_outputs, Cluster};
use crate::error::SimError;
use crate::pool::{BlockPool, PoolStats};
use crate::program::MpcProgram;
use crate::queue::{Inbox, InboxReceiver, LinkSender, SendAttempt};
use crate::reroute::LiveProgress;
use crate::schedule::{self, CostModel, MsgRecord, ScheduleStats, StragglerSpec};
use crate::server::ServerState;
use crate::stats::RunResult;
use crate::Result;

/// How long a sender parks on a full lane before draining its own inbox
/// and retrying — the event-driven send loop's poll interval.
const BACKOFF: Duration = Duration::from_micros(200);

/// Configuration of the event-driven backend: transport bounds, the
/// virtual-clock cost model and optional straggler injection.
///
/// ```
/// use mpc_sim::{AsyncConfig, CostModel, StragglerSpec};
///
/// let cfg = AsyncConfig::new()
///     .with_queue_capacity(16)
///     .with_block_capacity(128)
///     .with_cost(CostModel::zero_latency())
///     .with_straggler(StragglerSpec::new(42, 1, 8));
/// assert_eq!((cfg.queue_capacity, cfg.block_capacity), (16, 128));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncConfig {
    /// Capacity, in packets, of each per-link queue (clamped to ≥ 1).
    /// Doubles as the per-link send window of the schedule model.
    pub queue_capacity: usize,
    /// Tuples per columnar block on the wire (clamped to ≥ 1). Capacity 1
    /// degenerates to per-tuple packets.
    pub block_capacity: usize,
    /// Rounds of overlap the virtual-clock replay models (0 = strict
    /// round-synchronous replay, 1 = the double-buffered plane).
    pub pipeline_depth: usize,
    /// The virtual-clock cost model for [`ScheduleStats`].
    pub cost: CostModel,
    /// Deterministic straggler injection, if any.
    pub straggler: Option<StragglerSpec>,
    /// Per-link adaptive block sizing: when set, each sender's
    /// [`BlockAssembler`] tracks its links' lane occupancy and shrinks the
    /// seal threshold on cold links (smaller blocks, less batching
    /// latency). Outputs and volume statistics are invariant under
    /// adaptation.
    pub adaptive: Option<crate::block::AdaptivePolicy>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_capacity: 64,
            block_capacity: 256,
            pipeline_depth: 1,
            cost: CostModel::default(),
            straggler: None,
            adaptive: None,
        }
    }
}

impl AsyncConfig {
    /// The default configuration (64-packet lanes, 256-tuple blocks,
    /// double-buffered replay, default costs, no stragglers).
    pub fn new() -> Self {
        AsyncConfig::default()
    }

    /// Builder-style: set the per-link queue capacity (packets).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style: set the tuples-per-block capacity of the columnar
    /// data plane.
    #[must_use]
    pub fn with_block_capacity(mut self, capacity: usize) -> Self {
        self.block_capacity = capacity.max(1);
        self
    }

    /// Builder-style: set the pipeline depth of the schedule replay.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Builder-style: set the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: inject stragglers.
    #[must_use]
    pub fn with_straggler(mut self, spec: StragglerSpec) -> Self {
        self.straggler = Some(spec);
        self
    }

    /// Builder-style: adapt block sizes to per-link lane occupancy.
    #[must_use]
    pub fn with_adaptive_blocks(mut self, policy: crate::block::AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }
}

/// The outcome of an event-driven run: the volume statistics every
/// backend produces, plus the schedule only this backend can see.
#[derive(Debug, Clone)]
pub struct AsyncRunResult {
    /// Output and per-round volume statistics — byte-identical to what
    /// [`Cluster::run`] produces for the same program and input.
    pub result: RunResult,
    /// The virtual-clock timeline of the run.
    pub schedule: ScheduleStats,
    /// Buffer-pool accounting of the columnar data plane; balanced after
    /// every clean run (each checked-out block was returned).
    pub pool: PoolStats,
}

/// Which execution backend [`Cluster::run_backend`] should use.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// The round-synchronous reference backend ([`Cluster::run`]).
    Synchronous,
    /// The event-driven backend ([`Cluster::run_async`]).
    EventDriven(AsyncConfig),
}

impl Backend {
    /// The event-driven backend with its default configuration.
    pub fn event_driven() -> Self {
        Backend::EventDriven(AsyncConfig::default())
    }
}

/// A backend-agnostic run outcome: `schedule` is present iff the
/// event-driven backend ran.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Output and per-round volume statistics.
    pub result: RunResult,
    /// The schedule, for the event-driven backend.
    pub schedule: Option<ScheduleStats>,
}

impl Cluster {
    /// Execute a program on the backend selected by `backend`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::run`] / [`Cluster::run_async`].
    pub fn run_backend<P: MpcProgram>(
        &self,
        backend: &Backend,
        program: &P,
        db: &Database,
    ) -> Result<BackendRun> {
        match backend {
            Backend::Synchronous => {
                Ok(BackendRun { result: self.run(program, db)?, schedule: None })
            }
            Backend::EventDriven(cfg) => {
                let run = self.run_async(program, db, cfg)?;
                Ok(BackendRun { result: run.result, schedule: Some(run.schedule) })
            }
        }
    }

    /// Execute a program on the event-driven backend: one task per
    /// server, bounded per-link queues, no global barrier.
    ///
    /// Join output and per-round volume statistics are identical to
    /// [`Cluster::run`]; the additional [`ScheduleStats`] describes *when*
    /// the bytes moved under `async_config`'s cost model.
    ///
    /// # Errors
    ///
    /// Propagates program errors and out-of-range destinations like the
    /// synchronous backend. With [`crate::MpcConfig::fail_on_overload`]
    /// the same [`SimError::Overload`] is returned, but only after the
    /// run completes (no global mid-flight view exists).
    pub fn run_async<P: MpcProgram>(
        &self,
        program: &P,
        db: &Database,
        async_config: &AsyncConfig,
    ) -> Result<AsyncRunResult> {
        self.run_async_inner(program, db, async_config, None)
    }

    /// [`Cluster::run_async`] with live observation: every worker bumps
    /// its per-server counters in `progress` on each delivered block and
    /// each round boundary, so an outside thread — or the adaptive
    /// runtime's controller ([`crate::reroute`]) — can watch the run
    /// while it is in flight.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::run_async`].
    pub fn run_async_observed<P: MpcProgram>(
        &self,
        program: &P,
        db: &Database,
        async_config: &AsyncConfig,
        progress: &Arc<LiveProgress>,
    ) -> Result<AsyncRunResult> {
        self.run_async_inner(program, db, async_config, Some(progress))
    }

    fn run_async_inner<P: MpcProgram>(
        &self,
        program: &P,
        db: &Database,
        async_config: &AsyncConfig,
        progress: Option<&Arc<LiveProgress>>,
    ) -> Result<AsyncRunResult> {
        let p = self.config().p;
        let input_bytes = db.total_bytes();
        let budget_bytes = self.config().budget_bytes(input_bytes);
        let total_rounds = program.num_rounds();
        if total_rounds == 0 {
            return Err(SimError::Program("program declares zero rounds".to_string()));
        }
        let capacity = async_config.queue_capacity.max(1);
        let block_capacity = async_config.block_capacity.max(1);
        let pool = Arc::new(BlockPool::new());

        // One inbox per worker with p + 1 lanes: lane s < p for peer s,
        // lane p for the input router.
        let mut lane_senders: Vec<Vec<LinkSender<Packet>>> = Vec::with_capacity(p);
        let mut receivers: Vec<InboxReceiver<Packet>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (senders, rx) = Inbox::channel(p + 1, capacity);
            lane_senders.push(senders);
            receivers.push(rx);
        }
        let input_links: Vec<LinkSender<Packet>> =
            (0..p).map(|dest| lane_senders[dest][p].clone()).collect();
        let mut workers: Vec<Worker<'_, P>> = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| Worker {
                id,
                p,
                total_rounds,
                program,
                rx,
                peers: (0..p).map(|dest| lane_senders[dest][id].clone()).collect(),
                pool: Arc::clone(&pool),
                block_capacity,
                adaptive: async_config.adaptive,
                progress: progress.map(Arc::clone),
                state: ServerState::new(id, db.domain_size()),
                fins: vec![0; total_rounds],
                stash: (0..total_rounds).map(|_| RoundStage::default()).collect(),
                inbound: Vec::new(),
                scratch: Vec::new(),
                round: 0,
                aborted: false,
            })
            .collect();
        drop(lane_senders);

        let (input_exit, worker_exits) = std::thread::scope(|scope| {
            let input_handle = scope.spawn(|| {
                // Like the workers, the router must broadcast Abort on a
                // panic inside the program's routing — otherwise every
                // worker waits forever for the round-1 FIN.
                catch_unwind(AssertUnwindSafe(|| {
                    run_input(
                        program,
                        db,
                        p,
                        &input_links,
                        &pool,
                        block_capacity,
                        async_config.adaptive,
                    )
                }))
                .unwrap_or_else(|_| {
                    for lane in &input_links {
                        let _ = lane.force_send(Packet::Abort);
                    }
                    Err(Exit::Failed(SimError::Program("input router panicked".to_string())))
                })
            });
            let handles: Vec<_> =
                workers.drain(..).map(|worker| scope.spawn(move || worker.run())).collect();
            let input_exit = input_handle.join().unwrap_or_else(|_| {
                Err(Exit::Failed(SimError::Program("input router panicked".to_string())))
            });
            let worker_exits: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            (input_exit, worker_exits)
        });

        // Resolve errors deterministically: input router first, then
        // workers in id order; cancellations without a recorded cause
        // become a generic protocol error.
        let mut reports: Vec<WorkerReport> = Vec::with_capacity(p);
        let mut cancelled = false;
        if let Err(exit) = input_exit {
            match exit {
                Exit::Failed(e) => return Err(e),
                Exit::Cancelled => cancelled = true,
            }
        }
        let mut first_failure: Option<SimError> = None;
        for (id, exit) in worker_exits.into_iter().enumerate() {
            match exit {
                Ok(Ok(report)) => reports.push(report),
                Ok(Err(Exit::Failed(e))) => {
                    first_failure.get_or_insert(e);
                }
                Ok(Err(Exit::Cancelled)) => cancelled = true,
                Err(_) => {
                    first_failure.get_or_insert(SimError::Program(format!("worker {id} panicked")));
                }
            }
        }
        if let Some(e) = first_failure {
            return Err(e);
        }
        if cancelled || reports.len() != p {
            return Err(SimError::Program(
                "async run cancelled without a recorded error".to_string(),
            ));
        }

        // Volume statistics: same formulas, same data as the synchronous
        // backend — just gathered from the workers' reports.
        let mut rounds = Vec::with_capacity(total_rounds);
        for round in 1..=total_rounds {
            let per_bytes: Vec<u64> =
                reports.iter().map(|r| r.per_round_bytes[round - 1]).collect();
            let per_tuples: Vec<u64> =
                reports.iter().map(|r| r.per_round_tuples[round - 1]).collect();
            let stats =
                build_round_stats(round, &per_bytes, &per_tuples, input_bytes, budget_bytes);
            if stats.exceeds_budget && self.config().fail_on_overload {
                let (server, received_bytes) = overloaded_server(&per_bytes);
                return Err(SimError::Overload { round, server, received_bytes, budget_bytes });
            }
            rounds.push(stats);
        }

        // The schedule: a deterministic virtual-clock replay of the
        // recorded traffic.
        let mut traffic: Vec<MsgRecord> = Vec::new();
        for report in &mut reports {
            traffic.append(&mut report.inbound);
        }
        let (output, per_server_output) =
            union_outputs(program, reports.into_iter().map(|r| r.output).collect())?;
        let slowdown = match &async_config.straggler {
            Some(spec) => spec.slowdown_vector(p),
            None => vec![1; p],
        };
        let sched = schedule::simulate_overlapped(
            p,
            total_rounds,
            &traffic,
            &async_config.cost,
            &slowdown,
            capacity,
            async_config.pipeline_depth,
        );

        Ok(AsyncRunResult {
            result: RunResult { output, rounds, per_server_output, input_bytes },
            schedule: sched,
            pool: pool.stats(),
        })
    }
}

/// Both backends run on the same program and input, packaged for
/// comparison.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// The reference run.
    pub synchronous: RunResult,
    /// The event-driven run.
    pub event_driven: AsyncRunResult,
}

impl DifferentialReport {
    /// The first observed divergence between the two backends, if any:
    /// differing outputs, per-round byte/tuple volumes, or per-server
    /// output counts. `None` means the backends are equivalent on this
    /// program and input.
    pub fn divergence(&self) -> Option<String> {
        let sync = &self.synchronous;
        let ed = &self.event_driven.result;
        if !sync.output.same_tuples(&ed.output) {
            return Some(format!(
                "outputs differ: {} tuples synchronous vs {} event-driven",
                sync.output.len(),
                ed.output.len()
            ));
        }
        if sync.rounds.len() != ed.rounds.len() {
            return Some(format!(
                "round counts differ: {} vs {}",
                sync.rounds.len(),
                ed.rounds.len()
            ));
        }
        for (a, b) in sync.rounds.iter().zip(&ed.rounds) {
            if a != b {
                return Some(format!("round {} volume stats differ: {a:?} vs {b:?}", a.round));
            }
        }
        if sync.per_server_output != ed.per_server_output {
            return Some("per-server output counts differ".to_string());
        }
        None
    }

    /// True when [`DifferentialReport::divergence`] found nothing.
    pub fn is_equivalent(&self) -> bool {
        self.divergence().is_none()
    }
}

/// Run `program` on both backends and package the results. This is the
/// differential-equivalence layer: callers assert
/// [`DifferentialReport::divergence`] is `None` so the async path can
/// never silently change semantics.
///
/// # Errors
///
/// Propagates the first backend error (synchronous first).
pub fn run_differential<P: MpcProgram>(
    cluster: &Cluster,
    program: &P,
    db: &Database,
    async_config: &AsyncConfig,
) -> Result<DifferentialReport> {
    let synchronous = cluster.run(program, db)?;
    let event_driven = cluster.run_async(program, db, async_config)?;
    Ok(DifferentialReport { synchronous, event_driven })
}

// ---------------------------------------------------------------------------
// The per-server task.
// ---------------------------------------------------------------------------

/// A packet on the wire between server tasks.
#[derive(Debug)]
enum Packet {
    /// A columnar block of routed tuples (see [`crate::block`]).
    Block(TupleBlock),
    /// The sender's round-`round` traffic towards this receiver is
    /// complete.
    Fin { round: usize },
    /// Unwind the whole run (a task failed).
    Abort,
}

/// The pre-hashed stage of a future round: blocks that raced ahead of
/// this worker are decoded into per-tag relations *on arrival*, so when
/// the worker reaches the round it merges whole relations instead of
/// replaying tuples — the receive-side half of double-buffering.
#[derive(Debug, Default)]
struct RoundStage {
    rels: BTreeMap<Arc<str>, Relation>,
    bytes: u64,
    tuples: u64,
}

impl RoundStage {
    /// Hash one block's rows into the stage and account its volume.
    fn absorb(&mut self, block: &TupleBlock) {
        let arity = block.arity();
        let rel = self
            .rels
            .entry(Arc::clone(&block.tag))
            .or_insert_with(|| Relation::empty(block.tag.as_ref(), arity));
        for row in block.rows() {
            rel.insert(row).expect("blocks under one tag share an arity");
        }
        self.bytes += block.payload_bytes();
        self.tuples += block.len() as u64;
    }
}

/// Why a task exited without a report.
#[derive(Debug)]
enum Exit {
    /// This task hit an error (already broadcast as [`Packet::Abort`]).
    Failed(SimError),
    /// This task was told to unwind by a failing peer.
    Cancelled,
}

/// What a finished worker hands back to the coordinator.
#[derive(Debug)]
struct WorkerReport {
    output: Relation,
    per_round_bytes: Vec<u64>,
    per_round_tuples: Vec<u64>,
    inbound: Vec<MsgRecord>,
}

struct Worker<'a, P: MpcProgram> {
    id: usize,
    p: usize,
    total_rounds: usize,
    program: &'a P,
    rx: InboxReceiver<Packet>,
    /// `peers[dest]` feeds worker `dest`'s inbox (lane = this worker).
    peers: Vec<LinkSender<Packet>>,
    /// Shared column storage for the blocks this worker sends and frees.
    pool: Arc<BlockPool>,
    /// Tuples per outgoing block.
    block_capacity: usize,
    /// Per-link adaptive block sizing, if enabled.
    adaptive: Option<crate::block::AdaptivePolicy>,
    /// Live observation counters, when this run is being watched.
    progress: Option<Arc<LiveProgress>>,
    state: ServerState,
    /// FIN markers seen, per round (index `round - 1`).
    fins: Vec<usize>,
    /// Pre-hashed stages for rounds this worker has not reached yet.
    stash: Vec<RoundStage>,
    inbound: Vec<MsgRecord>,
    /// Reusable burst buffer for [`InboxReceiver::recv_many`] drains.
    scratch: Vec<Packet>,
    /// The round currently being received (0 before the first).
    round: usize,
    aborted: bool,
}

impl<P: MpcProgram> Worker<'_, P> {
    fn run(mut self) -> std::result::Result<WorkerReport, Exit> {
        match catch_unwind(AssertUnwindSafe(|| self.run_inner())) {
            Ok(result) => result,
            Err(_) => {
                self.abort_peers();
                Err(Exit::Failed(SimError::Program(format!("worker {} panicked", self.id))))
            }
        }
    }

    fn run_inner(&mut self) -> std::result::Result<WorkerReport, Exit> {
        for round in 1..=self.total_rounds {
            self.round = round;
            if let Some(progress) = &self.progress {
                progress.record_round(self.id, round);
            }
            if round >= 2 {
                // Route from the state *before* any round-`round` delivery
                // — the tuple-based model's view, as in the synchronous
                // backend. Tuples are packed into per-(destination, tag)
                // columnar blocks; a block ships as soon as it fills.
                let routed = self
                    .program
                    .route_tuples(round, self.id, &self.state)
                    .map_err(|e| self.fail(e))?;
                let mut asm = BlockAssembler::new(
                    Arc::clone(&self.pool),
                    self.block_capacity,
                    self.id,
                    round,
                );
                if let Some(policy) = self.adaptive {
                    asm = asm.with_adaptive(policy);
                    for dest in 0..self.p {
                        asm.observe_occupancy(dest, self.peers[dest].occupancy());
                    }
                }
                for msg in routed {
                    for &dest in &msg.destinations {
                        if dest >= self.p {
                            let p = self.p;
                            return Err(self.fail(SimError::Program(format!(
                                "destination {dest} out of range for p = {p}"
                            ))));
                        }
                        if let Some(block) = asm.push(dest, &msg.tag, msg.tuple.values()) {
                            self.send_packet(dest, Packet::Block(block))?;
                            // Re-sample after each sealed block: the link's
                            // backlog is what the send just changed.
                            asm.observe_occupancy(dest, self.peers[dest].occupancy());
                        }
                    }
                }
                for (dest, block) in asm.flush() {
                    self.send_packet(dest, Packet::Block(block))?;
                }
                for dest in 0..self.p {
                    self.send_packet(dest, Packet::Fin { round })?;
                }
            }

            // Blocks that raced ahead of us were hashed on arrival; merge
            // the stage's relations and charge its volume to this round.
            let stage = std::mem::take(&mut self.stash[round - 1]);
            for (_, rel) in stage.rels {
                self.state.add_local(rel);
            }
            self.state.credit_received(round, stage.bytes, stage.tuples);

            // The per-server barrier: all of *our* round-`round` inbound,
            // drained in bursts.
            let expected_fins = if round == 1 { 1 } else { self.p };
            while self.fins[round - 1] < expected_fins {
                let mut batch = std::mem::take(&mut self.scratch);
                self.rx.recv_many(&mut batch);
                let result = self.process_batch(&mut batch);
                self.scratch = batch;
                result?;
            }

            let derived =
                self.program.compute(round, self.id, &self.state).map_err(|e| self.fail(e))?;
            for rel in derived {
                self.state.add_local(rel);
            }
        }

        let output = self.program.output(self.id, &self.state).map_err(|e| self.fail(e))?;
        Ok(WorkerReport {
            output,
            per_round_bytes: (1..=self.total_rounds)
                .map(|r| self.state.bytes_received_in_round(r))
                .collect(),
            per_round_tuples: (1..=self.total_rounds)
                .map(|r| self.state.tuples_received_in_round(r))
                .collect(),
            inbound: std::mem::take(&mut self.inbound),
        })
    }

    /// Handle one inbound packet. Blocks for the current round decode
    /// into the server state; blocks for a future round are hashed into
    /// that round's stage. Either way the column storage goes back to
    /// the pool.
    fn process(&mut self, pkt: Packet) -> std::result::Result<(), Exit> {
        match pkt {
            Packet::Block(block) => {
                let round = block.round;
                debug_assert!(round >= self.round, "a FIN-closed round cannot still deliver");
                self.inbound.push(MsgRecord {
                    round,
                    from: block.from,
                    to: self.id,
                    seq: block.seq,
                    bytes: block.payload_bytes(),
                    tuples: block.len() as u64,
                });
                if let Some(progress) = &self.progress {
                    progress.record_delivery(self.id, block.payload_bytes(), block.len() as u64);
                }
                if round == self.round {
                    self.state.receive_many(round, &block.tag, block.arity(), block.rows());
                } else {
                    self.stash[round - 1].absorb(&block);
                }
                self.pool.give_back(block.into_columns());
            }
            Packet::Fin { round } => self.fins[round - 1] += 1,
            Packet::Abort => {
                self.aborted = true;
                return Err(Exit::Cancelled);
            }
        }
        Ok(())
    }

    /// Process a burst of packets. On an early exit the rest of the
    /// batch is dropped — the run is unwinding anyway.
    fn process_batch(&mut self, batch: &mut Vec<Packet>) -> std::result::Result<(), Exit> {
        for pkt in batch.drain(..) {
            self.process(pkt)?;
        }
        Ok(())
    }

    /// Send with backpressure, draining our own inbox while the
    /// destination lane is full — the event-driven loop that makes
    /// bounded queues deadlock-free.
    fn send_packet(&mut self, dest: usize, pkt: Packet) -> std::result::Result<(), Exit> {
        let lane = self.peers[dest].clone();
        let mut pkt = pkt;
        loop {
            if self.aborted {
                return Err(Exit::Cancelled);
            }
            match lane.send_timeout(pkt, BACKOFF) {
                SendAttempt::Sent => return Ok(()),
                SendAttempt::Closed(_) => {
                    self.aborted = true;
                    return Err(Exit::Cancelled);
                }
                SendAttempt::Full(back) => {
                    pkt = back;
                    let mut batch = std::mem::take(&mut self.scratch);
                    self.rx.try_recv_many(&mut batch);
                    let result = self.process_batch(&mut batch);
                    self.scratch = batch;
                    result?;
                }
            }
        }
    }

    fn fail(&mut self, e: SimError) -> Exit {
        self.abort_peers();
        Exit::Failed(e)
    }

    fn abort_peers(&mut self) {
        for lane in &self.peers {
            let _ = lane.force_send(Packet::Abort);
        }
    }
}

/// The input router: one logical input server per relation (numbered
/// `p, p+1, …` in the traffic records), all pumped by one task since
/// round-1 routing is pure.
fn run_input<P: MpcProgram>(
    program: &P,
    db: &Database,
    p: usize,
    links: &[LinkSender<Packet>],
    pool: &Arc<BlockPool>,
    block_capacity: usize,
    adaptive: Option<crate::block::AdaptivePolicy>,
) -> std::result::Result<(), Exit> {
    let abort_all = |links: &[LinkSender<Packet>]| {
        for lane in links {
            let _ = lane.force_send(Packet::Abort);
        }
    };
    for (ri, rel) in db.relations().enumerate() {
        let routed = match program.route_input(rel, p) {
            Ok(routed) => routed,
            Err(e) => {
                abort_all(links);
                return Err(Exit::Failed(e));
            }
        };
        // One assembler per logical input server: its blocks carry
        // `from = p + ri`, round 1.
        let mut asm = BlockAssembler::new(Arc::clone(pool), block_capacity, p + ri, 1);
        if let Some(policy) = adaptive {
            asm = asm.with_adaptive(policy);
            for (dest, lane) in links.iter().enumerate() {
                asm.observe_occupancy(dest, lane.occupancy());
            }
        }
        for msg in routed {
            for &dest in &msg.destinations {
                if dest >= p {
                    abort_all(links);
                    return Err(Exit::Failed(SimError::Program(format!(
                        "destination {dest} out of range for p = {p}"
                    ))));
                }
                if let Some(block) = asm.push(dest, &msg.tag, msg.tuple.values()) {
                    if links[dest].send(Packet::Block(block)).is_err() {
                        return Err(Exit::Cancelled);
                    }
                    asm.observe_occupancy(dest, links[dest].occupancy());
                }
            }
        }
        for (dest, block) in asm.flush() {
            if links[dest].send(Packet::Block(block)).is_err() {
                return Err(Exit::Cancelled);
            }
        }
    }
    for lane in links {
        if lane.send(Packet::Fin { round: 1 }).is_err() {
            return Err(Exit::Cancelled);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpcConfig;
    use crate::program::BroadcastProgram;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_storage::join::evaluate;

    #[test]
    fn broadcast_matches_synchronous_backend() {
        let q = families::cycle(3);
        let db = matching_database(&q, 60, 1);
        let cluster = Cluster::new(MpcConfig::new(4, 1.0)).unwrap();
        let report =
            run_differential(&cluster, &BroadcastProgram::new(q.clone()), &db, &AsyncConfig::new())
                .unwrap();
        assert_eq!(report.divergence(), None);
        let expected = evaluate(&q, &db).unwrap();
        assert!(report.event_driven.result.output.same_tuples(&expected));
    }

    #[test]
    fn schedule_covers_every_round_and_partitions_time() {
        let q = families::triangle();
        let db = matching_database(&q, 120, 3);
        let cluster = Cluster::new(MpcConfig::new(8, 1.0)).unwrap();
        let run = cluster.run_async(&BroadcastProgram::new(q), &db, &AsyncConfig::new()).unwrap();
        assert_eq!(run.schedule.num_rounds(), run.result.num_rounds());
        assert!(run.schedule.makespan >= run.schedule.critical_path);
        for s in &run.schedule.servers {
            assert!(s.span_partition_holds(), "server {} timeline leaks", s.server);
        }
    }

    #[test]
    fn straggler_injection_slows_the_schedule_not_the_volumes() {
        let q = families::triangle();
        let db = matching_database(&q, 200, 5);
        let cluster = Cluster::new(MpcConfig::new(8, 1.0)).unwrap();
        let program = BroadcastProgram::new(q);
        let plain = cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap();
        let slowed = cluster
            .run_async(
                &program,
                &db,
                &AsyncConfig::new().with_straggler(StragglerSpec::new(9, 2, 10)),
            )
            .unwrap();
        assert!(slowed.schedule.makespan > plain.schedule.makespan);
        assert_eq!(slowed.schedule.stragglers.len(), 2);
        // Volumes are schedule-independent.
        assert_eq!(plain.result.rounds, slowed.result.rounds);
    }

    #[test]
    fn backend_selector_routes_to_both_backends() {
        let q = families::chain(2);
        let db = matching_database(&q, 80, 2);
        let cluster = Cluster::new(MpcConfig::new(4, 0.5)).unwrap();
        let program = BroadcastProgram::new(q);
        let sync = cluster.run_backend(&Backend::Synchronous, &program, &db).unwrap();
        assert!(sync.schedule.is_none());
        let event = cluster.run_backend(&Backend::event_driven(), &program, &db).unwrap();
        assert!(event.schedule.is_some());
        assert!(sync.result.output.same_tuples(&event.result.output));
    }

    #[test]
    fn tiny_queue_capacity_still_completes() {
        // Capacity 1 forces constant backpressure; the drain-while-full
        // loop must keep everything moving.
        let q = families::triangle();
        let db = matching_database(&q, 100, 11);
        let cluster = Cluster::new(MpcConfig::new(4, 1.0)).unwrap();
        let program = BroadcastProgram::new(q);
        let report =
            run_differential(&cluster, &program, &db, &AsyncConfig::new().with_queue_capacity(1))
                .unwrap();
        assert_eq!(report.divergence(), None);
        assert_eq!(report.event_driven.schedule.queue_window, 1);
    }

    #[test]
    fn out_of_range_destination_aborts_cleanly() {
        struct Bad;
        impl MpcProgram for Bad {
            fn num_rounds(&self) -> usize {
                1
            }
            fn route_input(
                &self,
                relation: &Relation,
                p: usize,
            ) -> crate::Result<Vec<crate::Routed>> {
                Ok(relation
                    .iter()
                    .map(|t| crate::Routed::new("R", t.clone(), vec![p + 3]))
                    .collect())
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> crate::Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn output(&self, _: usize, _: &ServerState) -> crate::Result<Relation> {
                Ok(Relation::empty("out", 1))
            }
            fn output_arity(&self) -> usize {
                1
            }
        }
        let mut db = Database::new(5);
        db.insert_relation(Relation::from_tuples("R", 1, vec![[1u64]]).unwrap());
        let cluster = Cluster::new(MpcConfig::new(2, 0.0)).unwrap();
        let err = cluster.run_async(&Bad, &db, &AsyncConfig::new()).unwrap_err();
        assert!(matches!(err, SimError::Program(_)));
    }

    #[test]
    fn input_router_panic_aborts_instead_of_deadlocking() {
        struct PanicInput;
        impl MpcProgram for PanicInput {
            fn num_rounds(&self) -> usize {
                1
            }
            fn route_input(&self, _: &Relation, _: usize) -> crate::Result<Vec<crate::Routed>> {
                panic!("routing bug");
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> crate::Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn output(&self, _: usize, _: &ServerState) -> crate::Result<Relation> {
                Ok(Relation::empty("out", 1))
            }
            fn output_arity(&self) -> usize {
                1
            }
        }
        let mut db = Database::new(5);
        db.insert_relation(Relation::from_tuples("R", 1, vec![[1u64]]).unwrap());
        let cluster = Cluster::new(MpcConfig::new(4, 0.0)).unwrap();
        // Must return an error, not hang at the round-1 barrier.
        let err = cluster.run_async(&PanicInput, &db, &AsyncConfig::new()).unwrap_err();
        assert!(matches!(err, SimError::Program(_)));
    }

    #[test]
    fn hard_budget_overload_is_reported_post_hoc() {
        let q = families::chain(2);
        let db = matching_database(&q, 200, 2);
        let cluster = Cluster::new(MpcConfig::new(8, 0.0).with_hard_budget()).unwrap();
        let err =
            cluster.run_async(&BroadcastProgram::new(q), &db, &AsyncConfig::new()).unwrap_err();
        assert!(matches!(err, SimError::Overload { round: 1, .. }));
    }

    #[test]
    fn zero_round_program_is_rejected() {
        struct Zero;
        impl MpcProgram for Zero {
            fn num_rounds(&self) -> usize {
                0
            }
            fn route_input(&self, _: &Relation, _: usize) -> crate::Result<Vec<crate::Routed>> {
                Ok(Vec::new())
            }
            fn compute(&self, _: usize, _: usize, _: &ServerState) -> crate::Result<Vec<Relation>> {
                Ok(Vec::new())
            }
            fn output(&self, _: usize, _: &ServerState) -> crate::Result<Relation> {
                Ok(Relation::empty("out", 1))
            }
            fn output_arity(&self) -> usize {
                1
            }
        }
        let db = Database::new(5);
        let cluster = Cluster::new(MpcConfig::new(2, 0.0)).unwrap();
        assert!(matches!(
            cluster.run_async(&Zero, &db, &AsyncConfig::new()),
            Err(SimError::Program(_))
        ));
    }
}
