//! Simulation configuration: the MPC(ε) parameters.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::Result;

/// Configuration of an `MPC(ε)` simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Number of worker servers `p`.
    pub p: usize,
    /// The space exponent `ε ∈ [0, 1]`: each server may receive
    /// `load_factor · N / p^{1−ε}` bytes per round.
    pub epsilon: f64,
    /// The constant `c` in the load budget `c · N / p^{1−ε}`.
    pub load_factor: f64,
    /// If `true`, exceeding the budget aborts the run with
    /// [`SimError::Overload`]; otherwise violations are only recorded in
    /// the per-round statistics (the default — lower bounds reason about
    /// what *can* be achieved under the budget, so observing the violation
    /// is usually what an experiment wants).
    pub fail_on_overload: bool,
}

impl MpcConfig {
    /// A configuration with the given number of servers and space exponent,
    /// load factor 2 and soft budget enforcement.
    pub fn new(p: usize, epsilon: f64) -> Self {
        MpcConfig { p, epsilon, load_factor: 2.0, fail_on_overload: false }
    }

    /// Builder-style: set the load factor `c`.
    #[must_use]
    pub fn with_load_factor(mut self, c: f64) -> Self {
        self.load_factor = c;
        self
    }

    /// Builder-style: make budget violations hard errors.
    #[must_use]
    pub fn with_hard_budget(mut self) -> Self {
        self.fail_on_overload = true;
        self
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `p == 0`, `ε ∉ [0, 1]` or
    /// the load factor is not positive.
    pub fn validate(&self) -> Result<()> {
        if self.p == 0 {
            return Err(SimError::InvalidConfig("p must be at least 1".to_string()));
        }
        if !(0.0..=1.0).contains(&self.epsilon) || self.epsilon.is_nan() {
            return Err(SimError::InvalidConfig(format!(
                "epsilon must lie in [0, 1], got {}",
                self.epsilon
            )));
        }
        if self.load_factor <= 0.0 || !self.load_factor.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "load factor must be positive, got {}",
                self.load_factor
            )));
        }
        Ok(())
    }

    /// The per-server per-round budget in bytes for an input of
    /// `input_bytes` bytes: `c · N / p^{1−ε}`.
    pub fn budget_bytes(&self, input_bytes: u64) -> u64 {
        let denom = (self.p as f64).powf(1.0 - self.epsilon);
        (self.load_factor * input_bytes as f64 / denom).ceil() as u64
    }

    /// The maximum total data received per round across all servers,
    /// `p · budget = c · N · p^ε` bytes; the factor `p^ε` is the
    /// replication rate allowed per round.
    pub fn total_budget_bytes(&self, input_bytes: u64) -> u64 {
        self.budget_bytes(input_bytes).saturating_mul(self.p as u64)
    }

    /// The replication rate `p^ε` permitted by this configuration.
    pub fn allowed_replication(&self) -> f64 {
        (self.p as f64).powf(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MpcConfig::new(8, 0.0).validate().is_ok());
        assert!(MpcConfig::new(8, 1.0).validate().is_ok());
        assert!(MpcConfig::new(0, 0.0).validate().is_err());
        assert!(MpcConfig::new(8, -0.1).validate().is_err());
        assert!(MpcConfig::new(8, 1.1).validate().is_err());
        assert!(MpcConfig::new(8, 0.5).with_load_factor(0.0).validate().is_err());
    }

    #[test]
    fn budget_scaling_with_epsilon() {
        let n = 1_000_000u64;
        // ε = 0: budget = c·N/p.
        let c0 = MpcConfig::new(100, 0.0).with_load_factor(1.0);
        assert_eq!(c0.budget_bytes(n), 10_000);
        // ε = 1: budget = c·N (degenerate — whole input per server).
        let c1 = MpcConfig::new(100, 1.0).with_load_factor(1.0);
        assert_eq!(c1.budget_bytes(n), n);
        // ε = 1/2: budget = c·N/√p.
        let ch = MpcConfig::new(100, 0.5).with_load_factor(1.0);
        assert_eq!(ch.budget_bytes(n), 100_000);
        // Monotone in ε.
        assert!(c0.budget_bytes(n) < ch.budget_bytes(n));
        assert!(ch.budget_bytes(n) < c1.budget_bytes(n));
    }

    #[test]
    fn replication_rate() {
        let cfg = MpcConfig::new(64, 0.5);
        assert!((cfg.allowed_replication() - 8.0).abs() < 1e-9);
        assert_eq!(MpcConfig::new(64, 0.0).allowed_replication(), 1.0);
    }

    #[test]
    fn builders() {
        let cfg = MpcConfig::new(4, 0.25).with_load_factor(3.0).with_hard_budget();
        assert_eq!(cfg.load_factor, 3.0);
        assert!(cfg.fail_on_overload);
    }

    #[test]
    fn total_budget_is_p_times_per_server() {
        let cfg = MpcConfig::new(10, 0.0).with_load_factor(1.0);
        assert_eq!(cfg.total_budget_bytes(1000), 10 * cfg.budget_bytes(1000));
    }
}
