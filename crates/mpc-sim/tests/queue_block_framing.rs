//! Direct coverage for the `queue.rs` backpressure edge paths **under
//! block framing** — the timeout/force-send and receiver-drop fail-fast
//! behaviour that the differential matrix only exercises indirectly.
//!
//! The packets on the lanes here are real sealed [`TupleBlock`]s (not
//! toy integers, as in the module's unit tests), so the tests also pin
//! that a packet handed back by a failed send still carries its full
//! framing (tag, sequence number, rows) and that its column storage can
//! be recycled through the [`BlockPool`] afterwards — the invariant the
//! async send loop and the `mpc-net` transports both rely on.

use std::sync::Arc;
use std::time::Duration;

use mpc_sim::queue::{Inbox, SendAttempt};
use mpc_sim::{BlockAssembler, BlockPool, TupleBlock};

/// Seal `count` two-column blocks of `rows` tuples each, all bound for
/// destination 0 under tag `R`.
fn sealed_blocks(pool: &Arc<BlockPool>, rows: usize, count: usize) -> Vec<TupleBlock> {
    let mut asm = BlockAssembler::new(Arc::clone(pool), rows, 3, 1);
    let mut out = Vec::new();
    for i in 0..(rows * count) as u64 {
        if let Some(b) = asm.push(0, "R", &[i, i + 1]) {
            out.push(b);
        }
    }
    assert!(asm.flush().is_empty(), "all blocks sealed at capacity");
    assert_eq!(out.len(), count);
    out
}

#[test]
fn send_timeout_full_hands_the_block_back_intact() {
    let pool = Arc::new(BlockPool::new());
    let mut blocks = sealed_blocks(&pool, 4, 3);
    let (senders, rx) = Inbox::channel(1, 2);
    // Fill the lane to capacity.
    senders[0].send(blocks.remove(0)).unwrap();
    senders[0].send(blocks.remove(0)).unwrap();
    assert_eq!(senders[0].occupancy(), 1.0);
    // The third block bounces with Full — framing intact.
    let third = blocks.remove(0);
    let (tag, seq, rows) = (third.tag.clone(), third.seq, third.len());
    match senders[0].send_timeout(third, Duration::from_millis(5)) {
        SendAttempt::Full(b) => {
            assert_eq!((b.tag.clone(), b.seq, b.len()), (tag, seq, rows));
            assert_eq!(b.round, 1);
            assert_eq!(b.from, 3);
            // The bounced block's storage recycles cleanly.
            pool.give_back(b.into_columns());
        }
        other => panic!("expected Full, got {other:?}"),
    }
    // Draining the lane makes room again.
    let mut buf = Vec::new();
    assert_eq!(rx.recv_many(&mut buf), 2);
    for b in buf {
        pool.give_back(b.into_columns());
    }
    assert!(pool.stats().balanced());
}

#[test]
fn force_send_bypasses_a_full_lane_for_control_packets() {
    let pool = Arc::new(BlockPool::new());
    let blocks = sealed_blocks(&pool, 2, 3);
    let (senders, rx) = Inbox::channel(1, 1);
    let mut iter = blocks.into_iter();
    senders[0].send(iter.next().unwrap()).unwrap();
    // Data sends respect the bound…
    assert!(matches!(
        senders[0].send_timeout(iter.next().unwrap(), Duration::from_millis(1)),
        SendAttempt::Full(_)
    ));
    // …but a control-style force_send goes through regardless (this is
    // how Abort packets dodge deadlock behind data traffic).
    senders[0].force_send(iter.next().unwrap()).unwrap();
    assert!(senders[0].occupancy() > 1.0);
    let mut buf = Vec::new();
    rx.try_recv_many(&mut buf);
    assert_eq!(buf.len(), 2);
    // FIFO survives the bypass: seq order is preserved on the lane.
    assert!(buf[0].seq < buf[1].seq);
}

#[test]
fn receiver_drop_fails_every_send_path_fast() {
    let pool = Arc::new(BlockPool::new());
    let mut blocks = sealed_blocks(&pool, 4, 3);
    let (senders, rx) = Inbox::channel(2, 4);
    drop(rx);
    // All three send paths fail immediately — no hang — and hand the
    // block back so its storage is not leaked.
    let b = blocks.remove(0);
    let b = senders[0].send(b).expect_err("send fails after receiver drop");
    pool.give_back(b.into_columns());
    match senders[1].send_timeout(blocks.remove(0), Duration::from_secs(60)) {
        SendAttempt::Closed(b) => pool.give_back(b.into_columns()),
        other => panic!("expected Closed, got {other:?}"),
    }
    let b = senders[0].force_send(blocks.remove(0)).expect_err("force_send fails too");
    pool.give_back(b.into_columns());
    assert!(pool.stats().balanced(), "every bounced block recycled");
}

#[test]
fn blocked_sender_wakes_when_receiver_dies_mid_wait() {
    let pool = Arc::new(BlockPool::new());
    let mut blocks = sealed_blocks(&pool, 2, 2);
    let (senders, rx) = Inbox::channel(1, 1);
    senders[0].send(blocks.remove(0)).unwrap();
    let tx = senders[0].clone();
    let pending = blocks.remove(0);
    let handle = std::thread::spawn(move || tx.send(pending));
    // Give the sender time to park on the full lane, then kill the
    // receiver: the blocked send must return instead of hanging.
    std::thread::sleep(Duration::from_millis(20));
    drop(rx);
    let bounced = handle.join().unwrap().expect_err("blocked send observes the closure");
    assert_eq!(bounced.len(), 2);
}
