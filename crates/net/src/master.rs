//! The master control plane and the spawned-process execution mode.
//!
//! The coordination pattern follows the distributed-FDB design: a master
//! owns one control connection per worker and drives the job through a
//! fixed state machine —
//!
//! ```text
//! worker            master
//!   Hello{id, data_port}  ───▶
//!   ◀───  Job{spec}              (spawned mode only)
//!   ◀───  Peers{addr table}
//!   ... mesh-connect to peers (DataHello) ...
//!   MeshReady  ───▶
//!   ◀───  Proceed(0)             (all meshed: the job starts)
//!   Ready(r)  ───▶               (each round)
//!   ◀───  Proceed(r)
//!   Summary{output, volumes}  ───▶   (spawned mode only)
//!   ◀───  Shutdown
//! ```
//!
//! with `Abort` valid in either direction at any time. The master polls
//! every control socket with a short read timeout while it waits, so a
//! worker process dying (its socket closing) fails the whole job fast
//! instead of deadlocking the barrier — and on any failure it broadcasts
//! `Abort` so surviving workers unwind too.
//!
//! [`run_spawned`] is the top of the stack: it spawns one `mpc_workerd`
//! OS process per server over localhost, serves the control plane, and
//! folds the workers' summaries into the same [`RunResult`] as
//! [`mpc_sim::Cluster::run`]. [`worker_main`] is the matching worker-side
//! entry point, rebuilding the job from its [`JobSpec`] wire form.

use std::io::BufRead;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpc_sim::{BlockPool, RunResult};

use crate::frame::{read_frame, write_frame, Frame};
use crate::runner::{assemble_result, tcp_worker_setup, worker_loop, WorkerSummary};
use crate::spec::JobSpec;
use crate::{NetError, Result};

/// How long the master waits for all workers to dial in before declaring
/// the job dead (covers a worker binary that fails to start).
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// The poll interval while waiting on worker control frames: short enough
/// that a dead worker fails the job promptly, long enough not to spin.
const POLL: Duration = Duration::from_millis(25);

/// Lane capacity for a spawned worker's inbox. TCP inboxes are fed by
/// reader threads via `force_send` (the kernel socket buffers are the
/// real bound), so this is shape, not backpressure.
const SPAWNED_QUEUE_CAPACITY: usize = 64;

/// One worker's control connection, reads buffered.
struct WorkerCtl {
    reader: BufReader<TcpStream>,
}

/// The master's side of the handshake: `p` control connections, indexed
/// by worker id.
pub struct ControlPlane {
    workers: Vec<WorkerCtl>,
    pool: BlockPool,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane").field("workers", &self.workers.len()).finish()
    }
}

impl ControlPlane {
    /// Accept `p` worker hellos on `listener`, optionally hand each the
    /// job spec, broadcast the peer address table, collect every
    /// `MeshReady` and release the cluster with `Proceed(0)`.
    ///
    /// `watch` is polled while waiting for connections; returning
    /// `Some(reason)` fails the handshake immediately (the spawned mode
    /// uses it to notice a worker process dying before it ever dials in).
    ///
    /// # Errors
    ///
    /// Fails (after aborting every connected worker) when a worker never
    /// dials in before the deadline, dies mid-handshake or violates the
    /// protocol.
    pub fn accept(
        listener: &TcpListener,
        p: usize,
        job: Option<&str>,
        watch: Option<&mut dyn FnMut() -> Option<String>>,
    ) -> Result<ControlPlane> {
        let mut plane = ControlPlane { workers: Vec::new(), pool: BlockPool::new() };
        match plane.accept_inner(listener, p, job, watch) {
            Ok(()) => Ok(plane),
            Err(e) => {
                plane.abort_all(&format!("handshake failed: {e}"));
                Err(e)
            }
        }
    }

    fn accept_inner(
        &mut self,
        listener: &TcpListener,
        p: usize,
        job: Option<&str>,
        mut watch: Option<&mut dyn FnMut() -> Option<String>>,
    ) -> Result<()> {
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        let mut slots: Vec<Option<WorkerCtl>> = (0..p).map(|_| None).collect();
        let mut addrs: Vec<Option<String>> = vec![None; p];
        let mut connected = 0usize;
        while connected < p {
            let (stream, peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Some(reason) = watch.as_mut().and_then(|w| w()) {
                        return Err(NetError::Protocol(reason));
                    }
                    if Instant::now() > deadline {
                        return Err(NetError::Protocol(format!(
                            "only {connected}/{p} workers dialed in before the deadline"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            stream.set_nonblocking(false)?;
            stream.set_nodelay(true).ok();
            let mut ctl = WorkerCtl { reader: BufReader::new(stream) };
            let (worker_id, data_port) = match read_frame(&mut ctl.reader, &self.pool)? {
                Frame::Hello { worker_id, data_port } => (worker_id as usize, data_port),
                other => {
                    return Err(NetError::Protocol(format!("expected Hello, got {other:?}")));
                }
            };
            if worker_id >= p || slots[worker_id].is_some() {
                return Err(NetError::Protocol(format!("bad or duplicate worker id {worker_id}")));
            }
            if let Some(spec) = job {
                write_frame(ctl.reader.get_mut(), &Frame::Job { spec: spec.to_string() })?;
            }
            addrs[worker_id] = Some(format!("{}:{data_port}", peer.ip()));
            slots[worker_id] = Some(ctl);
            connected += 1;
        }
        listener.set_nonblocking(false)?;
        self.workers = slots.into_iter().map(|s| s.expect("all slots filled")).collect();
        let peers: Vec<(u32, String)> = addrs
            .into_iter()
            .enumerate()
            .map(|(id, a)| (id as u32, a.expect("all addrs filled")))
            .collect();
        self.broadcast(&Frame::Peers { peers })?;
        self.await_all(|f| matches!(f, Frame::MeshReady), "MeshReady")?;
        self.broadcast(&Frame::Proceed { round: 0 })?;
        Ok(())
    }

    /// Serve the per-round barrier for `rounds` rounds: collect a
    /// `Ready(r)` from every worker, then release them with `Proceed(r)`.
    ///
    /// # Errors
    ///
    /// Fails (after broadcasting `Abort`) on worker death, a worker-sent
    /// abort or barrier skew.
    pub fn serve_barriers(&mut self, rounds: usize) -> Result<()> {
        for round in 1..=rounds {
            let ok = self
                .await_all(
                    |f| matches!(f, Frame::Ready { round: r } if *r as usize == round),
                    &format!("Ready({round})"),
                )
                .and_then(|()| self.broadcast(&Frame::Proceed { round: round as u32 }));
            if let Err(e) = ok {
                self.abort_all(&format!("barrier for round {round} failed: {e}"));
                return Err(e);
            }
        }
        Ok(())
    }

    /// Collect the end-of-job `Summary` from every worker (spawned mode),
    /// in worker-id order.
    ///
    /// # Errors
    ///
    /// Fails (after broadcasting `Abort`) on worker death or a non-summary
    /// frame.
    pub fn collect_summaries(&mut self) -> Result<Vec<WorkerSummary>> {
        let mut out: Vec<Option<WorkerSummary>> = (0..self.workers.len()).map(|_| None).collect();
        let mut missing = self.workers.len();
        while missing > 0 {
            for (id, slot) in out.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                match self.poll_frame(id) {
                    Ok(None) => {}
                    Ok(Some(Frame::Summary { output, per_round_bytes, per_round_tuples })) => {
                        *slot = Some(WorkerSummary { output, per_round_bytes, per_round_tuples });
                        missing -= 1;
                    }
                    Ok(Some(Frame::Abort { reason })) => {
                        let e = NetError::Protocol(format!("worker {id} aborted: {reason}"));
                        self.abort_all(&format!("{e}"));
                        return Err(e);
                    }
                    Ok(Some(other)) => {
                        let e = NetError::Protocol(format!(
                            "worker {id}: expected Summary, got {other:?}"
                        ));
                        self.abort_all(&format!("{e}"));
                        return Err(e);
                    }
                    Err(e) => {
                        self.abort_all(&format!("{e}"));
                        return Err(e);
                    }
                }
            }
        }
        Ok(out.into_iter().map(|s| s.expect("all summaries collected")).collect())
    }

    /// Release every worker for a clean exit (spawned mode).
    pub fn shutdown_all(&mut self) {
        let _ = self.broadcast(&Frame::Shutdown);
    }

    /// Best-effort fail-fast broadcast.
    pub fn abort_all(&mut self, reason: &str) {
        for w in &mut self.workers {
            let _ = write_frame(w.reader.get_mut(), &Frame::Abort { reason: reason.to_string() });
        }
    }

    fn broadcast(&mut self, frame: &Frame) -> Result<()> {
        for w in &mut self.workers {
            write_frame(w.reader.get_mut(), frame)?;
        }
        Ok(())
    }

    /// Wait until every worker sent a frame matching `expect`; any other
    /// frame, an abort or a dead socket fails the wait.
    fn await_all(&mut self, expect: impl Fn(&Frame) -> bool, what: &str) -> Result<()> {
        let mut seen = vec![false; self.workers.len()];
        let mut missing = self.workers.len();
        while missing > 0 {
            for (id, done) in seen.iter_mut().enumerate() {
                if *done {
                    continue;
                }
                match self.poll_frame(id)? {
                    None => {}
                    Some(f) if expect(&f) => {
                        *done = true;
                        missing -= 1;
                    }
                    Some(Frame::Abort { reason }) => {
                        return Err(NetError::Protocol(format!("worker {id} aborted: {reason}")));
                    }
                    Some(other) => {
                        return Err(NetError::Protocol(format!(
                            "worker {id}: expected {what}, got {other:?}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Try to read one frame from worker `id` within the poll interval.
    /// `Ok(None)` means nothing arrived yet; a closed socket is an error —
    /// that is the fail-fast-on-worker-death path.
    fn poll_frame(&mut self, id: usize) -> Result<Option<Frame>> {
        let w = &mut self.workers[id];
        w.reader.get_ref().set_read_timeout(Some(POLL))?;
        let available = match w.reader.fill_buf() {
            Ok(buf) => !buf.is_empty(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                false
            }
            Err(e) => {
                w.reader.get_ref().set_read_timeout(None).ok();
                return Err(e.into());
            }
        };
        w.reader.get_ref().set_read_timeout(None)?;
        if !available {
            return Ok(None);
        }
        match read_frame(&mut w.reader, &self.pool) {
            Ok(f) => Ok(Some(f)),
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(NetError::Protocol(format!("worker {id} died (control connection closed)")))
            }
            Err(e) => Err(e),
        }
    }
}

/// Run `job` on a cluster of `job.p` spawned worker processes
/// (`worker_bin --master ADDR --worker ID`) coordinated over localhost,
/// and return the same [`RunResult`] as [`mpc_sim::Cluster::run`] on the
/// equivalent single-process cluster.
///
/// Children are killed (and always reaped) when anything fails.
///
/// # Errors
///
/// Fails on spawn errors, worker death, protocol violations and — under
/// the cluster's overload policy — budget violations.
pub fn run_spawned(job: &JobSpec, worker_bin: &Path) -> Result<RunResult> {
    let built = job.build()?;
    let total_rounds = built.program.num_rounds();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut children: Vec<Child> = Vec::with_capacity(job.p);

    let outcome = (|| -> Result<Vec<WorkerSummary>> {
        for id in 0..job.p {
            let child = Command::new(worker_bin)
                .arg("--master")
                .arg(addr.to_string())
                .arg("--worker")
                .arg(id.to_string())
                .stdin(std::process::Stdio::null())
                .spawn()?;
            children.push(child);
        }
        let wire = job.to_wire();
        let mut plane = {
            // A worker process exiting before it dials in would otherwise
            // only surface at the accept deadline.
            let mut dead_child = || {
                for (id, c) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = c.try_wait() {
                        return Some(format!("worker {id} exited during handshake ({status})"));
                    }
                }
                None
            };
            ControlPlane::accept(&listener, job.p, Some(&wire), Some(&mut dead_child))?
        };
        plane.serve_barriers(total_rounds)?;
        let summaries = plane.collect_summaries()?;
        plane.shutdown_all();
        Ok(summaries)
    })();

    if outcome.is_err() {
        for c in &mut children {
            let _ = c.kill();
        }
    }
    for c in &mut children {
        let _ = c.wait();
    }
    let summaries = outcome?;
    assemble_result(&built.cluster, built.program.as_ref(), built.db.total_bytes(), summaries)
}

/// The worker-process entry point behind `mpc_workerd`: dial the master,
/// receive the job, rebuild program and database from the spec, run the
/// worker loop over TCP, report the summary and wait for shutdown.
///
/// # Errors
///
/// Fails on protocol violations, job build errors and program errors; a
/// failure aborts the rest of the cluster before returning.
pub fn worker_main(master_addr: &str, worker_id: usize) -> Result<()> {
    let (mut transport, job) =
        tcp_worker_setup(worker_id, None, master_addr, SPAWNED_QUEUE_CAPACITY)?;
    let run = (|| -> Result<WorkerSummary> {
        let wire =
            job.ok_or_else(|| NetError::Protocol("spawned worker received no job".to_string()))?;
        let spec = JobSpec::from_wire(&wire)?;
        if spec.p != transport.parties() {
            return Err(NetError::Protocol(format!(
                "job says p = {}, peer table says {}",
                spec.p,
                transport.parties()
            )));
        }
        let built = spec.build()?;
        let pool = Arc::new(BlockPool::new());
        worker_loop(
            &mut transport,
            built.program.as_ref(),
            &built.db,
            worker_id,
            spec.p,
            spec.block_capacity,
            pool,
        )
    })();
    match run {
        Ok(summary) => {
            transport.send_control(&Frame::Summary {
                output: summary.output,
                per_round_bytes: summary.per_round_bytes,
                per_round_tuples: summary.per_round_tuples,
            })?;
            // Keep data sockets open until the master confirms every
            // worker drained; only then tear down.
            match transport.read_control()? {
                Frame::Shutdown => {}
                Frame::Abort { reason } => {
                    use crate::transport::Transport as _;
                    transport.abort();
                    return Err(NetError::Protocol(format!("master aborted: {reason}")));
                }
                other => {
                    return Err(NetError::Protocol(format!("expected Shutdown, got {other:?}")));
                }
            }
            transport.shutdown();
            Ok(())
        }
        Err(e) => {
            use crate::transport::Transport as _;
            transport.abort();
            Err(e)
        }
    }
}
