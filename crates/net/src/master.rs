//! The master control plane and the spawned-process execution mode.
//!
//! The coordination pattern follows the distributed-FDB design: a master
//! owns one control connection per worker and drives the job through a
//! fixed state machine —
//!
//! ```text
//! worker            master
//!   Hello{id, data_port}  ───▶
//!   ◀───  Job{spec}              (spawned mode only)
//!   ◀───  Checkpoint{...}        (recovery re-spawn only)
//!   ◀───  Peers{addr table}
//!   ... mesh-connect to peers (DataHello [+ ReplayRequest]) ...
//!   MeshReady  ───▶
//!   ◀───  Proceed(0)             (all meshed: the job starts)
//!   Checkpoint(r)  ───▶          (recovery runs, at the cadence)
//!   Ready(r)  ───▶               (each round)
//!   ◀───  Proceed(r)
//!   Summary{output, volumes}  ───▶   (spawned mode only)
//!   ◀───  Shutdown
//! ```
//!
//! with `Abort` valid in either direction at any time. The master polls
//! every control socket with a short read timeout while it waits, so a
//! worker process dying (its socket closing) surfaces fast instead of
//! deadlocking the barrier.
//!
//! What happens next depends on the [`RecoveryPolicy`]: by default the
//! master broadcasts `Abort` and fails the job (fail-fast). With
//! `max_respawns > 0` it instead re-spawns the dead worker from the same
//! [`JobSpec`], restores it from the latest [`Frame::Checkpoint`] it
//! holds for that worker, lets it rejoin the data mesh (surviving peers
//! replay the in-flight rounds from their bounded logs), drives its solo
//! catch-up barriers, and resumes the cluster-wide barrier protocol —
//! the recovered run produces a byte-identical [`RunResult`]. When the
//! respawn budget is exhausted the master falls back to the abort.
//!
//! [`run_spawned`] / [`run_spawned_with`] are the top of the stack: they
//! spawn one `mpc_workerd` OS process per server over localhost, serve
//! the control plane, and fold the workers' summaries into the same
//! [`RunResult`] as [`mpc_sim::Cluster::run`]. [`worker_main`] is the
//! matching worker-side entry point, rebuilding the job from its
//! [`JobSpec`] wire form.

use std::cell::{Cell, RefCell};
use std::io::BufRead;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpc_sim::{BlockPool, RunResult};

use crate::fault::FaultPhase;
use crate::frame::{read_frame, write_frame, Frame};
use crate::recovery::{MasterConfig, RecoveryPolicy, RecoverySettings};
use crate::runner::{assemble_result, tcp_worker_setup, worker_loop, WorkerRun, WorkerSummary};
use crate::spec::JobSpec;
use crate::{NetError, Result};

/// How long the master waits for all workers to dial in before declaring
/// the job dead (covers a worker binary that fails to start). Also the
/// budget for a recovery replacement to dial back in.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// The poll interval while waiting on worker control frames: short enough
/// that a dead worker fails the job promptly, long enough not to spin.
const POLL: Duration = Duration::from_millis(25);

/// Lane capacity for a spawned worker's inbox. TCP inboxes are fed by
/// reader threads via `force_send` (the kernel socket buffers are the
/// real bound), so this is shape, not backpressure.
const SPAWNED_QUEUE_CAPACITY: usize = 64;

/// One worker's control connection: reads buffered, plus a duplicated
/// handle used only to flip read timeouts (so the timeout guard does not
/// alias the buffered reader).
struct WorkerCtl {
    reader: BufReader<TcpStream>,
    timeouts: TcpStream,
}

impl WorkerCtl {
    fn from_stream(stream: TcpStream) -> Result<WorkerCtl> {
        stream.set_nodelay(true).ok();
        let timeouts = stream.try_clone()?;
        Ok(WorkerCtl { reader: BufReader::new(stream), timeouts })
    }
}

/// Clears the read timeout on the guarded socket when dropped, so every
/// early return out of a poll leaves the connection blocking again.
struct TimeoutGuard<'a>(&'a TcpStream);

impl Drop for TimeoutGuard<'_> {
    fn drop(&mut self) {
        self.0.set_read_timeout(None).ok();
    }
}

/// What one poll of a worker's control socket produced.
enum Polled {
    /// Nothing arrived within the poll interval.
    Pending,
    /// A complete frame.
    Got(Frame),
    /// The socket is dead (closed or failed) — the worker process is
    /// gone. Recoverable when a [`RecoveryPolicy`] allows it.
    Dead(String),
}

/// Everything the master needs to re-spawn a dead worker mid-job: the
/// retained accept listener, the policy and shared respawn budget, the
/// job wire form to re-send, and a callback that actually starts the
/// replacement process (always without fault injection).
struct Recoverer<'a> {
    listener: &'a TcpListener,
    policy: &'a RecoveryPolicy,
    used: &'a Cell<usize>,
    job_wire: &'a str,
    respawn: &'a mut dyn FnMut(usize) -> Result<()>,
}

/// The master's side of the handshake: `p` control connections, indexed
/// by worker id, plus the per-worker recovery state (current data
/// addresses and latest checkpoints).
pub struct ControlPlane {
    workers: Vec<WorkerCtl>,
    /// Current data-plane address of each worker (replacements update
    /// their slot, so later recoveries hand out a live peer table).
    addrs: Vec<String>,
    /// Latest `Frame::Checkpoint` seen from each worker, with its round.
    checkpoints: Vec<Option<(usize, Frame)>>,
    pool: BlockPool,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane").field("workers", &self.workers.len()).finish()
    }
}

impl ControlPlane {
    /// Accept `p` worker hellos on `listener`, optionally hand each the
    /// job spec, broadcast the peer address table, collect every
    /// `MeshReady` and release the cluster with `Proceed(0)`.
    ///
    /// `watch` is polled while waiting for connections; returning
    /// `Some(reason)` fails the handshake immediately (the spawned mode
    /// uses it to notice a worker process dying before it ever dials in —
    /// and, with recovery enabled, to re-spawn it on the spot).
    ///
    /// # Errors
    ///
    /// Fails (after aborting every connected worker) when a worker never
    /// dials in before the deadline, dies mid-handshake or violates the
    /// protocol.
    pub fn accept(
        listener: &TcpListener,
        p: usize,
        job: Option<&str>,
        watch: Option<&mut dyn FnMut() -> Option<String>>,
    ) -> Result<ControlPlane> {
        let mut plane = ControlPlane {
            workers: Vec::new(),
            addrs: Vec::new(),
            checkpoints: (0..p).map(|_| None).collect(),
            pool: BlockPool::new(),
        };
        match plane.accept_inner(listener, p, job, watch) {
            Ok(()) => Ok(plane),
            Err(e) => Err(plane.fail(format!("handshake failed: {e}"), e)),
        }
    }

    fn accept_inner(
        &mut self,
        listener: &TcpListener,
        p: usize,
        job: Option<&str>,
        mut watch: Option<&mut dyn FnMut() -> Option<String>>,
    ) -> Result<()> {
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        let mut slots: Vec<Option<WorkerCtl>> = (0..p).map(|_| None).collect();
        let mut addrs: Vec<Option<String>> = vec![None; p];
        let mut connected = 0usize;
        while connected < p {
            let (stream, peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Some(reason) = watch.as_mut().and_then(|w| w()) {
                        return Err(NetError::Protocol(reason));
                    }
                    if Instant::now() > deadline {
                        return Err(NetError::Protocol(format!(
                            "only {connected}/{p} workers dialed in before the deadline"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            stream.set_nonblocking(false)?;
            let mut ctl = WorkerCtl::from_stream(stream)?;
            let (worker_id, data_port) = match read_frame(&mut ctl.reader, &self.pool)? {
                Frame::Hello { worker_id, data_port } => (worker_id as usize, data_port),
                other => {
                    return Err(NetError::Protocol(format!("expected Hello, got {other:?}")));
                }
            };
            if worker_id >= p || slots[worker_id].is_some() {
                return Err(NetError::Protocol(format!("bad or duplicate worker id {worker_id}")));
            }
            if let Some(spec) = job {
                write_frame(ctl.reader.get_mut(), &Frame::Job { spec: spec.to_string() })?;
            }
            addrs[worker_id] = Some(format!("{}:{data_port}", peer.ip()));
            slots[worker_id] = Some(ctl);
            connected += 1;
        }
        listener.set_nonblocking(false)?;
        self.workers = slots.into_iter().map(|s| s.expect("all slots filled")).collect();
        self.addrs =
            addrs.into_iter().map(|a| a.expect("all addrs filled")).collect::<Vec<String>>();
        let peers: Vec<(u32, String)> =
            self.addrs.iter().enumerate().map(|(id, a)| (id as u32, a.clone())).collect();
        self.broadcast(&Frame::Peers { peers })?;
        for id in 0..p {
            self.await_from(id, |f| matches!(f, Frame::MeshReady), "MeshReady")?;
        }
        self.broadcast(&Frame::Proceed { round: 0 })?;
        Ok(())
    }

    /// Serve the per-round barrier for `rounds` rounds: collect a
    /// `Ready(r)` from every worker, then release them with `Proceed(r)`.
    ///
    /// # Errors
    ///
    /// Fails (after broadcasting `Abort`) on worker death, a worker-sent
    /// abort or barrier skew.
    pub fn serve_barriers(&mut self, rounds: usize) -> Result<()> {
        self.serve_barriers_with(rounds, None)
    }

    /// [`ControlPlane::serve_barriers`], with optional crash recovery: a
    /// dead worker is re-spawned through `rec` and spliced back into the
    /// barrier instead of failing the job.
    fn serve_barriers_with(
        &mut self,
        rounds: usize,
        mut rec: Option<&mut Recoverer<'_>>,
    ) -> Result<()> {
        for round in 1..=rounds {
            if let Err(e) = self.barrier_round(round, rec.as_deref_mut()) {
                return Err(self.fail(format!("barrier for round {round} failed: {e}"), e));
            }
        }
        Ok(())
    }

    /// One round's barrier: await `Ready(round)` from everyone (storing
    /// checkpoints as they stream in, recovering dead workers when
    /// allowed), then release with `Proceed(round)`.
    fn barrier_round(&mut self, round: usize, mut rec: Option<&mut Recoverer<'_>>) -> Result<()> {
        let p = self.workers.len();
        let mut ready = vec![false; p];
        // Workers whose restore point already covers this round must not
        // receive this round's Proceed: their next barrier is round + 1.
        let mut past = vec![false; p];
        let mut missing = p;
        while missing > 0 {
            for id in 0..p {
                if ready[id] {
                    continue;
                }
                match self.poll_frame(id)? {
                    Polled::Pending => {}
                    Polled::Got(f @ Frame::Checkpoint { .. }) => self.note_checkpoint(id, f),
                    Polled::Got(Frame::Ready { round: r }) if r as usize == round => {
                        ready[id] = true;
                        missing -= 1;
                    }
                    Polled::Got(Frame::Abort { reason }) => {
                        return Err(NetError::Protocol(format!("worker {id} aborted: {reason}")));
                    }
                    Polled::Got(other) => {
                        return Err(NetError::Protocol(format!(
                            "worker {id}: expected Ready({round}), got {other:?}"
                        )));
                    }
                    Polled::Dead(reason) => match rec.as_deref_mut() {
                        Some(r) => {
                            let c = self.recover(id, round, &reason, r)?;
                            if c >= round {
                                // The checkpoint already covers the round
                                // being awaited; the replacement resumes
                                // at round + 1.
                                ready[id] = true;
                                past[id] = true;
                                missing -= 1;
                            }
                        }
                        None => return Err(NetError::Protocol(reason)),
                    },
                }
            }
        }
        for (id, &recovered_past_this_round) in past.iter().enumerate() {
            if recovered_past_this_round {
                continue;
            }
            let sent = write_frame(
                self.workers[id].reader.get_mut(),
                &Frame::Proceed { round: round as u32 },
            );
            if let Err(e) = sent {
                match rec.as_deref_mut() {
                    // The worker died between its Ready and our Proceed:
                    // the replacement catches up through this round.
                    Some(r) => {
                        self.recover(id, round + 1, &format!("{e}"), r)?;
                    }
                    None => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Collect the end-of-job `Summary` from every worker (spawned mode),
    /// in worker-id order.
    ///
    /// # Errors
    ///
    /// Fails (after broadcasting `Abort`) on worker death or a non-summary
    /// frame.
    pub fn collect_summaries(&mut self) -> Result<Vec<WorkerSummary>> {
        self.collect_summaries_with(0, None)
    }

    /// [`ControlPlane::collect_summaries`], with optional crash recovery.
    /// `rounds` is the job's total round count, needed to catch a
    /// replacement up when its checkpoint predates the final round.
    fn collect_summaries_with(
        &mut self,
        rounds: usize,
        mut rec: Option<&mut Recoverer<'_>>,
    ) -> Result<Vec<WorkerSummary>> {
        let p = self.workers.len();
        let mut out: Vec<Option<WorkerSummary>> = (0..p).map(|_| None).collect();
        let mut missing = p;
        while missing > 0 {
            for (id, slot) in out.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let step = (|| -> Result<Option<WorkerSummary>> {
                    match self.poll_frame(id)? {
                        Polled::Pending => Ok(None),
                        Polled::Got(f @ Frame::Checkpoint { .. }) => {
                            self.note_checkpoint(id, f);
                            Ok(None)
                        }
                        Polled::Got(Frame::Summary {
                            output,
                            per_round_bytes,
                            per_round_tuples,
                        }) => Ok(Some(WorkerSummary { output, per_round_bytes, per_round_tuples })),
                        Polled::Got(Frame::Abort { reason }) => {
                            Err(NetError::Protocol(format!("worker {id} aborted: {reason}")))
                        }
                        Polled::Got(other) => Err(NetError::Protocol(format!(
                            "worker {id}: expected Summary, got {other:?}"
                        ))),
                        Polled::Dead(reason) => match rec.as_deref_mut() {
                            Some(r) => {
                                self.recover(id, rounds + 1, &reason, r)?;
                                Ok(None)
                            }
                            None => Err(NetError::Protocol(reason)),
                        },
                    }
                })();
                match step {
                    Ok(None) => {}
                    Ok(summary @ Some(_)) => {
                        *slot = summary;
                        missing -= 1;
                    }
                    Err(e) => return Err(self.fail(format!("{e}"), e)),
                }
            }
        }
        Ok(out.into_iter().map(|s| s.expect("all summaries collected")).collect())
    }

    /// Re-spawn dead worker `dead` and splice the replacement back into
    /// the live cluster: hand it the job and its latest checkpoint, let
    /// it rejoin the data mesh (peers replay from their logs), then drive
    /// its solo catch-up barriers for every round before `awaiting` — the
    /// round whose barrier the caller is currently serving. Returns the
    /// checkpoint round the replacement restored from.
    fn recover(
        &mut self,
        dead: usize,
        awaiting: usize,
        why: &str,
        rec: &mut Recoverer<'_>,
    ) -> Result<usize> {
        if rec.used.get() >= rec.policy.max_respawns {
            return Err(NetError::Protocol(format!(
                "worker {dead} died ({why}) and the recovery budget is exhausted \
                 ({} respawns used)",
                rec.used.get()
            )));
        }
        std::thread::sleep(rec.policy.pause_before(rec.used.get()));
        rec.used.set(rec.used.get() + 1);
        eprintln!(
            "mpc-net master: worker {dead} died ({why}); re-spawning (respawn {}/{})",
            rec.used.get(),
            rec.policy.max_respawns
        );
        (rec.respawn)(dead)?;
        // Accept the replacement's dial-in on the retained listener.
        rec.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        let (stream, peer) = loop {
            match rec.listener.accept() {
                Ok(conn) => break conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(NetError::Protocol(format!(
                            "replacement for worker {dead} never dialed in"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
        };
        rec.listener.set_nonblocking(false)?;
        stream.set_nonblocking(false)?;
        let mut ctl = WorkerCtl::from_stream(stream)?;
        let (worker_id, data_port) = match read_frame(&mut ctl.reader, &self.pool)? {
            Frame::Hello { worker_id, data_port } => (worker_id as usize, data_port),
            other => {
                return Err(NetError::Protocol(format!(
                    "replacement for worker {dead}: expected Hello, got {other:?}"
                )));
            }
        };
        if worker_id != dead {
            return Err(NetError::Protocol(format!(
                "replacement dialed in as worker {worker_id}, expected {dead}"
            )));
        }
        write_frame(ctl.reader.get_mut(), &Frame::Job { spec: rec.job_wire.to_string() })?;
        // A replacement always gets a checkpoint — the empty round-0 one
        // when the worker died before its first snapshot. Receiving it is
        // what tells the worker to rejoin the mesh (dial every survivor
        // and request replay) instead of running the fresh handshake.
        let c = match &self.checkpoints[dead] {
            Some((round, frame)) => {
                write_frame(ctl.reader.get_mut(), frame)?;
                *round
            }
            None => {
                let scratch = Frame::Checkpoint {
                    round: 0,
                    relations: Vec::new(),
                    per_round_bytes: Vec::new(),
                    per_round_tuples: Vec::new(),
                };
                write_frame(ctl.reader.get_mut(), &scratch)?;
                0
            }
        };
        self.addrs[dead] = format!("{}:{data_port}", peer.ip());
        let peers: Vec<(u32, String)> =
            self.addrs.iter().enumerate().map(|(id, a)| (id as u32, a.clone())).collect();
        write_frame(ctl.reader.get_mut(), &Frame::Peers { peers })?;
        self.workers[dead] = ctl;
        // The replacement now rejoins the mesh: it dials every survivor's
        // rejoin acceptor and asks for replay. The survivors' transports
        // service those rejoins from their own send/recv/barrier paths.
        self.await_from(dead, |f| matches!(f, Frame::MeshReady), "MeshReady")?;
        write_frame(self.workers[dead].reader.get_mut(), &Frame::Proceed { round: 0 })?;
        // Solo catch-up: the replacement re-executes rounds c+1.. and the
        // master answers its barriers alone — the survivors already got
        // those Proceeds. The barrier for `awaiting` stays with the
        // caller.
        for k in (c + 1)..awaiting {
            self.await_from(
                dead,
                |f| matches!(f, Frame::Ready { round } if *round as usize == k),
                &format!("Ready({k})"),
            )?;
            write_frame(self.workers[dead].reader.get_mut(), &Frame::Proceed { round: k as u32 })?;
        }
        Ok(c)
    }

    /// Wait for one worker to send a frame matching `expect`, storing any
    /// checkpoints that stream past. Death here is not recoverable (it
    /// would mean a replacement died mid-recovery).
    fn await_from(&mut self, id: usize, expect: impl Fn(&Frame) -> bool, what: &str) -> Result<()> {
        loop {
            match self.poll_frame(id)? {
                Polled::Pending => {}
                Polled::Got(f) if expect(&f) => return Ok(()),
                Polled::Got(f @ Frame::Checkpoint { .. }) => self.note_checkpoint(id, f),
                Polled::Got(Frame::Abort { reason }) => {
                    return Err(NetError::Protocol(format!("worker {id} aborted: {reason}")));
                }
                Polled::Got(other) => {
                    return Err(NetError::Protocol(format!(
                        "worker {id}: expected {what}, got {other:?}"
                    )));
                }
                Polled::Dead(reason) => return Err(NetError::Protocol(reason)),
            }
        }
    }

    fn note_checkpoint(&mut self, id: usize, frame: Frame) {
        if let Frame::Checkpoint { round, .. } = &frame {
            self.checkpoints[id] = Some((*round as usize, frame));
        }
    }

    /// Release every worker for a clean exit (spawned mode).
    pub fn shutdown_all(&mut self) {
        let _ = self.broadcast(&Frame::Shutdown);
    }

    /// Best-effort fail-fast broadcast. Returns the ids of workers the
    /// abort could not be delivered to (already-dead sockets), so callers
    /// can name them in the surfaced error instead of dropping the
    /// failures silently.
    pub fn abort_all(&mut self, reason: &str) -> Vec<usize> {
        let mut unreachable = Vec::new();
        for (id, w) in self.workers.iter_mut().enumerate() {
            let sent =
                write_frame(w.reader.get_mut(), &Frame::Abort { reason: reason.to_string() });
            if sent.is_err() {
                unreachable.push(id);
            }
        }
        unreachable
    }

    /// Abort the cluster and annotate `e` with any workers the abort
    /// never reached.
    fn fail(&mut self, reason: String, e: NetError) -> NetError {
        let unreachable = self.abort_all(&reason);
        if unreachable.is_empty() {
            e
        } else {
            NetError::Protocol(format!("{e} (abort undeliverable to workers {unreachable:?})"))
        }
    }

    fn broadcast(&mut self, frame: &Frame) -> Result<()> {
        for w in &mut self.workers {
            write_frame(w.reader.get_mut(), frame)?;
        }
        Ok(())
    }

    /// Try to read one frame from worker `id` within the poll interval.
    /// A closed or failing socket is reported as [`Polled::Dead`] rather
    /// than an error, so callers can choose between fail-fast and
    /// recovery; only a malformed frame (protocol corruption) is an
    /// error.
    fn poll_frame(&mut self, id: usize) -> Result<Polled> {
        let w = &mut self.workers[id];
        w.timeouts.set_read_timeout(Some(POLL))?;
        // The guard clears the timeout on every exit path below; the
        // blocking read_frame must never run under a poll timeout (a
        // timed-out partial read would corrupt the frame stream).
        let guard = TimeoutGuard(&w.timeouts);
        match w.reader.fill_buf() {
            Ok([]) => {
                return Ok(Polled::Dead(format!("worker {id} died (control connection closed)")));
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(Polled::Pending);
            }
            Err(e) => {
                return Ok(Polled::Dead(format!("worker {id} control socket failed: {e}")));
            }
        }
        drop(guard);
        match read_frame(&mut w.reader, &self.pool) {
            Ok(f) => Ok(Polled::Got(f)),
            Err(NetError::Io(e)) => Ok(Polled::Dead(format!("worker {id} died mid-frame: {e}"))),
            Err(e) => Err(e),
        }
    }
}

/// Outcome of a spawned-process run under a [`MasterConfig`].
#[derive(Debug)]
pub struct SpawnedReport {
    /// The assembled result — byte-identical to a fault-free run even
    /// when recovery re-spawned workers along the way.
    pub result: RunResult,
    /// How many worker re-spawns the run consumed (0 on a clean run).
    pub respawns: usize,
}

/// Run `job` on a cluster of `job.p` spawned worker processes
/// (`worker_bin --master ADDR --worker ID`) coordinated over localhost,
/// and return the same [`RunResult`] as [`mpc_sim::Cluster::run`] on the
/// equivalent single-process cluster. Fail-fast: the first dead worker
/// aborts the job. See [`run_spawned_with`] for crash recovery.
///
/// Children are killed (and always reaped) when anything fails.
///
/// # Errors
///
/// Fails on spawn errors, worker death, protocol violations and — under
/// the cluster's overload policy — budget violations.
pub fn run_spawned(job: &JobSpec, worker_bin: &Path) -> Result<RunResult> {
    run_spawned_with(job, worker_bin, &MasterConfig::default()).map(|r| r.result)
}

/// [`run_spawned`] with a [`MasterConfig`]: a [`RecoveryPolicy`] that
/// re-spawns dead workers from their round checkpoints, and an optional
/// [`FaultPlan`](crate::FaultPlan) injected into the initial worker
/// processes (replacements always run clean).
///
/// # Errors
///
/// As [`run_spawned`]; with recovery enabled, worker deaths only fail
/// the job once the respawn budget is exhausted.
pub fn run_spawned_with(
    job: &JobSpec,
    worker_bin: &Path,
    cfg: &MasterConfig,
) -> Result<SpawnedReport> {
    let built = job.build()?;
    let total_rounds = built.program.num_rounds();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let policy = &cfg.recovery;
    let wire = format!("{}{}", job.to_wire(), RecoverySettings::from_policy(policy).wire_lines());
    let children: RefCell<Vec<Child>> = RefCell::new(Vec::with_capacity(job.p));
    let used = Cell::new(0usize);

    let spawn_worker = |id: usize, with_faults: bool| -> Result<Child> {
        let mut cmd = Command::new(worker_bin);
        cmd.arg("--master").arg(addr.to_string()).arg("--worker").arg(id.to_string());
        if with_faults {
            if let Some(plan) = &cfg.faults {
                for fault in plan.for_worker(id as u32) {
                    cmd.arg("--fault").arg(fault);
                }
            }
        }
        Ok(cmd.stdin(std::process::Stdio::null()).spawn()?)
    };

    let outcome = (|| -> Result<Vec<WorkerSummary>> {
        for id in 0..job.p {
            let child = spawn_worker(id, true)?;
            children.borrow_mut().push(child);
        }
        let mut plane = {
            // A worker process exiting before it dials in would otherwise
            // only surface at the accept deadline. With recovery enabled
            // the handshake heals in place: the replacement simply dials
            // in instead of the original.
            let mut watch = || -> Option<String> {
                let mut kids = children.borrow_mut();
                for (id, c) in kids.iter_mut().enumerate() {
                    let Ok(Some(status)) = c.try_wait() else { continue };
                    if policy.enabled() && used.get() < policy.max_respawns {
                        std::thread::sleep(policy.pause_before(used.get()));
                        used.set(used.get() + 1);
                        eprintln!(
                            "mpc-net master: worker {id} exited during handshake ({status}); \
                             re-spawning (respawn {}/{})",
                            used.get(),
                            policy.max_respawns
                        );
                        match spawn_worker(id, false) {
                            Ok(child) => {
                                kids[id] = child;
                                return None;
                            }
                            Err(e) => {
                                return Some(format!(
                                    "worker {id} died in handshake and respawn failed: {e}"
                                ));
                            }
                        }
                    }
                    return Some(format!("worker {id} exited during handshake ({status})"));
                }
                None
            };
            ControlPlane::accept(&listener, job.p, Some(&wire), Some(&mut watch))?
        };
        if policy.enabled() {
            let mut respawn = |id: usize| -> Result<()> {
                let child = spawn_worker(id, false)?;
                let mut kids = children.borrow_mut();
                let _ = kids[id].kill();
                let _ = kids[id].wait();
                kids[id] = child;
                Ok(())
            };
            let mut rec = Recoverer {
                listener: &listener,
                policy,
                used: &used,
                job_wire: &wire,
                respawn: &mut respawn,
            };
            plane.serve_barriers_with(total_rounds, Some(&mut rec))?;
            let summaries = plane.collect_summaries_with(total_rounds, Some(&mut rec))?;
            plane.shutdown_all();
            Ok(summaries)
        } else {
            plane.serve_barriers(total_rounds)?;
            let summaries = plane.collect_summaries()?;
            plane.shutdown_all();
            Ok(summaries)
        }
    })();

    if outcome.is_err() {
        for c in children.borrow_mut().iter_mut() {
            let _ = c.kill();
        }
    }
    for c in children.borrow_mut().iter_mut() {
        let _ = c.wait();
    }
    let summaries = outcome?;
    let result =
        assemble_result(&built.cluster, built.program.as_ref(), built.db.total_bytes(), summaries)?;
    Ok(SpawnedReport { result, respawns: used.get() })
}

/// The worker-process entry point behind `mpc_workerd`: dial the master,
/// receive the job (and, for a recovery replacement, the checkpoint to
/// restore from), rebuild program and database from the spec, run the
/// worker loop over TCP, report the summary and wait for shutdown.
///
/// # Errors
///
/// Fails on protocol violations, job build errors and program errors; a
/// failure aborts the rest of the cluster before returning.
pub fn worker_main(master_addr: &str, worker_id: usize) -> Result<()> {
    crate::fault::trip(worker_id as u32, FaultPhase::Handshake);
    let setup = tcp_worker_setup(worker_id, None, master_addr, SPAWNED_QUEUE_CAPACITY)?;
    let mut transport = setup.transport;
    let job = setup.job;
    let resume = setup.restore;
    let run = (|| -> Result<WorkerSummary> {
        let wire =
            job.ok_or_else(|| NetError::Protocol("spawned worker received no job".to_string()))?;
        let spec = JobSpec::from_wire(&wire)?;
        if spec.p != transport.parties() {
            return Err(NetError::Protocol(format!(
                "job says p = {}, peer table says {}",
                spec.p,
                transport.parties()
            )));
        }
        let built = spec.build()?;
        let run = WorkerRun {
            id: worker_id,
            p: spec.p,
            block_capacity: spec.block_capacity,
            pool: Arc::new(BlockPool::new()),
            resume,
        };
        worker_loop(&mut transport, built.program.as_ref(), &built.db, run)
    })();
    match run {
        Ok(summary) => {
            crate::fault::trip(worker_id as u32, FaultPhase::Summary);
            transport.send_control(&Frame::Summary {
                output: summary.output,
                per_round_bytes: summary.per_round_bytes,
                per_round_tuples: summary.per_round_tuples,
            })?;
            // Keep data sockets open until the master confirms every
            // worker drained; only then tear down.
            match transport.read_control()? {
                Frame::Shutdown => {}
                Frame::Abort { reason } => {
                    use crate::transport::Transport as _;
                    transport.abort();
                    return Err(NetError::Protocol(format!("master aborted: {reason}")));
                }
                other => {
                    return Err(NetError::Protocol(format!("expected Shutdown, got {other:?}")));
                }
            }
            transport.shutdown();
            Ok(())
        }
        Err(e) => {
            use crate::transport::Transport as _;
            transport.abort();
            Err(e)
        }
    }
}
