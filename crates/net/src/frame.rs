//! The length-prefixed binary wire format.
//!
//! Every frame is `u32 LE body length` followed by the body; the body is
//! one kind byte plus kind-specific fields. Integers are little-endian,
//! strings are `u32 length + UTF-8 bytes`. The only data frame is
//! [`Frame::Block`], whose payload is the columnar
//! [`TupleBlock`] layout **verbatim**: `arity`
//! contiguous runs of `rows` 8-byte values each, one per column — the
//! same bytes the in-process plane keeps in its pooled
//! [`ColumnBuf`](mpc_sim::ColumnBuf)s, so encoding is a columnwise copy
//! and decoding refills a pooled buffer straight from the socket with no
//! row-major detour.
//!
//! Control frames implement the master/worker protocol (see
//! [`crate::master`] for the state machine): `Hello` → `Job` → `Peers` →
//! `MeshReady` → per-round `Ready`/`Proceed` → `Summary` → `Shutdown`,
//! with `Abort` usable by either side at any point. `DataHello`
//! identifies the connecting worker on a freshly opened data socket.

use std::io::{Read, Write};
use std::sync::Arc;

use mpc_sim::{BlockPool, TupleBlock};
use mpc_storage::{Relation, Tuple, Value};

use crate::{NetError, Result};

/// Upper bound on a frame body, as a sanity check against corrupted
/// length prefixes (64 MiB is far above any block this workspace seals).
const MAX_BODY: u32 = 64 << 20;

const KIND_HELLO: u8 = 1;
const KIND_JOB: u8 = 2;
const KIND_PEERS: u8 = 3;
const KIND_MESH_READY: u8 = 4;
const KIND_READY: u8 = 5;
const KIND_PROCEED: u8 = 6;
const KIND_BLOCK: u8 = 7;
const KIND_FIN: u8 = 8;
const KIND_SUMMARY: u8 = 9;
const KIND_SHUTDOWN: u8 = 10;
const KIND_ABORT: u8 = 11;
const KIND_DATA_HELLO: u8 = 12;
const KIND_CHECKPOINT: u8 = 13;
const KIND_REPLAY_REQUEST: u8 = 14;
const KIND_REPLAY_DATA: u8 = 15;

/// One frame on a control or data socket.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Worker → master, first frame on the control socket: who am I and
    /// where do my peers reach my data listener.
    Hello {
        /// The worker's server id in `0..p`.
        worker_id: u32,
        /// TCP port of the worker's data listener (on localhost).
        data_port: u16,
    },
    /// Master → worker: the job description ([`crate::JobSpec`] wire
    /// form).
    Job {
        /// `JobSpec::to_wire()` text.
        spec: String,
    },
    /// Master → worker: the data-plane address of every worker.
    Peers {
        /// `(worker id, "host:port")` pairs, one per worker.
        peers: Vec<(u32, String)>,
    },
    /// Worker → master: all outbound data connections are up.
    MeshReady,
    /// Worker → master: finished `round`, ready for the next one. Round 0
    /// is the mesh barrier before the first data round.
    Ready {
        /// The completed round.
        round: u32,
    },
    /// Master → worker: every worker is ready; enter `round + 1`.
    Proceed {
        /// The round every worker has completed.
        round: u32,
    },
    /// A sealed columnar tuple block (the only data frame).
    Block(TupleBlock),
    /// All round-`round` blocks from this sender have been sent.
    Fin {
        /// The finished round (1-based).
        round: u32,
    },
    /// Worker → master at end of job: this server's output relation and
    /// per-round received volumes.
    Summary {
        /// The server's local (pre-union) output relation.
        output: Relation,
        /// Bytes received per round (index `round - 1`).
        per_round_bytes: Vec<u64>,
        /// Tuples received per round.
        per_round_tuples: Vec<u64>,
    },
    /// Master → worker: the job is complete, exit cleanly.
    Shutdown,
    /// Either direction: the job is dead; tear everything down.
    Abort {
        /// Human-readable cause.
        reason: String,
    },
    /// Worker → worker, first frame on a freshly opened data socket:
    /// which server is on the other end.
    DataHello {
        /// Sending server id.
        from: u32,
    },
    /// A round checkpoint: the server's full post-compute relation state
    /// and per-round received volumes at the end of `round`.
    ///
    /// Worker → master: sent on the control stream right before
    /// `Ready(round)` (the per-round barrier is the checkpoint cut).
    /// Master → worker: the same payload restores a re-spawned worker,
    /// which resumes execution at `round + 1`.
    Checkpoint {
        /// The completed round this snapshot describes (0 = fresh start).
        round: u32,
        /// Every relation the server knows, in tag order.
        relations: Vec<Relation>,
        /// Bytes received per round (index `round - 1`).
        per_round_bytes: Vec<u64>,
        /// Tuples received per round.
        per_round_tuples: Vec<u64>,
    },
    /// Re-spawned worker → surviving peer, right after `DataHello` on the
    /// rejoin data socket: retransmit your logged outbound frames for
    /// every round after `from_round` (the rejoiner's checkpoint).
    ReplayRequest {
        /// The rejoining worker's restored checkpoint round.
        from_round: u32,
    },
    /// Surviving peer → re-spawned worker: header preceding the `frames`
    /// logged frames of `round` it is about to retransmit.
    ReplayData {
        /// The round being replayed.
        round: u32,
        /// How many logged frames follow.
        frames: u32,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over a received frame body.
struct Body<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(NetError::Protocol("frame body truncated".to_string()));
        };
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| NetError::Protocol("frame string is not UTF-8".to_string()))
    }

    fn values(&mut self, count: usize, out: &mut Vec<Value>) -> Result<()> {
        let raw = self.take(count * 8)?;
        out.reserve(count);
        for chunk in raw.chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        Ok(())
    }
}

fn put_relation(buf: &mut Vec<u8>, rel: &Relation) {
    put_str(buf, rel.name());
    put_u32(buf, rel.arity() as u32);
    put_u32(buf, rel.len() as u32);
    for t in rel.iter() {
        for &v in t.values() {
            put_u64(buf, v);
        }
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u64(buf, v);
    }
}

fn take_relation(b: &mut Body<'_>) -> Result<Relation> {
    let name = b.str()?;
    let arity = b.u32()? as usize;
    let rows = b.u32()? as usize;
    let mut rel = Relation::empty(&name, arity);
    let mut row = Vec::with_capacity(arity);
    for _ in 0..rows {
        row.clear();
        b.values(arity, &mut row)?;
        rel.insert(Tuple(row.clone()))
            .map_err(|e| NetError::Protocol(format!("wire relation: {e}")))?;
    }
    Ok(rel)
}

fn take_u64s(b: &mut Body<'_>) -> Result<Vec<u64>> {
    let count = b.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(b.u64()?);
    }
    Ok(out)
}

/// Serialise `frame` into `buf` (cleared first): length prefix + body.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) {
    buf.clear();
    put_u32(buf, 0); // length placeholder
    match frame {
        Frame::Hello { worker_id, data_port } => {
            buf.push(KIND_HELLO);
            put_u32(buf, *worker_id);
            put_u16(buf, *data_port);
        }
        Frame::Job { spec } => {
            buf.push(KIND_JOB);
            put_str(buf, spec);
        }
        Frame::Peers { peers } => {
            buf.push(KIND_PEERS);
            put_u32(buf, peers.len() as u32);
            for (id, addr) in peers {
                put_u32(buf, *id);
                put_str(buf, addr);
            }
        }
        Frame::MeshReady => buf.push(KIND_MESH_READY),
        Frame::Ready { round } => {
            buf.push(KIND_READY);
            put_u32(buf, *round);
        }
        Frame::Proceed { round } => {
            buf.push(KIND_PROCEED);
            put_u32(buf, *round);
        }
        Frame::Block(block) => {
            buf.push(KIND_BLOCK);
            put_str(buf, &block.tag);
            put_u32(buf, block.round as u32);
            put_u32(buf, block.from as u32);
            put_u64(buf, block.seq);
            put_u32(buf, block.arity() as u32);
            put_u32(buf, block.len() as u32);
            for c in 0..block.arity() {
                for &v in block.column(c) {
                    put_u64(buf, v);
                }
            }
        }
        Frame::Fin { round } => {
            buf.push(KIND_FIN);
            put_u32(buf, *round);
        }
        Frame::Summary { output, per_round_bytes, per_round_tuples } => {
            buf.push(KIND_SUMMARY);
            put_relation(buf, output);
            put_u64s(buf, per_round_bytes);
            put_u64s(buf, per_round_tuples);
        }
        Frame::Shutdown => buf.push(KIND_SHUTDOWN),
        Frame::Abort { reason } => {
            buf.push(KIND_ABORT);
            put_str(buf, reason);
        }
        Frame::DataHello { from } => {
            buf.push(KIND_DATA_HELLO);
            put_u32(buf, *from);
        }
        Frame::Checkpoint { round, relations, per_round_bytes, per_round_tuples } => {
            buf.push(KIND_CHECKPOINT);
            put_u32(buf, *round);
            put_u32(buf, relations.len() as u32);
            for rel in relations {
                put_relation(buf, rel);
            }
            put_u64s(buf, per_round_bytes);
            put_u64s(buf, per_round_tuples);
        }
        Frame::ReplayRequest { from_round } => {
            buf.push(KIND_REPLAY_REQUEST);
            put_u32(buf, *from_round);
        }
        Frame::ReplayData { round, frames } => {
            buf.push(KIND_REPLAY_DATA);
            put_u32(buf, *round);
            put_u32(buf, *frames);
        }
    }
    let body_len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&body_len.to_le_bytes());
}

/// Write one frame to `w` (buffered by the caller; no flush here).
///
/// # Errors
///
/// Propagates write errors.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<()> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf);
    w.write_all(&buf)?;
    Ok(())
}

/// Read one frame from `r`. Block payloads refill a [`mpc_sim::ColumnBuf`] checked
/// out of `pool`, so steady-state decoding reuses storage.
///
/// # Errors
///
/// Fails on socket errors, truncated or oversized frames, and malformed
/// bodies.
pub fn read_frame<R: Read>(r: &mut R, pool: &BlockPool) -> Result<Frame> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 || len > MAX_BODY {
        return Err(NetError::Protocol(format!("implausible frame length {len}")));
    }
    let mut raw = vec![0u8; len as usize];
    r.read_exact(&mut raw)?;
    decode_body(&raw, pool)
}

/// Decode one frame body (everything after the length prefix).
///
/// # Errors
///
/// Fails on malformed bodies.
pub fn decode_body(raw: &[u8], pool: &BlockPool) -> Result<Frame> {
    let mut b = Body { bytes: raw, at: 0 };
    let kind = b.take(1)?[0];
    let frame = match kind {
        KIND_HELLO => Frame::Hello { worker_id: b.u32()?, data_port: b.u16()? },
        KIND_JOB => Frame::Job { spec: b.str()? },
        KIND_PEERS => {
            let count = b.u32()? as usize;
            let mut peers = Vec::with_capacity(count);
            for _ in 0..count {
                let id = b.u32()?;
                let addr = b.str()?;
                peers.push((id, addr));
            }
            Frame::Peers { peers }
        }
        KIND_MESH_READY => Frame::MeshReady,
        KIND_READY => Frame::Ready { round: b.u32()? },
        KIND_PROCEED => Frame::Proceed { round: b.u32()? },
        KIND_BLOCK => {
            let tag: Arc<str> = Arc::from(b.str()?.as_str());
            let round = b.u32()? as usize;
            let from = b.u32()? as usize;
            let seq = b.u64()?;
            let arity = b.u32()? as usize;
            let rows = b.u32()? as usize;
            let mut cols = pool.checkout(arity, rows);
            let refilled = cols.refill(rows, |col| b.values(rows, col));
            if let Err(e) = refilled {
                pool.give_back(cols);
                return Err(e);
            }
            Frame::Block(TupleBlock::from_parts(tag, round, from, seq, cols))
        }
        KIND_FIN => Frame::Fin { round: b.u32()? },
        KIND_SUMMARY => {
            let output = take_relation(&mut b)?;
            let per_round_bytes = take_u64s(&mut b)?;
            let per_round_tuples = take_u64s(&mut b)?;
            Frame::Summary { output, per_round_bytes, per_round_tuples }
        }
        KIND_SHUTDOWN => Frame::Shutdown,
        KIND_ABORT => Frame::Abort { reason: b.str()? },
        KIND_DATA_HELLO => Frame::DataHello { from: b.u32()? },
        KIND_CHECKPOINT => {
            let round = b.u32()?;
            let count = b.u32()? as usize;
            let mut relations = Vec::with_capacity(count);
            for _ in 0..count {
                relations.push(take_relation(&mut b)?);
            }
            let per_round_bytes = take_u64s(&mut b)?;
            let per_round_tuples = take_u64s(&mut b)?;
            Frame::Checkpoint { round, relations, per_round_bytes, per_round_tuples }
        }
        KIND_REPLAY_REQUEST => Frame::ReplayRequest { from_round: b.u32()? },
        KIND_REPLAY_DATA => Frame::ReplayData { round: b.u32()?, frames: b.u32()? },
        other => return Err(NetError::Protocol(format!("unknown frame kind {other}"))),
    };
    if b.at != raw.len() {
        return Err(NetError::Protocol(format!(
            "frame kind {kind} left {} trailing bytes",
            raw.len() - b.at
        )));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::BlockAssembler;

    fn round_trip(frame: &Frame, pool: &BlockPool) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, frame).unwrap();
        let mut cursor = &wire[..];
        let got = read_frame(&mut cursor, pool).unwrap();
        assert!(cursor.is_empty(), "frame consumed exactly");
        got
    }

    #[test]
    fn control_frames_round_trip() {
        let pool = BlockPool::new();
        let frames = vec![
            Frame::Hello { worker_id: 3, data_port: 40123 },
            Frame::Job { spec: "program=hypercube\nquery=C3(a,b,c) :- R(a,b)".to_string() },
            Frame::Peers {
                peers: vec![(0, "127.0.0.1:4000".to_string()), (1, "127.0.0.1:4001".to_string())],
            },
            Frame::MeshReady,
            Frame::Ready { round: 2 },
            Frame::Proceed { round: 2 },
            Frame::Fin { round: 1 },
            Frame::Shutdown,
            Frame::Abort { reason: "worker 2 died".to_string() },
            Frame::DataHello { from: 5 },
            Frame::ReplayRequest { from_round: 3 },
            Frame::ReplayData { round: 4, frames: 17 },
        ];
        for f in frames {
            let got = round_trip(&f, &pool);
            assert_eq!(format!("{f:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn block_frames_preserve_columns_and_recycle_storage() {
        let pool = Arc::new(BlockPool::new());
        let mut asm = BlockAssembler::new(Arc::clone(&pool), 4, 7, 2);
        let mut sealed = None;
        for i in 0..4u64 {
            if let Some(b) = asm.push(1, "Edge", &[i, i * 10, i * 100]) {
                sealed = Some(b);
            }
        }
        let block = sealed.expect("sealed at capacity");
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Block(block.clone())).unwrap();
        let got = match read_frame(&mut &wire[..], &pool).unwrap() {
            Frame::Block(b) => b,
            other => panic!("expected a block, got {other:?}"),
        };
        assert_eq!((&*got.tag, got.round, got.from, got.seq), ("Edge", 2, 7, 0));
        assert_eq!(got.len(), 4);
        assert_eq!(got.arity(), 3);
        for c in 0..3 {
            assert_eq!(got.column(c), block.column(c), "column {c} intact");
        }
        assert_eq!(got.payload_bytes(), block.payload_bytes());
        pool.give_back(block.into_columns());
        pool.give_back(got.into_columns());
        assert!(pool.stats().balanced());
    }

    #[test]
    fn summary_frames_round_trip() {
        let pool = BlockPool::new();
        let output = Relation::from_tuples("q", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        let f = Frame::Summary {
            output: output.clone(),
            per_round_bytes: vec![128, 0, 64],
            per_round_tuples: vec![8, 0, 4],
        };
        match round_trip(&f, &pool) {
            Frame::Summary { output: got, per_round_bytes, per_round_tuples } => {
                assert!(got.same_tuples(&output));
                assert_eq!(per_round_bytes, vec![128, 0, 64]);
                assert_eq!(per_round_tuples, vec![8, 0, 4]);
            }
            other => panic!("expected a summary, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_frames_round_trip() {
        let pool = BlockPool::new();
        let r1 = Relation::from_tuples("R", 2, vec![[1u64, 2], [3, 4]]).unwrap();
        let r2 = Relation::from_tuples("S", 3, vec![[5u64, 6, 7]]).unwrap();
        let f = Frame::Checkpoint {
            round: 2,
            relations: vec![r1.clone(), r2.clone()],
            per_round_bytes: vec![96, 24],
            per_round_tuples: vec![6, 1],
        };
        match round_trip(&f, &pool) {
            Frame::Checkpoint { round, relations, per_round_bytes, per_round_tuples } => {
                assert_eq!(round, 2);
                assert_eq!(relations.len(), 2);
                assert!(relations[0].same_tuples(&r1));
                assert_eq!(relations[0].name(), "R");
                assert!(relations[1].same_tuples(&r2));
                assert_eq!(relations[1].name(), "S");
                assert_eq!(per_round_bytes, vec![96, 24]);
                assert_eq!(per_round_tuples, vec![6, 1]);
            }
            other => panic!("expected a checkpoint, got {other:?}"),
        }
        // A fresh-start checkpoint is legal: round 0, nothing learned yet.
        match round_trip(
            &Frame::Checkpoint {
                round: 0,
                relations: vec![],
                per_round_bytes: vec![],
                per_round_tuples: vec![],
            },
            &pool,
        ) {
            Frame::Checkpoint { round: 0, relations, .. } => assert!(relations.is_empty()),
            other => panic!("expected the empty checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_rejected_not_trusted() {
        let pool = BlockPool::new();
        // Implausible length prefix.
        let wire = (MAX_BODY + 1).to_le_bytes();
        assert!(read_frame(&mut &wire[..], &pool).is_err());
        // Unknown kind.
        assert!(decode_body(&[99], &pool).is_err());
        // Truncated body.
        assert!(decode_body(&[KIND_READY, 1], &pool).is_err());
        // Trailing garbage.
        assert!(decode_body(&[KIND_MESH_READY, 0, 0], &pool).is_err());
    }
}
