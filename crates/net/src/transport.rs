//! The [`Transport`] abstraction: how a worker's packets reach its peers.
//!
//! Two implementations ship:
//!
//! * [`InProcTransport`] wraps the bounded per-link lanes of
//!   [`mpc_sim::queue`] — the exact channels of the event-driven backend —
//!   plus a shared fail-fast round barrier. It exists so the differential
//!   layer can prove that swapping the transport (rather than the
//!   protocol) never changes semantics.
//! * [`TcpTransport`] moves the same packets as length-prefixed frames
//!   ([`crate::frame`]) over one TCP stream per peer, with a reader
//!   thread per inbound connection decoding frames into the worker's
//!   inbox. The round barrier rides on the worker's control connection to
//!   the master (`Ready`/`Proceed`).
//!
//! **Backpressure note.** The in-process lanes bound their capacity and
//! report `Full`, mirroring the async backend. TCP inboxes are fed by
//! reader threads via `force_send` — the kernel's socket buffers provide
//! the real backpressure there, and bounding the inbox as well could
//! deadlock the single reader thread behind a stalled worker. The volume
//! accounting is identical either way.
//!
//! **Recovery note.** With [`RecoverySettings::enabled`] the TCP
//! transport additionally (a) retains every outbound data frame of the
//! last `checkpoint_every + 1` rounds in a per-round replay log, (b)
//! keeps its data listener open on an acceptor thread so a re-spawned
//! peer can rejoin mid-job (`DataHello` + `ReplayRequest`), replaying the
//! logged frames onto the fresh socket, and (c) dedups inbound blocks by
//! the `(from, round)` sequence watermark and inbound FINs by
//! `(link, round)`, so a recovering peer's re-sent traffic is delivered
//! exactly once. A dead peer then stalls this worker (waiting for the
//! master to re-spawn it) instead of aborting the job.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpc_sim::queue::{InboxReceiver, LinkSender, SendAttempt};
use mpc_sim::{BlockPool, ServerState, TupleBlock};
use mpc_storage::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{self, FaultKind};
use crate::frame::{read_frame, write_frame, Frame};
use crate::recovery::RecoverySettings;
use crate::{NetError, Result};

/// A packet between workers — the network mirror of the async backend's
/// private packet type.
#[derive(Debug)]
pub enum NetPacket {
    /// A sealed columnar batch.
    Block(TupleBlock),
    /// All blocks of `round` from this sender are out.
    Fin {
        /// The finished round (1-based).
        round: usize,
    },
    /// A peer failed; unwind.
    Abort,
    /// A wake-up marker the rejoin acceptor pushes into its own worker's
    /// inbox: "a re-spawned peer is waiting, service it". Never crosses
    /// the wire and never reaches the worker loop — the transport
    /// swallows it inside `recv`/`try_recv`.
    Resync,
}

/// Outcome of a non-blocking transport send.
#[derive(Debug)]
pub enum SendOutcome {
    /// The packet is on its way.
    Sent,
    /// The link is backpressured; the packet is handed back so the caller
    /// can drain its own inbox and retry.
    Full(NetPacket),
    /// The peer is gone.
    Closed,
}

/// One worker's view of the cluster fabric.
pub trait Transport {
    /// Attempt to send `pkt` to server `dest` without blocking forever:
    /// back off at most a poll interval when the link is full.
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome;

    /// Block until at least one packet is available, appending every
    /// pending packet to `buf`; returns how many arrived.
    ///
    /// # Errors
    ///
    /// Fails when every peer is gone and nothing is pending.
    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize>;

    /// Drain whatever is pending without blocking.
    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize;

    /// The per-round barrier: signal this worker finished `round` and
    /// block until every worker has.
    ///
    /// # Errors
    ///
    /// Fails when the job aborted (a worker died or the master is gone).
    fn barrier(&mut self, round: usize) -> Result<()>;

    /// Snapshot `state` as the round-`round` checkpoint if this transport
    /// checkpoints at all (`last` marks the job's final round, which is
    /// always checkpointed). The default does nothing — only the spawned
    /// TCP mode has a master to hold checkpoints.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint cannot reach the master.
    fn checkpoint(&mut self, round: usize, state: &ServerState, last: bool) -> Result<()> {
        let _ = (round, state, last);
        Ok(())
    }

    /// Broadcast a fail-fast abort to everyone reachable.
    fn abort(&mut self);
}

/// A shared fail-fast round barrier for in-process workers: generation
/// counting over a mutex/condvar, poisoned permanently by the first
/// abort so no waiter can hang on a dead cluster.
#[derive(Debug)]
pub struct FailFastBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl FailFastBarrier {
    /// A barrier over `parties` workers.
    pub fn new(parties: usize) -> Self {
        FailFastBarrier {
            state: Mutex::new(BarrierState {
                parties: parties.max(1),
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Wait for all parties.
    ///
    /// # Errors
    ///
    /// Fails immediately (for every current and future waiter) once the
    /// barrier is poisoned.
    pub fn wait(&self) -> Result<()> {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        if s.poisoned {
            return Err(NetError::Protocol("barrier poisoned: a worker aborted".to_string()));
        }
        s.arrived += 1;
        if s.arrived == s.parties {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).expect("barrier mutex poisoned");
        }
        if s.poisoned {
            return Err(NetError::Protocol("barrier poisoned: a worker aborted".to_string()));
        }
        Ok(())
    }

    /// Poison the barrier: every current and future waiter errors out.
    pub fn poison(&self) {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        s.poisoned = true;
        self.cv.notify_all();
    }
}

/// How long a full in-process link parks before handing the packet back.
const POLL: Duration = Duration::from_micros(200);

/// The poll interval of the recovery-mode barrier wait and the rejoin
/// acceptor: short enough to service a rejoining peer promptly.
const REJOIN_POLL: Duration = Duration::from_millis(10);

/// Hard cap on the exponential dial backoff pause.
const DIAL_PAUSE_CAP: Duration = Duration::from_millis(250);

/// Connect to `addr`, retrying with capped exponential backoff plus
/// seeded jitter until `deadline` has elapsed — so a slow-starting peer
/// (or a master still binding its listener) does not kill the job, and
/// simultaneous retriers do not stampede in lockstep.
///
/// # Errors
///
/// Returns the last connect error once the deadline passes.
pub fn dial_with_backoff(addr: &str, deadline: Duration, seed: u64) -> Result<TcpStream> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A1_B0FF);
    let mut pause = Duration::from_millis(2);
    let mut attempts = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                attempts += 1;
                if start.elapsed() >= deadline {
                    return Err(NetError::Protocol(format!(
                        "dial {addr} failed after {attempts} attempts over {deadline:?}: {e}"
                    )));
                }
                let jitter_us = rng.gen_range(0..=pause.as_micros() as u64 / 2 + 1);
                std::thread::sleep(pause + Duration::from_micros(jitter_us));
                pause = (pause * 2).min(DIAL_PAUSE_CAP);
            }
        }
    }
}

/// The channel transport: per-peer bounded lanes plus a shared fail-fast
/// barrier, all inside one process.
#[derive(Debug)]
pub struct InProcTransport {
    /// `peers[dest]` is this worker's lane into `dest`'s inbox.
    peers: Vec<LinkSender<NetPacket>>,
    rx: InboxReceiver<NetPacket>,
    barrier: Arc<FailFastBarrier>,
}

impl InProcTransport {
    /// Assemble a worker's transport from its lanes, inbox and the shared
    /// barrier.
    pub fn new(
        peers: Vec<LinkSender<NetPacket>>,
        rx: InboxReceiver<NetPacket>,
        barrier: Arc<FailFastBarrier>,
    ) -> Self {
        InProcTransport { peers, rx, barrier }
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome {
        match self.peers[dest].send_timeout(pkt, POLL) {
            SendAttempt::Sent => SendOutcome::Sent,
            SendAttempt::Full(p) => SendOutcome::Full(p),
            SendAttempt::Closed(_) => SendOutcome::Closed,
        }
    }

    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize> {
        Ok(self.rx.recv_many(buf))
    }

    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize {
        self.rx.try_recv_many(buf)
    }

    fn barrier(&mut self, _round: usize) -> Result<()> {
        self.barrier.wait()
    }

    fn abort(&mut self) {
        self.barrier.poison();
        for peer in &self.peers {
            let _ = peer.force_send(NetPacket::Abort);
        }
    }
}

/// Inbound dedup state shared by every pump thread of one transport:
/// per-`(from, round)` sequence watermarks for blocks (the assembler's
/// seq is monotone per sender and round, so `seq <= watermark` means
/// "already delivered") and the set of `(link, round)` FINs already
/// counted. Only consulted in recovery mode.
#[derive(Debug, Default)]
struct Dedup {
    block_watermark: HashMap<(usize, usize), u64>,
    fins_seen: HashSet<(usize, usize)>,
}

/// One re-spawned peer waiting to be wired back into the mesh.
struct Rejoin {
    from: usize,
    from_round: usize,
    stream: TcpStream,
}

/// The acceptor-to-worker rejoin mailbox.
struct RejoinShared {
    queue: Mutex<Vec<Rejoin>>,
    pending: AtomicBool,
}

/// The endpoints a freshly meshed worker hands to [`TcpTransport::new`].
pub struct TcpEndpoints {
    /// This worker's server id.
    pub id: usize,
    /// Cluster size.
    pub p: usize,
    /// `outbound[dest]` — a connected data stream to each peer (`None`
    /// at `dest == id`, and everywhere for a worker past its last round).
    pub outbound: Vec<Option<TcpStream>>,
    /// Accepted data streams, each paired with the sending server's id
    /// (from its `DataHello`).
    pub inbound: Vec<(usize, TcpStream)>,
    /// The control stream to the master (`Ready`/`Proceed` barriers).
    pub control: TcpStream,
    /// The worker's data listener, kept open for rejoining peers when
    /// recovery is enabled (`None` disables rejoin accepting).
    pub listener: Option<TcpListener>,
}

/// The socket transport: one outbound TCP stream per peer, reader threads
/// feeding the inbox, and a control stream to the master for barriers.
pub struct TcpTransport {
    id: usize,
    /// `writers[dest]` is the framed stream into `dest` (`None` at
    /// `dest == id`; self-sends never reach the transport).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    rx: InboxReceiver<NetPacket>,
    /// Reader-thread handles, joined by [`TcpTransport::shutdown`].
    readers: Vec<std::thread::JoinHandle<()>>,
    control: BufReader<TcpStream>,
    aborted: Arc<AtomicBool>,
    scratch: Vec<u8>,
    pool: Arc<BlockPool>,
    recovery: RecoverySettings,
    /// `down[dest]`: the peer's socket died but the master may re-spawn
    /// it — sends are logged (for replay) instead of failing.
    down: Vec<bool>,
    /// Replay log: per round, the encoded outbound data frames in send
    /// order, each tagged with its destination. Bounded to the last
    /// `checkpoint_every + 1` rounds (pruned at each barrier).
    log: BTreeMap<usize, Vec<(usize, Vec<u8>)>>,
    /// Inbound lanes, retained in recovery mode so pumps for rejoining
    /// peers can be spawned and the acceptor can wake a blocked `recv`.
    senders: Vec<LinkSender<NetPacket>>,
    dedup: Arc<Mutex<Dedup>>,
    rejoins: Option<Arc<RejoinShared>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    acceptor_stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").field("id", &self.id).finish_non_exhaustive()
    }
}

/// Pump one inbound data connection: decode frames, push packets into the
/// owning worker's inbox. Exits on EOF, socket error or receiver drop.
///
/// In recovery mode a socket error is a *silent* exit (the master will
/// notice the dead process and re-spawn it; aborting here would kill the
/// job recovery exists to save), and duplicate blocks/FINs — a recovered
/// peer re-sending the in-flight round — are dropped via the shared
/// dedup state. Frame decode errors (a corrupt stream) stay fatal.
struct PumpShared {
    pool: Arc<BlockPool>,
    aborted: Arc<AtomicBool>,
    dedup: Arc<Mutex<Dedup>>,
    recovery: bool,
}

fn pump_reader(stream: TcpStream, from: usize, lane: LinkSender<NetPacket>, sh: Arc<PumpShared>) {
    let mut r = BufReader::new(stream);
    loop {
        match read_frame(&mut r, &sh.pool) {
            Ok(Frame::Block(b)) => {
                if sh.recovery {
                    let mut d = sh.dedup.lock().expect("dedup lock");
                    let key = (b.from, b.round);
                    if d.block_watermark.get(&key).is_some_and(|&w| b.seq <= w) {
                        sh.pool.give_back(b.into_columns());
                        continue;
                    }
                    d.block_watermark.insert(key, b.seq);
                }
                if lane.force_send(NetPacket::Block(b)).is_err() {
                    return;
                }
            }
            Ok(Frame::Fin { round }) => {
                let round = round as usize;
                if sh.recovery
                    && !sh.dedup.lock().expect("dedup lock").fins_seen.insert((from, round))
                {
                    continue;
                }
                if lane.force_send(NetPacket::Fin { round }).is_err() {
                    return;
                }
            }
            Ok(Frame::ReplayData { .. }) => {
                // A replay header from a surviving peer: informational.
            }
            Ok(Frame::Abort { .. }) => {
                sh.aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
            Ok(_) => {
                // A data socket carries only blocks, FINs and aborts.
                sh.aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Clean close after the peer finished sending.
                return;
            }
            Err(NetError::Io(_)) if sh.recovery => {
                // The peer process died mid-stream. Recovery is on: leave
                // the abort to the master's liveness poll and wait for
                // the replacement to rejoin.
                return;
            }
            Err(_) => {
                // A dead or corrupt peer: fail the local worker fast.
                sh.aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
        }
    }
}

/// Poll `listener` for re-spawned peers dialing back in. Each rejoin
/// socket starts with `DataHello{from}` + `ReplayRequest{from_round}`;
/// the pair is queued for the worker thread (which owns the writers and
/// the replay log) and a `Resync` marker is forced into the worker's own
/// inbox lane to wake a blocked `recv`.
fn accept_rejoins(
    listener: TcpListener,
    p: usize,
    stop: Arc<AtomicBool>,
    shared: Arc<RejoinShared>,
    wake: LinkSender<NetPacket>,
) {
    let pool = BlockPool::new();
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(REJOIN_POLL);
                continue;
            }
            Err(_) => return,
        };
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        let from = match read_frame(&mut stream, &pool) {
            Ok(Frame::DataHello { from }) => from as usize,
            _ => continue,
        };
        let from_round = match read_frame(&mut stream, &pool) {
            Ok(Frame::ReplayRequest { from_round }) => from_round as usize,
            _ => continue,
        };
        if from >= p {
            continue;
        }
        shared.queue.lock().expect("rejoin queue lock").push(Rejoin { from, from_round, stream });
        shared.pending.store(true, Ordering::SeqCst);
        if wake.force_send(NetPacket::Resync).is_err() {
            return;
        }
    }
}

impl TcpTransport {
    /// Assemble worker `ep.id`'s transport from its meshed endpoints.
    /// With `recovery.enabled` the data listener (if provided) keeps
    /// accepting rejoining peers and outbound frames are retained for
    /// replay; otherwise the transport is the original fail-fast fabric.
    ///
    /// # Errors
    ///
    /// Fails on malformed endpoint tables.
    pub fn new(
        ep: TcpEndpoints,
        pool: Arc<BlockPool>,
        queue_capacity: usize,
        recovery: RecoverySettings,
    ) -> Result<Self> {
        let TcpEndpoints { id, p, outbound, inbound, control, listener } = ep;
        let (senders, rx) = mpc_sim::queue::Inbox::channel(p, queue_capacity);
        let aborted = Arc::new(AtomicBool::new(false));
        let dedup = Arc::new(Mutex::new(Dedup::default()));
        let pump_shared = Arc::new(PumpShared {
            pool: Arc::clone(&pool),
            aborted: Arc::clone(&aborted),
            dedup: Arc::clone(&dedup),
            recovery: recovery.enabled,
        });
        let mut readers = Vec::with_capacity(inbound.len());
        for (from, stream) in inbound {
            if from >= p {
                return Err(NetError::Protocol(format!("data hello from bad peer {from}")));
            }
            let lane = senders[from].clone();
            let sh = Arc::clone(&pump_shared);
            readers.push(std::thread::spawn(move || pump_reader(stream, from, lane, sh)));
        }
        let writers: Vec<Option<BufWriter<TcpStream>>> = outbound
            .into_iter()
            .map(|s| {
                s.map(|s| {
                    s.set_nodelay(true).ok();
                    BufWriter::new(s)
                })
            })
            .collect();
        let acceptor_stop = Arc::new(AtomicBool::new(false));
        let (rejoins, acceptor) = match listener.filter(|_| recovery.enabled) {
            Some(listener) => {
                let shared = Arc::new(RejoinShared {
                    queue: Mutex::new(Vec::new()),
                    pending: AtomicBool::new(false),
                });
                let stop = Arc::clone(&acceptor_stop);
                let mailbox = Arc::clone(&shared);
                let wake = senders[id].clone();
                let h =
                    std::thread::spawn(move || accept_rejoins(listener, p, stop, mailbox, wake));
                (Some(shared), Some(h))
            }
            None => (None, None),
        };
        Ok(TcpTransport {
            id,
            writers,
            rx,
            readers,
            control: BufReader::new(control),
            aborted,
            scratch: Vec::new(),
            pool,
            recovery,
            down: vec![false; p],
            log: BTreeMap::new(),
            senders: if recovery.enabled { senders } else { Vec::new() },
            dedup,
            rejoins,
            acceptor,
            acceptor_stop,
        })
    }

    fn write_to(&mut self, dest: usize, frame: &Frame) -> Result<()> {
        let Some(w) = self.writers.get_mut(dest).and_then(|w| w.as_mut()) else {
            return Err(NetError::Protocol(format!("no data stream to peer {dest}")));
        };
        crate::frame::encode_frame(frame, &mut self.scratch);
        w.write_all(&self.scratch)?;
        Ok(())
    }

    /// Flush every outbound data stream (called at FIN boundaries). In
    /// recovery mode a flush error marks the peer down instead of failing
    /// the round — its frames live in the replay log.
    fn flush_all(&mut self) -> Result<()> {
        for dest in 0..self.writers.len() {
            let Some(w) = self.writers[dest].as_mut() else { continue };
            if let Err(e) = w.flush() {
                if self.recovery.enabled {
                    self.writers[dest] = None;
                    self.down[dest] = true;
                } else {
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// The cluster size this transport was meshed for.
    pub fn parties(&self) -> usize {
        self.writers.len()
    }

    /// Send a frame to the master over the control stream (used by the
    /// spawned worker for its end-of-job `Summary` and its round
    /// checkpoints).
    ///
    /// # Errors
    ///
    /// Fails when the master is gone.
    pub fn send_control(&mut self, frame: &Frame) -> Result<()> {
        crate::frame::encode_frame(frame, &mut self.scratch);
        self.control.get_mut().write_all(&self.scratch)?;
        self.control.get_mut().flush()?;
        Ok(())
    }

    /// Read one frame from the master's control stream (used by the
    /// spawned worker to await its `Shutdown`).
    ///
    /// # Errors
    ///
    /// Fails when the master is gone or sends garbage.
    pub fn read_control(&mut self) -> Result<Frame> {
        let pool = BlockPool::new();
        read_frame(&mut self.control, &pool)
    }

    /// Wire every queued re-spawned peer back into the mesh: install its
    /// fresh socket as the outbound writer, replay the logged frames of
    /// every round past its restored checkpoint (prefixed by a
    /// `ReplayData` header per round), and spawn a pump for its inbound
    /// traffic. Best-effort: a peer that died *again* is simply marked
    /// down and left to the master's next recovery round.
    fn service_rejoins(&mut self) {
        let Some(shared) = &self.rejoins else { return };
        if !shared.pending.swap(false, Ordering::SeqCst) {
            return;
        }
        let pending: Vec<Rejoin> =
            shared.queue.lock().expect("rejoin queue lock").drain(..).collect();
        for rj in pending {
            let Ok(write_half) = rj.stream.try_clone() else {
                self.down[rj.from] = true;
                continue;
            };
            let mut w = BufWriter::new(write_half);
            let mut buf = Vec::new();
            let mut ok = true;
            'replay: for (&round, frames) in self.log.range(rj.from_round + 1..) {
                let for_peer = frames.iter().filter(|(d, _)| *d == rj.from);
                let count = for_peer.clone().count();
                if count == 0 {
                    continue;
                }
                crate::frame::encode_frame(
                    &Frame::ReplayData { round: round as u32, frames: count as u32 },
                    &mut buf,
                );
                if w.write_all(&buf).is_err() {
                    ok = false;
                    break;
                }
                for (_, bytes) in for_peer {
                    if w.write_all(bytes).is_err() {
                        ok = false;
                        break 'replay;
                    }
                }
            }
            if !ok || w.flush().is_err() {
                self.down[rj.from] = true;
                continue;
            }
            self.writers[rj.from] = Some(w);
            self.down[rj.from] = false;
            let lane = self.senders[rj.from].clone();
            let sh = Arc::new(PumpShared {
                pool: Arc::clone(&self.pool),
                aborted: Arc::clone(&self.aborted),
                dedup: Arc::clone(&self.dedup),
                recovery: true,
            });
            let from = rj.from;
            self.readers.push(std::thread::spawn(move || pump_reader(rj.stream, from, lane, sh)));
        }
    }

    /// Close outbound data streams and join the reader threads — the
    /// clean end-of-job teardown.
    ///
    /// Each peer pair shares one full-duplex socket (the writer is a
    /// `try_clone` of the reader), so merely dropping the writer clone
    /// would never send a FIN; the peer's reader would block forever. An
    /// explicit write-half shutdown delivers the EOF.
    pub fn shutdown(mut self) {
        self.acceptor_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for w in &mut self.writers {
            if let Some(writer) = w {
                let _ = writer.flush();
                let _ = writer.get_ref().shutdown(std::net::Shutdown::Write);
            }
            *w = None;
        }
        // Pumps for rejoin sockets hold clones of our lanes; drop ours so
        // EOF (not a hang) ends them, then reap every reader.
        self.senders.clear();
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome {
        if self.aborted.load(Ordering::SeqCst) {
            return SendOutcome::Closed;
        }
        self.service_rejoins();
        let (frame, round) = match pkt {
            NetPacket::Block(b) => {
                let r = b.round;
                (Frame::Block(b), Some(r))
            }
            NetPacket::Fin { round } => (Frame::Fin { round: round as u32 }, Some(round)),
            NetPacket::Abort => {
                (Frame::Abort { reason: format!("worker {} aborted", self.id) }, None)
            }
            // Resync markers are transport-internal and never leave the
            // process.
            NetPacket::Resync => return SendOutcome::Sent,
        };
        // Deterministic link faults (drop is fatal by design; corrupt is
        // detected by the receiver's decoder and fails the job).
        let mut corrupt = false;
        if let Some(r) = round {
            match fault::link_fault(self.id as u32, r as u32, dest as u32) {
                Some(FaultKind::DropLink { .. }) => {
                    self.writers[dest] = None;
                    return SendOutcome::Closed;
                }
                Some(FaultKind::CorruptLink { .. }) => corrupt = true,
                _ => {}
            }
        }
        crate::frame::encode_frame(&frame, &mut self.scratch);
        if self.recovery.enabled {
            if let Some(r) = round {
                self.log.entry(r).or_default().push((dest, self.scratch.clone()));
            }
        }
        if self.down[dest] && round.is_some() {
            // The peer is being re-spawned: the frame is in the replay
            // log and will be retransmitted when it rejoins.
            return SendOutcome::Sent;
        }
        if corrupt {
            // Flip the kind byte (right after the length prefix): the
            // receiver rejects the frame as an unknown kind.
            self.scratch[4] ^= 0xFF;
        }
        let flush_needed = matches!(frame, Frame::Fin { .. } | Frame::Abort { .. });
        let Some(w) = self.writers.get_mut(dest).and_then(|w| w.as_mut()) else {
            return if self.recovery.enabled && round.is_some() {
                self.down[dest] = true;
                SendOutcome::Sent
            } else {
                SendOutcome::Closed
            };
        };
        let wrote = w.write_all(&self.scratch);
        match wrote {
            Ok(()) => {
                // FINs mark the end of a burst: push everything out so the
                // peer's round can complete without waiting on our buffer.
                if flush_needed && self.flush_all().is_err() {
                    return SendOutcome::Closed;
                }
                SendOutcome::Sent
            }
            Err(_) if self.recovery.enabled && round.is_some() => {
                self.writers[dest] = None;
                self.down[dest] = true;
                if flush_needed && self.flush_all().is_err() {
                    return SendOutcome::Closed;
                }
                SendOutcome::Sent
            }
            Err(_) => SendOutcome::Closed,
        }
    }

    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize> {
        let base = buf.len();
        loop {
            self.service_rejoins();
            let got = self.rx.recv_many(buf);
            buf.retain(|p| !matches!(p, NetPacket::Resync));
            if buf.len() > base {
                return Ok(buf.len() - base);
            }
            if got == 0 {
                return Ok(0);
            }
        }
    }

    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize {
        self.service_rejoins();
        let base = buf.len();
        self.rx.try_recv_many(buf);
        buf.retain(|p| !matches!(p, NetPacket::Resync));
        buf.len() - base
    }

    fn barrier(&mut self, round: usize) -> Result<()> {
        if self.aborted.load(Ordering::SeqCst) {
            return Err(NetError::Protocol("job aborted".to_string()));
        }
        // Data must be flushed before declaring the round done.
        self.flush_all()?;
        write_frame(self.control.get_mut(), &Frame::Ready { round: round as u32 })?;
        self.control.get_mut().flush()?;
        let pool = BlockPool::new();
        let reply = if self.recovery.enabled {
            // Poll instead of blocking: a peer's replacement may rejoin
            // while we are parked here, and it needs its replay to make
            // progress before the barrier can ever release.
            loop {
                self.service_rejoins();
                self.control.get_ref().set_read_timeout(Some(REJOIN_POLL))?;
                let available = match self.control.fill_buf() {
                    Ok([]) => {
                        self.control.get_ref().set_read_timeout(None).ok();
                        return Err(NetError::Protocol("master closed the control stream".into()));
                    }
                    Ok(_) => true,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        false
                    }
                    Err(e) => {
                        self.control.get_ref().set_read_timeout(None).ok();
                        return Err(e.into());
                    }
                };
                if available {
                    self.control.get_ref().set_read_timeout(None)?;
                    break read_frame(&mut self.control, &pool)?;
                }
            }
        } else {
            read_frame(&mut self.control, &pool)?
        };
        match reply {
            Frame::Proceed { round: r } if r as usize == round => {
                if self.recovery.enabled {
                    // Prune the replay log: a rejoiner restores from a
                    // checkpoint at most `checkpoint_every` rounds back.
                    let keep_from = (round + 1).saturating_sub(self.recovery.replay_rounds());
                    self.log = self.log.split_off(&keep_from);
                }
                Ok(())
            }
            Frame::Proceed { round: r } => Err(NetError::Protocol(format!(
                "barrier skew: waiting on round {round}, master proceeded {r}"
            ))),
            Frame::Abort { reason } => {
                self.aborted.store(true, Ordering::SeqCst);
                Err(NetError::Protocol(format!("master aborted: {reason}")))
            }
            other => {
                Err(NetError::Protocol(format!("unexpected control frame at barrier: {other:?}")))
            }
        }
    }

    fn checkpoint(&mut self, round: usize, state: &ServerState, last: bool) -> Result<()> {
        if !self.recovery.enabled {
            return Ok(());
        }
        if !round.is_multiple_of(self.recovery.checkpoint_every) && !last {
            return Ok(());
        }
        let (per_round_bytes, per_round_tuples) = state.received_volumes(round);
        let relations: Vec<Relation> = state.relations().cloned().collect();
        self.send_control(&Frame::Checkpoint {
            round: round as u32,
            relations,
            per_round_bytes,
            per_round_tuples,
        })
    }

    fn abort(&mut self) {
        self.aborted.store(true, Ordering::SeqCst);
        for dest in 0..self.writers.len() {
            if self.writers[dest].is_some() {
                let _ = self.write_to(
                    dest,
                    &Frame::Abort { reason: format!("worker {} aborted", self.id) },
                );
            }
        }
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_fast_barrier_synchronises_and_poisons() {
        let barrier = Arc::new(FailFastBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let b = Arc::clone(&barrier);
                scope.spawn(move || b.wait().unwrap());
            }
        });
        // Round 2: one party aborts while another waits.
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || b2.wait());
        std::thread::sleep(Duration::from_millis(10));
        barrier.poison();
        assert!(waiter.join().unwrap().is_err(), "poison releases the waiter with an error");
        assert!(barrier.wait().is_err(), "the poison is permanent");
    }

    #[test]
    fn in_proc_transport_moves_packets_and_reports_full() {
        let (senders_a, rx_a) = mpc_sim::queue::Inbox::channel(2, 1);
        let (_senders_b, rx_b) = mpc_sim::queue::Inbox::channel(2, 1);
        let barrier = Arc::new(FailFastBarrier::new(1));
        // Worker 1's view: its lane into worker 0's inbox is lane 1.
        let mut t1 = InProcTransport::new(
            vec![senders_a[1].clone(), senders_a[1].clone()],
            rx_b,
            Arc::clone(&barrier),
        );
        assert!(matches!(t1.send(0, NetPacket::Fin { round: 1 }), SendOutcome::Sent));
        // Lane capacity is 1: the second send backs off with Full.
        assert!(matches!(t1.send(0, NetPacket::Fin { round: 1 }), SendOutcome::Full(_)));
        let mut got = Vec::new();
        let mut t0 = InProcTransport::new(vec![], rx_a, Arc::new(FailFastBarrier::new(1)));
        assert_eq!(t0.recv(&mut got).unwrap(), 1);
        assert!(matches!(got[0], NetPacket::Fin { round: 1 }));
        assert!(t1.barrier(1).is_ok(), "single-party barrier trivially passes");
    }

    #[test]
    fn dial_with_backoff_reaches_a_late_listener() {
        // Reserve a port, close it, and only re-bind after a delay: the
        // first dial attempts must fail, the backoff must retry through.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            TcpListener::bind(addr).unwrap().accept().map(|_| ()).unwrap();
        });
        let stream = dial_with_backoff(&addr.to_string(), Duration::from_secs(10), 7)
            .expect("backoff outlives the late bind");
        drop(stream);
        binder.join().unwrap();
    }

    #[test]
    fn dial_with_backoff_gives_up_after_the_deadline() {
        // A port with (very likely) nothing behind it.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let start = Instant::now();
        let err = dial_with_backoff(&addr, Duration::from_millis(80), 1)
            .expect_err("nothing is listening");
        assert!(start.elapsed() >= Duration::from_millis(80));
        assert!(err.to_string().contains("attempts"), "error names the retry count: {err}");
    }
}
