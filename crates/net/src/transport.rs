//! The [`Transport`] abstraction: how a worker's packets reach its peers.
//!
//! Two implementations ship:
//!
//! * [`InProcTransport`] wraps the bounded per-link lanes of
//!   [`mpc_sim::queue`] — the exact channels of the event-driven backend —
//!   plus a shared fail-fast round barrier. It exists so the differential
//!   layer can prove that swapping the transport (rather than the
//!   protocol) never changes semantics.
//! * [`TcpTransport`] moves the same packets as length-prefixed frames
//!   ([`crate::frame`]) over one TCP stream per peer, with a reader
//!   thread per inbound connection decoding frames into the worker's
//!   inbox. The round barrier rides on the worker's control connection to
//!   the master (`Ready`/`Proceed`).
//!
//! **Backpressure note.** The in-process lanes bound their capacity and
//! report `Full`, mirroring the async backend. TCP inboxes are fed by
//! reader threads via `force_send` — the kernel's socket buffers provide
//! the real backpressure there, and bounding the inbox as well could
//! deadlock the single reader thread behind a stalled worker. The volume
//! accounting is identical either way.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mpc_sim::queue::{InboxReceiver, LinkSender, SendAttempt};
use mpc_sim::{BlockPool, TupleBlock};

use crate::frame::{read_frame, write_frame, Frame};
use crate::{NetError, Result};

/// A packet between workers — the network mirror of the async backend's
/// private packet type.
#[derive(Debug)]
pub enum NetPacket {
    /// A sealed columnar batch.
    Block(TupleBlock),
    /// All blocks of `round` from this sender are out.
    Fin {
        /// The finished round (1-based).
        round: usize,
    },
    /// A peer failed; unwind.
    Abort,
}

/// Outcome of a non-blocking transport send.
#[derive(Debug)]
pub enum SendOutcome {
    /// The packet is on its way.
    Sent,
    /// The link is backpressured; the packet is handed back so the caller
    /// can drain its own inbox and retry.
    Full(NetPacket),
    /// The peer is gone.
    Closed,
}

/// One worker's view of the cluster fabric.
pub trait Transport {
    /// Attempt to send `pkt` to server `dest` without blocking forever:
    /// back off at most a poll interval when the link is full.
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome;

    /// Block until at least one packet is available, appending every
    /// pending packet to `buf`; returns how many arrived.
    ///
    /// # Errors
    ///
    /// Fails when every peer is gone and nothing is pending.
    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize>;

    /// Drain whatever is pending without blocking.
    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize;

    /// The per-round barrier: signal this worker finished `round` and
    /// block until every worker has.
    ///
    /// # Errors
    ///
    /// Fails when the job aborted (a worker died or the master is gone).
    fn barrier(&mut self, round: usize) -> Result<()>;

    /// Broadcast a fail-fast abort to everyone reachable.
    fn abort(&mut self);
}

/// A shared fail-fast round barrier for in-process workers: generation
/// counting over a mutex/condvar, poisoned permanently by the first
/// abort so no waiter can hang on a dead cluster.
#[derive(Debug)]
pub struct FailFastBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl FailFastBarrier {
    /// A barrier over `parties` workers.
    pub fn new(parties: usize) -> Self {
        FailFastBarrier {
            state: Mutex::new(BarrierState {
                parties: parties.max(1),
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Wait for all parties.
    ///
    /// # Errors
    ///
    /// Fails immediately (for every current and future waiter) once the
    /// barrier is poisoned.
    pub fn wait(&self) -> Result<()> {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        if s.poisoned {
            return Err(NetError::Protocol("barrier poisoned: a worker aborted".to_string()));
        }
        s.arrived += 1;
        if s.arrived == s.parties {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).expect("barrier mutex poisoned");
        }
        if s.poisoned {
            return Err(NetError::Protocol("barrier poisoned: a worker aborted".to_string()));
        }
        Ok(())
    }

    /// Poison the barrier: every current and future waiter errors out.
    pub fn poison(&self) {
        let mut s = self.state.lock().expect("barrier mutex poisoned");
        s.poisoned = true;
        self.cv.notify_all();
    }
}

/// How long a full in-process link parks before handing the packet back.
const POLL: Duration = Duration::from_micros(200);

/// The channel transport: per-peer bounded lanes plus a shared fail-fast
/// barrier, all inside one process.
#[derive(Debug)]
pub struct InProcTransport {
    /// `peers[dest]` is this worker's lane into `dest`'s inbox.
    peers: Vec<LinkSender<NetPacket>>,
    rx: InboxReceiver<NetPacket>,
    barrier: Arc<FailFastBarrier>,
}

impl InProcTransport {
    /// Assemble a worker's transport from its lanes, inbox and the shared
    /// barrier.
    pub fn new(
        peers: Vec<LinkSender<NetPacket>>,
        rx: InboxReceiver<NetPacket>,
        barrier: Arc<FailFastBarrier>,
    ) -> Self {
        InProcTransport { peers, rx, barrier }
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome {
        match self.peers[dest].send_timeout(pkt, POLL) {
            SendAttempt::Sent => SendOutcome::Sent,
            SendAttempt::Full(p) => SendOutcome::Full(p),
            SendAttempt::Closed(_) => SendOutcome::Closed,
        }
    }

    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize> {
        Ok(self.rx.recv_many(buf))
    }

    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize {
        self.rx.try_recv_many(buf)
    }

    fn barrier(&mut self, _round: usize) -> Result<()> {
        self.barrier.wait()
    }

    fn abort(&mut self) {
        self.barrier.poison();
        for peer in &self.peers {
            let _ = peer.force_send(NetPacket::Abort);
        }
    }
}

/// The socket transport: one outbound TCP stream per peer, reader threads
/// feeding the inbox, and a control stream to the master for barriers.
pub struct TcpTransport {
    id: usize,
    /// `writers[dest]` is the framed stream into `dest` (`None` at
    /// `dest == id`; self-sends never reach the transport).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    rx: InboxReceiver<NetPacket>,
    /// Reader-thread handles, joined by [`TcpTransport::shutdown`].
    readers: Vec<std::thread::JoinHandle<()>>,
    control: BufReader<TcpStream>,
    aborted: Arc<AtomicBool>,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").field("id", &self.id).finish_non_exhaustive()
    }
}

/// Pump one inbound data connection: decode frames, push packets into the
/// owning worker's inbox. Exits on EOF, socket error or receiver drop.
fn pump_reader(
    stream: TcpStream,
    lane: LinkSender<NetPacket>,
    pool: Arc<BlockPool>,
    aborted: Arc<AtomicBool>,
) {
    let mut r = BufReader::new(stream);
    loop {
        match read_frame(&mut r, &pool) {
            Ok(Frame::Block(b)) => {
                if lane.force_send(NetPacket::Block(b)).is_err() {
                    return;
                }
            }
            Ok(Frame::Fin { round }) => {
                if lane.force_send(NetPacket::Fin { round: round as usize }).is_err() {
                    return;
                }
            }
            Ok(Frame::Abort { .. }) => {
                aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
            Ok(_) => {
                // A data socket carries only blocks, FINs and aborts.
                aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
            Err(NetError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Clean close after the peer finished sending.
                return;
            }
            Err(_) => {
                // A dead or corrupt peer: fail the local worker fast.
                aborted.store(true, Ordering::SeqCst);
                let _ = lane.force_send(NetPacket::Abort);
                return;
            }
        }
    }
}

impl TcpTransport {
    /// Assemble worker `id`'s transport.
    ///
    /// * `outbound[dest]` — a connected data stream to each peer
    ///   (`None` at `dest == id`).
    /// * `inbound` — accepted data streams, each paired with the sending
    ///   server's id (from its `DataHello`).
    /// * `control` — the stream to the master, used for `Ready`/`Proceed`
    ///   barriers.
    pub fn new(
        id: usize,
        p: usize,
        outbound: Vec<Option<TcpStream>>,
        inbound: Vec<(usize, TcpStream)>,
        control: TcpStream,
        pool: Arc<BlockPool>,
        queue_capacity: usize,
    ) -> Result<Self> {
        let (senders, rx) = mpc_sim::queue::Inbox::channel(p, queue_capacity);
        let aborted = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::with_capacity(inbound.len());
        for (from, stream) in inbound {
            if from >= p {
                return Err(NetError::Protocol(format!("data hello from bad peer {from}")));
            }
            let lane = senders[from].clone();
            let pool = Arc::clone(&pool);
            let aborted = Arc::clone(&aborted);
            readers.push(std::thread::spawn(move || pump_reader(stream, lane, pool, aborted)));
        }
        let writers = outbound
            .into_iter()
            .map(|s| {
                s.map(|s| {
                    s.set_nodelay(true).ok();
                    BufWriter::new(s)
                })
            })
            .collect();
        Ok(TcpTransport {
            id,
            writers,
            rx,
            readers,
            control: BufReader::new(control),
            aborted,
            scratch: Vec::new(),
        })
    }

    fn write_to(&mut self, dest: usize, frame: &Frame) -> Result<()> {
        let Some(w) = self.writers.get_mut(dest).and_then(|w| w.as_mut()) else {
            return Err(NetError::Protocol(format!("no data stream to peer {dest}")));
        };
        crate::frame::encode_frame(frame, &mut self.scratch);
        w.write_all(&self.scratch)?;
        Ok(())
    }

    /// Flush every outbound data stream (called at FIN boundaries).
    fn flush_all(&mut self) -> Result<()> {
        for w in self.writers.iter_mut().flatten() {
            w.flush()?;
        }
        Ok(())
    }

    /// The cluster size this transport was meshed for.
    pub fn parties(&self) -> usize {
        self.writers.len()
    }

    /// Send a frame to the master over the control stream (used by the
    /// spawned worker for its end-of-job `Summary`).
    ///
    /// # Errors
    ///
    /// Fails when the master is gone.
    pub fn send_control(&mut self, frame: &Frame) -> Result<()> {
        crate::frame::encode_frame(frame, &mut self.scratch);
        self.control.get_mut().write_all(&self.scratch)?;
        self.control.get_mut().flush()?;
        Ok(())
    }

    /// Read one frame from the master's control stream (used by the
    /// spawned worker to await its `Shutdown`).
    ///
    /// # Errors
    ///
    /// Fails when the master is gone or sends garbage.
    pub fn read_control(&mut self) -> Result<Frame> {
        let pool = BlockPool::new();
        read_frame(&mut self.control, &pool)
    }

    /// Close outbound data streams and join the reader threads — the
    /// clean end-of-job teardown.
    ///
    /// Each peer pair shares one full-duplex socket (the writer is a
    /// `try_clone` of the reader), so merely dropping the writer clone
    /// would never send a FIN; the peer's reader would block forever. An
    /// explicit write-half shutdown delivers the EOF.
    pub fn shutdown(mut self) {
        for w in &mut self.writers {
            if let Some(writer) = w {
                let _ = writer.flush();
                let _ = writer.get_ref().shutdown(std::net::Shutdown::Write);
            }
            *w = None;
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, dest: usize, pkt: NetPacket) -> SendOutcome {
        if self.aborted.load(Ordering::SeqCst) {
            return SendOutcome::Closed;
        }
        let frame = match pkt {
            NetPacket::Block(b) => Frame::Block(b),
            NetPacket::Fin { round } => Frame::Fin { round: round as u32 },
            NetPacket::Abort => Frame::Abort { reason: format!("worker {} aborted", self.id) },
        };
        match self.write_to(dest, &frame) {
            Ok(()) => {
                // FINs mark the end of a burst: push everything out so the
                // peer's round can complete without waiting on our buffer.
                if matches!(frame, Frame::Fin { .. } | Frame::Abort { .. })
                    && self.flush_all().is_err()
                {
                    return SendOutcome::Closed;
                }
                SendOutcome::Sent
            }
            Err(_) => SendOutcome::Closed,
        }
    }

    fn recv(&mut self, buf: &mut Vec<NetPacket>) -> Result<usize> {
        Ok(self.rx.recv_many(buf))
    }

    fn try_recv(&mut self, buf: &mut Vec<NetPacket>) -> usize {
        self.rx.try_recv_many(buf)
    }

    fn barrier(&mut self, round: usize) -> Result<()> {
        if self.aborted.load(Ordering::SeqCst) {
            return Err(NetError::Protocol("job aborted".to_string()));
        }
        // Data must be flushed before declaring the round done.
        self.flush_all()?;
        write_frame(self.control.get_mut(), &Frame::Ready { round: round as u32 })?;
        self.control.get_mut().flush()?;
        let pool = BlockPool::new();
        match read_frame(&mut self.control, &pool)? {
            Frame::Proceed { round: r } if r as usize == round => Ok(()),
            Frame::Proceed { round: r } => Err(NetError::Protocol(format!(
                "barrier skew: waiting on round {round}, master proceeded {r}"
            ))),
            Frame::Abort { reason } => {
                self.aborted.store(true, Ordering::SeqCst);
                Err(NetError::Protocol(format!("master aborted: {reason}")))
            }
            other => {
                Err(NetError::Protocol(format!("unexpected control frame at barrier: {other:?}")))
            }
        }
    }

    fn abort(&mut self) {
        self.aborted.store(true, Ordering::SeqCst);
        for dest in 0..self.writers.len() {
            if self.writers[dest].is_some() {
                let _ = self.write_to(
                    dest,
                    &Frame::Abort { reason: format!("worker {} aborted", self.id) },
                );
            }
        }
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_fast_barrier_synchronises_and_poisons() {
        let barrier = Arc::new(FailFastBarrier::new(3));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let b = Arc::clone(&barrier);
                scope.spawn(move || b.wait().unwrap());
            }
        });
        // Round 2: one party aborts while another waits.
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || b2.wait());
        std::thread::sleep(Duration::from_millis(10));
        barrier.poison();
        assert!(waiter.join().unwrap().is_err(), "poison releases the waiter with an error");
        assert!(barrier.wait().is_err(), "the poison is permanent");
    }

    #[test]
    fn in_proc_transport_moves_packets_and_reports_full() {
        let (senders_a, rx_a) = mpc_sim::queue::Inbox::channel(2, 1);
        let (_senders_b, rx_b) = mpc_sim::queue::Inbox::channel(2, 1);
        let barrier = Arc::new(FailFastBarrier::new(1));
        // Worker 1's view: its lane into worker 0's inbox is lane 1.
        let mut t1 = InProcTransport::new(
            vec![senders_a[1].clone(), senders_a[1].clone()],
            rx_b,
            Arc::clone(&barrier),
        );
        assert!(matches!(t1.send(0, NetPacket::Fin { round: 1 }), SendOutcome::Sent));
        // Lane capacity is 1: the second send backs off with Full.
        assert!(matches!(t1.send(0, NetPacket::Fin { round: 1 }), SendOutcome::Full(_)));
        let mut got = Vec::new();
        let mut t0 = InProcTransport::new(vec![], rx_a, Arc::new(FailFastBarrier::new(1)));
        assert_eq!(t0.recv(&mut got).unwrap(), 1);
        assert!(matches!(got[0], NetPacket::Fin { round: 1 }));
        assert!(t1.barrier(1).is_ok(), "single-party barrier trivially passes");
    }
}
