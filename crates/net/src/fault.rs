//! Deterministic fault injection for the distributed runner.
//!
//! A [`FaultPlan`] is a small, reproducible script of failures — kill a
//! worker at a given phase, delay it, drop or corrupt one of its data
//! links — described in a compact text grammar so the same plan can drive
//! unit tests, `mpc_workerd --fault` arguments and the
//! `distributed_smoke --inject` CI flag:
//!
//! ```text
//! kill:w2@round1        kill worker 2 as it enters round 1
//! kill:w0@handshake     kill worker 0 before it dials the master
//! kill:w1@barrier2      kill worker 1 at the round-2 barrier
//! kill:w3@summary       kill worker 3 before it reports its summary
//! delay:w2@round1:50    pause worker 2 for 50 ms entering round 1
//! drop:w2@round1:3      sever worker 2's data link to peer 3 in round 1
//! corrupt:w2@round1:3   corrupt one frame from worker 2 to peer 3
//! ```
//!
//! Plans can also be drawn from a seed ([`FaultPlan::seeded_kill`]), in
//! the style of `mpc_sim::schedule::StragglerSpec`, so randomized fault
//! campaigns replay exactly.
//!
//! Faults fire **process-globally**: a worker process arms its share of
//! the plan once at startup ([`arm`]) and the runner/transport code calls
//! the cheap [`trip`] / [`link_fault`] hooks at each phase boundary. An
//! unarmed process (every in-process run, every production worker) pays
//! one relaxed atomic load per hook.

use std::str::FromStr;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::NetError;

/// Where in a worker's lifecycle a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Before the worker dials the master (the job never sees it).
    Handshake,
    /// Entering data round `r` (1-based), before any send.
    RoundStart(u32),
    /// At the end of round `r`, before the checkpoint/barrier exchange.
    Barrier(u32),
    /// After the last barrier, before the worker reports its summary.
    Summary,
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPhase::Handshake => write!(f, "handshake"),
            FaultPhase::RoundStart(r) => write!(f, "round{r}"),
            FaultPhase::Barrier(r) => write!(f, "barrier{r}"),
            FaultPhase::Summary => write!(f, "summary"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The process exits immediately (exit code 137, like `SIGKILL`).
    Kill,
    /// The worker sleeps before continuing — a deterministic straggler.
    Delay(Duration),
    /// The data link to `peer` is severed (fatal: the job aborts).
    DropLink {
        /// The peer whose link is cut.
        peer: u32,
    },
    /// One frame to `peer` has a payload byte flipped (fatal: the
    /// receiver rejects it as a protocol error).
    CorruptLink {
        /// The peer that receives the corrupted frame.
        peer: u32,
    },
}

/// One scripted failure: `kind` fires on `worker` at `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The worker (server id) the fault targets.
    pub worker: u32,
    /// When it fires.
    pub phase: FaultPhase,
    /// What it does.
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (w, p) = (self.worker, self.phase);
        match self.kind {
            FaultKind::Kill => write!(f, "kill:w{w}@{p}"),
            FaultKind::Delay(d) => write!(f, "delay:w{w}@{p}:{}", d.as_millis()),
            FaultKind::DropLink { peer } => write!(f, "drop:w{w}@{p}:{peer}"),
            FaultKind::CorruptLink { peer } => write!(f, "corrupt:w{w}@{p}:{peer}"),
        }
    }
}

fn parse_phase(s: &str) -> Result<FaultPhase, NetError> {
    let bad = || NetError::Protocol(format!("bad fault phase '{s}'"));
    if s == "handshake" {
        Ok(FaultPhase::Handshake)
    } else if s == "summary" {
        Ok(FaultPhase::Summary)
    } else if let Some(r) = s.strip_prefix("round") {
        Ok(FaultPhase::RoundStart(r.parse().map_err(|_| bad())?))
    } else if let Some(r) = s.strip_prefix("barrier") {
        Ok(FaultPhase::Barrier(r.parse().map_err(|_| bad())?))
    } else {
        Err(bad())
    }
}

impl FromStr for Fault {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        let bad = |why: &str| NetError::Protocol(format!("bad fault spec '{s}': {why}"));
        let (verb, rest) = s.split_once(':').ok_or_else(|| bad("expected verb:w<id>@phase"))?;
        let (target, rest) = rest.split_once('@').ok_or_else(|| bad("expected w<id>@phase"))?;
        let worker: u32 = target
            .strip_prefix('w')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad("worker must be w<id>"))?;
        let (phase_str, arg) = match rest.split_once(':') {
            Some((p, a)) => (p, Some(a)),
            None => (rest, None),
        };
        let phase = parse_phase(phase_str)?;
        let kind = match (verb, arg) {
            ("kill", None) => FaultKind::Kill,
            ("delay", Some(ms)) => FaultKind::Delay(Duration::from_millis(
                ms.parse().map_err(|_| bad("delay wants milliseconds"))?,
            )),
            ("drop", Some(peer)) => {
                FaultKind::DropLink { peer: peer.parse().map_err(|_| bad("drop wants a peer id"))? }
            }
            ("corrupt", Some(peer)) => FaultKind::CorruptLink {
                peer: peer.parse().map_err(|_| bad("corrupt wants a peer id"))?,
            },
            _ => return Err(bad("unknown verb or missing argument")),
        };
        Ok(Fault { worker, phase, kind })
    }
}

/// A reproducible script of [`Fault`]s for one job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan containing exactly the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Parse a comma-separated list of fault specs
    /// (e.g. `"kill:w2@round1,delay:w0@round2:50"`).
    ///
    /// # Errors
    ///
    /// Fails on any malformed spec.
    pub fn parse(s: &str) -> crate::Result<Self> {
        let faults = s
            .split(',')
            .filter(|part| !part.trim().is_empty())
            .map(|part| part.trim().parse())
            .collect::<crate::Result<Vec<_>>>()?;
        Ok(FaultPlan { faults })
    }

    /// A seeded one-kill plan: some worker among `0..p` dies entering
    /// some data round among `1..=rounds`. Same seed, same kill — the
    /// `StragglerSpec` idiom, for randomized-but-replayable campaigns.
    pub fn seeded_kill(seed: u64, p: usize, rounds: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_1E57);
        let worker = rng.gen_range(0..p.max(1)) as u32;
        let round = rng.gen_range(1..=rounds.max(1)) as u32;
        FaultPlan {
            faults: vec![Fault {
                worker,
                phase: FaultPhase::RoundStart(round),
                kind: FaultKind::Kill,
            }],
        }
    }

    /// The fault specs targeting `worker`, in wire/CLI text form — the
    /// `--fault` arguments the master passes to that worker's process.
    pub fn for_worker(&self, worker: u32) -> Vec<String> {
        self.faults.iter().filter(|f| f.worker == worker).map(|f| f.to_string()).collect()
    }

    /// Does the plan kill anyone at all?
    pub fn kills(&self) -> bool {
        self.faults.iter().any(|f| f.kind == FaultKind::Kill)
    }
}

impl FromStr for FaultPlan {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, NetError> {
        FaultPlan::parse(s)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// The faults armed in this process, each firing at most once.
static ARMED: OnceLock<Mutex<Vec<(Fault, bool)>>> = OnceLock::new();

/// Arm `faults` process-globally. Called once by `mpc_workerd` before the
/// worker dials in; later calls add to the same list. In-process runs
/// never arm anything, so the hooks below stay inert there.
pub fn arm(faults: &[Fault]) {
    let armed = ARMED.get_or_init(|| Mutex::new(Vec::new()));
    armed.lock().expect("fault list lock").extend(faults.iter().map(|&f| (f, false)));
}

fn fire<T>(worker: u32, mut pick: impl FnMut(&Fault) -> Option<T>) -> Option<T> {
    let armed = ARMED.get()?;
    let mut armed = armed.lock().expect("fault list lock");
    for (fault, fired) in armed.iter_mut() {
        if *fired || fault.worker != worker {
            continue;
        }
        if let Some(out) = pick(fault) {
            *fired = true;
            return Some(out);
        }
    }
    None
}

/// Phase-boundary hook: fire any armed [`FaultKind::Kill`] or
/// [`FaultKind::Delay`] scheduled for `worker` at `phase`. A kill exits
/// the process with code 137 (the `SIGKILL` convention) and never
/// returns; a delay sleeps inline. No-op when nothing is armed.
pub fn trip(worker: u32, phase: FaultPhase) {
    let kind = fire(worker, |f| match f.kind {
        FaultKind::Kill | FaultKind::Delay(_) if f.phase == phase => Some(f.kind),
        _ => None,
    });
    match kind {
        Some(FaultKind::Kill) => {
            eprintln!("mpc_workerd: injected kill of w{worker} at {phase}");
            std::process::exit(137);
        }
        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
}

/// Transport hook: the link fault (drop/corrupt), if any, armed for
/// `worker`'s frames to `peer` during data round `round`. Consumes the
/// fault — each fires at most once.
pub fn link_fault(worker: u32, round: u32, peer: u32) -> Option<FaultKind> {
    fire(worker, |f| match f.kind {
        FaultKind::DropLink { peer: p } | FaultKind::CorruptLink { peer: p }
            if p == peer && f.phase == FaultPhase::RoundStart(round) =>
        {
            Some(f.kind)
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let specs = [
            "kill:w2@round1",
            "kill:w0@handshake",
            "kill:w1@barrier2",
            "kill:w3@summary",
            "delay:w2@round1:50",
            "drop:w2@round1:3",
            "corrupt:w2@round3:1",
        ];
        for s in specs {
            let f: Fault = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
        let plan = FaultPlan::parse("kill:w2@round1, delay:w0@round2:5").unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(plan.kills());
        assert_eq!(plan.for_worker(2), vec!["kill:w2@round1".to_string()]);
        assert_eq!(plan.for_worker(1), Vec::<String>::new());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for s in [
            "",
            "kill",
            "kill:2@round1",
            "kill:w2@roundx",
            "boom:w2@round1",
            "delay:w2@round1",
            "drop:w2@round1",
        ] {
            assert!(s.parse::<Fault>().is_err(), "'{s}' must not parse");
        }
    }

    #[test]
    fn seeded_kill_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_kill(9, 4, 3);
        let b = FaultPlan::seeded_kill(9, 4, 3);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 1);
        let f = a.faults[0];
        assert!(f.worker < 4);
        assert!(matches!(f.phase, FaultPhase::RoundStart(r) if (1..=3).contains(&r)));
        assert_eq!(f.kind, FaultKind::Kill);
        assert_ne!(a, FaultPlan::seeded_kill(10, 400, 300), "different seed moves the kill");
    }
}
