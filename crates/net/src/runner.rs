//! The distributed worker loop and the transport-parametrised runner.
//!
//! [`worker_loop`] is the network mirror of the event-driven backend's
//! per-server task ([`mpc_sim::cluster_async`]): route from the
//! pre-delivery state, ship columnar blocks, broadcast per-round FIN
//! markers, merge pre-hashed future-round stages, drain until every
//! sender's FIN arrived, compute, and finally report the local output
//! plus per-round received volumes. The only structural difference is
//! round 1: there is no shared input router across processes, so input
//! relation `ri` is routed by worker `ri mod p` (with the original input
//! server id `p + ri` preserved on its blocks) and **every** worker
//! broadcasts a round-1 FIN — the expected FIN count is `p` in every
//! round. Since routing is a pure function of the tuple, the delivered
//! multiset — and therefore every volume statistic — is identical to the
//! single-process backends', which the differential tests assert.
//!
//! [`run_distributed`] executes a program over either transport and
//! rebuilds the exact [`RunResult`] of [`mpc_sim::Cluster::run`], reusing
//! the simulator's own statistics helpers so the formulas cannot drift.

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mpc_sim::queue::Inbox;
use mpc_sim::{
    build_round_stats, overloaded_server, union_outputs, BlockAssembler, BlockPool, Cluster,
    MpcProgram, RunResult, ServerState, SimError,
};
use mpc_storage::{Database, Relation};

use crate::frame::{read_frame, write_frame, Frame};
use crate::master::ControlPlane;
use crate::recovery::RecoverySettings;
use crate::transport::{
    dial_with_backoff, FailFastBarrier, InProcTransport, NetPacket, SendOutcome, TcpEndpoints,
    TcpTransport, Transport,
};
use crate::{NetError, Result};

/// How long a worker keeps retrying its master and mesh dials before
/// giving up (with capped exponential backoff — see
/// [`dial_with_backoff`]).
const DIAL_DEADLINE: Duration = Duration::from_secs(10);

/// Which fabric moves the packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Bounded in-process lanes (the async backend's channels).
    InProcess,
    /// Real TCP sockets over localhost, with an in-process master serving
    /// the control plane.
    Tcp,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistConfig {
    /// The transport implementation.
    pub transport: TransportKind,
    /// Per-link lane capacity, in packets (in-process transport only; TCP
    /// backpressure comes from the kernel's socket buffers).
    pub queue_capacity: usize,
    /// Tuples per columnar block.
    pub block_capacity: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig { transport: TransportKind::InProcess, queue_capacity: 64, block_capacity: 256 }
    }
}

impl DistConfig {
    /// A default configuration over the given transport.
    pub fn new(transport: TransportKind) -> Self {
        DistConfig { transport, ..DistConfig::default() }
    }
}

/// What one worker reports when its job is done.
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// The server's local (pre-union) output relation.
    pub output: Relation,
    /// Bytes received per round (index `round - 1`).
    pub per_round_bytes: Vec<u64>,
    /// Tuples received per round.
    pub per_round_tuples: Vec<u64>,
}

/// A pre-hashed stage of blocks for a round this worker has not reached
/// yet — the distributed twin of the async backend's `RoundStage`.
#[derive(Debug, Default)]
struct Stage {
    rels: BTreeMap<String, Relation>,
    bytes: u64,
    tuples: u64,
}

impl Stage {
    fn absorb(&mut self, block: &mpc_sim::TupleBlock) {
        let rel = self
            .rels
            .entry(block.tag.to_string())
            .or_insert_with(|| Relation::empty(&*block.tag, block.arity()));
        for t in block.rows() {
            rel.insert(t).expect("blocks under one tag share an arity");
        }
        self.bytes += block.payload_bytes();
        self.tuples += block.len() as u64;
    }
}

/// The per-worker protocol state while [`worker_loop`] runs.
struct Ctx<'a, T: Transport> {
    transport: &'a mut T,
    id: usize,
    round: usize,
    state: ServerState,
    fins: Vec<usize>,
    stash: Vec<Stage>,
    pool: Arc<BlockPool>,
    scratch: Vec<NetPacket>,
}

impl<T: Transport> Ctx<'_, T> {
    /// Process one received packet against the current round.
    fn process(&mut self, pkt: NetPacket) -> Result<()> {
        match pkt {
            NetPacket::Block(block) => {
                if block.round == self.round {
                    self.state.receive_many(block.round, &block.tag, block.arity(), block.rows());
                } else if block.round > self.round {
                    self.stash[block.round - 1].absorb(&block);
                } else {
                    return Err(NetError::Protocol(format!(
                        "worker {}: round-{} block arrived in round {}",
                        self.id, block.round, self.round
                    )));
                }
                self.pool.give_back(block.into_columns());
                Ok(())
            }
            NetPacket::Fin { round } => {
                if round == 0 || round > self.fins.len() {
                    return Err(NetError::Protocol(format!("FIN for invalid round {round}")));
                }
                self.fins[round - 1] += 1;
                Ok(())
            }
            NetPacket::Abort => {
                Err(NetError::Protocol(format!("worker {}: a peer aborted", self.id)))
            }
            // Transport-internal wake-up markers are stripped inside the
            // transport's recv; one leaking through is harmless.
            NetPacket::Resync => Ok(()),
        }
    }

    /// Ship one packet, draining our own inbox whenever the link is full —
    /// the deadlock-free send loop of the event-driven backend.
    fn send(&mut self, dest: usize, mut pkt: NetPacket) -> Result<()> {
        debug_assert_ne!(dest, self.id, "self-deliveries bypass the transport");
        loop {
            match self.transport.send(dest, pkt) {
                SendOutcome::Sent => return Ok(()),
                SendOutcome::Full(back) => {
                    pkt = back;
                    let mut tmp = std::mem::take(&mut self.scratch);
                    self.transport.try_recv(&mut tmp);
                    let res = tmp.drain(..).try_for_each(|p| self.process(p));
                    self.scratch = tmp;
                    res?;
                }
                SendOutcome::Closed => {
                    return Err(NetError::Protocol(format!(
                        "worker {}: link to {dest} is closed",
                        self.id
                    )));
                }
            }
        }
    }

    /// Deliver a sealed block: locally when it is ours, over the wire
    /// otherwise.
    fn deliver(&mut self, dest: usize, block: mpc_sim::TupleBlock) -> Result<()> {
        if dest == self.id {
            self.process(NetPacket::Block(block))
        } else {
            self.send(dest, NetPacket::Block(block))
        }
    }
}

/// A restored round checkpoint: everything a re-spawned worker needs to
/// resume at `round + 1` instead of round 1 (decoded from the master's
/// [`Frame::Checkpoint`]).
#[derive(Debug, Clone)]
pub struct RestorePoint {
    /// The completed round the snapshot describes.
    pub round: usize,
    /// Every relation the server knew, in tag order.
    pub relations: Vec<Relation>,
    /// Bytes received per round (index `round - 1`).
    pub per_round_bytes: Vec<u64>,
    /// Tuples received per round.
    pub per_round_tuples: Vec<u64>,
}

/// The per-worker parameters of [`worker_loop`], bundled so call sites
/// stay readable as the list grows.
pub struct WorkerRun {
    /// This worker's server id in `0..p`.
    pub id: usize,
    /// Cluster size.
    pub p: usize,
    /// Tuples per columnar block.
    pub block_capacity: usize,
    /// The block pool shared with the transport's decoder.
    pub pool: Arc<BlockPool>,
    /// Resume from this checkpoint instead of starting at round 1 —
    /// the re-spawned worker's recovery path.
    pub resume: Option<RestorePoint>,
}

impl WorkerRun {
    /// A fresh (round-1) run for worker `id` of `p`.
    pub fn fresh(id: usize, p: usize, block_capacity: usize, pool: Arc<BlockPool>) -> Self {
        WorkerRun { id, p, block_capacity, pool, resume: None }
    }
}

/// Run one server's share of `program` over `transport`. See the module
/// docs for the protocol; the caller provides the (deterministically
/// reconstructed or shared) input database.
///
/// A resumed run (`run.resume`) rebuilds the checkpointed server state
/// and re-executes only the rounds after the checkpoint. Because routing
/// and computation are pure functions of the pre-round state, the
/// re-execution reproduces the original rounds' blocks (and block
/// sequence numbers) exactly — surviving peers drop the duplicates by
/// watermark while the replacement's missing frames arrive via their
/// replay logs.
///
/// # Errors
///
/// Fails on program errors, protocol violations and dead peers; the
/// transport's abort broadcast is the caller's job (it owns the
/// transport).
pub fn worker_loop<T: Transport, P: MpcProgram + ?Sized>(
    transport: &mut T,
    program: &P,
    db: &Database,
    run: WorkerRun,
) -> Result<WorkerSummary> {
    let WorkerRun { id, p, block_capacity, pool, resume } = run;
    let total_rounds = program.num_rounds();
    let mut state = ServerState::new(id, db.domain_size());
    let mut start_round = 1;
    if let Some(rp) = resume {
        for rel in rp.relations {
            state.add_local(rel);
        }
        for (i, (&b, &t)) in rp.per_round_bytes.iter().zip(&rp.per_round_tuples).enumerate() {
            state.credit_received(i + 1, b, t);
        }
        start_round = rp.round + 1;
    }
    let mut ctx = Ctx {
        transport,
        id,
        round: 0,
        state,
        fins: vec![0; total_rounds],
        stash: (0..total_rounds).map(|_| Stage::default()).collect(),
        pool,
        scratch: Vec::new(),
    };

    for round in start_round..=total_rounds {
        ctx.round = round;
        crate::fault::trip(id as u32, crate::fault::FaultPhase::RoundStart(round as u32));
        if round == 1 {
            // Input sharding: relation `ri` is routed by worker `ri % p`,
            // its blocks carrying the logical input server id `p + ri`.
            for (ri, rel) in db.relations().enumerate() {
                if ri % p != id {
                    continue;
                }
                let routed = program.route_input(rel, p)?;
                let mut asm = BlockAssembler::new(Arc::clone(&ctx.pool), block_capacity, p + ri, 1);
                for msg in routed {
                    for &dest in &msg.destinations {
                        if dest >= p {
                            return Err(NetError::Sim(SimError::Program(format!(
                                "destination {dest} out of range for p = {p}"
                            ))));
                        }
                        if let Some(block) = asm.push(dest, &msg.tag, msg.tuple.values()) {
                            ctx.deliver(dest, block)?;
                        }
                    }
                }
                for (dest, block) in asm.flush() {
                    ctx.deliver(dest, block)?;
                }
            }
        } else {
            // Route from the state *before* any round-`round` delivery —
            // the tuple-based model's view.
            let routed = program.route_tuples(round, id, &ctx.state)?;
            let mut asm = BlockAssembler::new(Arc::clone(&ctx.pool), block_capacity, id, round);
            for msg in routed {
                for &dest in &msg.destinations {
                    if dest >= p {
                        return Err(NetError::Sim(SimError::Program(format!(
                            "destination {dest} out of range for p = {p}"
                        ))));
                    }
                    if let Some(block) = asm.push(dest, &msg.tag, msg.tuple.values()) {
                        ctx.deliver(dest, block)?;
                    }
                }
            }
            for (dest, block) in asm.flush() {
                ctx.deliver(dest, block)?;
            }
        }
        // Every worker FINs every round (unlike the async backend, where
        // round 1 has a single input router): p FINs end a round.
        for dest in 0..p {
            if dest == id {
                ctx.fins[round - 1] += 1;
            } else {
                ctx.send(dest, NetPacket::Fin { round })?;
            }
        }

        // Merge the pre-hashed stage for this round, charging its volume.
        let stage = std::mem::take(&mut ctx.stash[round - 1]);
        for (_, rel) in stage.rels {
            ctx.state.add_local(rel);
        }
        if stage.bytes > 0 || stage.tuples > 0 {
            ctx.state.credit_received(round, stage.bytes, stage.tuples);
        }

        // Drain until every sender closed this round.
        while ctx.fins[round - 1] < p {
            let mut tmp = std::mem::take(&mut ctx.scratch);
            ctx.transport.recv(&mut tmp)?;
            let res = tmp.drain(..).try_for_each(|pkt| ctx.process(pkt));
            ctx.scratch = tmp;
            res?;
        }

        // Unbounded local computation.
        for rel in program.compute(round, id, &ctx.state)? {
            ctx.state.add_local(rel);
        }

        // The coordination barrier: nobody enters round + 1 until every
        // worker finished this one (ready/proceed in the TCP transport).
        // The barrier is the checkpoint cut — the post-compute state is
        // snapshotted right before declaring the round done, so a
        // restored worker resumes exactly at the next round's start.
        crate::fault::trip(id as u32, crate::fault::FaultPhase::Barrier(round as u32));
        ctx.transport.checkpoint(round, &ctx.state, round == total_rounds)?;
        ctx.transport.barrier(round)?;
    }

    let output = program.output(id, &ctx.state)?;
    Ok(WorkerSummary {
        output,
        per_round_bytes: (1..=total_rounds).map(|r| ctx.state.bytes_received_in_round(r)).collect(),
        per_round_tuples: (1..=total_rounds)
            .map(|r| ctx.state.tuples_received_in_round(r))
            .collect(),
    })
}

/// Fold per-worker summaries into the [`RunResult`] every backend agrees
/// on, using the simulator's own statistics helpers.
pub(crate) fn assemble_result<P: MpcProgram + ?Sized>(
    cluster: &Cluster,
    program: &P,
    input_bytes: u64,
    summaries: Vec<WorkerSummary>,
) -> Result<RunResult> {
    let total_rounds = program.num_rounds();
    let budget_bytes = cluster.config().budget_bytes(input_bytes);
    let mut rounds = Vec::with_capacity(total_rounds);
    for round in 1..=total_rounds {
        let per_bytes: Vec<u64> = summaries
            .iter()
            .map(|s| s.per_round_bytes.get(round - 1).copied().unwrap_or(0))
            .collect();
        let per_tuples: Vec<u64> = summaries
            .iter()
            .map(|s| s.per_round_tuples.get(round - 1).copied().unwrap_or(0))
            .collect();
        let stats = build_round_stats(round, &per_bytes, &per_tuples, input_bytes, budget_bytes);
        if stats.exceeds_budget && cluster.config().fail_on_overload {
            let (server, received_bytes) = overloaded_server(&per_bytes);
            return Err(NetError::Sim(SimError::Overload {
                round,
                server,
                received_bytes,
                budget_bytes,
            }));
        }
        rounds.push(stats);
    }
    let (output, per_server_output) =
        union_outputs(program, summaries.into_iter().map(|s| s.output).collect())
            .map_err(NetError::Sim)?;
    Ok(RunResult { output, rounds, per_server_output, input_bytes })
}

/// Execute `program` over `db` on a distributed cluster of `p` workers
/// (one thread per server) connected by the configured transport, and
/// return the same [`RunResult`] as [`Cluster::run`].
///
/// # Errors
///
/// Fails on program errors, worker death and protocol violations; the
/// overload policy of the cluster's [`mpc_sim::MpcConfig`] applies.
pub fn run_distributed<P: MpcProgram>(
    cluster: &Cluster,
    program: &P,
    db: &Database,
    cfg: &DistConfig,
) -> Result<RunResult> {
    let p = cluster.config().p;
    let input_bytes = db.total_bytes();
    let summaries = match cfg.transport {
        TransportKind::InProcess => run_in_process(program, db, p, cfg)?,
        TransportKind::Tcp => run_tcp_threads(program, db, p, cfg)?,
    };
    assemble_result(cluster, program, input_bytes, summaries)
}

/// The in-process fabric: `p` worker threads over bounded lanes plus a
/// shared fail-fast barrier.
fn run_in_process<P: MpcProgram>(
    program: &P,
    db: &Database,
    p: usize,
    cfg: &DistConfig,
) -> Result<Vec<WorkerSummary>> {
    let pool = Arc::new(BlockPool::new());
    let barrier = Arc::new(FailFastBarrier::new(p));
    let mut lane_senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (senders, rx) = Inbox::channel::<NetPacket>(p, cfg.queue_capacity);
        lane_senders.push(senders);
        receivers.push(rx);
    }
    let results: Vec<Result<WorkerSummary>> = std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                // Worker `id`'s lane into `dest`'s inbox is lane `id`.
                let peers: Vec<_> = (0..p).map(|dest| lane_senders[dest][id].clone()).collect();
                let barrier = Arc::clone(&barrier);
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut transport = InProcTransport::new(peers, rx, barrier);
                    let run = WorkerRun::fresh(id, p, cfg.block_capacity, pool);
                    let out = worker_loop(&mut transport, program, db, run);
                    if out.is_err() {
                        transport.abort();
                    }
                    out
                })
            })
            .collect();
        drop(lane_senders);
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(NetError::Protocol("worker thread panicked".to_string()))
                })
            })
            .collect()
    });
    collect_summaries(results)
}

/// The TCP fabric with in-process workers: a real localhost socket mesh
/// and a real master control plane, but each server on a thread sharing
/// `program`/`db` — the differential-testing configuration.
fn run_tcp_threads<P: MpcProgram>(
    program: &P,
    db: &Database,
    p: usize,
    cfg: &DistConfig,
) -> Result<Vec<WorkerSummary>> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let master_addr = listener.local_addr()?;
    let total_rounds = program.num_rounds();

    let results: Vec<Result<WorkerSummary>> = std::thread::scope(|scope| {
        let master = scope.spawn(move || -> Result<()> {
            let mut plane = ControlPlane::accept(&listener, p, None, None)?;
            plane.serve_barriers(total_rounds)?;
            Ok(())
        });
        let handles: Vec<_> = (0..p)
            .map(|id| {
                scope.spawn(move || -> Result<WorkerSummary> {
                    let setup = tcp_worker_setup(
                        id,
                        Some(p),
                        &master_addr.to_string(),
                        cfg.queue_capacity,
                    )?;
                    let mut transport = setup.transport;
                    let pool = Arc::new(BlockPool::new());
                    let run = WorkerRun::fresh(id, p, cfg.block_capacity, pool);
                    let out = worker_loop(&mut transport, program, db, run);
                    if out.is_err() {
                        transport.abort();
                    }
                    transport.shutdown();
                    out
                })
            })
            .collect();
        let mut results: Vec<Result<WorkerSummary>> = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(NetError::Protocol("worker thread panicked".to_string()))
                })
            })
            .collect();
        if let Err(e) = master
            .join()
            .unwrap_or_else(|_| Err(NetError::Protocol("master thread panicked".to_string())))
        {
            results.push(Err(e));
        }
        results
    });
    collect_summaries(results)
}

/// What [`tcp_worker_setup`] hands back: the meshed transport, the raw
/// job spec (spawned mode) and the restore checkpoint (recovery rejoin).
pub(crate) struct WorkerSetup {
    pub transport: TcpTransport,
    pub job: Option<String>,
    pub restore: Option<RestorePoint>,
}

/// Dial the master, announce ourselves, mesh-connect to every peer and
/// wait for the collective proceed — the worker side of the handshake.
/// Used by both the threaded TCP runner and the spawned worker daemon.
/// All dials retry with capped exponential backoff, so a slow-starting
/// master or peer delays the handshake instead of killing it.
///
/// The cluster size is learned from the master's peer table (validated
/// against `expect_p` when the caller already knows it). In spawned mode
/// the master precedes the peer table with a `Job` frame, returned as
/// the raw spec string; in threaded mode no Job frame is sent.
///
/// **Recovery rejoin.** When the master also sends a `Checkpoint` frame
/// the worker is a re-spawned replacement: instead of the fresh-mesh
/// handshake (dial lower ids, accept higher), it dials *every* surviving
/// peer's rejoin acceptor, announcing `DataHello` + `ReplayRequest` so
/// the survivor replays the rounds the replacement's checkpoint misses.
pub(crate) fn tcp_worker_setup(
    id: usize,
    expect_p: Option<usize>,
    master_addr: &str,
    queue_capacity: usize,
) -> Result<WorkerSetup> {
    let pool = BlockPool::new();
    let data_listener = TcpListener::bind("127.0.0.1:0")?;
    let data_port = data_listener.local_addr()?.port();
    let mut control = dial_with_backoff(master_addr, DIAL_DEADLINE, id as u64)?;
    control.set_nodelay(true).ok();
    write_frame(&mut control, &Frame::Hello { worker_id: id as u32, data_port })?;
    let mut job = None;
    let mut restore = None;
    let peers = loop {
        match read_frame(&mut control, &pool)? {
            Frame::Job { spec } => job = Some(spec),
            Frame::Checkpoint { round, relations, per_round_bytes, per_round_tuples } => {
                restore = Some(RestorePoint {
                    round: round as usize,
                    relations,
                    per_round_bytes,
                    per_round_tuples,
                });
            }
            Frame::Peers { peers } => break peers,
            Frame::Abort { reason } => {
                return Err(NetError::Protocol(format!("master aborted during hello: {reason}")));
            }
            other => {
                return Err(NetError::Protocol(format!("expected Peers, got {other:?}")));
            }
        }
    };
    let p = peers.len();
    if expect_p.is_some_and(|e| e != p) || id >= p {
        return Err(NetError::Protocol(format!(
            "peer table has {p} entries (worker {id}, expected {expect_p:?})"
        )));
    }
    let mut addr_of = vec![String::new(); p];
    for (pid, addr) in peers {
        let pid = pid as usize;
        if pid >= p {
            return Err(NetError::Protocol(format!("peer table names bad worker {pid}")));
        }
        addr_of[pid] = addr;
    }
    let mut outbound: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    let mut inbound: Vec<(usize, TcpStream)> = Vec::with_capacity(p.saturating_sub(1));
    if let Some(rp) = &restore {
        // Rejoin mesh: dial every surviving peer and ask for replay.
        for (peer, addr) in addr_of.iter().enumerate() {
            if peer == id {
                continue;
            }
            let mut s = dial_with_backoff(addr, DIAL_DEADLINE, (id * 31 + peer) as u64)?;
            s.set_nodelay(true).ok();
            write_frame(&mut s, &Frame::DataHello { from: id as u32 })?;
            write_frame(&mut s, &Frame::ReplayRequest { from_round: rp.round as u32 })?;
            outbound[peer] = Some(s.try_clone()?);
            inbound.push((peer, s));
        }
    } else {
        // Fresh mesh: dial every lower id, accept every higher one. Each
        // pair shares one full-duplex stream.
        for (peer, addr) in addr_of.iter().enumerate().take(id) {
            let mut s = dial_with_backoff(addr, DIAL_DEADLINE, (id * 31 + peer) as u64)?;
            s.set_nodelay(true).ok();
            write_frame(&mut s, &Frame::DataHello { from: id as u32 })?;
            outbound[peer] = Some(s.try_clone()?);
            inbound.push((peer, s));
        }
        for _ in (id + 1)..p {
            let (mut s, _) = data_listener.accept()?;
            s.set_nodelay(true).ok();
            let from = match read_frame(&mut s, &pool)? {
                Frame::DataHello { from } => from as usize,
                other => {
                    return Err(NetError::Protocol(format!("expected DataHello, got {other:?}")));
                }
            };
            if from >= p || from <= id {
                return Err(NetError::Protocol(format!("unexpected data hello from {from}")));
            }
            outbound[from] = Some(s.try_clone()?);
            inbound.push((from, s));
        }
    }
    write_frame(&mut control, &Frame::MeshReady)?;
    match read_frame(&mut control, &pool)? {
        Frame::Proceed { round: 0 } => {}
        Frame::Abort { reason } => {
            return Err(NetError::Protocol(format!("master aborted during mesh: {reason}")));
        }
        other => {
            return Err(NetError::Protocol(format!("expected Proceed(0), got {other:?}")));
        }
    }
    let recovery = job.as_deref().map(RecoverySettings::from_wire).unwrap_or_default();
    let endpoints =
        TcpEndpoints { id, p, outbound, inbound, control, listener: Some(data_listener) };
    let transport = TcpTransport::new(endpoints, Arc::new(pool), queue_capacity, recovery)?;
    Ok(WorkerSetup { transport, job, restore })
}

fn collect_summaries(results: Vec<Result<WorkerSummary>>) -> Result<Vec<WorkerSummary>> {
    let mut summaries = Vec::with_capacity(results.len());
    let mut first_err = None;
    for r in results {
        match r {
            Ok(s) => summaries.push(s),
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(summaries),
    }
}

/// The three-way differential report: the synchronous reference against
/// both distributed transports.
#[derive(Debug)]
pub struct TransportDifferential {
    /// [`Cluster::run`], the model's reference semantics.
    pub reference: RunResult,
    /// The distributed runner over in-process lanes.
    pub in_process: RunResult,
    /// The distributed runner over TCP sockets.
    pub tcp: RunResult,
}

impl TransportDifferential {
    /// The first observable difference between the three runs, if any:
    /// outputs, per-round statistics or per-server output counts.
    pub fn divergence(&self) -> Option<String> {
        for (label, run) in [("in-process", &self.in_process), ("tcp", &self.tcp)] {
            if !run.output.same_tuples(&self.reference.output) {
                return Some(format!(
                    "{label}: output differs ({} vs {} tuples)",
                    run.output.len(),
                    self.reference.output.len()
                ));
            }
            if run.rounds != self.reference.rounds {
                return Some(format!("{label}: per-round statistics differ"));
            }
            if run.per_server_output != self.reference.per_server_output {
                return Some(format!("{label}: per-server output counts differ"));
            }
            if run.input_bytes != self.reference.input_bytes {
                return Some(format!("{label}: input accounting differs"));
            }
        }
        None
    }
}

/// Run `program` under the synchronous reference and both distributed
/// transports, for differential assertions.
///
/// # Errors
///
/// Fails if any of the three runs fails.
pub fn run_transport_differential<P: MpcProgram>(
    cluster: &Cluster,
    program: &P,
    db: &Database,
    cfg: &DistConfig,
) -> Result<TransportDifferential> {
    let reference = cluster.run(program, db).map_err(NetError::Sim)?;
    let in_process = run_distributed(
        cluster,
        program,
        db,
        &DistConfig { transport: TransportKind::InProcess, ..cfg.clone() },
    )?;
    let tcp = run_distributed(
        cluster,
        program,
        db,
        &DistConfig { transport: TransportKind::Tcp, ..cfg.clone() },
    )?;
    Ok(TransportDifferential { reference, in_process, tcp })
}
