//! Self-contained job descriptions for spawned workers.
//!
//! A spawned worker process shares no memory with the master, so a
//! [`JobSpec`] must carry everything needed to rebuild the job
//! deterministically on the other side: the query (as re-parseable text —
//! [`mpc_cq::Query`]'s display form), the database generator and its
//! seed, the program family and its parameters, and the cluster shape.
//! Both sides building from the same spec are guaranteed the same
//! program, the same database and therefore the same routing — the
//! property the spawned-mode differential smoke asserts.
//!
//! The wire form is deliberately primitive: one `key=value` pair per
//! line. (The workspace's offline `serde` shim serialises but does not
//! deserialise, so the format is hand-rolled; it is also trivially
//! greppable in logs.)

use mpc_cq::parser::parse_query;
use mpc_cq::Query;
use mpc_lp::Rational;
use mpc_sim::{Cluster, MpcConfig, MpcProgram};
use mpc_storage::Database;

use crate::{NetError, Result};

/// Which program family executes the query.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramSpec {
    /// Naive broadcast-everything baseline.
    Broadcast,
    /// One-round HyperCube at the optimal share allocation.
    HyperCube,
    /// The multi-round `Γ^r_ε` plan executor at the given space exponent.
    MultiRound {
        /// The plan's space exponent ε as an exact rational.
        plan_epsilon: Rational,
    },
    /// The skew-resilient one-round program (heavy hitters + residual
    /// plans, planned against the reconstructed database).
    SkewResilient {
        /// Heavy-hitter detection threshold multiplier.
        scale: f64,
    },
    /// The worst-case optimal heavy/light program (BKS 2018), planned
    /// against the reconstructed database.
    Wco,
}

/// How the input database is (re)generated.
#[derive(Debug, Clone, PartialEq)]
pub enum DbSpec {
    /// [`mpc_data::matching_database`]: every relation a random matching.
    Matching {
        /// Domain size / tuples per relation.
        n: u64,
        /// Generator seed.
        seed: u64,
    },
    /// [`mpc_data::skew::zipf_database`]: Zipf-skewed binary relations.
    Zipf {
        /// Domain size.
        n: u64,
        /// Tuples per relation.
        tuples: usize,
        /// Zipf exponent θ.
        theta: f64,
        /// Generator seed.
        seed: u64,
    },
    /// [`mpc_data::skew::heavy_hitter_database`]: one planted heavy key
    /// per relation — the input that activates the WCO heavy side.
    HeavyHitter {
        /// Domain size.
        n: u64,
        /// Tuples per relation.
        tuples: usize,
        /// Fraction of tuples sharing the heavy key.
        frac: f64,
        /// Generator seed.
        seed: u64,
    },
}

/// Everything a worker process needs to run its share of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The program family.
    pub program: ProgramSpec,
    /// The query, in `mpc_cq` parseable text form.
    pub query: String,
    /// The database generator.
    pub db: DbSpec,
    /// Number of worker servers.
    pub p: usize,
    /// The cluster's space exponent ε (budget accounting).
    pub epsilon: f64,
    /// Routing seed shared by all workers.
    pub seed: u64,
    /// Per-link lane capacity for the workers' inboxes.
    pub queue_capacity: usize,
    /// Tuples per columnar block.
    pub block_capacity: usize,
}

/// A job rebuilt from its spec: the program, its input and the cluster.
pub struct BuiltJob {
    /// The executable program.
    pub program: Box<dyn MpcProgram + Send + Sync>,
    /// The deterministically regenerated database.
    pub db: Database,
    /// The cluster (budget accounting shape).
    pub cluster: Cluster,
    /// The parsed query.
    pub query: Query,
}

fn parse_rational(s: &str) -> Result<Rational> {
    let bad = || NetError::Protocol(format!("bad rational {s:?}"));
    match s.split_once('/') {
        Some((n, d)) => {
            let n: i128 = n.trim().parse().map_err(|_| bad())?;
            let d: i128 = d.trim().parse().map_err(|_| bad())?;
            if d == 0 {
                return Err(bad());
            }
            Ok(Rational::new(n, d))
        }
        None => {
            let n: i128 = s.trim().parse().map_err(|_| bad())?;
            Ok(Rational::new(n, 1))
        }
    }
}

impl JobSpec {
    /// Serialise to the `key=value` wire form carried by
    /// [`crate::Frame::Job`].
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        let (prog, prog_arg) = match &self.program {
            ProgramSpec::Broadcast => ("broadcast".to_string(), None),
            ProgramSpec::HyperCube => ("hypercube".to_string(), None),
            ProgramSpec::MultiRound { plan_epsilon } => {
                ("multiround".to_string(), Some(format!("plan_epsilon={plan_epsilon}")))
            }
            ProgramSpec::SkewResilient { scale } => {
                ("skew".to_string(), Some(format!("scale={scale}")))
            }
            ProgramSpec::Wco => ("wco".to_string(), None),
        };
        out.push_str(&format!("program={prog}\n"));
        if let Some(arg) = prog_arg {
            out.push_str(&format!("{arg}\n"));
        }
        out.push_str(&format!("query={}\n", self.query));
        match &self.db {
            DbSpec::Matching { n, seed } => {
                out.push_str(&format!("db=matching\nn={n}\ndb_seed={seed}\n"));
            }
            DbSpec::Zipf { n, tuples, theta, seed } => {
                out.push_str(&format!(
                    "db=zipf\nn={n}\ntuples={tuples}\ntheta={theta}\ndb_seed={seed}\n"
                ));
            }
            DbSpec::HeavyHitter { n, tuples, frac, seed } => {
                out.push_str(&format!(
                    "db=heavy\nn={n}\ntuples={tuples}\nfrac={frac}\ndb_seed={seed}\n"
                ));
            }
        }
        out.push_str(&format!(
            "p={}\nepsilon={}\nseed={}\nqueue_capacity={}\nblock_capacity={}\n",
            self.p, self.epsilon, self.seed, self.queue_capacity, self.block_capacity
        ));
        out
    }

    /// Parse the wire form back.
    ///
    /// Unknown keys are **ignored**, by design: the wire form is
    /// extensible, and newer masters append extra `key=value` lines —
    /// the [`RecoverySettings`](crate::RecoverySettings) lines, for
    /// instance — that older workers must be able to skip over.
    ///
    /// # Errors
    ///
    /// Fails on missing required keys, malformed numbers or unknown
    /// program/database kinds.
    pub fn from_wire(wire: &str) -> Result<Self> {
        let mut kv = std::collections::BTreeMap::new();
        for line in wire.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(NetError::Protocol(format!("job spec line without '=': {line:?}")));
            };
            kv.insert(k.trim().to_string(), v.to_string());
        }
        let get = |k: &str| {
            kv.get(k).cloned().ok_or_else(|| NetError::Protocol(format!("job spec missing {k}")))
        };
        let num = |k: &str| -> Result<u64> {
            get(k)?.trim().parse().map_err(|_| NetError::Protocol(format!("bad number for {k}")))
        };
        let fnum = |k: &str| -> Result<f64> {
            get(k)?.trim().parse().map_err(|_| NetError::Protocol(format!("bad float for {k}")))
        };
        let program = match get("program")?.as_str() {
            "broadcast" => ProgramSpec::Broadcast,
            "hypercube" => ProgramSpec::HyperCube,
            "multiround" => {
                ProgramSpec::MultiRound { plan_epsilon: parse_rational(&get("plan_epsilon")?)? }
            }
            "skew" => ProgramSpec::SkewResilient { scale: fnum("scale")? },
            "wco" => ProgramSpec::Wco,
            other => return Err(NetError::Protocol(format!("unknown program kind {other:?}"))),
        };
        let db = match get("db")?.as_str() {
            "matching" => DbSpec::Matching { n: num("n")?, seed: num("db_seed")? },
            "zipf" => DbSpec::Zipf {
                n: num("n")?,
                tuples: num("tuples")? as usize,
                theta: fnum("theta")?,
                seed: num("db_seed")?,
            },
            "heavy" => DbSpec::HeavyHitter {
                n: num("n")?,
                tuples: num("tuples")? as usize,
                frac: fnum("frac")?,
                seed: num("db_seed")?,
            },
            other => return Err(NetError::Protocol(format!("unknown db kind {other:?}"))),
        };
        Ok(JobSpec {
            program,
            query: get("query")?,
            db,
            p: num("p")? as usize,
            epsilon: fnum("epsilon")?,
            seed: num("seed")?,
            queue_capacity: num("queue_capacity")? as usize,
            block_capacity: num("block_capacity")? as usize,
        })
    }

    /// Rebuild the executable job: parse the query, regenerate the
    /// database and construct the program. Deterministic — every process
    /// building from the same spec gets identical routing.
    ///
    /// # Errors
    ///
    /// Fails on parse errors, invalid cluster configuration and program
    /// construction errors.
    pub fn build(&self) -> Result<BuiltJob> {
        let query =
            parse_query(&self.query).map_err(|e| NetError::Protocol(format!("job query: {e}")))?;
        let db = match &self.db {
            DbSpec::Matching { n, seed } => mpc_data::matching_database(&query, *n, *seed),
            DbSpec::Zipf { n, tuples, theta, seed } => {
                mpc_data::skew::zipf_database(&query, *n, *tuples, *theta, *seed)
            }
            DbSpec::HeavyHitter { n, tuples, frac, seed } => {
                mpc_data::skew::heavy_hitter_database(&query, *n, *tuples, *frac, *seed)
            }
        };
        let cluster = Cluster::new(MpcConfig::new(self.p, self.epsilon)).map_err(NetError::Sim)?;
        let program: Box<dyn MpcProgram + Send + Sync> = match &self.program {
            ProgramSpec::Broadcast => {
                Box::new(mpc_sim::program::BroadcastProgram::new(query.clone()))
            }
            ProgramSpec::HyperCube => Box::new(
                mpc_core::hypercube::HyperCubeProgram::new(&query, self.p, self.seed)
                    .map_err(|e| NetError::Protocol(format!("hypercube: {e}")))?,
            ),
            ProgramSpec::MultiRound { plan_epsilon } => {
                let plan =
                    mpc_core::multiround::planner::MultiRoundPlan::build(&query, *plan_epsilon)
                        .map_err(|e| NetError::Protocol(format!("plan: {e}")))?;
                Box::new(
                    mpc_core::multiround::executor::PlanProgram::new(&plan, self.p, self.seed)
                        .map_err(|e| NetError::Protocol(format!("plan program: {e}")))?,
                )
            }
            ProgramSpec::SkewResilient { scale } => Box::new(
                mpc_skew::SkewResilientProgram::new(
                    &query,
                    &db,
                    self.p,
                    &mpc_skew::HeavyHitterPolicy { scale: *scale },
                    self.seed,
                )
                .map_err(|e| NetError::Protocol(format!("skew program: {e}")))?,
            ),
            ProgramSpec::Wco => Box::new(
                mpc_core::wco::WcoProgram::new(&query, &db, self.p, self.seed)
                    .map_err(|e| NetError::Protocol(format!("wco program: {e}")))?,
            ),
        };
        Ok(BuiltJob { program, db, cluster, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn spec(program: ProgramSpec) -> JobSpec {
        JobSpec {
            program,
            query: families::triangle().to_string(),
            db: DbSpec::Matching { n: 500, seed: 11 },
            p: 8,
            epsilon: 0.5,
            seed: 42,
            queue_capacity: 64,
            block_capacity: 128,
        }
    }

    #[test]
    fn wire_round_trips_every_program_kind() {
        for program in [
            ProgramSpec::Broadcast,
            ProgramSpec::HyperCube,
            ProgramSpec::MultiRound { plan_epsilon: Rational::new(1, 3) },
            ProgramSpec::SkewResilient { scale: 1.0 },
            ProgramSpec::Wco,
        ] {
            let s = spec(program);
            let back = JobSpec::from_wire(&s.to_wire()).unwrap();
            assert_eq!(s, back, "wire form round-trips");
        }
    }

    #[test]
    fn zipf_db_round_trips() {
        let mut s = spec(ProgramSpec::HyperCube);
        s.db = DbSpec::Zipf { n: 300, tuples: 600, theta: 0.8, seed: 3 };
        let back = JobSpec::from_wire(&s.to_wire()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn wco_job_round_trips_and_builds_two_rounds_under_skew() {
        let mut s = spec(ProgramSpec::Wco);
        // 0.6 · 800 = 480 planted copies; 480 · share > 800 at any share
        // ≥ 2, so the heavy side activates and the program is 2 rounds.
        s.db = DbSpec::HeavyHitter { n: 600, tuples: 800, frac: 0.6, seed: 19 };
        let back = JobSpec::from_wire(&s.to_wire()).unwrap();
        assert_eq!(s, back);
        let built = back.build().unwrap();
        assert_eq!(built.program.num_rounds(), 2, "heavy hitter activates the broadcast round");
    }

    #[test]
    fn query_text_survives_the_wire() {
        let s = spec(ProgramSpec::HyperCube);
        let built = JobSpec::from_wire(&s.to_wire()).unwrap().build().unwrap();
        assert_eq!(built.query.to_string(), families::triangle().to_string());
        assert_eq!(built.db.relations().count(), 3);
        assert_eq!(built.program.num_rounds(), 1);
    }

    #[test]
    fn build_is_deterministic_across_processes_in_spirit() {
        // Two independent builds (as two processes would do) must agree on
        // the database bytes and program shape.
        let s = spec(ProgramSpec::MultiRound { plan_epsilon: Rational::ZERO });
        let a = s.build().unwrap();
        let b = s.build().unwrap();
        assert_eq!(a.db.total_bytes(), b.db.total_bytes());
        assert_eq!(a.program.num_rounds(), b.program.num_rounds());
        for (ra, rb) in a.db.relations().zip(b.db.relations()) {
            assert!(ra.same_tuples(rb), "regenerated relations identical");
        }
    }

    #[test]
    fn unknown_keys_are_ignored_for_forward_compatibility() {
        // Newer masters append extra lines (e.g. the RecoverySettings
        // `recovery=`/`checkpoint_every=` pair); parsing must skip what
        // it does not understand rather than reject the job.
        let s = spec(ProgramSpec::HyperCube);
        let wire = format!("{}recovery=1\ncheckpoint_every=2\nfuture_knob=whatever\n", s.to_wire());
        assert_eq!(JobSpec::from_wire(&wire).unwrap(), s);
        let settings = crate::RecoverySettings::from_wire(&wire);
        assert!(settings.enabled, "the recovery lines remain readable from the same wire");
        assert_eq!(settings.checkpoint_every, 2);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(JobSpec::from_wire("program=warp\nquery=q() :- R(x)").is_err());
        assert!(JobSpec::from_wire("no equals sign").is_err());
        assert!(JobSpec::from_wire("program=hypercube\n").is_err(), "missing keys");
        assert!(parse_rational("1/0").is_err());
        assert_eq!(parse_rational("2/3").unwrap(), Rational::new(2, 3));
        assert_eq!(parse_rational("0").unwrap(), Rational::ZERO);
    }
}
