//! Distributed execution and a multi-query service for the MPC
//! simulator — the "millions of users" tier of the reproduction.
//!
//! Everything below `mpc-net` runs the tuple-based MPC protocol of Beame,
//! Koutris & Suciu inside one process. This crate lifts the same protocol
//! onto a real network stack, in three layers:
//!
//! * **[`frame`]** — a length-prefixed binary wire format. Data frames
//!   carry the columnar [`mpc_sim::TupleBlock`] layout verbatim (one
//!   contiguous run of 8-byte values per column), and the decoder refills
//!   pooled [`mpc_sim::ColumnBuf`]s via a [`mpc_sim::BlockPool`], so the
//!   receive path allocates nothing in steady state. Control frames cover
//!   the master/worker handshake, per-round barriers and fail-fast aborts.
//! * **[`transport`] / [`runner`]** — a [`Transport`] trait with two
//!   implementations: the in-process bounded lanes of
//!   [`mpc_sim::queue`] (so the differential layer keeps proving
//!   semantics) and real TCP sockets. [`runner::run_distributed`] drives
//!   one worker per server through either transport and rebuilds the
//!   exact [`mpc_sim::RunResult`] the single-process backends produce.
//! * **[`master`] / [`spec`]** — the spawned-process mode: each server is
//!   a real OS process (`mpc_workerd`) coordinated over localhost by a
//!   master (hello handshake, per-round ready/proceed signals, clean
//!   shutdown, fail-fast on worker death — the D-FDB coordination
//!   pattern). A [`JobSpec`] describes the job in a self-contained wire
//!   form so workers can rebuild the program and database on their own.
//! * **[`service`]** — a [`QueryService`] front-end that accepts a stream
//!   of parsed CQs, analyses them (cache-hot via `mpc_lp::LpCache`),
//!   admits them against a server byte budget, and multiplexes many
//!   concurrent query executions over one shared cluster using per-query
//!   namespaces in message tags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod master;
pub mod recovery;
pub mod runner;
pub mod service;
pub mod spec;
pub mod transport;

use std::fmt;

pub use fault::{Fault, FaultKind, FaultPhase, FaultPlan};
pub use frame::Frame;
pub use master::{run_spawned, run_spawned_with, worker_main, SpawnedReport};
pub use recovery::{MasterConfig, RecoveryPolicy, RecoverySettings};
pub use runner::{run_distributed, run_transport_differential, DistConfig, TransportKind};
pub use service::{Admission, QueryJob, QueryOutcome, QueryService, ServiceConfig, Submission};
pub use spec::{JobSpec, ProgramSpec};
pub use transport::{InProcTransport, NetPacket, SendOutcome, TcpTransport, Transport};

/// Errors raised by the networking layer.
#[derive(Debug)]
pub enum NetError {
    /// An error surfaced by the simulator core (program, storage, config).
    Sim(mpc_sim::SimError),
    /// A socket or process error.
    Io(std::io::Error),
    /// The peer violated the wire protocol (bad frame, unexpected state),
    /// or a worker died / aborted mid-job.
    Protocol(String),
    /// The service declined a submission outright (deferral queue full).
    Rejected(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Sim(e) => write!(f, "simulator error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Rejected(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<mpc_sim::SimError> for NetError {
    fn from(e: mpc_sim::SimError) -> Self {
        NetError::Sim(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, NetError>;
