//! CI smoke for the distributed stack: spawned processes and the
//! multi-query service, both checked against `Cluster::run`.
//!
//! Two stages, both differential:
//!
//! 1. **Spawned multi-process runner** — the triangle query under
//!    one-round HyperCube on `p = 4` worker OS processes over localhost
//!    (`mpc_workerd` spawned next to this binary), compared against the
//!    synchronous reference for identical outputs, per-round volumes and
//!    per-server output counts.
//! 2. **Concurrent service trace** — two queries (triangle + 4-cycle)
//!    multiplexed over one shared cluster, each compared the same way.
//!
//! With `--inject PLAN` (e.g. `--inject kill:w2@round1`) the spawned
//! stage runs a third time with the fault plan armed and crash recovery
//! enabled, and requires the recovered run to match the undisturbed
//! reference byte-for-byte while consuming at least one re-spawn.
//!
//! Any divergence prints what differed and exits non-zero, failing the
//! CI job.

use std::process::exit;
use std::sync::Arc;

use mpc_net::spec::{DbSpec, ProgramSpec};
use mpc_net::{
    FaultPlan, JobSpec, MasterConfig, QueryJob, QueryService, RecoveryPolicy, ServiceConfig,
};
use mpc_sim::{Cluster, MpcConfig, RunResult};

fn fail(msg: &str) -> ! {
    eprintln!("distributed_smoke: DIVERGENCE: {msg}");
    exit(1);
}

fn check(
    label: &str,
    reference: &RunResult,
    got_output: &mpc_storage::Relation,
    got_rounds: &[mpc_sim::RoundStats],
) {
    if !got_output.same_tuples(&reference.output) {
        fail(&format!(
            "{label}: output differs ({} vs {} tuples)",
            got_output.len(),
            reference.output.len()
        ));
    }
    if got_rounds != reference.rounds.as_slice() {
        fail(&format!("{label}: per-round statistics differ"));
    }
    println!(
        "distributed_smoke: {label}: OK ({} output tuples, {} rounds)",
        got_output.len(),
        got_rounds.len()
    );
}

/// The spawned-stage program, selected by `--program`.
#[derive(Clone, Copy, PartialEq)]
enum SmokeProgram {
    /// One-round HyperCube on a matching (the default).
    HcTriangle,
    /// The worst-case optimal heavy/light program on a heavy-hitter
    /// input, exercising the staging + broadcast-join round.
    WcoTriangle,
}

impl SmokeProgram {
    fn label(self) -> &'static str {
        match self {
            SmokeProgram::HcTriangle => "C3_hc",
            SmokeProgram::WcoTriangle => "C3_wco",
        }
    }
}

fn smoke_job(program: SmokeProgram) -> JobSpec {
    let (program, db) = match program {
        SmokeProgram::HcTriangle => (ProgramSpec::HyperCube, DbSpec::Matching { n: 800, seed: 17 }),
        // 0.6 · 800 = 480 planted copies of the heavy key; 480 · share
        // > 800 at every share ≥ 2, so the heavy side activates and the
        // spawned workers run the full two-round WCO dataflow.
        SmokeProgram::WcoTriangle => {
            (ProgramSpec::Wco, DbSpec::HeavyHitter { n: 600, tuples: 800, frac: 0.6, seed: 17 })
        }
    };
    JobSpec {
        program,
        query: mpc_cq::families::triangle().to_string(),
        db,
        p: 4,
        epsilon: 0.5,
        seed: 23,
        queue_capacity: 64,
        block_capacity: 128,
    }
}

fn worker_bin() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join("mpc_workerd")))
        .filter(|p| p.exists())
        .unwrap_or_else(|| {
            fail("spawned: mpc_workerd not found next to this binary (build it first: cargo build -p mpc-net --bins)")
        })
}

fn spawned_stage(program: SmokeProgram) -> RunResult {
    let job = smoke_job(program);
    let built = job.build().unwrap_or_else(|e| fail(&format!("spawned: job build: {e}")));
    let reference = built
        .cluster
        .run(built.program.as_ref(), &built.db)
        .unwrap_or_else(|e| fail(&format!("spawned: reference run: {e}")));
    if program == SmokeProgram::WcoTriangle && reference.num_rounds() != 2 {
        fail("spawned C3_wco p=4: heavy side did not activate (expected 2 rounds)");
    }

    let label = format!("spawned {} p=4", program.label());
    let got = mpc_net::run_spawned(&job, &worker_bin())
        .unwrap_or_else(|e| fail(&format!("spawned: distributed run: {e}")));
    check(&label, &reference, &got.output, &got.rounds);
    if got.per_server_output != reference.per_server_output {
        fail(&format!("{label}: per-server output counts differ"));
    }
    reference
}

/// Re-run the spawned stage with `plan` armed and recovery enabled; the
/// recovered run must reproduce the undisturbed reference exactly.
fn fault_stage(program: SmokeProgram, reference: &RunResult, plan: FaultPlan) {
    let job = smoke_job(program);
    let label = format!("spawned {} p=4 under {plan}", program.label());
    let cfg = MasterConfig { recovery: RecoveryPolicy::with_respawns(2), faults: Some(plan) };
    let report = mpc_net::run_spawned_with(&job, &worker_bin(), &cfg)
        .unwrap_or_else(|e| fail(&format!("{label}: recovering run: {e}")));
    check(&label, reference, &report.result.output, &report.result.rounds);
    if report.result.per_server_output != reference.per_server_output {
        fail(&format!("{label}: per-server output counts differ"));
    }
    if report.result.input_bytes != reference.input_bytes {
        fail(&format!("{label}: total input bytes differ"));
    }
    if report.respawns == 0 {
        fail(&format!("{label}: the fault plan never killed anything (0 respawns)"));
    }
    println!("distributed_smoke: {label}: recovered after {} respawn(s)", report.respawns);
}

fn service_stage() {
    let p = 4;
    let q1 = mpc_cq::families::triangle();
    let q2 = mpc_cq::families::cycle(4);
    let db1 = Arc::new(mpc_data::matching_database(&q1, 700, 5));
    let db2 = Arc::new(mpc_data::matching_database(&q2, 500, 6));

    let mut svc = QueryService::start(&ServiceConfig::new(p, 0.5))
        .unwrap_or_else(|e| fail(&format!("service: start: {e}")));
    // Submit both before draining either: the trace is genuinely
    // concurrent on the shared reactors.
    let a = svc
        .submit(&QueryJob { query: q1.clone(), db: db1.clone(), seed: 31, plan_epsilon: None })
        .unwrap_or_else(|e| fail(&format!("service: submit 1: {e}")))
        .qid;
    let b = svc
        .submit(&QueryJob { query: q2.clone(), db: db2.clone(), seed: 32, plan_epsilon: None })
        .unwrap_or_else(|e| fail(&format!("service: submit 2: {e}")))
        .qid;
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        outcomes
            .push(svc.next_outcome().unwrap_or_else(|e| fail(&format!("service: outcome: {e}"))));
    }
    svc.shutdown().unwrap_or_else(|e| fail(&format!("service: shutdown: {e}")));
    outcomes.sort_by_key(|o| o.qid);

    for (qid, q, db, seed) in [(a, q1, db1, 31), (b, q2, db2, 32)] {
        let cluster = Cluster::new(MpcConfig::new(p, 0.5)).expect("valid config");
        let program = mpc_core::hypercube::HyperCubeProgram::new(&q, p, seed)
            .unwrap_or_else(|e| fail(&format!("service: reference program: {e}")));
        let reference = cluster
            .run(&program, &db)
            .unwrap_or_else(|e| fail(&format!("service: reference run: {e}")));
        let outcome = &outcomes[qid as usize];
        check(&format!("service query {qid}"), &reference, &outcome.output, &outcome.rounds);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut inject: Option<FaultPlan> = None;
    let mut program = SmokeProgram::HcTriangle;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--inject" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(plan) => inject = Some(plan),
                    Err(e) => fail(&format!("bad --inject plan {:?}: {e}", args[i + 1])),
                }
                i += 2;
            }
            "--program" if i + 1 < args.len() => {
                program = match args[i + 1].as_str() {
                    "hc-triangle" => SmokeProgram::HcTriangle,
                    "wco-triangle" => SmokeProgram::WcoTriangle,
                    other => {
                        fail(&format!("unknown --program {other:?} (hc-triangle | wco-triangle)"))
                    }
                };
                i += 2;
            }
            other => fail(&format!(
                "unknown argument {other:?} \
                 (usage: distributed_smoke [--program NAME] [--inject PLAN])"
            )),
        }
    }
    let reference = spawned_stage(program);
    if let Some(plan) = inject {
        fault_stage(program, &reference, plan);
    }
    service_stage();
    println!("distributed_smoke: all stages passed");
}
