//! The spawned worker daemon: one OS process per MPC server.
//!
//! Launched by the master (`mpc_net::run_spawned`) as
//! `mpc_workerd --master HOST:PORT --worker ID`; everything else — the
//! job spec, the peer table, the per-round barriers — arrives over the
//! control connection.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut master: Option<String> = None;
    let mut worker: Option<usize> = None;
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--master" => master = Some(args[i + 1].clone()),
            "--worker" => worker = args[i + 1].parse().ok(),
            other => {
                eprintln!("mpc_workerd: unknown argument {other:?}");
                exit(2);
            }
        }
        i += 2;
    }
    let (Some(master), Some(worker)) = (master, worker) else {
        eprintln!("usage: mpc_workerd --master HOST:PORT --worker ID");
        exit(2);
    };
    if let Err(e) = mpc_net::worker_main(&master, worker) {
        eprintln!("mpc_workerd[{worker}]: {e}");
        exit(1);
    }
}
