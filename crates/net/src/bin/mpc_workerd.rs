//! The spawned worker daemon: one OS process per MPC server.
//!
//! Launched by the master (`mpc_net::run_spawned`) as
//! `mpc_workerd --master HOST:PORT --worker ID [--fault SPEC]...`;
//! everything else — the job spec, the peer table, the per-round
//! barriers — arrives over the control connection.
//!
//! `--fault` arms one deterministic fault (see [`mpc_net::Fault`] for
//! the grammar, e.g. `kill:w2@round1` or `drop:w0@round2:1`); the flag
//! may repeat. Faults are only ever armed here, in the spawned daemon —
//! in-process transports and recovery replacements always run clean.

use std::process::exit;

use mpc_net::Fault;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut master: Option<String> = None;
    let mut worker: Option<usize> = None;
    let mut faults: Vec<Fault> = Vec::new();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--master" => master = Some(args[i + 1].clone()),
            "--worker" => worker = args[i + 1].parse().ok(),
            "--fault" => match args[i + 1].parse() {
                Ok(f) => faults.push(f),
                Err(e) => {
                    eprintln!("mpc_workerd: bad --fault {:?}: {e}", args[i + 1]);
                    exit(2);
                }
            },
            other => {
                eprintln!("mpc_workerd: unknown argument {other:?}");
                exit(2);
            }
        }
        i += 2;
    }
    let (Some(master), Some(worker)) = (master, worker) else {
        eprintln!("usage: mpc_workerd --master HOST:PORT --worker ID [--fault SPEC]...");
        exit(2);
    };
    mpc_net::fault::arm(&faults);
    if let Err(e) = mpc_net::worker_main(&master, worker) {
        eprintln!("mpc_workerd[{worker}]: {e}");
        exit(1);
    }
}
