//! A multi-query front-end over one shared cluster of reactor workers.
//!
//! [`QueryService`] accepts a stream of parsed conjunctive queries,
//! analyses each ([`mpc_core::analysis::QueryAnalysis`], cache-hot via
//! `mpc_lp`'s global LP cache), admits it against a per-server byte
//! budget, and executes many queries **concurrently** over the same `p`
//! reactor threads. Multiplexing rides on per-query namespaces in the
//! message tags: a block for query 17 whose program tag is `"hc"`
//! travels as `"17#hc"`, and the receiving reactor splits the prefix off
//! to find the right per-query protocol state. Tag bytes never enter the
//! volume accounting (a message costs `tuples × arity × 8`), so each
//! query's per-round statistics are identical to a dedicated
//! [`mpc_sim::Cluster::run`] of the same program — the multiplexing
//! differential the tests pin down.
//!
//! Per query the protocol is the event-driven one ([`crate::runner`]):
//! the front-end routes all input itself (preserving the logical input
//! server ids `p + ri`), so round 1 expects exactly one FIN per worker;
//! from round 2 on every worker routes and FINs, so a round completes
//! after `p` FINs. There is deliberately **no** cross-query barrier —
//! queries in different rounds interleave freely on the reactors.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpc_core::analysis::QueryAnalysis;
use mpc_core::multiround::executor::PlanProgram;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_cq::Query;
use mpc_lp::Rational;
use mpc_sim::queue::{Inbox, InboxReceiver, LinkSender, SendAttempt};
use mpc_sim::{
    build_round_stats, union_outputs, BlockAssembler, BlockPool, MpcConfig, MpcProgram, RoundStats,
    ServerState, TupleBlock,
};
use mpc_storage::{Database, Relation};

use crate::{NetError, Result};

/// How long a reactor parks on a full peer lane before draining its own
/// inbox and retrying.
const REACTOR_POLL: Duration = Duration::from_micros(200);

/// How long the front-end parks on a full worker lane.
const FRONTEND_POLL: Duration = Duration::from_micros(500);

/// Service shape and admission policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of shared reactor workers (the cluster's `p`).
    pub p: usize,
    /// The space exponent ε of the per-query budget formula.
    pub epsilon: f64,
    /// Per-link lane capacity of the reactor inboxes, in packets.
    pub queue_capacity: usize,
    /// Tuples per columnar block.
    pub block_capacity: usize,
    /// Admission capacity: the sum of admitted per-query budgets
    /// (`budget_bytes(N)` each) may not exceed this. A query larger than
    /// the whole capacity is admitted only when the service is idle.
    pub admission_capacity_bytes: u64,
    /// How many queries may wait in the deferral queue when the
    /// admission budget is exhausted. A submission past this depth is
    /// rejected outright ([`crate::NetError::Rejected`]) instead of
    /// queueing without bound.
    pub deferral_depth: usize,
}

impl ServiceConfig {
    /// A default-shaped service over `p` workers at space exponent ε.
    pub fn new(p: usize, epsilon: f64) -> Self {
        ServiceConfig {
            p,
            epsilon,
            queue_capacity: 64,
            block_capacity: 256,
            admission_capacity_bytes: 64 << 20,
            deferral_depth: 16,
        }
    }
}

/// One query submitted to the service.
pub struct QueryJob {
    /// The parsed conjunctive query.
    pub query: Query,
    /// Its input database (shared, never copied per worker).
    pub db: Arc<Database>,
    /// Routing seed.
    pub seed: u64,
    /// `Some(ε)` runs the multi-round `Γ^r_ε` plan executor; `None` runs
    /// one-round HyperCube.
    pub plan_epsilon: Option<Rational>,
}

/// What the service reports when a query finishes.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The service-assigned query id.
    pub qid: u64,
    /// The deduplicated output relation.
    pub output: Relation,
    /// Per-round statistics, identical to a dedicated run's.
    pub rounds: Vec<RoundStats>,
    /// Each server's pre-deduplication output contribution.
    pub per_server_output: Vec<usize>,
    /// Which LP solver path the analysis took (`"cache-hit"` when hot).
    pub analysis_path: String,
    /// Whether the analysis was served entirely from the LP cache.
    pub cache_hot: bool,
    /// Time spent in analysis + planning, before admission.
    pub planning_micros: u64,
    /// Submit-to-completion latency (includes admission queueing).
    pub latency_micros: u64,
    /// The admission cost charged while the query was in flight.
    pub admitted_cost: u64,
    /// How the admission gate treated the query at submit time
    /// (immediate admission or deferral).
    pub admission: Admission,
}

/// How a submission got past the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The query's budget fit the free capacity; it launched immediately.
    Admitted,
    /// The budget did not fit: the query joined the bounded deferral
    /// queue at this 0-based position and launches, in FIFO order, as
    /// running queries drain.
    Deferred {
        /// Queries ahead of this one in the deferral queue at submit
        /// time.
        position: usize,
    },
}

/// A successful [`QueryService::submit`]: the assigned query id plus how
/// the admission gate treated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// The service-assigned query id.
    pub qid: u64,
    /// Immediate admission or deferral.
    pub admission: Admission,
}

/// The admission gate: a counting budget over admitted query costs.
#[derive(Debug)]
struct AdmissionGate {
    inflight: Mutex<u64>,
    capacity: u64,
}

impl AdmissionGate {
    fn new(capacity: u64) -> Self {
        AdmissionGate { inflight: Mutex::new(0), capacity }
    }

    /// Charge `cost` if it fits (an oversized query is admitted alone);
    /// never blocks — a refusal sends the query to the deferral queue.
    fn try_admit(&self, cost: u64) -> bool {
        let mut inflight = self.inflight.lock().expect("admission mutex poisoned");
        if *inflight > 0 && *inflight + cost > self.capacity {
            return false;
        }
        *inflight += cost;
        true
    }

    fn release(&self, cost: u64) {
        let mut inflight = self.inflight.lock().expect("admission mutex poisoned");
        *inflight = inflight.saturating_sub(cost);
    }
}

/// A packet on the service fabric. Reactor lanes `0..p` carry peer
/// traffic; lane `p` is the front-end's.
enum SvcPacket {
    /// A query starts: create its per-worker protocol state.
    Start { qid: u64, program: Arc<dyn MpcProgram + Send + Sync>, domain_size: u64, rounds: usize },
    /// A columnar batch, tag-namespaced as `"qid#tag"`.
    Block(TupleBlock),
    /// The sender finished `round` of query `qid`.
    Fin { qid: u64, round: usize },
    /// Tear the reactor down.
    Shutdown,
}

/// Split a namespaced tag into the query id and the offset of the raw
/// program tag.
fn split_tag(tag: &str) -> Result<(u64, usize)> {
    let Some(hash) = tag.find('#') else {
        return Err(NetError::Protocol(format!("block tag {tag:?} has no query namespace")));
    };
    let qid = tag[..hash]
        .parse()
        .map_err(|_| NetError::Protocol(format!("bad query id in tag {tag:?}")))?;
    Ok((qid, hash + 1))
}

/// A pre-hashed stage of blocks for a round this worker has not reached
/// yet (tags already namespace-stripped).
#[derive(Default)]
struct Stage {
    rels: BTreeMap<String, Relation>,
    bytes: u64,
    tuples: u64,
}

impl Stage {
    fn absorb(&mut self, raw_tag: &str, block: &TupleBlock) {
        let rel = self
            .rels
            .entry(raw_tag.to_string())
            .or_insert_with(|| Relation::empty(raw_tag, block.arity()));
        for t in block.rows() {
            rel.insert(t).expect("blocks under one tag share an arity");
        }
        self.bytes += block.payload_bytes();
        self.tuples += block.len() as u64;
    }
}

/// One query's protocol state on one reactor.
struct QueryState {
    program: Arc<dyn MpcProgram + Send + Sync>,
    state: ServerState,
    round: usize,
    total_rounds: usize,
    fins: Vec<usize>,
    stash: Vec<Stage>,
}

/// One reactor's end-of-query report.
struct WorkerDone {
    server: usize,
    output: Relation,
    per_round_bytes: Vec<u64>,
    per_round_tuples: Vec<u64>,
}

/// Reactor/front-end → collector messages.
enum CollectorMsg {
    Meta(u64, QueryMeta),
    Done(u64, WorkerDone),
    Failed { qid: u64, server: usize, error: String },
    Fatal(String),
}

/// Everything the collector needs to assemble a query's outcome.
struct QueryMeta {
    program: Arc<dyn MpcProgram + Send + Sync>,
    input_bytes: u64,
    budget_bytes: u64,
    total_rounds: usize,
    started: Instant,
    planning_micros: u64,
    analysis_path: String,
    cache_hot: bool,
    admitted_cost: u64,
    admission: Admission,
}

/// A fully analysed and planned query waiting on the admission gate:
/// everything [`QueryService`] needs to launch it later, in FIFO order.
struct PreparedQuery {
    qid: u64,
    program: Arc<dyn MpcProgram + Send + Sync>,
    db: Arc<Database>,
    domain_size: u64,
    total_rounds: usize,
    cost: u64,
    meta: QueryMeta,
}

/// One of the `p` shared worker threads.
struct Reactor {
    id: usize,
    p: usize,
    rx: InboxReceiver<SvcPacket>,
    /// `peers[dest]` is this reactor's lane into `dest`'s inbox.
    peers: Vec<LinkSender<SvcPacket>>,
    queries: HashMap<u64, QueryState>,
    /// Packets that raced ahead of their query's `Start`.
    pending: HashMap<u64, Vec<SvcPacket>>,
    dirty: Vec<u64>,
    done_tx: mpsc::Sender<CollectorMsg>,
    pool: Arc<BlockPool>,
    block_capacity: usize,
    scratch: Vec<SvcPacket>,
}

impl Reactor {
    fn run(mut self) {
        let mut buf = Vec::new();
        loop {
            let n = self.rx.recv_many(&mut buf);
            if n == 0 {
                return;
            }
            for pkt in buf.drain(..) {
                if matches!(pkt, SvcPacket::Shutdown) {
                    return;
                }
                if let Err(e) = self.process(pkt) {
                    let _ =
                        self.done_tx.send(CollectorMsg::Fatal(format!("reactor {}: {e}", self.id)));
                    return;
                }
            }
            while let Some(qid) = self.dirty.pop() {
                if let Err(e) = self.advance(qid) {
                    let _ =
                        self.done_tx.send(CollectorMsg::Fatal(format!("reactor {}: {e}", self.id)));
                    return;
                }
            }
        }
    }

    /// Apply one packet to the per-query state. Only FINs (and the
    /// replays a `Start` triggers) can complete a round, so only they
    /// mark the query dirty.
    fn process(&mut self, pkt: SvcPacket) -> Result<()> {
        match pkt {
            SvcPacket::Start { qid, program, domain_size, rounds } => {
                let qs = QueryState {
                    program,
                    state: ServerState::new(self.id, domain_size),
                    round: 1,
                    total_rounds: rounds,
                    fins: vec![0; rounds],
                    stash: (0..rounds).map(|_| Stage::default()).collect(),
                };
                self.queries.insert(qid, qs);
                if let Some(raced) = self.pending.remove(&qid) {
                    for pkt in raced {
                        self.process(pkt)?;
                    }
                }
                Ok(())
            }
            SvcPacket::Block(block) => {
                let (qid, raw_at) = split_tag(&block.tag)?;
                match self.queries.get_mut(&qid) {
                    Some(qs) => absorb(qs, raw_at, block, &self.pool),
                    None => {
                        self.pending.entry(qid).or_default().push(SvcPacket::Block(block));
                        Ok(())
                    }
                }
            }
            SvcPacket::Fin { qid, round } => match self.queries.get_mut(&qid) {
                Some(qs) => {
                    if round == 0 || round > qs.total_rounds {
                        return Err(NetError::Protocol(format!(
                            "query {qid}: FIN for invalid round {round}"
                        )));
                    }
                    qs.fins[round - 1] += 1;
                    self.dirty.push(qid);
                    Ok(())
                }
                None => {
                    self.pending.entry(qid).or_default().push(SvcPacket::Fin { qid, round });
                    Ok(())
                }
            },
            SvcPacket::Shutdown => Err(NetError::Protocol("shutdown mid-advance".to_string())),
        }
    }

    /// Drive `qid` through as many rounds as its FIN counts allow.
    fn advance(&mut self, qid: u64) -> Result<()> {
        let Some(mut qs) = self.queries.remove(&qid) else { return Ok(()) };
        loop {
            let expected = if qs.round == 1 { 1 } else { self.p };
            if qs.fins[qs.round - 1] < expected {
                self.queries.insert(qid, qs);
                return Ok(());
            }
            // The round's deliveries are complete: unbounded local compute.
            let computed = match qs.program.compute(qs.round, self.id, &qs.state) {
                Ok(rels) => rels,
                Err(e) => return self.fail_query(qid, &e.to_string()),
            };
            for rel in computed {
                qs.state.add_local(rel);
            }
            if qs.round == qs.total_rounds {
                let output = match qs.program.output(self.id, &qs.state) {
                    Ok(rel) => rel,
                    Err(e) => return self.fail_query(qid, &e.to_string()),
                };
                let done = WorkerDone {
                    server: self.id,
                    output,
                    per_round_bytes: (1..=qs.total_rounds)
                        .map(|r| qs.state.bytes_received_in_round(r))
                        .collect(),
                    per_round_tuples: (1..=qs.total_rounds)
                        .map(|r| qs.state.tuples_received_in_round(r))
                        .collect(),
                };
                let _ = self.done_tx.send(CollectorMsg::Done(qid, done));
                return Ok(());
            }
            qs.round += 1;
            let round = qs.round;
            // Route from the pre-delivery state — the tuple-based model.
            let routed = match qs.program.route_tuples(round, self.id, &qs.state) {
                Ok(routed) => routed,
                Err(e) => return self.fail_query(qid, &e.to_string()),
            };
            let mut asm =
                BlockAssembler::new(Arc::clone(&self.pool), self.block_capacity, self.id, round);
            let mut ns_tags: HashMap<String, String> = HashMap::new();
            for msg in routed {
                let tag = ns_tags
                    .entry(msg.tag.clone())
                    .or_insert_with(|| format!("{qid}#{}", msg.tag))
                    .clone();
                for &dest in &msg.destinations {
                    if dest >= self.p {
                        return self.fail_query(
                            qid,
                            &format!("destination {dest} out of range for p = {}", self.p),
                        );
                    }
                    if let Some(block) = asm.push(dest, &tag, msg.tuple.values()) {
                        self.ship(qid, &mut qs, dest, block)?;
                    }
                }
            }
            for (dest, block) in asm.flush() {
                self.ship(qid, &mut qs, dest, block)?;
            }
            for dest in 0..self.p {
                if dest == self.id {
                    qs.fins[round - 1] += 1;
                } else {
                    self.ship_pkt(qid, &mut qs, dest, SvcPacket::Fin { qid, round })?;
                }
            }
            // Merge the pre-hashed stage for this round, charging its
            // volume exactly as a live delivery would have.
            let stage = std::mem::take(&mut qs.stash[round - 1]);
            for (_, rel) in stage.rels {
                qs.state.add_local(rel);
            }
            if stage.bytes > 0 || stage.tuples > 0 {
                qs.state.credit_received(round, stage.bytes, stage.tuples);
            }
        }
    }

    /// Report a per-query failure and drop its local state; the reactor
    /// itself keeps serving other queries.
    fn fail_query(&mut self, qid: u64, error: &str) -> Result<()> {
        let _ = self.done_tx.send(CollectorMsg::Failed {
            qid,
            server: self.id,
            error: error.to_string(),
        });
        Ok(())
    }

    /// Deliver a block of the in-flight query: locally when it is ours.
    fn ship(
        &mut self,
        qid: u64,
        qs: &mut QueryState,
        dest: usize,
        block: TupleBlock,
    ) -> Result<()> {
        if dest == self.id {
            let (bqid, raw_at) = split_tag(&block.tag)?;
            debug_assert_eq!(bqid, qid, "self-delivery of a foreign query's block");
            absorb(qs, raw_at, block, &self.pool)
        } else {
            self.ship_pkt(qid, qs, dest, SvcPacket::Block(block))
        }
    }

    /// Send to a peer, draining our own inbox whenever the lane is full —
    /// the deadlock-free send loop. Packets for the in-flight query are
    /// applied to `qs` directly; everything else goes through
    /// [`Reactor::process`].
    fn ship_pkt(
        &mut self,
        qid: u64,
        qs: &mut QueryState,
        dest: usize,
        mut pkt: SvcPacket,
    ) -> Result<()> {
        loop {
            match self.peers[dest].send_timeout(pkt, REACTOR_POLL) {
                SendAttempt::Sent => return Ok(()),
                SendAttempt::Full(back) => {
                    pkt = back;
                    let mut tmp = std::mem::take(&mut self.scratch);
                    self.rx.try_recv_many(&mut tmp);
                    let res = tmp.drain(..).try_for_each(|other| self.inflight(qid, qs, other));
                    self.scratch = tmp;
                    res?;
                }
                SendAttempt::Closed(_) => {
                    return Err(NetError::Protocol(format!(
                        "reactor {}: lane to {dest} closed mid-query",
                        self.id
                    )));
                }
            }
        }
    }

    /// Handle a packet drained mid-send, routing the in-flight query's
    /// own traffic straight into `qs`.
    fn inflight(&mut self, qid: u64, qs: &mut QueryState, pkt: SvcPacket) -> Result<()> {
        match pkt {
            SvcPacket::Block(block) => {
                let (bqid, raw_at) = split_tag(&block.tag)?;
                if bqid == qid {
                    absorb(qs, raw_at, block, &self.pool)
                } else {
                    self.process(SvcPacket::Block(block))
                }
            }
            SvcPacket::Fin { qid: fqid, round } if fqid == qid => {
                if round == 0 || round > qs.total_rounds {
                    return Err(NetError::Protocol(format!(
                        "query {qid}: FIN for invalid round {round}"
                    )));
                }
                qs.fins[round - 1] += 1;
                Ok(())
            }
            SvcPacket::Shutdown => {
                Err(NetError::Protocol("service shut down mid-query".to_string()))
            }
            other => self.process(other),
        }
    }
}

/// Apply one block to a query's state: current round → live delivery,
/// future round → stash; the columns go back to the pool either way.
fn absorb(qs: &mut QueryState, raw_at: usize, block: TupleBlock, pool: &BlockPool) -> Result<()> {
    if block.round == qs.round {
        qs.state.receive_many(block.round, &block.tag[raw_at..], block.arity(), block.rows());
    } else if block.round > qs.round && block.round <= qs.total_rounds {
        let raw = block.tag[raw_at..].to_string();
        qs.stash[block.round - 1].absorb(&raw, &block);
    } else {
        return Err(NetError::Protocol(format!(
            "round-{} block arrived while the query is in round {}",
            block.round, qs.round
        )));
    }
    pool.give_back(block.into_columns());
    Ok(())
}

/// The collector: folds per-reactor reports into [`QueryOutcome`]s and
/// releases admission budget as queries drain.
fn collector_run(
    p: usize,
    rx: mpsc::Receiver<CollectorMsg>,
    tx: mpsc::Sender<Result<QueryOutcome>>,
    admission: Arc<AdmissionGate>,
) {
    let mut meta: HashMap<u64, QueryMeta> = HashMap::new();
    let mut parts: HashMap<u64, Vec<Option<WorkerDone>>> = HashMap::new();
    let mut failed: HashSet<u64> = HashSet::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            CollectorMsg::Meta(qid, m) => {
                meta.insert(qid, m);
            }
            CollectorMsg::Done(qid, done) => {
                if failed.contains(&qid) {
                    continue;
                }
                let entry = parts.entry(qid).or_insert_with(|| (0..p).map(|_| None).collect());
                let server = done.server;
                entry[server] = Some(done);
                if entry.iter().all(Option::is_some) {
                    let dones = parts.remove(&qid).expect("entry just checked");
                    let Some(m) = meta.remove(&qid) else {
                        let _ = tx.send(Err(NetError::Protocol(format!(
                            "query {qid} finished without metadata"
                        ))));
                        continue;
                    };
                    admission.release(m.admitted_cost);
                    let _ = tx.send(assemble_outcome(qid, m, dones));
                }
            }
            CollectorMsg::Failed { qid, server, error } => {
                if failed.insert(qid) {
                    parts.remove(&qid);
                    if let Some(m) = meta.remove(&qid) {
                        admission.release(m.admitted_cost);
                    }
                    let _ = tx.send(Err(NetError::Protocol(format!(
                        "query {qid} failed at server {server}: {error}"
                    ))));
                }
            }
            CollectorMsg::Fatal(msg) => {
                let _ = tx.send(Err(NetError::Protocol(msg)));
                return;
            }
        }
    }
}

fn assemble_outcome(
    qid: u64,
    m: QueryMeta,
    dones: Vec<Option<WorkerDone>>,
) -> Result<QueryOutcome> {
    let dones: Vec<WorkerDone> =
        dones.into_iter().map(|d| d.expect("all parts collected")).collect();
    let mut rounds = Vec::with_capacity(m.total_rounds);
    for round in 1..=m.total_rounds {
        let per_bytes: Vec<u64> =
            dones.iter().map(|d| d.per_round_bytes.get(round - 1).copied().unwrap_or(0)).collect();
        let per_tuples: Vec<u64> =
            dones.iter().map(|d| d.per_round_tuples.get(round - 1).copied().unwrap_or(0)).collect();
        rounds.push(build_round_stats(
            round,
            &per_bytes,
            &per_tuples,
            m.input_bytes,
            m.budget_bytes,
        ));
    }
    let (output, per_server_output) =
        union_outputs(m.program.as_ref(), dones.into_iter().map(|d| d.output).collect())
            .map_err(NetError::Sim)?;
    Ok(QueryOutcome {
        qid,
        output,
        rounds,
        per_server_output,
        analysis_path: m.analysis_path,
        cache_hot: m.cache_hot,
        planning_micros: m.planning_micros,
        latency_micros: m.started.elapsed().as_micros() as u64,
        admitted_cost: m.admitted_cost,
        admission: m.admission,
    })
}

/// The multi-query front-end. See the module docs for the execution
/// model; the intended life cycle is `start` → interleaved `submit` /
/// `next_outcome` → `shutdown`.
pub struct QueryService {
    config: MpcConfig,
    /// `frontend_lanes[w]` is the front-end's lane (index `p`) into
    /// worker `w`'s inbox.
    frontend_lanes: Vec<LinkSender<SvcPacket>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    collector: Option<std::thread::JoinHandle<()>>,
    collector_tx: Option<mpsc::Sender<CollectorMsg>>,
    outcome_rx: mpsc::Receiver<Result<QueryOutcome>>,
    admission: Arc<AdmissionGate>,
    /// Queries the gate could not admit yet, launched FIFO as capacity
    /// frees up (drained on every `submit` and `next_outcome`).
    deferred: VecDeque<PreparedQuery>,
    deferral_depth: usize,
    pool: Arc<BlockPool>,
    block_capacity: usize,
    next_qid: u64,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService").field("p", &self.config.p).finish_non_exhaustive()
    }
}

impl QueryService {
    /// Start the shared cluster: `p` reactor threads plus a collector.
    ///
    /// # Errors
    ///
    /// Fails on an invalid cluster shape.
    pub fn start(cfg: &ServiceConfig) -> Result<QueryService> {
        let config = MpcConfig::new(cfg.p, cfg.epsilon);
        // Validate the shape through the simulator's own constructor.
        mpc_sim::Cluster::new(config.clone()).map_err(NetError::Sim)?;
        let p = cfg.p;
        let pool = Arc::new(BlockPool::new());
        let (done_tx, done_rx) = mpsc::channel();
        let (outcome_tx, outcome_rx) = mpsc::channel();
        let admission = Arc::new(AdmissionGate::new(cfg.admission_capacity_bytes));
        let mut lane_senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            // Lanes 0..p are peers, lane p is the front-end.
            let (senders, rx) = Inbox::channel::<SvcPacket>(p + 1, cfg.queue_capacity);
            lane_senders.push(senders);
            receivers.push(rx);
        }
        let workers: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                let reactor = Reactor {
                    id,
                    p,
                    rx,
                    peers: (0..p).map(|dest| lane_senders[dest][id].clone()).collect(),
                    queries: HashMap::new(),
                    pending: HashMap::new(),
                    dirty: Vec::new(),
                    done_tx: done_tx.clone(),
                    pool: Arc::clone(&pool),
                    block_capacity: cfg.block_capacity,
                    scratch: Vec::new(),
                };
                std::thread::spawn(move || reactor.run())
            })
            .collect();
        let collector = {
            let admission = Arc::clone(&admission);
            std::thread::spawn(move || collector_run(p, done_rx, outcome_tx, admission))
        };
        let frontend_lanes = lane_senders.iter().map(|senders| senders[p].clone()).collect();
        Ok(QueryService {
            config,
            frontend_lanes,
            workers,
            collector: Some(collector),
            collector_tx: Some(done_tx),
            outcome_rx,
            admission,
            deferred: VecDeque::new(),
            deferral_depth: cfg.deferral_depth,
            pool,
            block_capacity: cfg.block_capacity,
            next_qid: 0,
        })
    }

    /// Analyse and launch one query; returns its id and how the
    /// admission gate treated it. When the admission budget is
    /// exhausted the call never blocks: the query joins a bounded FIFO
    /// deferral queue ([`Admission::Deferred`]) and launches as running
    /// queries drain. The call returns as soon as the query's input is
    /// fully injected (or deferred) — completion arrives via
    /// [`QueryService::next_outcome`], in completion order.
    ///
    /// # Errors
    ///
    /// Fails on analysis/planning errors, on a torn-down service, and
    /// with [`NetError::Rejected`] when the deferral queue is already
    /// [`ServiceConfig::deferral_depth`] deep.
    pub fn submit(&mut self, job: &QueryJob) -> Result<Submission> {
        self.drain_deferred()?;
        let mut prepared = self.prepare(job)?;
        let qid = prepared.qid;
        // FIFO fairness: a newcomer may not jump past queued queries
        // even when its own budget would fit right now.
        if self.deferred.is_empty() && self.admission.try_admit(prepared.cost) {
            self.launch(prepared)?;
            return Ok(Submission { qid, admission: Admission::Admitted });
        }
        if self.deferred.len() >= self.deferral_depth {
            return Err(NetError::Rejected(format!(
                "admission deferral queue is full ({} queries deep)",
                self.deferred.len()
            )));
        }
        let admission = Admission::Deferred { position: self.deferred.len() };
        prepared.meta.admission = admission;
        self.deferred.push_back(prepared);
        Ok(Submission { qid, admission })
    }

    /// Launch every deferred query whose budget now fits, oldest first.
    fn drain_deferred(&mut self) -> Result<()> {
        while let Some(front) = self.deferred.front() {
            if !self.admission.try_admit(front.cost) {
                return Ok(());
            }
            let prepared = self.deferred.pop_front().expect("front just checked");
            self.launch(prepared)?;
        }
        Ok(())
    }

    /// Analysis + planning: everything up to (but not including) the
    /// admission decision.
    fn prepare(&mut self, job: &QueryJob) -> Result<PreparedQuery> {
        let started = Instant::now();
        let analysis = QueryAnalysis::analyze(&job.query)
            .map_err(|e| NetError::Protocol(format!("analysis: {e}")))?;
        let p = self.config.p;
        let program: Arc<dyn MpcProgram + Send + Sync> = match job.plan_epsilon {
            Some(eps) => {
                let plan = MultiRoundPlan::build(&job.query, eps)
                    .map_err(|e| NetError::Protocol(format!("plan: {e}")))?;
                Arc::new(
                    PlanProgram::new(&plan, p, job.seed)
                        .map_err(|e| NetError::Protocol(format!("plan program: {e}")))?,
                )
            }
            None => Arc::new(
                mpc_core::hypercube::HyperCubeProgram::new(&job.query, p, job.seed)
                    .map_err(|e| NetError::Protocol(format!("hypercube: {e}")))?,
            ),
        };
        let total_rounds = program.num_rounds();
        if total_rounds == 0 {
            return Err(NetError::Protocol("program declares zero rounds".to_string()));
        }
        let planning_micros = started.elapsed().as_micros() as u64;
        let input_bytes = job.db.total_bytes();
        let budget_bytes = self.config.budget_bytes(input_bytes);
        let qid = self.next_qid;
        self.next_qid += 1;
        let meta = QueryMeta {
            program: Arc::clone(&program),
            input_bytes,
            budget_bytes,
            total_rounds,
            started,
            planning_micros,
            analysis_path: analysis.lp_solver_path.clone(),
            cache_hot: analysis.lp_solver_path == "cache-hit",
            admitted_cost: budget_bytes,
            admission: Admission::Admitted,
        };
        Ok(PreparedQuery {
            qid,
            program,
            db: Arc::clone(&job.db),
            domain_size: job.db.domain_size(),
            total_rounds,
            cost: budget_bytes,
            meta,
        })
    }

    /// Inject a prepared (and already admission-charged) query into the
    /// reactors: metadata to the collector, a `Start` to every worker,
    /// then the routed input and the round-1 FINs.
    fn launch(&mut self, prepared: PreparedQuery) -> Result<()> {
        let PreparedQuery { qid, program, db, domain_size, total_rounds, cost: _, meta } = prepared;
        let p = self.config.p;
        let send_meta = self
            .collector_tx
            .as_ref()
            .ok_or_else(|| NetError::Protocol("service is shut down".to_string()))?
            .send(CollectorMsg::Meta(qid, meta));
        if send_meta.is_err() {
            return Err(NetError::Protocol("service collector is gone".to_string()));
        }
        for w in 0..p {
            self.frontend_send(
                w,
                SvcPacket::Start {
                    qid,
                    program: Arc::clone(&program),
                    domain_size,
                    rounds: total_rounds,
                },
            )?;
        }
        // The front-end routes all input itself, preserving the logical
        // input server ids `p + ri` on the blocks.
        for (ri, rel) in db.relations().enumerate() {
            let routed = program.route_input(rel, p).map_err(NetError::Sim)?;
            let mut asm =
                BlockAssembler::new(Arc::clone(&self.pool), self.block_capacity, p + ri, 1);
            let mut ns_tags: HashMap<String, String> = HashMap::new();
            for msg in routed {
                let tag = ns_tags
                    .entry(msg.tag.clone())
                    .or_insert_with(|| format!("{qid}#{}", msg.tag))
                    .clone();
                for &dest in &msg.destinations {
                    if dest >= p {
                        return Err(NetError::Sim(mpc_sim::SimError::Program(format!(
                            "destination {dest} out of range for p = {p}"
                        ))));
                    }
                    if let Some(block) = asm.push(dest, &tag, msg.tuple.values()) {
                        self.frontend_send(dest, SvcPacket::Block(block))?;
                    }
                }
            }
            for (dest, block) in asm.flush() {
                self.frontend_send(dest, SvcPacket::Block(block))?;
            }
        }
        for w in 0..p {
            self.frontend_send(w, SvcPacket::Fin { qid, round: 1 })?;
        }
        Ok(())
    }

    /// Block until the next query (in completion order) finishes. The
    /// freed budget immediately launches any deferred queries that now
    /// fit.
    ///
    /// # Errors
    ///
    /// Returns the query's own failure when one failed, or a service
    /// error when the cluster died.
    pub fn next_outcome(&mut self) -> Result<QueryOutcome> {
        let outcome = match self.outcome_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(NetError::Protocol("service stopped".to_string())),
        };
        // The collector released the finished query's budget before
        // reporting it, so deferred queries can launch right away.
        self.drain_deferred()?;
        outcome
    }

    /// Tear the shared cluster down. In-flight queries are dropped;
    /// drain outcomes first.
    ///
    /// # Errors
    ///
    /// Fails when a reactor panicked.
    pub fn shutdown(mut self) -> Result<()> {
        for lane in &self.frontend_lanes {
            let _ = lane.force_send(SvcPacket::Shutdown);
        }
        let mut panicked = false;
        for h in self.workers.drain(..) {
            panicked |= h.join().is_err();
        }
        drop(self.collector_tx.take());
        if let Some(h) = self.collector.take() {
            panicked |= h.join().is_err();
        }
        if panicked {
            return Err(NetError::Protocol("a service thread panicked".to_string()));
        }
        Ok(())
    }

    /// Blocking send on a front-end lane.
    fn frontend_send(&self, worker: usize, mut pkt: SvcPacket) -> Result<()> {
        loop {
            match self.frontend_lanes[worker].send_timeout(pkt, FRONTEND_POLL) {
                SendAttempt::Sent => return Ok(()),
                SendAttempt::Full(back) => pkt = back,
                SendAttempt::Closed(_) => {
                    return Err(NetError::Protocol(format!("service worker {worker} is gone")));
                }
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Best-effort: wake the reactors so their threads exit even when
        // `shutdown` was never called. The handles are detached.
        for lane in &self.frontend_lanes {
            let _ = lane.force_send(SvcPacket::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_sim::Cluster;

    #[test]
    fn service_matches_a_dedicated_cluster_run() {
        let q = families::triangle();
        let db = Arc::new(matching_database(&q, 600, 7));
        let p = 4;
        let reference = {
            let cluster = Cluster::new(MpcConfig::new(p, 0.5)).unwrap();
            let program = mpc_core::hypercube::HyperCubeProgram::new(&q, p, 99).unwrap();
            cluster.run(&program, &db).unwrap()
        };
        let mut svc = QueryService::start(&ServiceConfig::new(p, 0.5)).unwrap();
        let sub = svc
            .submit(&QueryJob {
                query: q.clone(),
                db: Arc::clone(&db),
                seed: 99,
                plan_epsilon: None,
            })
            .unwrap();
        assert_eq!(sub.admission, Admission::Admitted);
        let outcome = svc.next_outcome().unwrap();
        assert_eq!(outcome.qid, sub.qid);
        assert!(outcome.output.same_tuples(&reference.output), "same output as Cluster::run");
        assert_eq!(outcome.rounds, reference.rounds, "identical per-round statistics");
        assert_eq!(outcome.per_server_output, reference.per_server_output);
        svc.shutdown().unwrap();
    }

    #[test]
    fn interleaved_queries_do_not_cross_namespaces() {
        let q1 = families::triangle();
        let q2 = families::cycle(4);
        let db1 = Arc::new(matching_database(&q1, 500, 3));
        let db2 = Arc::new(matching_database(&q2, 400, 4));
        let p = 3;
        let mut svc = QueryService::start(&ServiceConfig::new(p, 0.0)).unwrap();
        let a = svc
            .submit(&QueryJob { query: q1.clone(), db: db1.clone(), seed: 1, plan_epsilon: None })
            .unwrap()
            .qid;
        let b = svc
            .submit(&QueryJob { query: q2.clone(), db: db2.clone(), seed: 2, plan_epsilon: None })
            .unwrap()
            .qid;
        let mut outcomes = [svc.next_outcome().unwrap(), svc.next_outcome().unwrap()];
        outcomes.sort_by_key(|o| o.qid);
        for (qid, q, db, seed) in [(a, q1, db1, 1), (b, q2, db2, 2)] {
            let cluster = Cluster::new(MpcConfig::new(p, 0.0)).unwrap();
            let program = mpc_core::hypercube::HyperCubeProgram::new(&q, p, seed).unwrap();
            let reference = cluster.run(&program, &db).unwrap();
            let outcome = &outcomes[qid as usize];
            assert!(outcome.output.same_tuples(&reference.output), "query {qid} output");
            assert_eq!(outcome.rounds, reference.rounds, "query {qid} stats");
        }
        svc.shutdown().unwrap();
    }

    #[test]
    fn exhausted_budget_defers_then_launches_in_fifo_order() {
        let q = families::triangle();
        // Big enough that the first query is still in flight when the
        // later ones are submitted (their analyses are cache-hot).
        let db = Arc::new(matching_database(&q, 3000, 11));
        let p = 3;
        // Capacity 1: the first (oversized) query is admitted alone,
        // everything submitted while it runs defers.
        let cfg = ServiceConfig { admission_capacity_bytes: 1, ..ServiceConfig::new(p, 0.5) };
        let mut svc = QueryService::start(&cfg).unwrap();
        let job =
            |seed| QueryJob { query: q.clone(), db: Arc::clone(&db), seed, plan_epsilon: None };
        let first = svc.submit(&job(1)).unwrap();
        assert_eq!(first.admission, Admission::Admitted);
        let second = svc.submit(&job(2)).unwrap();
        let third = svc.submit(&job(3)).unwrap();
        assert_eq!(second.admission, Admission::Deferred { position: 0 });
        assert_eq!(third.admission, Admission::Deferred { position: 1 });
        for (expect_qid, expect_admission) in [
            (first.qid, Admission::Admitted),
            (second.qid, Admission::Deferred { position: 0 }),
            (third.qid, Admission::Deferred { position: 1 }),
        ] {
            let outcome = svc.next_outcome().unwrap();
            assert_eq!(outcome.qid, expect_qid, "queries drain in FIFO order");
            assert_eq!(outcome.admission, expect_admission, "outcome records the admission");
        }
        svc.shutdown().unwrap();
    }

    #[test]
    fn full_deferral_queue_rejects_instead_of_blocking() {
        let q = families::triangle();
        let db = Arc::new(matching_database(&q, 3000, 13));
        let cfg = ServiceConfig {
            admission_capacity_bytes: 1,
            deferral_depth: 0,
            ..ServiceConfig::new(3, 0.5)
        };
        let mut svc = QueryService::start(&cfg).unwrap();
        let job =
            |seed| QueryJob { query: q.clone(), db: Arc::clone(&db), seed, plan_epsilon: None };
        let first = svc.submit(&job(1)).unwrap();
        assert_eq!(first.admission, Admission::Admitted);
        let refused = svc.submit(&job(2));
        assert!(
            matches!(refused, Err(NetError::Rejected(_))),
            "zero-depth deferral queue rejects outright, got {refused:?}"
        );
        // Draining the running query frees the budget again.
        let outcome = svc.next_outcome().unwrap();
        assert_eq!(outcome.qid, first.qid);
        let retried = svc.submit(&job(2)).unwrap();
        assert_eq!(retried.admission, Admission::Admitted);
        svc.next_outcome().unwrap();
        svc.shutdown().unwrap();
    }
}
