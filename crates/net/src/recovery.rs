//! Recovery policy for the spawned-process master.
//!
//! The MPC protocol is round-synchronous: every round ends at a global
//! `Ready`/`Proceed` barrier, which makes the barrier the natural
//! checkpoint cut. With recovery enabled the master keeps each worker's
//! latest [`Frame::Checkpoint`](crate::Frame::Checkpoint), and when its
//! liveness poll finds a worker process dead it re-spawns the worker from
//! the same [`JobSpec`](crate::JobSpec), restores it from that
//! checkpoint, and has the surviving peers retransmit the in-flight
//! round from their bounded replay logs — the query never restarts.
//! [`RecoveryPolicy`] caps how hard the master tries before falling back
//! to the fail-fast abort.

use std::time::Duration;

use crate::fault::FaultPlan;

/// How the master responds to a dead worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// How many re-spawns the whole job may consume. `0` (the default)
    /// disables recovery: the first dead worker aborts the job.
    pub max_respawns: usize,
    /// Base pause before a re-spawn; doubles per respawn already used.
    pub backoff: Duration,
    /// Checkpoint every k rounds (clamped to at least 1). Workers retain
    /// replay logs for `checkpoint_every + 1` rounds, so larger k trades
    /// memory for fewer snapshots.
    pub checkpoint_every: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_respawns: 0, backoff: Duration::from_millis(50), checkpoint_every: 1 }
    }
}

impl RecoveryPolicy {
    /// A policy allowing `max_respawns` re-spawns with default pacing.
    pub fn with_respawns(max_respawns: usize) -> Self {
        RecoveryPolicy { max_respawns, ..RecoveryPolicy::default() }
    }

    /// Does this policy recover at all?
    pub fn enabled(&self) -> bool {
        self.max_respawns > 0
    }

    /// The pause before re-spawn number `attempt` (0-based): capped
    /// exponential backoff on [`RecoveryPolicy::backoff`].
    pub fn pause_before(&self, attempt: usize) -> Duration {
        let factor = 1u32 << attempt.min(5) as u32;
        (self.backoff * factor).min(Duration::from_secs(2))
    }
}

/// Everything configurable about a spawned-process run beyond the
/// [`JobSpec`](crate::JobSpec) itself.
#[derive(Debug, Clone, Default)]
pub struct MasterConfig {
    /// Crash-recovery policy (default: fail fast, no recovery).
    pub recovery: RecoveryPolicy,
    /// Deterministic faults to inject into the spawned workers (passed
    /// as `--fault` arguments; `None` runs clean).
    pub faults: Option<FaultPlan>,
}

/// The recovery-relevant settings a worker learns from the job wire
/// form — appended by the master as extra `key=value` lines, which old
/// parsers ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySettings {
    /// Whether the master may re-spawn workers (so peers must keep
    /// replay logs and tolerate silent peer disconnects).
    pub enabled: bool,
    /// Checkpoint cadence in rounds (≥ 1).
    pub checkpoint_every: usize,
}

impl Default for RecoverySettings {
    fn default() -> Self {
        RecoverySettings { enabled: false, checkpoint_every: 1 }
    }
}

impl RecoverySettings {
    /// The settings a master running `policy` wants its workers to use.
    pub fn from_policy(policy: &RecoveryPolicy) -> Self {
        RecoverySettings {
            enabled: policy.enabled(),
            checkpoint_every: policy.checkpoint_every.max(1),
        }
    }

    /// Extra `key=value` lines appended to the job wire form.
    pub fn wire_lines(&self) -> String {
        format!("recovery={}\ncheckpoint_every={}\n", u8::from(self.enabled), self.checkpoint_every)
    }

    /// Recover the settings from a job wire form; absent keys mean the
    /// defaults (a pre-recovery master).
    pub fn from_wire(wire: &str) -> Self {
        let mut out = RecoverySettings::default();
        for line in wire.lines() {
            match line.split_once('=') {
                Some(("recovery", v)) => out.enabled = v.trim() == "1",
                Some(("checkpoint_every", v)) => {
                    out.checkpoint_every = v.trim().parse().unwrap_or(1).max(1);
                }
                _ => {}
            }
        }
        out
    }

    /// How many rounds of outbound frames a worker must retain for
    /// replay: everything after the previous checkpoint plus the round
    /// in flight.
    pub fn replay_rounds(&self) -> usize {
        self.checkpoint_every + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_fail_fast() {
        let p = RecoveryPolicy::default();
        assert!(!p.enabled());
        assert!(RecoveryPolicy::with_respawns(2).enabled());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RecoveryPolicy { backoff: Duration::from_millis(40), ..Default::default() };
        assert_eq!(p.pause_before(0), Duration::from_millis(40));
        assert_eq!(p.pause_before(1), Duration::from_millis(80));
        assert_eq!(p.pause_before(2), Duration::from_millis(160));
        assert_eq!(p.pause_before(60), Duration::from_millis(1280), "exponent capped, no overflow");
        let slow = RecoveryPolicy { backoff: Duration::from_millis(200), ..Default::default() };
        assert_eq!(slow.pause_before(60), Duration::from_secs(2), "pause capped at 2s");
    }

    #[test]
    fn settings_ride_the_job_wire_form() {
        let s = RecoverySettings { enabled: true, checkpoint_every: 3 };
        let wire = format!("program=hypercube\nquery=q() :- R(a)\n{}", s.wire_lines());
        assert_eq!(RecoverySettings::from_wire(&wire), s);
        assert_eq!(s.replay_rounds(), 4);
        // A wire form without the keys (older master) means fail-fast.
        assert_eq!(RecoverySettings::from_wire("program=hypercube\n"), RecoverySettings::default());
    }
}
