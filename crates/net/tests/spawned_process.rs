//! End-to-end test of the spawned-process mode: real `mpc_workerd` OS
//! processes over localhost, coordinated by the in-test master, checked
//! against the synchronous reference.

use std::path::Path;

use mpc_lp::Rational;
use mpc_net::spec::{DbSpec, ProgramSpec};
use mpc_net::JobSpec;

fn worker_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mpc_workerd"))
}

fn assert_spawned_matches_reference(label: &str, job: &JobSpec) {
    let built = job.build().expect("job builds");
    let reference =
        built.cluster.run(built.program.as_ref(), &built.db).expect("reference run succeeds");
    let got = mpc_net::run_spawned(job, worker_bin())
        .unwrap_or_else(|e| panic!("{label}: spawned run failed: {e}"));
    assert!(
        got.output.same_tuples(&reference.output),
        "{label}: output differs ({} vs {} tuples)",
        got.output.len(),
        reference.output.len()
    );
    assert_eq!(got.rounds, reference.rounds, "{label}: per-round statistics differ");
    assert_eq!(got.per_server_output, reference.per_server_output, "{label}");
    assert_eq!(got.input_bytes, reference.input_bytes, "{label}");
}

#[test]
fn spawned_hypercube_matches_reference() {
    let job = JobSpec {
        program: ProgramSpec::HyperCube,
        query: mpc_cq::families::triangle().to_string(),
        db: DbSpec::Matching { n: 600, seed: 3 },
        p: 4,
        epsilon: 0.5,
        seed: 11,
        queue_capacity: 64,
        block_capacity: 128,
    };
    assert_spawned_matches_reference("spawned HC triangle p=4", &job);
}

#[test]
fn spawned_multiround_matches_reference() {
    let job = JobSpec {
        program: ProgramSpec::MultiRound { plan_epsilon: Rational::ZERO },
        query: mpc_cq::families::chain(4).to_string(),
        db: DbSpec::Matching { n: 300, seed: 5 },
        p: 3,
        epsilon: 0.0,
        seed: 7,
        queue_capacity: 32,
        block_capacity: 64,
    };
    assert_spawned_matches_reference("spawned plan L4 p=3", &job);
}

#[test]
fn dead_worker_fails_the_job_fast_not_forever() {
    // Point the master at a "worker binary" that exits immediately: the
    // handshake can never complete, and the accept deadline (not an
    // infinite hang) must surface an error. `true` exists on any CI
    // image; a missing binary also errors, which is equally acceptable.
    let job = JobSpec {
        program: ProgramSpec::HyperCube,
        query: mpc_cq::families::triangle().to_string(),
        db: DbSpec::Matching { n: 100, seed: 1 },
        p: 2,
        epsilon: 0.5,
        seed: 1,
        queue_capacity: 8,
        block_capacity: 16,
    };
    let err = mpc_net::run_spawned(&job, Path::new("/usr/bin/true"))
        .or_else(|_| mpc_net::run_spawned(&job, Path::new("/bin/true")))
        .expect_err("a worker that never dials in must fail the job");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "the failure carries a reason");
}
