//! The multi-query service under real concurrency: many queries in
//! flight over one shared cluster, every outcome identical to a
//! dedicated [`Cluster::run`], and the LP cache serving repeated
//! templates hot.

use std::sync::Arc;

use mpc_core::hypercube::HyperCubeProgram;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_net::{QueryJob, QueryService, ServiceConfig};
use mpc_sim::{Cluster, MpcConfig};
use mpc_storage::Database;

/// Six queries (four templates, two repeated) submitted before any
/// outcome is drained: at least four genuinely concurrent executions
/// multiplexed over `p = 4` shared reactors.
#[test]
fn six_concurrent_queries_multiplex_without_interference() {
    let p = 4;
    let jobs: Vec<(mpc_cq::Query, u64, u64)> = vec![
        (families::triangle(), 500, 1),
        (families::cycle(4), 400, 2),
        (families::star(3), 350, 3),
        (families::chain(3), 450, 4),
        (families::triangle(), 500, 5),
        (families::cycle(4), 400, 6),
    ];
    let dbs: Vec<Arc<Database>> =
        jobs.iter().map(|(q, n, seed)| Arc::new(matching_database(q, *n, *seed))).collect();

    let mut svc = QueryService::start(&ServiceConfig::new(p, 0.5)).unwrap();
    let mut qids = Vec::new();
    for ((q, _, seed), db) in jobs.iter().zip(&dbs) {
        let sub = svc
            .submit(&QueryJob {
                query: q.clone(),
                db: Arc::clone(db),
                seed: *seed,
                plan_epsilon: None,
            })
            .unwrap();
        qids.push(sub.qid);
    }
    assert_eq!(qids.len(), 6, "all six admitted while none had completed");

    let mut outcomes = Vec::new();
    for _ in 0..jobs.len() {
        outcomes.push(svc.next_outcome().unwrap());
    }
    svc.shutdown().unwrap();
    outcomes.sort_by_key(|o| o.qid);

    for (i, ((q, _, seed), db)) in jobs.iter().zip(&dbs).enumerate() {
        let cluster = Cluster::new(MpcConfig::new(p, 0.5)).unwrap();
        let program = HyperCubeProgram::new(q, p, *seed).unwrap();
        let reference = cluster.run(&program, db).unwrap();
        let outcome = &outcomes[i];
        assert_eq!(outcome.qid, qids[i]);
        assert!(
            outcome.output.same_tuples(&reference.output),
            "query {i} ({}): output differs from a dedicated run",
            q.name()
        );
        assert_eq!(outcome.rounds, reference.rounds, "query {i}: per-round statistics differ");
        assert_eq!(outcome.per_server_output, reference.per_server_output, "query {i}");
        assert!(outcome.latency_micros >= outcome.planning_micros.min(outcome.latency_micros));
        assert!(outcome.admitted_cost > 0, "admission charged a real cost");
    }
}

/// Repeated templates hit the LP cache: the first submission of a shape
/// may solve an LP (the witness query has no closed form, so it goes
/// through the simplex and lands in the cache), later ones must come
/// back `cache-hit`.
#[test]
fn repeated_templates_are_cache_hot() {
    let p = 2;
    let q = families::witness_query();
    let db = Arc::new(matching_database(&q, 200, 9));
    let mut svc = QueryService::start(&ServiceConfig::new(p, 0.5)).unwrap();
    let mut paths = Vec::new();
    for seed in 0..3 {
        svc.submit(&QueryJob { query: q.clone(), db: Arc::clone(&db), seed, plan_epsilon: None })
            .unwrap();
        let outcome = svc.next_outcome().unwrap();
        paths.push((outcome.analysis_path.clone(), outcome.cache_hot));
    }
    svc.shutdown().unwrap();
    // The global cache may already be warm from other tests in this
    // process; what must hold is that repeats never get colder.
    assert_eq!(paths[1].0, "cache-hit", "second submission served from the LP cache: {paths:?}");
    assert_eq!(paths[2].0, "cache-hit", "third submission served from the LP cache: {paths:?}");
    assert!(paths[1].1 && paths[2].1, "repeats are flagged cache-hot: {paths:?}");
}

/// A multi-round plan and a one-round query interleaved on the same
/// reactors: round namespaces keep the FIN accounting per query.
#[test]
fn mixed_round_counts_interleave_cleanly() {
    let p = 3;
    let mr_q = families::chain(4);
    let hc_q = families::triangle();
    let mr_db = Arc::new(matching_database(&mr_q, 300, 21));
    let hc_db = Arc::new(matching_database(&hc_q, 300, 22));

    let mut svc = QueryService::start(&ServiceConfig::new(p, 0.0)).unwrap();
    let a = svc
        .submit(&QueryJob {
            query: mr_q.clone(),
            db: Arc::clone(&mr_db),
            seed: 1,
            plan_epsilon: Some(mpc_lp::Rational::ZERO),
        })
        .unwrap()
        .qid;
    let b = svc
        .submit(&QueryJob {
            query: hc_q.clone(),
            db: Arc::clone(&hc_db),
            seed: 2,
            plan_epsilon: None,
        })
        .unwrap()
        .qid;
    let mut outcomes = [svc.next_outcome().unwrap(), svc.next_outcome().unwrap()];
    svc.shutdown().unwrap();
    outcomes.sort_by_key(|o| o.qid);

    let cluster = Cluster::new(MpcConfig::new(p, 0.0)).unwrap();
    let plan = mpc_core::multiround::planner::MultiRoundPlan::build(&mr_q, mpc_lp::Rational::ZERO)
        .unwrap();
    let mr_prog = mpc_core::multiround::executor::PlanProgram::new(&plan, p, 1).unwrap();
    let mr_ref = cluster.run(&mr_prog, &mr_db).unwrap();
    assert!(mr_ref.rounds.len() > 1, "the chain plan is genuinely multi-round");
    let hc_prog = HyperCubeProgram::new(&hc_q, p, 2).unwrap();
    let hc_ref = cluster.run(&hc_prog, &hc_db).unwrap();

    assert!(outcomes[a as usize].output.same_tuples(&mr_ref.output), "multi-round output");
    assert_eq!(outcomes[a as usize].rounds, mr_ref.rounds, "multi-round stats");
    assert!(outcomes[b as usize].output.same_tuples(&hc_ref.output), "one-round output");
    assert_eq!(outcomes[b as usize].rounds, hc_ref.rounds, "one-round stats");
}
