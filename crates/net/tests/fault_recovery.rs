//! Fault-injection recovery tests: real `mpc_workerd` processes killed
//! at every lifecycle phase by a deterministic [`FaultPlan`], with the
//! master's [`RecoveryPolicy`] either re-spawning them (the run must
//! finish **byte-identical** to the undisturbed reference) or failing
//! fast (the abort must surface within the liveness deadline, never
//! hang).

use std::path::Path;
use std::time::{Duration, Instant};

use mpc_lp::Rational;
use mpc_net::spec::{DbSpec, ProgramSpec};
use mpc_net::{FaultPlan, JobSpec, MasterConfig, RecoveryPolicy};
use mpc_sim::RunResult;

fn worker_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mpc_workerd"))
}

/// One-round HyperCube job: phases reachable are handshake, round1,
/// barrier1 and summary.
fn hypercube_job() -> JobSpec {
    JobSpec {
        program: ProgramSpec::HyperCube,
        query: mpc_cq::families::triangle().to_string(),
        db: DbSpec::Matching { n: 400, seed: 11 },
        p: 4,
        epsilon: 0.5,
        seed: 11,
        queue_capacity: 64,
        block_capacity: 128,
    }
}

/// Multi-round chain plan: kills at round ≥ 2 exercise restore from a
/// mid-plan checkpoint plus replay of the in-flight round.
fn multiround_job() -> JobSpec {
    JobSpec {
        program: ProgramSpec::MultiRound { plan_epsilon: Rational::ZERO },
        query: mpc_cq::families::chain(4).to_string(),
        db: DbSpec::Matching { n: 240, seed: 5 },
        p: 3,
        epsilon: 0.0,
        seed: 7,
        queue_capacity: 32,
        block_capacity: 64,
    }
}

/// The undisturbed semantic truth: the synchronous reference run.
fn reference_run(job: &JobSpec) -> RunResult {
    let built = job.build().expect("job builds");
    built.cluster.run(built.program.as_ref(), &built.db).expect("reference run succeeds")
}

fn assert_identical(label: &str, got: &RunResult, reference: &RunResult) {
    assert!(
        got.output.same_tuples(&reference.output),
        "{label}: output differs ({} vs {} tuples)",
        got.output.len(),
        reference.output.len()
    );
    assert_eq!(got.rounds, reference.rounds, "{label}: per-round statistics differ");
    assert_eq!(got.per_server_output, reference.per_server_output, "{label}: placement differs");
    assert_eq!(got.input_bytes, reference.input_bytes, "{label}: input accounting differs");
}

/// Run `job` under `plan` with recovery enabled; the result must be
/// byte-identical to `reference` and at least one re-spawn must have
/// actually happened (otherwise the fault never fired and the test
/// would pass vacuously). Returns the re-spawn count.
fn assert_recovers(label: &str, job: &JobSpec, reference: &RunResult, plan: &str) -> usize {
    let cfg = MasterConfig {
        recovery: RecoveryPolicy::with_respawns(2),
        faults: Some(FaultPlan::parse(plan).expect("valid fault plan")),
    };
    let report = mpc_net::run_spawned_with(job, worker_bin(), &cfg)
        .unwrap_or_else(|e| panic!("{label} under {plan}: recovery failed: {e}"));
    assert_identical(label, &report.result, reference);
    assert!(report.respawns >= 1, "{label} under {plan}: the kill never fired");
    report.respawns
}

/// With recovery disabled, a killed worker must abort the job with a
/// real error — quickly, not after some multi-minute socket timeout.
fn assert_fails_fast(label: &str, job: &JobSpec, plan: &str) {
    let cfg = MasterConfig {
        recovery: RecoveryPolicy::default(),
        faults: Some(FaultPlan::parse(plan).expect("valid fault plan")),
    };
    let start = Instant::now();
    let err = mpc_net::run_spawned_with(job, worker_bin(), &cfg)
        .expect_err("a killed worker without recovery must fail the job");
    let elapsed = start.elapsed();
    assert!(!err.to_string().is_empty(), "{label}: the abort carries a reason");
    assert!(
        elapsed < Duration::from_secs(25),
        "{label} under {plan}: abort took {elapsed:?}, the liveness poll never noticed"
    );
}

#[test]
fn kill_at_each_phase_recovers_byte_identically() {
    let job = hypercube_job();
    let reference = reference_run(&job);
    for plan in ["kill:w2@handshake", "kill:w2@round1", "kill:w1@barrier1", "kill:w3@summary"] {
        assert_recovers("HC triangle p=4", &job, &reference, plan);
    }
}

#[test]
fn midplan_kill_restores_checkpoint_and_replays() {
    let job = multiround_job();
    let reference = reference_run(&job);
    let rounds = reference.rounds.len();
    assert!(rounds >= 2, "the chain plan must be genuinely multi-round (got {rounds})");
    // Killing at the start of the last round forces a restore from the
    // round `rounds - 1` checkpoint; killing at the last barrier forces
    // a restore of completed state plus replay of peers' final frames.
    assert_recovers("plan L4 p=3", &job, &reference, &format!("kill:w1@round{rounds}"));
    assert_recovers("plan L4 p=3", &job, &reference, &format!("kill:w0@barrier{rounds}"));
}

#[test]
fn sequential_kills_in_different_rounds_both_recover() {
    let job = multiround_job();
    let reference = reference_run(&job);
    assert!(reference.rounds.len() >= 2, "needs two data rounds");
    let respawns =
        assert_recovers("plan L4 p=3", &job, &reference, "kill:w1@round1,kill:w2@round2");
    assert_eq!(respawns, 2, "both kills fired and both workers were re-spawned");
}

#[test]
fn seeded_kill_campaign_is_replayable() {
    let job = hypercube_job();
    let reference = reference_run(&job);
    let plan = FaultPlan::seeded_kill(42, job.p, 1);
    assert_eq!(plan, FaultPlan::seeded_kill(42, job.p, 1), "same seed, same kill");
    assert_recovers("HC triangle p=4 (seeded)", &job, &reference, &plan.to_string());
}

#[test]
fn recovery_off_aborts_cleanly_not_forever() {
    let job = hypercube_job();
    assert_fails_fast("HC triangle p=4", &job, "kill:w2@round1");
}

#[test]
fn exhausted_respawn_budget_falls_back_to_abort() {
    // Two workers die in the same round; one re-spawn of budget cannot
    // cover the second death (and a lone replacement cannot even finish
    // its mesh rejoin against a dead peer), so the policy-exhausted
    // fallback must abort the job instead of retrying forever.
    let job = hypercube_job();
    let cfg = MasterConfig {
        recovery: RecoveryPolicy::with_respawns(1),
        faults: Some(FaultPlan::parse("kill:w1@round1,kill:w2@round1").expect("valid plan")),
    };
    let start = Instant::now();
    let err = mpc_net::run_spawned_with(&job, worker_bin(), &cfg)
        .expect_err("two deaths on a one-respawn budget must abort");
    assert!(!err.to_string().is_empty(), "the abort carries a reason");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "policy-exhausted abort must not hang (took {:?})",
        start.elapsed()
    );
}
