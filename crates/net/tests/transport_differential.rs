//! The PR's acceptance differential: for every program family the
//! workspace ships, the distributed runner must produce **identical
//! outputs and identical per-round communication volumes** to the
//! synchronous [`Cluster::run`] reference — over the in-process channel
//! transport *and* over real localhost TCP sockets. Swapping the fabric
//! can change schedules and packet boundaries, never semantics.

use mpc_core::hypercube::HyperCubeProgram;
use mpc_core::multiround::executor::PlanProgram;
use mpc_core::multiround::planner::MultiRoundPlan;
use mpc_cq::families;
use mpc_data::matching_database;
use mpc_data::skew::zipf_database;
use mpc_lp::Rational;
use mpc_net::{run_transport_differential, DistConfig, TransportKind};
use mpc_sim::{Cluster, MpcConfig, MpcProgram};
use mpc_skew::{HeavyHitterPolicy, SkewResilientProgram};
use mpc_storage::Database;

fn assert_transport_invariant<P: MpcProgram>(
    label: &str,
    program: &P,
    db: &Database,
    cfg: &MpcConfig,
    dist: &DistConfig,
) {
    let cluster = Cluster::new(cfg.clone()).expect("valid config");
    let diff = run_transport_differential(&cluster, program, db, dist)
        .unwrap_or_else(|e| panic!("{label}: differential run failed: {e}"));
    assert_eq!(diff.divergence(), None, "{label}: transports diverged");
}

#[test]
fn hypercube_triangle_is_transport_independent() {
    let q = families::triangle();
    let db = matching_database(&q, 800, 11);
    let program = HyperCubeProgram::new(&q, 8, 42).unwrap();
    let cfg = MpcConfig::new(8, 1.0 / 3.0);
    assert_transport_invariant("HC triangle", &program, &db, &cfg, &DistConfig::default());
}

#[test]
fn multi_round_plans_are_transport_independent() {
    for (q, n) in [(families::chain(4), 500u64), (families::cycle(6), 250)] {
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let program = PlanProgram::new(&plan, 6, 5).unwrap();
        let db = matching_database(&q, n, 3);
        let cfg = MpcConfig::new(6, 0.0);
        assert_transport_invariant(
            &format!("plan {}", q.name()),
            &program,
            &db,
            &cfg,
            &DistConfig::default(),
        );
    }
}

#[test]
fn skew_resilient_routing_is_transport_independent() {
    let q = families::chain(2);
    let db = zipf_database(&q, 1200, 1200, 1.2, 5);
    let program = SkewResilientProgram::new(&q, &db, 8, &HeavyHitterPolicy::default(), 42).unwrap();
    let cfg = MpcConfig::new(8, 0.0);
    assert_transport_invariant("skew zipf 1.2", &program, &db, &cfg, &DistConfig::default());
}

/// Packet boundaries must not matter: tiny blocks (many frames) and tight
/// queues stress the backpressure paths of both transports.
#[test]
fn block_and_queue_shapes_do_not_change_semantics() {
    let q = families::triangle();
    let db = matching_database(&q, 400, 7);
    let program = HyperCubeProgram::new(&q, 4, 9).unwrap();
    let cfg = MpcConfig::new(4, 1.0 / 3.0);
    for (block, queue) in [(1usize, 2usize), (7, 4), (512, 64)] {
        let dist = DistConfig {
            transport: TransportKind::InProcess,
            queue_capacity: queue,
            block_capacity: block,
        };
        assert_transport_invariant(
            &format!("HC block={block} queue={queue}"),
            &program,
            &db,
            &cfg,
            &dist,
        );
    }
}
