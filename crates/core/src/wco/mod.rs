//! Worst-case optimal multi-round algorithms (Beame, Koutris & Suciu,
//! "Worst-Case Optimal Algorithms for Parallel Query Processing",
//! arXiv:1604.01848).
//!
//! The one-round HyperCube is optimal over *skew-free* (matching-like)
//! databases, but on worst-case inputs a single round cannot do better
//! than load `Ω(n/p^{1/2})` on the triangle query, while the AGM bound
//! says `Õ(n/p^{1/ρ*}) = Õ(n/p^{2/3})` tuples per server are enough to
//! hold a `1/p` share of any output. The paper closes that gap with O(1)
//! extra rounds and a **heavy/light split**:
//!
//! * a value is *heavy* at variable `x` when its degree in some atom
//!   containing `x` exceeds `|R| / p_x` (the share threshold) — there are
//!   at most `ℓ · p_x` such values per variable, few enough to enumerate;
//! * answers whose variables are all light are produced by the ordinary
//!   **skew-free HyperCube** at the cover-based shares (for C₃ that is
//!   shares `p^{1/3}` and load `Õ(n/p^{2/3})`);
//! * answers with heavy configuration exactly `H ≠ ∅` are produced by a
//!   dedicated **broadcast-join round**: the few heavy values of each
//!   `x ∈ H` become *value-indexed* grid dimensions of a server group of
//!   their own, atoms missing a dimension are replicated across it (the
//!   broadcast), and the residual light variables are hashed with the
//!   residual query's own cover shares — one fractional edge-cover LP per
//!   residual subquery, served through the memoising cache of `mpc-lp`.
//!
//! Because a potential answer has exactly one heavy configuration, the
//! per-group outputs **partition** the join result: no duplicates, no
//! losses — the property the equivalence suite pins byte-for-byte against
//! the sequential join.
//!
//! * [`plan`] — [`WorstCaseOptimalPlan`]: degree statistics, heavy
//!   patterns, server-group carving and per-pattern share vectors.
//! * [`program`] — [`WcoProgram`]: the plan compiled to an
//!   [`mpc_sim::MpcProgram`] (round 1: light HyperCube + even staging;
//!   round 2: the broadcast-join for every active heavy pattern).
//! * [`load`] — [`WcoLoadPrediction`]: exact per-round expected loads
//!   (mirroring `MultiRoundPlan::predict_loads`), the AGM load target
//!   `n/p^{1/ρ*}`, and the verification hook against the multi-round
//!   lower bound of [`crate::multiround::lower_bound`].

pub mod load;
pub mod plan;
pub mod program;

pub use load::{PatternLoadPrediction, WcoLoadPrediction};
pub use plan::{HeavyValues, WcoPattern, WorstCaseOptimalPlan};
pub use program::WcoProgram;

use mpc_lp::Rational;
use serde::Serialize;

/// Which planner strategy [`crate::analysis::QueryAnalysis`] recommends
/// for a query under given data conditions — the "which planner when"
/// decision table of the strategy picker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlannerChoice {
    /// Skew-free and one-round computable at the target ε: the ordinary
    /// HyperCube ([`crate::hypercube::HyperCubeProgram`]).
    OneRoundHyperCube,
    /// One-round computable but skewed: the residual-plan program of
    /// `mpc-skew` (heavy subsets on disjoint groups, still one round).
    OneRoundSkewResilient,
    /// Tree-like but too deep for one round at the target ε: the greedy
    /// `Γ^r_ε` plan ([`crate::multiround::planner::MultiRoundPlan`]).
    MultiRound,
    /// Cyclic and skewed: the worst-case optimal heavy/light strategy of
    /// this module ([`WorstCaseOptimalPlan`]), load target `n/p^{1/ρ*}`.
    WorstCaseOptimal,
}

impl std::fmt::Display for PlannerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerChoice::OneRoundHyperCube => write!(f, "one-round-hypercube"),
            PlannerChoice::OneRoundSkewResilient => write!(f, "one-round-skew-resilient"),
            PlannerChoice::MultiRound => write!(f, "multi-round"),
            PlannerChoice::WorstCaseOptimal => write!(f, "worst-case-optimal"),
        }
    }
}

/// The effective space exponent of the worst-case optimal strategy:
/// its load target is `n/p^{1/ρ*}`, i.e. `ε = 1 − 1/ρ*`. This is the ε
/// at which the multi-round lower bound must be consulted.
///
/// # Errors
///
/// Propagates rational-arithmetic errors (`ρ* = 0` cannot occur for
/// well-formed queries).
pub fn effective_epsilon(rho_star: Rational) -> crate::Result<Rational> {
    Ok(Rational::ONE - rho_star.recip()?)
}
