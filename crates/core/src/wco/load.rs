//! Per-round load predictions for [`WorstCaseOptimalPlan`], mirroring
//! `MultiRoundPlan::predict_loads` — and the AGM / one-round load targets
//! the crossover experiment brackets runs against.
//!
//! Unlike the multi-round profile (which estimates view sizes over
//! matchings), the WCO prediction is computed from the **exact** tuple
//! masses the planning scan recorded: round 1 is the light HyperCube
//! delivery plus the even staging share, round 2 the largest per-cell
//! broadcast-join volume over the active heavy grids. The simulated max
//! exceeds the prediction only by hash imbalance.

use serde::Serialize;

use mpc_lp::Rational;
use mpc_sim::RunResult;

use crate::error::CoreError;
use crate::multiround::load::{RoundComparison, RoundLoadPrediction};
use crate::shares::fractional_power;
use crate::wco::plan::WorstCaseOptimalPlan;
use crate::Result;

/// Predicted communication of one pattern group.
#[derive(Debug, Clone, Serialize)]
pub struct PatternLoadPrediction {
    /// Comma-joined heavy variable names (empty for the light pattern).
    pub heavy_vars: String,
    /// Grid cells of the pattern.
    pub cells: usize,
    /// The round the pattern's grid is filled in (1 for the light
    /// HyperCube, 2 for heavy broadcast-joins).
    pub round: usize,
    /// Expected tuples delivered to one cell of this grid,
    /// `Σ_A mass_A · repl_A / cells`.
    pub expected_cell_tuples: f64,
}

/// The complete load profile of a worst-case optimal plan.
#[derive(Debug, Clone, Serialize)]
pub struct WcoLoadPrediction {
    /// Server count.
    pub p: usize,
    /// Largest base relation cardinality.
    pub n: u64,
    /// One prediction per round (1 or 2 entries).
    pub rounds: Vec<RoundLoadPrediction>,
    /// Per-pattern detail, light pattern first.
    pub patterns: Vec<PatternLoadPrediction>,
    /// The AGM-matching worst-case target `n / p^{1/ρ*}` this strategy
    /// aims for (triangle: `n / p^{2/3}`).
    pub agm_target: f64,
    /// The one-round HyperCube target `n / p^{1/τ*}` it is compared
    /// against (equal to the AGM target only when `τ* = ρ*`).
    pub one_round_target: f64,
}

impl WcoLoadPrediction {
    /// Predict the per-round per-server loads of `plan` from the exact
    /// tuple masses recorded at planning time.
    ///
    /// # Errors
    ///
    /// Propagates rational-arithmetic errors (degenerate `τ*`/`ρ*`
    /// cannot occur for well-formed queries).
    pub fn predict(plan: &WorstCaseOptimalPlan) -> Result<Self> {
        let p = plan.p();
        let n = plan.n();
        let query = plan.query();
        let mut patterns = Vec::with_capacity(plan.patterns().len());
        let mut round2_max = 0.0f64;
        for (pi, pat) in plan.patterns().iter().enumerate() {
            let cells = pat.cells().max(1) as f64;
            let expected: f64 = query
                .atoms()
                .iter()
                .zip(&pat.atom_tuples)
                .map(|(atom, m)| *m as f64 * pat.replication_of(atom) as f64 / cells)
                .sum();
            if pi > 0 {
                round2_max = round2_max.max(expected);
            }
            let names: Vec<&str> =
                pat.heavy_vars.iter().map(|v| query.var_names()[v.0].as_str()).collect();
            patterns.push(PatternLoadPrediction {
                heavy_vars: names.join(","),
                cells: pat.cells(),
                round: if pi == 0 { 1 } else { 2 },
                expected_cell_tuples: expected,
            });
        }
        // Round 1: the light grid delivery plus every server's even share
        // of the staging shuffle.
        let staging_share = plan.staged_tuples() as f64 / p as f64;
        let round1 = patterns[0].expected_cell_tuples + staging_share;
        let mut rounds = vec![RoundLoadPrediction { round: 1, predicted_tuples: round1 }];
        if plan.num_rounds() == 2 {
            rounds.push(RoundLoadPrediction { round: 2, predicted_tuples: round2_max });
        }
        Ok(WcoLoadPrediction {
            p,
            n,
            rounds,
            patterns,
            agm_target: load_target(n, p, plan.rho_star())?,
            one_round_target: load_target(n, p, plan.tau_star())?,
        })
    }

    /// The largest predicted per-round load.
    pub fn max_predicted_tuples(&self) -> f64 {
        self.rounds.iter().map(|r| r.predicted_tuples).fold(0.0, f64::max)
    }

    /// Compare the prediction with a simulated run, round by round (the
    /// same contract as `PlanLoadPrediction::compare`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when the run has a different
    /// round count than the plan.
    pub fn compare(&self, result: &RunResult) -> Result<Vec<RoundComparison>> {
        if result.num_rounds() != self.rounds.len() {
            return Err(CoreError::InvalidPlan(format!(
                "run has {} rounds but the prediction covers {}",
                result.num_rounds(),
                self.rounds.len()
            )));
        }
        Ok(self
            .rounds
            .iter()
            .zip(&result.rounds)
            .map(|(pred, stats)| RoundComparison {
                round: pred.round,
                predicted_tuples: pred.predicted_tuples,
                simulated_max_tuples: stats.max_tuples_received,
                ratio: if pred.predicted_tuples > 0.0 {
                    stats.max_tuples_received as f64 / pred.predicted_tuples
                } else {
                    1.0
                },
            })
            .collect())
    }
}

/// The load target `n / p^{1/e}` for a rational exponent `e` (`ρ*` gives
/// the AGM worst-case target, `τ*` the one-round HyperCube target).
///
/// # Errors
///
/// Propagates rational-arithmetic errors on `e = 0`.
pub fn load_target(n: u64, p: usize, e: Rational) -> Result<f64> {
    Ok(n as f64 / fractional_power(p, e.recip()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::heavy_hitter_database;
    use mpc_sim::{Cluster, MpcConfig};

    use crate::wco::WcoProgram;

    #[test]
    fn triangle_targets_are_the_paper_exponents() {
        // C3: ρ* = τ* = 3/2 → both targets n/p^{2/3}.
        let q = families::triangle();
        let db = matching_database(&q, 1000, 1);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 64).unwrap();
        let pred = WcoLoadPrediction::predict(&plan).unwrap();
        let expected = 1000.0 / 64f64.powf(2.0 / 3.0);
        assert!((pred.agm_target - expected).abs() < 1e-9);
        assert!((pred.one_round_target - expected).abs() < 1e-9);
    }

    #[test]
    fn skew_free_profile_is_one_round_of_the_light_grid() {
        let q = families::triangle();
        let db = matching_database(&q, 2700, 5);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 27).unwrap();
        let pred = WcoLoadPrediction::predict(&plan).unwrap();
        assert_eq!(pred.rounds.len(), 1);
        // 3 relations × n tuples × replication 3 / 27 cells = n/3.
        assert!((pred.rounds[0].predicted_tuples - 900.0).abs() < 1e-9);
        assert_eq!(pred.patterns.len(), 1);
        assert_eq!(pred.patterns[0].heavy_vars, "");
    }

    #[test]
    fn prediction_brackets_simulation_under_skew() {
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 800, 2000, 0.5, 17);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 16).unwrap();
        let pred = WcoLoadPrediction::predict(&plan).unwrap();
        assert_eq!(pred.rounds.len(), 2);
        let program = WcoProgram::with_plan(plan, 29);
        let cluster = Cluster::new(MpcConfig::new(16, 0.9)).unwrap();
        let result = cluster.run(&program, &db).unwrap();
        let rows = pred.compare(&result).unwrap();
        for row in &rows {
            assert!(
                row.simulated_max_tuples as f64 <= 4.0 * row.predicted_tuples + 16.0,
                "round {}: simulated {} far above predicted {}",
                row.round,
                row.simulated_max_tuples,
                row.predicted_tuples
            );
        }
    }

    #[test]
    fn comparison_rejects_mismatched_round_counts() {
        let q = families::triangle();
        // deg = 0.6·1000 = 600 planted copies; 600·2 > 1000 makes the
        // hitter heavy at the p = 8 share of 2.
        let db = heavy_hitter_database(&q, 800, 1000, 0.6, 3);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 8).unwrap();
        assert_eq!(plan.num_rounds(), 2);
        let pred = WcoLoadPrediction::predict(&plan).unwrap();
        // A one-round HyperCube run cannot be compared to it.
        let hc = crate::hypercube::HyperCube::run(&q, &db, &MpcConfig::new(8, 0.9)).unwrap();
        assert!(pred.compare(&hc.result).is_err());
    }
}
